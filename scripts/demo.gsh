# gomsh demo script: the paper's §3.5 story
load scripts/car_schema.gom
new Car@CarSchema
begin
add-attr Car@CarSchema fuelType string
end
repairs 0
apply 0 2
check
get oid1 fuelType
query Attr(T, A, D), D = 'tid_string'.
why AttrI tid4 fuelType tid_string
dump Slot
quit
