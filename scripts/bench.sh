#!/usr/bin/env bash
# Benchmark runner: builds the offline microbench harness and records a
# machine-readable snapshot of the deductive-engine hot paths.
#
# Usage:
#   scripts/bench.sh                 # writes BENCH_<YYYY-MM-DD>.json
#   scripts/bench.sh out.json        # explicit output file
#   scripts/bench.sh --compare BENCH_old.json [out.json]
#                                    # run, then fail if any bench present
#                                    # in BOTH snapshots regressed >10%
#   GOM_EVAL_THREADS=4 scripts/bench.sh out.json   # parallel evaluator
#   BENCH_ITERS=31 scripts/bench.sh  # more samples per bench
#
# The JSON schema is gom-bench/microbench/v1: per bench, the name, median
# and min wall-clock nanoseconds, work units per iteration, and derived
# units/second throughput. Keep the committed BENCH_*.json files so the
# perf trajectory is reviewable PR over PR. The --compare gate only looks
# at rows shared by both files: brand-new benches can land freely, but a
# pre-existing row whose median grows beyond 110% of the old snapshot
# fails the run.
#
# Alongside the microbench snapshot, the SLO load harness (bench_slo)
# records a gom-bench/slo/v1 report to <out>_slo.json: per-verb p50/p99
# client-observed latency under a seeded multi-client evolution trace.
# --compare also diffs slo rows when the baseline has a sibling
# <old>_slo.json, with a lenient 1.5x p99 gate — wall-clock percentiles
# under thread contention are far noisier than single-thread medians, and
# the histogram buckets themselves are power-of-two quantized.
# BENCH_SLO_SESSIONS=0 skips the slo run entirely.

set -euo pipefail
cd "$(dirname "$0")/.."

compare_to=""
if [ "${1:-}" = "--compare" ]; then
  compare_to="${2:?usage: scripts/bench.sh --compare <old.json> [out.json]}"
  [ -f "$compare_to" ] || { echo "no such baseline: $compare_to"; exit 1; }
  shift 2
fi

out="${1:-BENCH_$(date +%F).json}"
iters="${BENCH_ITERS:-15}"
slo_sessions="${BENCH_SLO_SESSIONS:-200}"
slo_out="${out%.json}_slo.json"

cargo build --release -p gom-bench --bin microbench --bin bench_slo
./target/release/microbench --iters "$iters" --out "$out"
echo "benchmark snapshot written to $out"

if [ "$slo_sessions" != "0" ]; then
  ./target/release/bench_slo --seed 7 --sessions "$slo_sessions" \
    --writers 4 --readers 8 --out "$slo_out"
  echo "slo snapshot written to $slo_out"
fi

if [ -n "$compare_to" ]; then
  echo "comparing against $compare_to (fail on >10% median regression)"
  # The v1 schema emits one bench per line; pull (name, median_ns) pairs.
  medians() {
    sed -n 's/.*"name": "\([^"]*\)", "median_ns": \([0-9]*\).*/\1 \2/p' "$1"
  }
  medians "$compare_to" > /tmp/bench_old.$$
  medians "$out" > /tmp/bench_new.$$
  awk -v old=/tmp/bench_old.$$ '
    BEGIN {
      while ((getline line < old) > 0) {
        split(line, f, " "); base[f[1]] = f[2] + 0
      }
    }
    {
      name = $1; med = $2 + 0
      if (!(name in base)) { printf "  NEW  %-28s %12d ns\n", name, med; next }
      ratio = med / base[name]
      verdict = ratio > 1.10 ? "REGRESSED" : "ok"
      printf "  %-9s %-28s %12d -> %12d ns (%.2fx)\n", \
             verdict, name, base[name], med, ratio
      if (ratio > 1.10) bad++
    }
    END { if (bad > 0) { printf "%d bench(es) regressed >10%%\n", bad; exit 1 } }
  ' /tmp/bench_new.$$ && status=0 || status=$?
  rm -f /tmp/bench_old.$$ /tmp/bench_new.$$

  # SLO rows: compare per-verb p99 against the baseline's sibling
  # <old>_slo.json when both snapshots exist.
  slo_baseline="${compare_to%.json}_slo.json"
  if [ -f "$slo_baseline" ] && [ -f "$slo_out" ]; then
    echo "comparing slo rows against $slo_baseline (fail on >50% p99 regression)"
    p99s() {
      sed -n 's/.*"verb": "\([^"]*\)",.*"p99_us": \([0-9]*\).*/\1 \2/p' "$1"
    }
    p99s "$slo_baseline" > /tmp/slo_old.$$
    p99s "$slo_out" > /tmp/slo_new.$$
    awk -v old=/tmp/slo_old.$$ '
      BEGIN {
        while ((getline line < old) > 0) {
          split(line, f, " "); base[f[1]] = f[2] + 0
        }
      }
      {
        verb = $1; p99 = $2 + 0
        if (!(verb in base)) { printf "  NEW  %-8s p99 %9d us\n", verb, p99; next }
        ratio = base[verb] > 0 ? p99 / base[verb] : 1
        verdict = ratio > 1.50 ? "REGRESSED" : "ok"
        printf "  %-9s %-8s p99 %9d -> %9d us (%.2fx)\n", \
               verdict, verb, base[verb], p99, ratio
        if (ratio > 1.50) bad++
      }
      END { if (bad > 0) { printf "%d slo verb(s) regressed >50%%\n", bad; exit 1 } }
    ' /tmp/slo_new.$$ && slo_status=0 || slo_status=$?
    rm -f /tmp/slo_old.$$ /tmp/slo_new.$$
    if [ "$slo_status" -ne 0 ]; then status=$slo_status; fi
  fi
  exit $status
fi
