#!/usr/bin/env bash
# Benchmark runner: builds the offline microbench harness and records a
# machine-readable snapshot of the deductive-engine hot paths.
#
# Usage:
#   scripts/bench.sh                 # writes BENCH_<YYYY-MM-DD>.json
#   scripts/bench.sh out.json        # explicit output file
#   scripts/bench.sh --compare BENCH_old.json [out.json]
#                                    # run, then fail if any bench present
#                                    # in BOTH snapshots regressed >10%
#   GOM_EVAL_THREADS=4 scripts/bench.sh out.json   # parallel evaluator
#   BENCH_ITERS=31 scripts/bench.sh  # more samples per bench
#
# The JSON schema is gom-bench/microbench/v1: per bench, the name, median
# and min wall-clock nanoseconds, work units per iteration, and derived
# units/second throughput. Keep the committed BENCH_*.json files so the
# perf trajectory is reviewable PR over PR. The --compare gate only looks
# at rows shared by both files: brand-new benches can land freely, but a
# pre-existing row whose median grows beyond 110% of the old snapshot
# fails the run.

set -euo pipefail
cd "$(dirname "$0")/.."

compare_to=""
if [ "${1:-}" = "--compare" ]; then
  compare_to="${2:?usage: scripts/bench.sh --compare <old.json> [out.json]}"
  [ -f "$compare_to" ] || { echo "no such baseline: $compare_to"; exit 1; }
  shift 2
fi

out="${1:-BENCH_$(date +%F).json}"
iters="${BENCH_ITERS:-15}"

cargo build --release -p gom-bench --bin microbench
./target/release/microbench --iters "$iters" --out "$out"
echo "benchmark snapshot written to $out"

if [ -n "$compare_to" ]; then
  echo "comparing against $compare_to (fail on >10% median regression)"
  # The v1 schema emits one bench per line; pull (name, median_ns) pairs.
  medians() {
    sed -n 's/.*"name": "\([^"]*\)", "median_ns": \([0-9]*\).*/\1 \2/p' "$1"
  }
  medians "$compare_to" > /tmp/bench_old.$$
  medians "$out" > /tmp/bench_new.$$
  awk -v old=/tmp/bench_old.$$ '
    BEGIN {
      while ((getline line < old) > 0) {
        split(line, f, " "); base[f[1]] = f[2] + 0
      }
    }
    {
      name = $1; med = $2 + 0
      if (!(name in base)) { printf "  NEW  %-28s %12d ns\n", name, med; next }
      ratio = med / base[name]
      verdict = ratio > 1.10 ? "REGRESSED" : "ok"
      printf "  %-9s %-28s %12d -> %12d ns (%.2fx)\n", \
             verdict, name, base[name], med, ratio
      if (ratio > 1.10) bad++
    }
    END { if (bad > 0) { printf "%d bench(es) regressed >10%%\n", bad; exit 1 } }
  ' /tmp/bench_new.$$ && status=0 || status=$?
  rm -f /tmp/bench_old.$$ /tmp/bench_new.$$
  exit $status
fi
