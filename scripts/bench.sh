#!/usr/bin/env bash
# Benchmark runner: builds the offline microbench harness and records a
# machine-readable snapshot of the deductive-engine hot paths.
#
# Usage:
#   scripts/bench.sh                 # writes BENCH_<YYYY-MM-DD>.json
#   scripts/bench.sh out.json        # explicit output file
#   GOM_EVAL_THREADS=4 scripts/bench.sh out.json   # parallel evaluator
#   BENCH_ITERS=31 scripts/bench.sh  # more samples per bench
#
# The JSON schema is gom-bench/microbench/v1: per bench, the name, median
# and min wall-clock nanoseconds, work units per iteration, and derived
# units/second throughput. Keep the committed BENCH_*.json files so the
# perf trajectory is reviewable PR over PR.

set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%F).json}"
iters="${BENCH_ITERS:-15}"

cargo build --release -p gom-bench --bin microbench
./target/release/microbench --iters "$iters" --out "$out"
echo "benchmark snapshot written to $out"
