#!/usr/bin/env bash
# CI gate: formatting, release build, tests, lints. Fully offline.
#
# Usage: scripts/check.sh
# Optional components (rustfmt, clippy) are skipped with a notice when the
# toolchain lacks them, so the script degrades gracefully on minimal images.

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

if command -v rustfmt >/dev/null 2>&1; then
  step "cargo fmt --check"
  cargo fmt --all -- --check
else
  step "cargo fmt --check (SKIPPED: rustfmt not installed)"
fi

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

# The planned/parallel evaluator must agree with the naive reference
# interpreter; run the differential suite in release so it exercises the
# same codegen the benchmarks measure.
step "differential test (planned vs naive, serial vs parallel)"
cargo test -p gom-deductive --release --test planned_equivalence

# Observation must be pure: the instrumented engine (aggregation + live
# JSONL trace sink) computes a bit-identical IDB, and a full evaluation
# under tracing emits every span the taxonomy promises.
step "differential test (instrumented vs uninstrumented eval)"
cargo test -p gom-deductive --release --test obs_equivalence
cargo test -p gom-deductive --release --test obs_tracing

step "trace contains the required span names"
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
{
  echo "load scripts/car_schema.gom"
  echo "begin"
  echo "add-attr Car obsCheckAttr string"
  echo "end"
  echo "quit"
} > "$trace_tmp/session.gsh"
cargo run --release -q --bin gomsh -- \
  --store "$trace_tmp/db.gomj" --trace "$trace_tmp/trace.jsonl" \
  "$trace_tmp/session.gsh" > /dev/null
for span in eval.fixpoint eval.stratum check.delta session.bes session.ees \
            session.journal_commit analyzer.lower load.program; do
  grep -q "\"name\":\"$span" "$trace_tmp/trace.jsonl" \
    || { echo "MISSING span $span in trace"; exit 1; }
done
grep -q '"journal.appends"' "$trace_tmp/trace.jsonl" \
  || { echo "MISSING journal counters in trace"; exit 1; }

# Crash recovery must land on a session boundary from any journal prefix,
# partial write, or corrupted tail; run the sweep in release so the
# boundary enumeration and random offsets cover the real codegen.
step "fault-injection sweep (journal crash recovery)"
cargo test --release --test recovery_fault_injection
cargo test -p gom-deductive --release --test session_atomicity

# The daemon must survive a full client session over the wire, with every
# request traced: spawn gomd on a temp socket, drive a scripted
# BES/op/EES/query/stats session through gomsh --connect, and require
# server.request spans in the obs trace.
step "gomd server smoke test (release, scripted gomsh --connect session)"
server_tmp="$(mktemp -d)"
{
  echo "begin"
  echo "load scripts/car_schema.gom"
  echo "end"
  echo "add-attr Car@CarSchema smokeAttr string"
  echo "query Attr(T, N, D)"
  echo "check"
  echo "digest"
  echo "stats"
  echo "shutdown"
} > "$server_tmp/session.gsh"
cargo run --release -q --bin gomsh -- \
  --serve "$server_tmp/gomd.sock" --store "$server_tmp/db.gomj" \
  --trace "$server_tmp/server-trace.jsonl" > "$server_tmp/server.log" 2>&1 &
server_pid=$!
cargo run --release -q --bin gomsh -- \
  --connect "$server_tmp/gomd.sock" "$server_tmp/session.gsh" \
  > "$server_tmp/client.log"
wait "$server_pid"
grep -q "EES — consistent, committed" "$server_tmp/client.log" \
  || { echo "MISSING commit confirmation in client log"; cat "$server_tmp/client.log"; exit 1; }
grep -q "smokeAttr" "$server_tmp/client.log" \
  || { echo "MISSING autocommitted attribute in query output"; exit 1; }
for span in "server.request:bes" "server.request:ees" "server.request:query" \
            "server.request:stats" "epoch.publish"; do
  grep -q "$span" "$server_tmp/server-trace.jsonl" \
    || { echo "MISSING $span in server trace"; exit 1; }
done
rm -rf "$server_tmp"

step "bench harness compiles"
cargo bench --workspace --no-run

if command -v cargo-clippy >/dev/null 2>&1; then
  step "cargo clippy -D warnings"
  cargo clippy --all-targets -- -D warnings

  # Panic-containment gate: gom-store (recovery runs on arbitrary bytes),
  # gom-obs (on every hot path), gom-server (a panic takes down all
  # sessions) and gom-runtime (executes user method code) all deny
  # unwrap/expect via [lints.clippy] in their own Cargo.toml, so a plain
  # per-package clippy run enforces it without leaking the deny into
  # workspace dependencies.
  step "cargo clippy unwrap/expect gate (store, obs, server, runtime)"
  cargo clippy -p gom-store -p gom-obs -p gom-server -p gom-runtime \
    --all-targets -- -D warnings
else
  step "cargo clippy (SKIPPED: clippy not installed)"
fi

step "OK"
