#!/usr/bin/env bash
# CI gate: formatting, release build, tests, lints. Fully offline.
#
# Usage: scripts/check.sh
# Optional components (rustfmt, clippy) are skipped with a notice when the
# toolchain lacks them, so the script degrades gracefully on minimal images.

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

if command -v rustfmt >/dev/null 2>&1; then
  step "cargo fmt --check"
  cargo fmt --all -- --check
else
  step "cargo fmt --check (SKIPPED: rustfmt not installed)"
fi

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

# The planned/parallel evaluator must agree with the naive reference
# interpreter; run the differential suite in release so it exercises the
# same codegen the benchmarks measure.
step "differential test (planned vs naive, serial vs parallel)"
cargo test -p gom-deductive --release --test planned_equivalence

# Observation must be pure: the instrumented engine (aggregation + live
# JSONL trace sink) computes a bit-identical IDB, and a full evaluation
# under tracing emits every span the taxonomy promises.
step "differential test (instrumented vs uninstrumented eval)"
cargo test -p gom-deductive --release --test obs_equivalence
cargo test -p gom-deductive --release --test obs_tracing

step "trace contains the required span names"
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
{
  echo "load scripts/car_schema.gom"
  echo "begin"
  echo "add-attr Car obsCheckAttr string"
  echo "end"
  echo "quit"
} > "$trace_tmp/session.gsh"
cargo run --release -q --bin gomsh -- \
  --store "$trace_tmp/db.gomj" --trace "$trace_tmp/trace.jsonl" \
  "$trace_tmp/session.gsh" > /dev/null
# A clean interactive session commits through the maintained EES path:
# per-op dred.maintain spans while the session is open, one ees.maintained
# read at commit — and never a full check.delta re-evaluation.
for span in eval.fixpoint eval.stratum ees.maintained dred.maintain \
            session.bes session.ees \
            session.journal_commit analyzer.lower load.program; do
  grep -q "\"name\":\"$span" "$trace_tmp/trace.jsonl" \
    || { echo "MISSING span $span in trace"; exit 1; }
done
if grep -q '"check.maintenance.fallbacks":[1-9]' "$trace_tmp/trace.jsonl"; then
  echo "maintained EES fell back to delta checking on the clean path"
  exit 1
fi
grep -q '"journal.appends"' "$trace_tmp/trace.jsonl" \
  || { echo "MISSING journal counters in trace"; exit 1; }

# The maintained violation relations must agree bit-identically with full
# checking across random sessions (incl. rollback/recommit and recovery
# replay); run the differential sweep in release like the others.
step "differential test (maintained vs full EES check)"
cargo test --release --test maintained_soundness

# Crash recovery must land on a session boundary from any journal prefix,
# partial write, or corrupted tail; run the sweep in release so the
# boundary enumeration and random offsets cover the real codegen.
step "fault-injection sweep (journal crash recovery)"
cargo test --release --test recovery_fault_injection
cargo test -p gom-deductive --release --test session_atomicity

# The daemon must survive a full client session over the wire, with every
# request traced: spawn gomd on a temp socket, drive a scripted
# BES/op/EES/query/stats session through gomsh --connect, and require
# server.request spans in the obs trace.
step "gomd server smoke test (release, scripted gomsh --connect session)"
server_tmp="$(mktemp -d)"
{
  echo "begin"
  echo "load scripts/car_schema.gom"
  echo "end"
  echo "add-attr Car@CarSchema smokeAttr string"
  echo "query Attr(T, N, D)"
  echo "check"
  echo "digest"
  echo "stats"
  echo "shutdown"
} > "$server_tmp/session.gsh"
cargo run --release -q --bin gomsh -- \
  --serve "$server_tmp/gomd.sock" --store "$server_tmp/db.gomj" \
  --trace "$server_tmp/server-trace.jsonl" > "$server_tmp/server.log" 2>&1 &
server_pid=$!
cargo run --release -q --bin gomsh -- \
  --connect "$server_tmp/gomd.sock" "$server_tmp/session.gsh" \
  > "$server_tmp/client.log"
wait "$server_pid"
grep -q "EES — consistent, committed" "$server_tmp/client.log" \
  || { echo "MISSING commit confirmation in client log"; cat "$server_tmp/client.log"; exit 1; }
grep -q "smokeAttr" "$server_tmp/client.log" \
  || { echo "MISSING autocommitted attribute in query output"; exit 1; }
for span in "server.request:bes" "server.request:ees" "server.request:query" \
            "server.request:stats" "epoch.publish"; do
  grep -q "$span" "$server_tmp/server-trace.jsonl" \
    || { echo "MISSING $span in server trace"; exit 1; }
done
rm -rf "$server_tmp"

# Hostile clients and networks: the lease/deadline/shedding tests and the
# seeded chaos-proxy sweep run in release (100 seeds per eval-thread
# configuration → 200 faulted runs), asserting digest identity against an
# unfaulted twin, exactly-once tokened commits, and clean recovery.
step "chaos-proxy sweep + lease tests (release, 200 seeded runs)"
cargo test -p gom-server --release --test lease
GOM_CHAOS_SEEDS=100 cargo test -p gom-server --release --test chaos

# Snapshot publication must stay copy-on-write: capturing an epoch over a
# populated synth5000 base may copy zero tuples (counter-verified), and
# the publish cost must stay within 1.5x of the recorded microbench row
# (the pre-CoW deep-clone path sat at ~7.5 ms vs ~23 µs shared, so any
# slide back toward O(#tuples) publication blows through this gate).
step "snapshot CoW gate (zero tuple copies + publish cost at synth5000)"
GOM_COW_TYPES=5000 cargo test --release --test snapshot_cow
snap_tmp="$(mktemp -d)"
cargo build --release -p gom-bench --bin microbench
./target/release/microbench --iters 9 --out "$snap_tmp/snap.json" \
  snapshot_publish_synth5000 2> /dev/null
baseline_file=$(grep -l '"name": "snapshot_publish_synth5000"' BENCH_*.json | sort | tail -1)
row_median() {
  grep -o "\"name\": \"snapshot_publish_synth5000\", \"median_ns\": [0-9]*" "$1" \
    | grep -o '[0-9]*$'
}
recorded=$(row_median "$baseline_file")
current=$(row_median "$snap_tmp/snap.json")
echo "snapshot_publish_synth5000: ${current} ns (recorded ${recorded} ns in ${baseline_file})"
awk -v cur="$current" -v rec="$recorded" 'BEGIN {
  if (cur > rec * 1.5) {
    printf "REGRESSION: snapshot publish %d ns exceeds 1.5x recorded %d ns\n", cur, rec
    exit 1
  }
}'
rm -rf "$snap_tmp"

# A hostile-client smoke over the real binaries: a writer that goes silent
# past its lease is reaped (typed `lease-expired` on its next commit), a
# connection beyond --max-conns is shed, and both events land in the obs
# trace and in the `stats` verb's vitals line.
step "gomd hostile-client smoke (lease reap + load shedding)"
hostile_tmp="$(mktemp -d)"
printf 'begin\nload scripts/car_schema.gom\nend\nquit\n' > "$hostile_tmp/seed.gsh"
{
  echo "begin"
  echo "add-attr Car@CarSchema zombieAttr string"
  echo "sleep 900"
  echo "end"
  echo "stats"
  echo "shutdown"
} > "$hostile_tmp/zombie.gsh"
echo "digest" > "$hostile_tmp/shed.gsh"
cargo run --release -q --bin gomsh -- \
  --serve "$hostile_tmp/gomd.sock" --trace "$hostile_tmp/server-trace.jsonl" \
  --lease 300 --io-deadline 500 --max-conns 1 \
  > "$hostile_tmp/server.log" 2>&1 &
hostile_pid=$!
for _ in $(seq 1 50); do [ -S "$hostile_tmp/gomd.sock" ] && break; sleep 0.1; done
# Seed the schema so the zombie's add-attr resolves. Then the zombie
# holds the single connection slot and goes silent past its 300 ms lease:
# the reaper rolls it back, its own `end` must fail with a typed
# lease-expired error, and a second client arriving mid-sleep is shed
# (it retries with backoff and lands once the slot frees).
cargo run --release -q --bin gomsh -- \
  --connect "$hostile_tmp/gomd.sock" "$hostile_tmp/seed.gsh" > /dev/null
cargo run --release -q --bin gomsh -- \
  --connect "$hostile_tmp/gomd.sock" "$hostile_tmp/zombie.gsh" \
  > "$hostile_tmp/zombie.log" 2>&1 &
zombie_pid=$!
sleep 0.4
cargo run --release -q --bin gomsh -- \
  --connect "$hostile_tmp/gomd.sock" "$hostile_tmp/shed.gsh" \
  > "$hostile_tmp/shed.log" 2>&1 || true
wait "$zombie_pid" || true
wait "$hostile_pid"
grep -q "lease-expired" "$hostile_tmp/zombie.log" \
  || { echo "MISSING lease-expired error in zombie client log"; cat "$hostile_tmp/zombie.log"; exit 1; }
grep -q "server.lease.expired=[1-9]" "$hostile_tmp/zombie.log" \
  || { echo "MISSING lease vitals in stats output"; cat "$hostile_tmp/zombie.log"; exit 1; }
grep -q '"server.lease.expired":[1-9]' "$hostile_tmp/server-trace.jsonl" \
  || { echo "MISSING server.lease.expired counter in trace"; exit 1; }
grep -q '"server.shed":[1-9]' "$hostile_tmp/server-trace.jsonl" \
  || { echo "MISSING server.shed counter in trace"; exit 1; }
rm -rf "$hostile_tmp"

# The SLO load harness must drive a live daemon end to end: replay a
# seeded 30-session Piccioni-mix trace from 4 writer + 4 reader clients
# against an in-process gomd and emit a parseable gom-bench/slo/v1 report
# with a nonzero EES p99 and no failed sessions. The op sequence is
# seed-deterministic, so a hang or error here is reproducible verbatim.
step "SLO load harness smoke (seeded 30-session trace, 4 writers + 4 readers)"
slo_tmp="$(mktemp -d)"
cargo build --release -p gom-bench --bin bench_slo
./target/release/bench_slo --seed 7 --sessions 30 --writers 4 --readers 4 \
  --out "$slo_tmp/slo.json" 2> "$slo_tmp/slo.log" \
  || { echo "bench_slo failed"; cat "$slo_tmp/slo.log"; exit 1; }
grep -q '"schema": "gom-bench/slo/v1"' "$slo_tmp/slo.json" \
  || { echo "MISSING slo/v1 schema in report"; cat "$slo_tmp/slo.json"; exit 1; }
grep -q '"verb": "ees", "count": [1-9]' "$slo_tmp/slo.json" \
  || { echo "MISSING ees row in slo report"; cat "$slo_tmp/slo.json"; exit 1; }
grep -q '"verb": "ees", [^}]*"p99_us": [1-9]' "$slo_tmp/slo.json" \
  || { echo "EES p99 must be nonzero"; cat "$slo_tmp/slo.json"; exit 1; }
grep -q '"commits": 30,' "$slo_tmp/slo.json" \
  || { echo "all 30 sessions must commit"; cat "$slo_tmp/slo.json"; exit 1; }
grep -q '"errors": 0,' "$slo_tmp/slo.json" \
  || { echo "slo run must be error-free"; cat "$slo_tmp/slo.json"; exit 1; }
rm -rf "$slo_tmp"

# Pre-EES impact planning must work end to end in release: an open
# session over the car schema gets a plan whose footprint names the
# constraint EES will check, and the impact.plan span lands in the trace.
step "impact planner smoke test (release, traced plan verb)"
plan_tmp="$(mktemp -d)"
{
  echo "load scripts/car_schema.gom"
  echo "new Car@CarSchema"
  echo "begin"
  echo "add-attr Car@CarSchema planAttr string"
  echo "plan"
  echo "rollback"
  echo "quit"
} > "$plan_tmp/session.gsh"
cargo run --release -q --bin gomsh -- \
  --store "$plan_tmp/db.gomj" --trace "$plan_tmp/trace.jsonl" \
  "$plan_tmp/session.gsh" > "$plan_tmp/plan.log"
grep -q "impact plan — 1 op(s)" "$plan_tmp/plan.log" \
  || { echo "MISSING plan report in gomsh output"; cat "$plan_tmp/plan.log"; exit 1; }
grep -q "slot_for_every_attr" "$plan_tmp/plan.log" \
  || { echo "MISSING footprint constraint in plan report"; exit 1; }
grep -q "warn\[L0601\]" "$plan_tmp/plan.log" \
  || { echo "MISSING L0601 diagnostic in plan report"; exit 1; }
for span in impact.plan impact.index.build; do
  grep -q "\"name\":\"$span" "$plan_tmp/trace.jsonl" \
    || { echo "MISSING span $span in plan trace"; exit 1; }
done
rm -rf "$plan_tmp"

# The lint severity gate must actually gate: a clean program passes the
# strictest gate, and a program with sub-error diagnostics fails once the
# gate is lowered to their severity.
step "gomsh lint --deny gate"
lint_tmp="$(mktemp -d)"
cat > "$lint_tmp/clean.cdl" <<'EOF'
base E(x, y).
derived Path(x, y).
Path(X, Y) :- E(X, Y).
Path(X, Z) :- E(X, Y), Path(Y, Z).
constraint acyclic: forall X: !Path(X, X).
E('a', 'b').
EOF
cargo run --release -q --bin gomsh -- \
  lint "$lint_tmp/clean.cdl" --deny note > "$lint_tmp/clean.log" \
  || { echo "clean program must pass --deny note"; cat "$lint_tmp/clean.log"; exit 1; }
cat > "$lint_tmp/warny.cdl" <<'EOF'
base N(x).
derived Cart(x, y).
Cart(X, Y) :- N(X), N(Y).
EOF
# Default gate (errors only): warnings do not fail the build...
cargo run --release -q --bin gomsh -- \
  lint "$lint_tmp/warny.cdl" > "$lint_tmp/warny_default.log" \
  || { echo "warning-only program must pass the default gate"; exit 1; }
# ...but an armed --deny warn gate turns them into a nonzero exit.
if cargo run --release -q --bin gomsh -- \
    lint "$lint_tmp/warny.cdl" --deny warn > "$lint_tmp/warny.log" 2>&1; then
  echo "lint --deny warn must fail on a program with warnings"
  cat "$lint_tmp/warny.log"
  exit 1
fi
rm -rf "$lint_tmp"

step "bench harness compiles"
cargo bench --workspace --no-run

if command -v cargo-clippy >/dev/null 2>&1; then
  step "cargo clippy -D warnings"
  cargo clippy --all-targets -- -D warnings

  # Panic-containment gate: gom-store (recovery runs on arbitrary bytes),
  # gom-obs (on every hot path), gom-server (a panic takes down all
  # sessions; covers the wire codec, lease/session machinery, client retry
  # layer, and the fault proxy), gom-runtime (executes user method code),
  # gom-lint (runs on
  # arbitrary user programs) and gom-impact (runs inside EES; a panic would
  # take an open session down) all deny unwrap/expect via [lints.clippy]
  # in their own Cargo.toml, so a plain per-package clippy run enforces it
  # without leaking the deny into workspace dependencies. The incremental
  # maintenance module (gom-deductive/src/incr.rs) runs inside every armed
  # session and carries the same deny in-source at module level, so it is
  # enforced by any clippy run, including this one.
  step "cargo clippy unwrap/expect gate (store, obs, server, runtime, lint, impact, trace, deductive::incr)"
  cargo clippy -p gom-store -p gom-obs -p gom-server -p gom-runtime \
    -p gom-lint -p gom-impact -p gom-trace -p gom-deductive --all-targets -- -D warnings
else
  step "cargo clippy (SKIPPED: clippy not installed)"
fi

step "OK"
