//! # gomflex — flexible schema management for object bases
//!
//! A complete reproduction of *Moerkotte & Zachmann, "Towards More Flexible
//! Schema Management in Object Bases" (ICDE 1993)*: a schema manager for
//! the GOM object model whose notion of consistency is a **declarative
//! document** fed to a deductive database, whose evolution operations are
//! **decoupled from consistency** (checked only at the end of evolution
//! sessions), and whose inconsistencies come with **generated repairs**.
//!
//! ## Crates
//!
//! | crate | paper component |
//! |---|---|
//! | [`deductive`] | the deductive database (rules, constraints, repairs) |
//! | [`model`] | the Database Model (schema base + object base model) |
//! | [`analyzer`] | the Analyzer (GOM front end, code analysis, lowering) |
//! | [`runtime`] | the Runtime System (objects, interpretation, conversion, masking) |
//! | [`core`] | the Consistency Control + session protocol (the contribution) |
//! | [`evolution`] | primitive/complex evolution ops, versioning, baselines |
//! | [`lint`] | gom-lint: multi-pass static analysis with structured diagnostics |
//! | [`impact`] | gom-impact: meta-EDB reflection, impact footprints, pre-EES commit planning |
//! | [`obs`] | gom-obs: spans, counters, histograms, JSONL tracing |
//! | [`server`] | gomd: concurrent schema service (epoch snapshots, gom-wire/v1) |
//!
//! ## Quickstart
//!
//! ```
//! use gomflex::prelude::*;
//!
//! let mut mgr = SchemaManager::new().unwrap();
//! mgr.define_schema(CAR_SCHEMA_SRC).unwrap();           // paper §3.1
//! assert!(mgr.check().unwrap().is_empty());
//!
//! // §3.5: an evolution session that needs a repair.
//! let sid = mgr.meta.schema_by_name("CarSchema").unwrap();
//! let car = mgr.meta.type_by_name(sid, "Car").unwrap();
//! mgr.create_object(car).unwrap();
//! mgr.begin_evolution().unwrap();
//! let string = mgr.meta.builtins.string;
//! mgr.meta.add_attr(car, "fuelType", string).unwrap();
//! let outcome = mgr.end_evolution().unwrap();
//! assert!(!outcome.is_consistent());
//! let repairs = mgr.repairs_for(&outcome.violations()[0]).unwrap();
//! assert_eq!(repairs.len(), 3); // the paper's three repairs
//! mgr.rollback_evolution().unwrap();
//! ```

pub use gom_analyzer as analyzer;
pub use gom_core as core;
pub use gom_deductive as deductive;
pub use gom_evolution as evolution;
pub use gom_impact as impact;
pub use gom_lint as lint;
pub use gom_model as model;
pub use gom_obs as obs;
pub use gom_runtime as runtime;
pub use gom_server as server;
pub use gom_store as store;

/// One-stop imports for applications.
pub mod prelude {
    pub use gom_analyzer::car_schema::{
        CAR_SCHEMA_SRC, COMPANY_SCHEMA_SRC, NEW_CAR_SCHEMA_TYPES_SRC,
    };
    pub use gom_analyzer::lower::Analyzer;
    pub use gom_core::{EvolutionOutcome, OpenError, RecoveryReport, SchemaManager};
    pub use gom_deductive::{Database, Repair, RepairKind, Violation};
    pub use gom_evolution::{
        add_argument, add_argument_plan, copy_type_into, cure_add_attr, delete_type, fixed_check,
        install_versioning, record_schema_evolution, record_type_evolution, CurePolicy,
        DeleteTypeSemantics, Primitive,
    };
    pub use gom_impact::{ImpactIndex, PlanConfig, PlanReport};
    pub use gom_lint::{
        lint_database, lint_source, render_report, Baseline, Diagnostic, LintConfig, LintReport,
        Severity,
    };
    pub use gom_model::{DeclId, MetaModel, Oid, SchemaId, TypeId};
    pub use gom_runtime::{Runtime, Value, ValueSource};
    pub use gom_store::SyncPolicy;
}
