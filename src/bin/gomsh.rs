//! `gomsh` — an interactive / scriptable shell for the schema manager.
//!
//! This is the "interactive schema editor" instantiation of the Analyzer
//! the paper mentions in §2.2: evolution sessions are driven command by
//! command, consistency is checked at `end`, violations are listed, and
//! repairs can be requested and executed by number.
//!
//! ```text
//! cargo run --bin gomsh                # interactive (reads stdin)
//! cargo run --bin gomsh script.gsh     # script mode
//! cargo run --bin gomsh -- --store db.gomj [--sync never|commit|always]
//!                                      # durable: recover committed
//!                                      # sessions from the journal and
//!                                      # keep journaling new ones
//! cargo run --bin gomsh -- --trace t.jsonl
//!                                      # profile every command and export
//!                                      # a JSONL trace on exit
//! cargo run --bin gomsh lint <file> [--json] [--deny error|warn|note]
//!                                      # static analysis of a deductive
//!                                      # program; nonzero exit on denial
//! cargo run --bin gomsh -- --serve /tmp/gomd.sock [--store db.gomj]
//!                                      # host gomd: a concurrent schema
//!                                      # service on a Unix socket
//!                                      # (--lease <ms> writer lease,
//!                                      # --io-deadline <ms> partial-frame
//!                                      # deadline, --max-conns <n> load
//!                                      # shedding bound, --slow-ms <ms>
//!                                      # slow-request log threshold)
//! cargo run --bin gomsh -- --connect /tmp/gomd.sock
//!                                      # remote shell against a daemon
//!                                      # (--session-timeout <ms> bounds
//!                                      # the wait for the writer lock;
//!                                      # Busy/Overloaded are retried with
//!                                      # jittered exponential backoff)
//! ```
//!
//! Commands:
//! ```text
//! load <file>                 parse+lower GOM source inside the session
//! begin | end | rollback      session control (BES / EES / undo)
//! add-attr T@S <name> <dom>   primitive: add attribute (dom = type name or T@S)
//! del-attr T@S <name>         primitive: delete attribute
//! del-type T@S <semantics>    restrict|reconnect|cascade|cascade-objects|orphan
//! new T@S                     create an object, prints its oid
//! set <oid> <attr> <value>    write a slot (int/float/"str"/oid)
//! get <oid> <attr>            read a slot
//! call <oid> <op> [args…]     invoke an operation
//! check                       full consistency check
//! repairs <k>                 repairs for violation #k of the last check
//! apply <k> <m>               execute repair #m of violation #k
//! query <body>                datalog query, e.g. query Type(T, N, S)
//! why <Pred> <arg…>           derivation tree for a fact
//! dump <Pred>                 print a predicate's extension
//! consistency <file>          feed extra rules/constraints to the CC
//! checkpoint                  write a full EDB snapshot to the journal
//! recover                     reopen the journal, proving the durable state
//! profile on|off              toggle the gom-obs collector
//! stats [reset|--json]        aggregate span/counter/histogram table
//! end --timing (alias: ees)   commit with a per-constraint / per-stratum
//!                             timing breakdown (profiles just the commit)
//! install-versioning          install the §4.1 extension
//! lint [deny <level>]         lint the schema base; optionally arm the
//!                             commit gate (deny error|warn|note|off)
//! plan                        pre-EES commit plan for the open session:
//!                             impact footprint, breaking-change
//!                             classification, L06xx diagnostics
//! help | quit
//! ```

use gomflex::prelude::*;
use std::io::{BufRead, Write};

struct Shell {
    mgr: SchemaManager,
    last_violations: Vec<Violation>,
    last_repairs: Vec<gomflex::core::ExplainedRepair>,
    /// Journal path when running durably (`--store`), for `recover`.
    store_path: Option<String>,
    sync: SyncPolicy,
}

fn print_recovery(report: &RecoveryReport) {
    println!(
        "store: {} session(s) replayed, {} rolled back, {} op(s){}",
        report.sessions_replayed,
        report.sessions_rolled_back,
        report.ops_applied,
        if report.snapshot_loaded {
            " (from snapshot)"
        } else {
            ""
        }
    );
    if report.recovered_from_crash() {
        println!(
            "store: crash recovery — discarded {} byte(s) of torn/in-flight tail{}",
            report.truncated_bytes,
            report
                .torn
                .as_deref()
                .map(|t| format!(" ({t})"))
                .unwrap_or_default()
        );
    }
}

/// The `end --timing` report: the slice of an obs snapshot diff that
/// explains where a commit spent its time — per-stratum fixpoint spans,
/// per-constraint check spans, and the eval/check/journal counters.
fn render_timing(diff: &gom_obs::Snapshot) -> String {
    let mut keep = gom_obs::Snapshot::default();
    for (k, s) in &diff.spans {
        let relevant = k.starts_with("eval.stratum")
            || k.starts_with("check.constraint:")
            || matches!(
                k.as_str(),
                "eval.fixpoint"
                    | "check.full"
                    | "check.delta"
                    | "check.keys"
                    | "ees.maintained"
                    | "repair.generate"
                    | "session.ees"
                    | "session.journal_commit"
            );
        if relevant {
            keep.spans.insert(k.clone(), s.clone());
        }
    }
    for (k, v) in &diff.counters {
        if k.starts_with("eval.") || k.starts_with("check.") || k.starts_with("journal.") {
            keep.counters.insert(k.clone(), *v);
        }
    }
    if keep.spans.is_empty() && keep.counters.is_empty() {
        return "(no timing data recorded)\n".to_string();
    }
    gom_obs::render_table(&keep)
}

/// `gomsh --serve <sock>`: host a gomd daemon on a Unix socket. Runs
/// until a client sends `shutdown`. With `--store` the daemon is durable
/// and recovers the last committed epoch on restart.
fn serve_main(config: gomflex::server::Config) -> i32 {
    let sock = config.socket.display().to_string();
    match gomflex::server::serve(config) {
        Ok(handle) => {
            println!("gomd listening on {sock} (epoch {})", handle.epoch());
            handle.join();
            if gom_obs::trace_attached() {
                gom_obs::flush_trace();
                gom_obs::clear_trace();
            }
            println!("gomd stopped");
            0
        }
        Err(e) => {
            eprintln!("gomsh: cannot serve on {sock}: {e}");
            1
        }
    }
}

/// `gomsh --connect <sock>`: a remote shell speaking gom-wire/v1. The
/// verbs mirror the local shell where they make sense on a shared
/// service; object-level commands stay local-only.
fn connect_main(sock: &str, script: Option<String>) -> i32 {
    use gomflex::server::{Client, EvolutionOp, Reply, Request, RetryPolicy};
    let mut client = match Client::connect_within(
        std::path::Path::new(sock),
        std::time::Duration::from_secs(5),
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gomsh: cannot connect to {sock}: {e}");
            return 1;
        }
    };
    // Busy/Overloaded rejections are retried with jittered exponential
    // backoff; the seed folds in the pid so concurrent shells
    // de-synchronise instead of thundering back together.
    let policy = RetryPolicy {
        seed: 0x67_6f_6d_73_68 ^ u64::from(std::process::id()),
        ..RetryPolicy::default()
    };
    // Commit tokens for `end`: unique per process *and* per commit, so a
    // retried EES whose ack was lost replays instead of re-applying.
    let mut next_token: u64 = {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1);
        (now ^ (u64::from(std::process::id()) << 32)) | 1
    };
    let interactive = script.is_none();
    let reader: Box<dyn BufRead> = if let Some(path) = &script {
        match std::fs::File::open(path) {
            Ok(f) => Box::new(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("gomsh: cannot open {path}: {e}");
                return 1;
            }
        }
    } else {
        Box::new(std::io::BufReader::new(std::io::stdin()))
    };
    if interactive {
        println!("gomsh — connected to gomd at {sock}");
        println!("type `help` for commands");
    }
    let mut status = 0;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        if interactive {
            // Scripts echo nothing; interactive mode shows the prompt line.
        } else {
            println!("> {line}");
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        let (cmd, rest) = (words[0], &words[1..]);
        let request = match cmd {
            "quit" | "exit" => break,
            "help" => {
                println!(
                    "remote commands:\n  \
                     begin | end | rollback      session control (BES / EES / undo)\n  \
                     renew                       renew the session lease without mutating\n  \
                     sleep <ms>                  local pause (lease/timeout experiments)\n  \
                     load <file>                 send local GOM source into the session\n  \
                     add-attr T@S <name> <dom>   primitive: add attribute\n  \
                     del-attr T@S <name>         primitive: delete attribute\n  \
                     del-type T@S <semantics>    restrict|reconnect|cascade|cascade-objects|orphan\n  \
                     query <body>                datalog query against the published snapshot\n  \
                     check                       consistency check of the published snapshot\n  \
                     lint                        lint the published snapshot\n  \
                     plan                        pre-EES impact plan for the open session\n  \
                     digest                      epoch + state digest of the published snapshot\n  \
                     stats [--json]              server-side vitals, slow log, obs table\n  \
                     metrics                     gomd/metrics/v1 JSON (alias: stats --json)\n  \
                     shutdown                    stop the daemon\n  \
                     help | quit"
                );
                continue;
            }
            "begin" | "bes" => Request::Bes,
            "end" | "ees" => {
                let token = next_token;
                next_token = next_token.wrapping_add(2) | 1;
                Request::Ees { token: Some(token) }
            }
            "renew" => Request::Renew,
            "rollback" => Request::Rollback,
            "sleep" => {
                let Some(ms) = rest.first().and_then(|m| m.parse::<u64>().ok()) else {
                    eprintln!("usage: sleep <ms>");
                    status = 1;
                    continue;
                };
                std::thread::sleep(std::time::Duration::from_millis(ms));
                continue;
            }
            "load" => {
                let Some(path) = rest.first() else {
                    eprintln!("usage: load <file>");
                    status = 1;
                    continue;
                };
                match std::fs::read_to_string(path) {
                    Ok(src) => Request::Op(EvolutionOp::Define(src)),
                    Err(e) => {
                        eprintln!("gomsh: cannot read {path}: {e}");
                        status = 1;
                        continue;
                    }
                }
            }
            "add-attr" => {
                let [ty, name, dom] = rest[..] else {
                    eprintln!("usage: add-attr T@S <name> <domain>");
                    status = 1;
                    continue;
                };
                Request::Op(EvolutionOp::AddAttr {
                    ty: ty.into(),
                    name: name.into(),
                    domain: dom.into(),
                })
            }
            "del-attr" => {
                let [ty, name] = rest[..] else {
                    eprintln!("usage: del-attr T@S <name>");
                    status = 1;
                    continue;
                };
                Request::Op(EvolutionOp::DelAttr {
                    ty: ty.into(),
                    name: name.into(),
                })
            }
            "del-type" => {
                let [ty, sem] = rest[..] else {
                    eprintln!("usage: del-type T@S <semantics>");
                    status = 1;
                    continue;
                };
                Request::Op(EvolutionOp::DelType {
                    ty: ty.into(),
                    semantics: sem.into(),
                })
            }
            "query" => Request::Query(rest.join(" ")),
            "check" => Request::Check,
            "lint" => Request::Lint,
            "plan" => Request::Plan,
            "digest" => Request::Digest,
            "stats" if rest.contains(&"--json") => Request::Metrics,
            "stats" => Request::Stats,
            "metrics" => Request::Metrics,
            "shutdown" => Request::Shutdown,
            other => {
                eprintln!("gomsh: unknown remote command `{other}` (try `help`)");
                status = 1;
                continue;
            }
        };
        let shutdown = matches!(request, Request::Shutdown);
        match client.request_retry(&request, &policy) {
            Ok(Reply::Ok(text)) => {
                if text.is_empty() {
                    println!("ok");
                } else {
                    println!("{text}");
                }
            }
            Ok(Reply::Committed {
                epoch,
                changes,
                token: _,
            }) => {
                println!("EES — consistent, committed ({changes} change(s)) → epoch {epoch}");
            }
            Ok(Reply::Overloaded { active, max }) => {
                eprintln!(
                    "error (overloaded): server at capacity ({active}/{max} connections) — \
                     retries exhausted, try again later"
                );
                status = 1;
            }
            Ok(Reply::Violations(v)) if v.is_empty() => println!("consistent"),
            Ok(Reply::Violations(v)) => {
                println!("{} violation(s); session stays open:", v.len());
                for (i, line) in v.iter().enumerate() {
                    println!("  [{i}] {line}");
                }
                println!("use `rollback` or repair locally and `end` again");
            }
            Ok(Reply::Rows { names, rows }) => {
                println!("{}", names.join("\t"));
                for row in &rows {
                    println!("{}", row.join("\t"));
                }
                println!("({} row(s))", rows.len());
            }
            Ok(Reply::Error { kind, message }) => {
                eprintln!("error ({}): {message}", kind.name());
                status = 1;
            }
            Err(e) => {
                eprintln!("gomsh: connection lost: {e}");
                return 1;
            }
        }
        if shutdown {
            break;
        }
    }
    status
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("lint") {
        std::process::exit(lint_main(&args[1..]));
    }
    let mut store_path: Option<String> = None;
    let mut sync = SyncPolicy::OnCommit;
    let mut script: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut serve_sock: Option<String> = None;
    let mut connect_sock: Option<String> = None;
    let mut session_timeout = std::time::Duration::from_secs(2);
    let mut lease = std::time::Duration::from_millis(30_000);
    let mut io_deadline = std::time::Duration::from_millis(10_000);
    let mut max_connections: usize = 256;
    let mut slow_ms: u64 = 250;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--serve" => {
                let Some(p) = it.next() else {
                    eprintln!("gomsh: --serve takes a Unix socket path");
                    std::process::exit(2);
                };
                serve_sock = Some(p.clone());
            }
            "--connect" => {
                let Some(p) = it.next() else {
                    eprintln!("gomsh: --connect takes a Unix socket path");
                    std::process::exit(2);
                };
                connect_sock = Some(p.clone());
            }
            "--session-timeout" => {
                let Some(ms) = it.next().and_then(|m| m.parse::<u64>().ok()) else {
                    eprintln!("gomsh: --session-timeout takes milliseconds");
                    std::process::exit(2);
                };
                session_timeout = std::time::Duration::from_millis(ms);
            }
            "--lease" => {
                let Some(ms) = it.next().and_then(|m| m.parse::<u64>().ok()) else {
                    eprintln!("gomsh: --lease takes milliseconds");
                    std::process::exit(2);
                };
                lease = std::time::Duration::from_millis(ms);
            }
            "--io-deadline" => {
                let Some(ms) = it.next().and_then(|m| m.parse::<u64>().ok()) else {
                    eprintln!("gomsh: --io-deadline takes milliseconds");
                    std::process::exit(2);
                };
                io_deadline = std::time::Duration::from_millis(ms);
            }
            "--max-conns" => {
                let Some(n) = it.next().and_then(|m| m.parse::<usize>().ok()) else {
                    eprintln!("gomsh: --max-conns takes a connection count");
                    std::process::exit(2);
                };
                max_connections = n.max(1);
            }
            "--slow-ms" => {
                let Some(ms) = it.next().and_then(|m| m.parse::<u64>().ok()) else {
                    eprintln!("gomsh: --slow-ms takes milliseconds (0 logs every request)");
                    std::process::exit(2);
                };
                slow_ms = ms;
            }
            "--store" => {
                let Some(p) = it.next() else {
                    eprintln!("gomsh: --store takes a journal path");
                    std::process::exit(2);
                };
                store_path = Some(p.clone());
            }
            "--trace" => {
                let Some(p) = it.next() else {
                    eprintln!("gomsh: --trace takes an output path");
                    std::process::exit(2);
                };
                trace_path = Some(p.clone());
            }
            "--sync" => {
                let Some(mode) = it.next().and_then(|m| SyncPolicy::parse(m)) else {
                    eprintln!("gomsh: --sync takes never|commit|always");
                    std::process::exit(2);
                };
                sync = mode;
            }
            flag if flag.starts_with("--") => {
                eprintln!("gomsh: unknown flag `{flag}`");
                std::process::exit(2);
            }
            file => {
                if script.replace(file.to_string()).is_some() {
                    eprintln!("gomsh: at most one script file expected");
                    std::process::exit(2);
                }
            }
        }
    }
    // Attach the trace before opening the store so recovery spans are
    // captured too.
    if let Some(p) = &trace_path {
        if let Err(e) = gom_obs::set_trace_path(std::path::Path::new(p)) {
            eprintln!("gomsh: cannot open trace file {p}: {e}");
            std::process::exit(1);
        }
        gom_obs::set_enabled(true);
    }
    if serve_sock.is_some() && connect_sock.is_some() {
        eprintln!("gomsh: --serve and --connect are mutually exclusive");
        std::process::exit(2);
    }
    if let Some(sock) = serve_sock {
        std::process::exit(serve_main(gomflex::server::Config {
            socket: std::path::PathBuf::from(sock),
            store: store_path.map(std::path::PathBuf::from),
            sync,
            session_timeout,
            lease,
            io_deadline,
            max_connections,
            eval_threads: None,
            slow_ms,
        }));
    }
    if let Some(sock) = connect_sock {
        std::process::exit(connect_main(&sock, script));
    }
    let mgr = match &store_path {
        Some(p) => match SchemaManager::open(std::path::Path::new(p), sync) {
            Ok((mgr, report)) => {
                print_recovery(&report);
                mgr
            }
            Err(e) => {
                eprintln!("gomsh: cannot open store {p}: {e}");
                std::process::exit(1);
            }
        },
        None => match SchemaManager::new() {
            Ok(mgr) => mgr,
            Err(e) => {
                eprintln!("gomsh: cannot initialise the schema manager: {e}");
                std::process::exit(1);
            }
        },
    };
    let mut shell = Shell {
        mgr,
        last_violations: Vec::new(),
        last_repairs: Vec::new(),
        store_path,
        sync,
    };
    let interactive = script.is_none();
    let reader: Box<dyn BufRead> = if let Some(path) = &script {
        match std::fs::File::open(path) {
            Ok(f) => Box::new(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("gomsh: cannot open {path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        Box::new(std::io::BufReader::new(std::io::stdin()))
    };
    if interactive {
        println!("gomsh — flexible schema management shell (paper: Moerkotte & Zachmann 1993)");
        println!("type `help` for commands");
    }
    for line in reader.lines() {
        let Ok(line) = line else {
            break;
        };
        if interactive {
            print!("gom> ");
            std::io::stdout().flush().ok();
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !interactive {
            println!("gom> {line}");
        }
        match shell.dispatch(line) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => println!("error: {e}"),
        }
    }
    if let Some(p) = &trace_path {
        gom_obs::flush_trace();
        gom_obs::clear_trace();
        eprintln!("trace written to {p}");
    }
}

/// `gomsh lint <file> [--json] [--deny error|warn|note]` — batch linting of
/// a deductive program (rules, constraints, facts) against a fresh
/// database. Exit codes: 0 = below the deny level, 1 = denied, 2 = usage.
fn lint_main(args: &[String]) -> i32 {
    let mut path: Option<&str> = None;
    let mut json = false;
    let mut deny = Severity::Error;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--deny" => {
                let Some(level) = it.next().and_then(|l| Severity::parse(l)) else {
                    eprintln!("gomsh lint: --deny takes error|warn|note");
                    return 2;
                };
                deny = level;
            }
            flag if flag.starts_with("--") => {
                eprintln!("gomsh lint: unknown flag `{flag}`");
                return 2;
            }
            file => {
                if path.replace(file).is_some() {
                    eprintln!("gomsh lint: exactly one input file expected");
                    return 2;
                }
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: gomsh lint <file> [--json] [--deny error|warn|note]");
        return 2;
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gomsh lint: cannot open {path}: {e}");
            return 2;
        }
    };
    let mut db = Database::new();
    let report = lint_source(&mut db, &src, &LintConfig::default());
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", render_report(&report, Some(&src), path));
    }
    i32::from(report.denies(deny))
}

type CmdResult<T> = Result<T, Box<dyn std::error::Error>>;

impl Shell {
    /// Run a mutation as a durable micro-session when a store is attached
    /// and no session is open: BES, mutate, EES. On violations the change
    /// is rolled back and reported — a durable store only ever contains
    /// consistent committed states. Without a store (or inside an open
    /// session) the mutation runs directly, as before.
    fn autocommit<T>(
        &mut self,
        f: impl FnOnce(&mut SchemaManager) -> CmdResult<T>,
    ) -> CmdResult<T> {
        if self.mgr.in_evolution() || !self.mgr.has_store() {
            return f(&mut self.mgr);
        }
        self.mgr.begin_evolution()?;
        let out = match f(&mut self.mgr) {
            Ok(v) => v,
            Err(e) => {
                let _ = self.mgr.rollback_evolution();
                return Err(e);
            }
        };
        match self.mgr.end_evolution()? {
            EvolutionOutcome::Consistent(_) => Ok(out),
            EvolutionOutcome::Inconsistent(violations) => {
                let rendered: Vec<String> = violations
                    .iter()
                    .map(|v| v.render(&self.mgr.meta.db))
                    .collect();
                self.mgr.rollback_evolution()?;
                Err(format!(
                    "rolled back — change is inconsistent outside a session: {} \
                     (use `begin` to repair interactively)",
                    rendered.join("; ")
                )
                .into())
            }
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<bool, Box<dyn std::error::Error>> {
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        match cmd {
            "help" => {
                println!(
                    "commands: load begin end rollback add-attr del-attr del-type new set get call"
                );
                println!("          check lint plan repairs apply query why dump consistency checkpoint recover");
                println!("          profile stats ees install-versioning quit");
            }
            "quit" | "exit" => return Ok(false),
            "load" => {
                let path = rest.first().ok_or("usage: load <file>")?;
                let src = std::fs::read_to_string(path)?;
                let in_session = self.mgr.in_evolution();
                if in_session {
                    let lowered = self
                        .mgr
                        .analyzer
                        .lower_source(&mut self.mgr.meta, &src)
                        .map_err(|e| e.to_string())?;
                    println!("lowered {} schema(s) into the open session", lowered.len());
                } else {
                    let lowered = self.mgr.define_schema(&src).map_err(|e| e.to_string())?;
                    println!("defined {} schema(s), consistent", lowered.len());
                }
            }
            "begin" => {
                self.mgr.begin_evolution()?;
                println!("BES — evolution session open");
            }
            "plan" => {
                let report = self.mgr.plan().map_err(|e| e.to_string())?;
                print!("{}", report.render());
            }
            "end" | "ees" => {
                let timing = rest.contains(&"--timing") || cmd == "ees";
                let (was_on, before) = if timing {
                    let was_on = gom_obs::enabled();
                    gom_obs::set_enabled(true);
                    (was_on, Some(gom_obs::snapshot()))
                } else {
                    (false, None)
                };
                let outcome = self.mgr.end_evolution();
                if let Some(before) = before {
                    let diff = gom_obs::snapshot().since(&before);
                    if !was_on {
                        gom_obs::set_enabled(false);
                    }
                    print!("{}", render_timing(&diff));
                }
                match outcome? {
                    EvolutionOutcome::Consistent(delta) => {
                        println!("EES — consistent, committed ({} change(s))", delta.len());
                        self.last_violations.clear();
                    }
                    EvolutionOutcome::Inconsistent(violations) => {
                        println!(
                            "EES — {} violation(s); session stays open:",
                            violations.len()
                        );
                        for (i, v) in violations.iter().enumerate() {
                            println!("  [{i}] {}", v.render(&self.mgr.meta.db));
                        }
                        println!("use `repairs <k>` / `apply <k> <m>` / `rollback`");
                        self.last_violations = violations;
                    }
                }
            }
            "rollback" => {
                self.mgr.rollback_evolution()?;
                self.last_violations.clear();
                println!("session rolled back");
            }
            "add-attr" => {
                let [tref, name, dom] = rest[..] else {
                    return Err("usage: add-attr T@S <name> <domain>".into());
                };
                let t = self.resolve_type(tref)?;
                let d = self.resolve_type(dom)?;
                self.autocommit(|mgr| Ok(mgr.meta.add_attr(t, name, d)?))?;
                println!("+Attr({tref}, {name}, {dom})");
            }
            "del-attr" => {
                let [tref, name] = rest[..] else {
                    return Err("usage: del-attr T@S <name>".into());
                };
                let t = self.resolve_type(tref)?;
                let removed = self.autocommit(|mgr| Ok(mgr.meta.remove_attr(t, name)?))?;
                println!(
                    "{}",
                    if removed {
                        "removed"
                    } else {
                        "no such attribute"
                    }
                );
            }
            "del-type" => {
                let [tref, sem] = rest[..] else {
                    return Err("usage: del-type T@S <semantics>".into());
                };
                let t = self.resolve_type(tref)?;
                let semantics = match sem {
                    "restrict" => DeleteTypeSemantics::Restrict,
                    "reconnect" => DeleteTypeSemantics::Reconnect,
                    "cascade" => DeleteTypeSemantics::Cascade,
                    "cascade-objects" => DeleteTypeSemantics::CascadeInstances,
                    "orphan" => DeleteTypeSemantics::Orphan,
                    other => return Err(format!("unknown semantics `{other}`").into()),
                };
                let report =
                    self.autocommit(|mgr| delete_type(mgr, t, semantics).map_err(|e| e.into()))?;
                println!(
                    "deleted: {} fact(s) removed, {} edge(s) reconnected, {} instance(s) deleted",
                    report.facts_removed, report.reconnected, report.instances_deleted
                );
            }
            "new" => {
                let [tref] = rest[..] else {
                    return Err("usage: new T@S".into());
                };
                let t = self.resolve_type(tref)?;
                let oid =
                    self.autocommit(|mgr| mgr.create_object(t).map_err(|e| e.to_string().into()))?;
                println!("{}", self.mgr.meta.db.resolve(oid.sym()));
            }
            "set" => {
                if rest.len() < 3 {
                    return Err("usage: set <oid> <attr> <value>".into());
                }
                let oid = self.resolve_oid(rest[0])?;
                let value = self.parse_value(&rest[2..].join(" "))?;
                let attr = rest[1];
                self.autocommit(|mgr| {
                    mgr.set_attr(oid, attr, value).map_err(|e| e.to_string())?;
                    Ok(())
                })?;
                println!("ok");
            }
            "get" => {
                let [o, attr] = rest[..] else {
                    return Err("usage: get <oid> <attr>".into());
                };
                let oid = self.resolve_oid(o)?;
                let v = self.mgr.get_attr(oid, attr).map_err(|e| e.to_string())?;
                println!("{v}");
            }
            "call" => {
                if rest.len() < 2 {
                    return Err("usage: call <oid> <op> [args…]".into());
                }
                let oid = self.resolve_oid(rest[0])?;
                let args: Vec<Value> = rest[2..]
                    .iter()
                    .map(|a| self.parse_value(a))
                    .collect::<Result<_, _>>()?;
                let v = self
                    .mgr
                    .call(oid, rest[1], &args)
                    .map_err(|e| e.to_string())?;
                println!("{v}");
            }
            "check" => {
                let violations = self.mgr.check()?;
                if violations.is_empty() {
                    println!("consistent");
                } else {
                    for (i, v) in violations.iter().enumerate() {
                        println!("  [{i}] {}", v.render(&self.mgr.meta.db));
                    }
                }
                self.last_violations = violations;
            }
            "lint" => {
                if let ["deny", level] = rest[..] {
                    let gate = match level {
                        "off" => None,
                        l => Some(Severity::parse(l).ok_or("lint deny takes error|warn|note|off")?),
                    };
                    self.mgr.set_lint_gate(gate);
                    println!(
                        "lint gate {}",
                        gate.map_or("disarmed".to_string(), |g| format!(
                            "armed at `{}`",
                            g.name()
                        ))
                    );
                } else {
                    let report = self.mgr.lint();
                    print!("{}", render_report(&report, None, "<schema base>"));
                }
            }
            "repairs" => {
                let k: usize = rest.first().ok_or("usage: repairs <k>")?.parse()?;
                let v = self
                    .last_violations
                    .get(k)
                    .ok_or("no such violation (run `check` or `end` first)")?
                    .clone();
                self.last_repairs = self.mgr.repairs_for(&v)?;
                for (m, r) in self.last_repairs.iter().enumerate() {
                    println!("  [{m}] {}", r.render(&self.mgr.meta));
                }
                println!("  (rollback is always available)");
            }
            "apply" => {
                let [k, m] = rest[..] else {
                    return Err("usage: apply <k> <m>".into());
                };
                let _k: usize = k.parse()?;
                let m: usize = m.parse()?;
                let repair = self
                    .last_repairs
                    .get(m)
                    .ok_or("no such repair (run `repairs <k>` first)")?
                    .repair
                    .clone();
                match self.mgr.execute_repair(&repair, Value::Null)? {
                    EvolutionOutcome::Consistent(_) => {
                        println!("repair executed — session committed");
                        self.last_violations.clear();
                        self.last_repairs.clear();
                    }
                    EvolutionOutcome::Inconsistent(violations) => {
                        println!("repair executed — {} violation(s) remain", violations.len());
                        for (i, v) in violations.iter().enumerate() {
                            println!("  [{i}] {}", v.render(&self.mgr.meta.db));
                        }
                        self.last_violations = violations;
                    }
                }
            }
            "query" => {
                let body = rest.join(" ");
                let (names, rows) = self.mgr.meta.db.query_text(&body)?;
                println!("{}", names.join("\t"));
                for row in &rows {
                    let cells: Vec<String> = row
                        .iter()
                        .map(|c| c.display(self.mgr.meta.db.interner()).to_string())
                        .collect();
                    println!("{}", cells.join("\t"));
                }
                println!("({} row(s))", rows.len());
            }
            "why" => {
                if rest.is_empty() {
                    return Err("usage: why <Pred> <arg…>".into());
                }
                let pred = self
                    .mgr
                    .meta
                    .db
                    .pred_id(rest[0])
                    .ok_or_else(|| format!("unknown predicate `{}`", rest[0]))?;
                let consts: Vec<gomflex::deductive::Const> = rest[1..]
                    .iter()
                    .map(|a| {
                        a.parse::<i64>()
                            .map(gomflex::deductive::Const::Int)
                            .unwrap_or_else(|_| self.mgr.meta.db.constant(a))
                    })
                    .collect();
                let t = gomflex::deductive::Tuple::from(consts);
                match self.mgr.meta.db.why(pred, &t)? {
                    Some(d) => print!("{}", d.render(&self.mgr.meta.db)),
                    None => println!("fact does not hold"),
                }
            }
            "dump" => {
                let p = rest.first().ok_or("usage: dump <Pred>")?;
                let pred = self
                    .mgr
                    .meta
                    .db
                    .pred_id(p)
                    .ok_or_else(|| format!("unknown predicate `{p}`"))?;
                print!("{}", self.mgr.meta.render_relation(pred));
            }
            "consistency" => {
                let path = rest.first().ok_or("usage: consistency <file>")?;
                let text = std::fs::read_to_string(path)?;
                self.mgr.add_consistency(&text)?;
                println!(
                    "consistency definition extended ({} constraint(s) total)",
                    self.mgr.meta.db.constraints().len()
                );
            }
            "profile" => match rest.first().copied() {
                Some("on") => {
                    gom_obs::set_enabled(true);
                    println!("profiling on (see `stats`)");
                }
                Some("off") => {
                    gom_obs::set_enabled(false);
                    println!("profiling off");
                }
                _ => return Err("usage: profile on|off".into()),
            },
            "stats" => match rest.first().copied() {
                Some("reset") => {
                    gom_obs::reset();
                    println!("stats reset");
                }
                Some("--json") => {
                    println!("{}", gom_obs::snapshot_json(&gom_obs::snapshot()));
                }
                None => {
                    let table = gom_obs::render_table(&gom_obs::snapshot());
                    if table.is_empty() {
                        println!("no stats recorded (enable with `profile on` or --trace)");
                    } else {
                        print!("{table}");
                    }
                }
                _ => return Err("usage: stats [reset|--json]".into()),
            },
            "checkpoint" => {
                let pos = self.mgr.checkpoint()?;
                println!("checkpoint written ({pos} byte(s) journaled)");
            }
            "recover" => {
                let path = self
                    .store_path
                    .clone()
                    .ok_or("no durable store attached (run with --store <path>)")?;
                let (mgr, report) = SchemaManager::open(std::path::Path::new(&path), self.sync)
                    .map_err(|e| e.to_string())?;
                self.mgr = mgr;
                self.last_violations.clear();
                self.last_repairs.clear();
                print_recovery(&report);
                println!("{}", report.summary_line());
                println!("recovered from {path} (volatile object heap reset)");
            }
            "install-versioning" => {
                install_versioning(&mut self.mgr)?;
                println!("versioning + fashion extension installed");
            }
            "print-schema" => {
                let name = rest.first().ok_or("usage: print-schema <Schema>")?;
                let sid = self
                    .mgr
                    .meta
                    .schema_by_name(name)
                    .ok_or_else(|| format!("unknown schema `{name}`"))?;
                print!(
                    "{}",
                    gomflex::analyzer::print::print_schema(&self.mgr.meta, sid)
                );
            }
            "diff" | "migrate" => {
                let [from, to] = rest[..] else {
                    return Err(format!("usage: {cmd} <FromSchema> <ToSchema>").into());
                };
                let f = self
                    .mgr
                    .meta
                    .schema_by_name(from)
                    .ok_or_else(|| format!("unknown schema `{from}`"))?;
                let t = self
                    .mgr
                    .meta
                    .schema_by_name(to)
                    .ok_or_else(|| format!("unknown schema `{to}`"))?;
                let steps = gomflex::evolution::diff_schemas(&self.mgr.meta, f, t);
                for line in gomflex::evolution::render_diff(&steps) {
                    println!("  {line}");
                }
                println!("({} step(s))", steps.len());
                if cmd == "migrate" {
                    if !self.mgr.in_evolution() {
                        return Err("open a session first (`begin`)".into());
                    }
                    let n = gomflex::evolution::apply_diff(&mut self.mgr, f, &steps)
                        .map_err(|e| e.to_string())?;
                    println!("applied {n} step(s); `end` to check");
                }
            }
            "save" => {
                let path = rest.first().ok_or("usage: save <file>")?;
                let dump = self.mgr.meta.db.dump_facts();
                std::fs::write(path, &dump)?;
                println!("saved {} fact line(s) to {path}", dump.lines().count());
            }
            "load-facts" => {
                let path = rest.first().ok_or("usage: load-facts <file>")?;
                let text = std::fs::read_to_string(path)?;
                self.autocommit(|mgr| Ok(mgr.meta.db.load(&text)?))?;
                println!(
                    "loaded; {} base fact(s) total",
                    self.mgr.meta.db.fact_count()
                );
            }
            other => return Err(format!("unknown command `{other}` (try `help`)").into()),
        }
        Ok(true)
    }

    fn resolve_type(&mut self, r: &str) -> Result<TypeId, String> {
        self.mgr.meta.resolve_type_ref(r).map_err(|e| e.to_string())
    }

    fn resolve_oid(&mut self, s: &str) -> Result<Oid, String> {
        let sym = self
            .mgr
            .meta
            .db
            .sym(s)
            .ok_or_else(|| format!("unknown object `{s}`"))?;
        let oid = Oid(sym);
        if self.mgr.runtime.objects.get(oid).is_none() {
            return Err(format!("`{s}` is not a live object"));
        }
        Ok(oid)
    }

    fn parse_value(&mut self, s: &str) -> Result<Value, String> {
        let s = s.trim();
        if let Ok(n) = s.parse::<i64>() {
            return Ok(Value::Int(n));
        }
        if let Ok(x) = s.parse::<f64>() {
            return Ok(Value::Float(x));
        }
        if s.starts_with('"') && s.ends_with('"') && s.len() >= 2 {
            return Ok(Value::Str(s[1..s.len() - 1].to_string()));
        }
        if s == "null" {
            return Ok(Value::Null);
        }
        if s == "true" || s == "false" {
            return Ok(Value::Bool(s == "true"));
        }
        // an oid?
        if let Some(sym) = self.mgr.meta.db.sym(s) {
            let oid = Oid(sym);
            if self.mgr.runtime.objects.get(oid).is_some() {
                return Ok(Value::Obj(oid));
            }
        }
        Err(format!("cannot parse value `{s}`"))
    }
}
