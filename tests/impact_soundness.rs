//! Differential soundness of the gom-impact footprint.
//!
//! Over many seeded random evolution sessions the predicted impact
//! footprint must be a *superset* of the constraints that delta-checking
//! actually finds violated at EES, and footprint-filtered checking must
//! reach the same commit/rollback decision with the same rendered
//! violations as full delta-checking. The sweep runs at 1 and 4 eval
//! threads to pin down determinism of both the footprint and the check.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gom_bench::{populate_objects, synth_manager, SplitMix64, SynthParams};
use gomflex::impact::ImpactIndex;
use gomflex::prelude::*;

/// Random sessions per thread configuration (the issue asks for >= 100).
const SESSIONS: usize = 120;

/// Apply one random schema-evolution primitive inside the open session.
///
/// The mix is chosen so that a healthy fraction of sessions end up
/// inconsistent: attributes appear on types that already have instances
/// (missing slots), slots are ripped out from under attributes, subtype
/// edges can close cycles, and physical representations appear for types
/// whose attributes have no slots yet.
fn mutate(mgr: &mut SchemaManager, types: &[TypeId], rng: &mut SplitMix64, tag: usize) {
    let ty = types[rng.below(types.len())];
    match rng.below(6) {
        0 => {
            let dom = if rng.below(2) == 0 {
                mgr.meta.builtins.string
            } else {
                types[rng.below(types.len())]
            };
            mgr.meta.add_attr(ty, &format!("syn{tag}"), dom).unwrap();
        }
        1 => {
            let attrs = mgr.meta.attrs_of(ty);
            if !attrs.is_empty() {
                let (name, _) = &attrs[rng.below(attrs.len())];
                mgr.meta.remove_attr(ty, name).unwrap();
            }
        }
        2 => {
            let sup = types[rng.below(types.len())];
            mgr.meta.add_subtype(ty, sup).unwrap();
        }
        3 => {
            if mgr.meta.phrep_of(ty).is_none() {
                mgr.meta.new_phrep(ty).unwrap();
            }
        }
        4 => {
            if let Some(clid) = mgr.meta.phrep_of(ty) {
                let attrs = mgr.meta.attrs_of(ty);
                let name = if attrs.is_empty() || rng.below(3) == 0 {
                    format!("ghost{tag}")
                } else {
                    attrs[rng.below(attrs.len())].0.clone()
                };
                let val = mgr
                    .meta
                    .builtins
                    .phrep_of(mgr.meta.builtins.string)
                    .unwrap();
                mgr.meta.add_slot(clid, &name, val).unwrap();
            }
        }
        _ => {
            if let Some(clid) = mgr.meta.phrep_of(ty) {
                let slots = mgr.meta.slots_of(clid);
                if !slots.is_empty() {
                    let (name, _) = &slots[rng.below(slots.len())];
                    mgr.meta.remove_slot(clid, name).unwrap();
                }
            }
        }
    }
}

fn sorted_render(mgr: &SchemaManager, vs: &[Violation]) -> Vec<String> {
    let mut out: Vec<String> = vs.iter().map(|v| v.render(&mgr.meta.db)).collect();
    out.sort();
    out
}

fn run_sweep(threads: usize) {
    let (mut mgr, types) = synth_manager(SynthParams {
        types: 12,
        ..Default::default()
    });
    // Give some types live instances so attribute changes become breaking.
    populate_objects(&mut mgr, &types[..4], 1);
    mgr.meta.db.set_eval_threads(threads);
    assert!(
        mgr.check().unwrap().is_empty(),
        "synth schema must start consistent"
    );

    let mut rng = SplitMix64::new(0xD1FF_5000 + threads as u64);
    let mut inconsistent = 0usize;
    for session in 0..SESSIONS {
        mgr.begin_evolution().unwrap();
        let nops = 1 + rng.below(5);
        for op in 0..nops {
            mutate(&mut mgr, &types, &mut rng, session * 8 + op);
        }
        let delta = mgr.meta.db.session_delta().unwrap();

        let index = ImpactIndex::build(&mut mgr.meta.db).unwrap();
        let footprint = index.footprint(&mgr.meta.db, &delta);

        let full = mgr.meta.db.check_delta(&delta).unwrap();
        let filtered = mgr
            .meta
            .db
            .check_delta_filtered(&delta, &footprint.constraints)
            .unwrap();

        // (a) Soundness: every constraint actually violated by the delta is
        // inside the predicted footprint. Key violations are outside the
        // constraint footprint by design (they are never filtered).
        for v in &full {
            if v.constraint.starts_with("key(") {
                continue;
            }
            assert!(
                footprint.constraints.contains(&v.constraint),
                "threads={threads} session={session}: constraint {:?} violated \
                 but missing from footprint {:?}\ndelta: {:?}",
                v.constraint,
                footprint.constraints,
                delta
            );
        }

        // (b) Bit-identical commit/rollback decision and identical
        // violation reports (consistent pre-session state).
        assert_eq!(
            full.is_empty(),
            filtered.is_empty(),
            "threads={threads} session={session}: filtered check changed the decision"
        );
        assert_eq!(
            sorted_render(&mgr, &full),
            sorted_render(&mgr, &filtered),
            "threads={threads} session={session}: filtered check changed the report"
        );

        if !full.is_empty() {
            inconsistent += 1;
        }
        mgr.rollback_evolution().unwrap();
    }

    // The op mix must actually exercise the interesting half of the space.
    assert!(
        inconsistent >= SESSIONS / 10,
        "threads={threads}: only {inconsistent}/{SESSIONS} sessions were inconsistent — \
         the random mix no longer stresses the footprint"
    );
}

#[test]
fn footprint_is_sound_single_threaded() {
    run_sweep(1);
}

#[test]
fn footprint_is_sound_multi_threaded() {
    run_sweep(4);
}

/// The two thread counts must also agree with *each other*: same seeds,
/// same decisions. This piggybacks on the deterministic RNG — both sweeps
/// replay identical sessions, so a divergence would have tripped the
/// per-session asserts above with different violation sets.
#[test]
fn footprint_sweep_is_deterministic_across_thread_counts() {
    let decisions = |threads: usize| -> Vec<bool> {
        let (mut mgr, types) = synth_manager(SynthParams {
            types: 12,
            ..Default::default()
        });
        populate_objects(&mut mgr, &types[..4], 1);
        mgr.meta.db.set_eval_threads(threads);
        let mut rng = SplitMix64::new(0xD1FF_5000);
        let mut out = Vec::with_capacity(SESSIONS);
        for session in 0..SESSIONS {
            mgr.begin_evolution().unwrap();
            let nops = 1 + rng.below(5);
            for op in 0..nops {
                mutate(&mut mgr, &types, &mut rng, session * 8 + op);
            }
            let delta = mgr.meta.db.session_delta().unwrap();
            let index = ImpactIndex::build(&mut mgr.meta.db).unwrap();
            let footprint = index.footprint(&mgr.meta.db, &delta);
            let filtered = mgr
                .meta
                .db
                .check_delta_filtered(&delta, &footprint.constraints)
                .unwrap();
            out.push(filtered.is_empty());
            mgr.rollback_evolution().unwrap();
        }
        out
    };
    assert_eq!(decisions(1), decisions(4));
}
