//! Acceptance gate for copy-on-write snapshot publication: capturing a
//! snapshot of a populated synthetic base must copy **zero** tuples
//! (counter-verified), while still producing a digest bit-identical to
//! the pre-CoW deep-clone path.
//!
//! `GOM_COW_TYPES` scales the base (default 400 for the debug test run;
//! `check.sh` re-runs this in release mode at 5000). Kept as the single
//! test in this binary: the tuple-copy counter is process-global, and a
//! concurrently running test could bump it mid-measurement.

use gom_bench::{populate_objects, synth_manager, SynthParams};
use gom_deductive::debug_tuple_copies;
use gom_server::Snapshot;

#[test]
fn snapshot_capture_copies_zero_tuples() {
    let types: usize = std::env::var("GOM_COW_TYPES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let (mut mgr, ts) = synth_manager(SynthParams {
        types,
        ..Default::default()
    });
    populate_objects(&mut mgr, &ts[..ts.len().min(50)], 2);
    let facts = mgr.meta.db.fact_count();
    assert!(facts > types, "base is populated");

    let before = debug_tuple_copies();
    let snap = Snapshot::capture(1, &mgr.meta);
    let copied = debug_tuple_copies() - before;
    assert_eq!(
        copied, 0,
        "snapshot capture of a {facts}-fact base copied {copied} tuples; \
         publication must be pure page sharing"
    );

    // A second epoch from the same writer is equally free.
    let before = debug_tuple_copies();
    let snap2 = Snapshot::capture(2, &mgr.meta);
    assert_eq!(debug_tuple_copies() - before, 0);

    // Sharing changed the mechanism, not the bytes: both epochs digest
    // identically to the pre-CoW deep-clone path.
    let deep = mgr.meta.db.deep_snapshot_clone().debug_state_digest();
    assert_eq!(snap.digest(), deep);
    assert_eq!(snap2.digest(), deep);

    // Writer mutations after publication stay invisible to both epochs.
    mgr.meta.new_schema("AfterSnap").expect("schema");
    assert_eq!(snap.digest(), deep);
    assert_ne!(mgr.meta.db.deep_snapshot_clone().debug_state_digest(), deep);
}
