//! The paper's central §2.1 argument, demonstrated: decoupling evolution
//! from consistency is *necessary*, because some semantic changes cannot be
//! expressed as a sequence of individually consistency-preserving steps.
//!
//! Adding an argument to a used operation requires (at least) changing the
//! declaration AND every call site; under per-operation immediate checking
//! every order of those primitives has an inconsistent prefix, so the
//! fixed-style manager refuses. The session-based manager performs the same
//! primitives and commits.

use gomflex::evolution::baselines::ImmediateCheckManager;
use gomflex::evolution::replace_code_text;
use gomflex::prelude::*;

const BANK: &str = "
schema Bank is
  type Account is
    [ balance : float; ]
  operations
    declare deposit : float -> float;
    declare payday : || -> float;
  implementation
    define deposit(amount) is
    begin
      self.balance := self.balance + amount;
      return self.balance;
    end define deposit;
    define payday is
    begin
      return self.deposit(100.0);
    end define payday;
  end type Account;
end schema Bank;";

#[test]
fn immediate_checking_cannot_add_an_argument() {
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(BANK).unwrap();
    let s = mgr.meta.schema_by_name("Bank").unwrap();
    let account = mgr.meta.type_by_name(s, "Account").unwrap();
    let (d_deposit, _, _) = mgr
        .meta
        .decls_of(account)
        .into_iter()
        .find(|(_, n, _)| n == "deposit")
        .unwrap();
    let float = mgr.meta.builtins.float;
    let mut fixed = ImmediateCheckManager::new(mgr);

    // Step 1 alone: add the ArgDecl. The declaration now has 2 arguments
    // while its refinement family / call-sites still assume 1 — but the
    // *schema-level* inconsistency that immediate checking sees first is
    // that nothing else changed yet. With our catalog the inconsistency is
    // deferredly visible through... the caller patch. To make the
    // impossibility crisp we delete the old code first (the classic
    // "declaration without code" prefix):
    let refused = fixed.apply(&Primitive::DeleteCode { decl: d_deposit });
    assert!(
        refused.is_err(),
        "deleting code must be refused immediately"
    );
    assert!(refused.unwrap_err().contains("decl_has_code"));

    // Likewise, introducing a brand-new operation declaration (step 1 of
    // any add-operation change) is refused because its code cannot exist
    // yet — the order-dependence the paper describes.
    let refused = fixed.apply(&Primitive::AddDecl {
        ty: account,
        op: "audit".into(),
        result: float,
        args: vec![],
    });
    assert!(refused.is_err());
    assert!(refused.unwrap_err().contains("decl_has_code"));

    // The fixed manager is stuck: neither order of (declare, implement)
    // has a consistent prefix. Its schema is unchanged.
    assert!(fixed.inner.check().unwrap().is_empty());
    assert_eq!(fixed.inner.meta.decls_of(account).len(), 2);
}

#[test]
fn sessions_make_the_same_change_routine() {
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(BANK).unwrap();
    let s = mgr.meta.schema_by_name("Bank").unwrap();
    let account = mgr.meta.type_by_name(s, "Account").unwrap();
    let (d_deposit, _, _) = mgr
        .meta
        .decls_of(account)
        .into_iter()
        .find(|(_, n, _)| n == "deposit")
        .unwrap();
    let (d_payday, _, _) = mgr
        .meta
        .decls_of(account)
        .into_iter()
        .find(|(_, n, _)| n == "payday")
        .unwrap();
    let float = mgr.meta.builtins.float;

    mgr.begin_evolution().unwrap();
    // The same primitives, interleaved with the temporarily inconsistent
    // states the fixed manager refuses:
    gomflex::evolution::apply(
        &mut mgr.meta,
        &Primitive::AddArgDecl {
            decl: d_deposit,
            pos: 2,
            ty: float,
        },
    )
    .unwrap();
    let (cid_deposit, _) = mgr.meta.code_of(d_deposit).unwrap();
    replace_code_text(
        &mut mgr.meta,
        cid_deposit,
        "begin self.balance := self.balance + amount + bonus; return self.balance; end",
    )
    .unwrap();
    let cp = mgr.meta.db.pred_id("CodeParam").unwrap();
    let pname = mgr.meta.db.constant("bonus");
    mgr.meta
        .db
        .insert(
            cp,
            vec![
                cid_deposit.constant(),
                gomflex::deductive::Const::Int(2),
                pname,
            ],
        )
        .unwrap();
    let (cid_payday, _) = mgr.meta.code_of(d_payday).unwrap();
    replace_code_text(
        &mut mgr.meta,
        cid_payday,
        "begin return self.deposit(100.0, 1.0); end",
    )
    .unwrap();
    let out = mgr.end_evolution().unwrap();
    assert!(out.is_consistent(), "{:?}", out.violations());

    // And the behaviour is the intended one.
    let acct = mgr.create_object(account).unwrap();
    assert_eq!(mgr.call(acct, "payday", &[]).unwrap(), Value::Float(101.0));
}

#[test]
fn immediate_checking_allows_only_trivially_safe_steps() {
    // Sanity: the fixed manager is not useless — self-contained additions
    // pass.
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(BANK).unwrap();
    let s = mgr.meta.schema_by_name("Bank").unwrap();
    let account = mgr.meta.type_by_name(s, "Account").unwrap();
    let string = mgr.meta.builtins.string;
    let mut fixed = ImmediateCheckManager::new(mgr);
    fixed
        .apply(&Primitive::AddAttr {
            ty: account,
            name: "iban".into(),
            domain: string,
        })
        .unwrap();
    assert!(fixed.inner.check().unwrap().is_empty());
}
