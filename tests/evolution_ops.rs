//! Integration tests for complex evolution operations: Bocionek's five
//! type-deletion semantics side by side, and argument addition with
//! call-site patching verified by actually *running* the patched methods.

use gomflex::evolution::rename_type;
use gomflex::prelude::*;
use std::collections::BTreeMap;

fn world() -> (SchemaManager, TypeId, TypeId, TypeId) {
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(
        "schema Zoo is
           type Animal is
             [ name : string; ]
           end type Animal;
           type Bird supertype Animal is
             [ wingspan : float; ]
           end type Bird;
           type Keeper is
             [ pet : Bird; ]
           end type Keeper;
         end schema Zoo;",
    )
    .unwrap();
    let s = mgr.meta.schema_by_name("Zoo").unwrap();
    let animal = mgr.meta.type_by_name(s, "Animal").unwrap();
    let bird = mgr.meta.type_by_name(s, "Bird").unwrap();
    let keeper = mgr.meta.type_by_name(s, "Keeper").unwrap();
    (mgr, animal, bird, keeper)
}

#[test]
fn five_deletion_semantics_matrix() {
    // Deleting Bird under each of the five semantics.
    // Restrict: blocked (Keeper.pet references Bird).
    {
        let (mut mgr, _, bird, _) = world();
        mgr.begin_evolution().unwrap();
        assert!(matches!(
            delete_type(&mut mgr, bird, DeleteTypeSemantics::Restrict),
            Err(gomflex::evolution::EvolError::Blocked(_))
        ));
        mgr.rollback_evolution().unwrap();
    }
    // Reconnect: blocked for the same reason (references beyond hierarchy).
    {
        let (mut mgr, _, bird, _) = world();
        mgr.begin_evolution().unwrap();
        assert!(delete_type(&mut mgr, bird, DeleteTypeSemantics::Reconnect).is_err());
        mgr.rollback_evolution().unwrap();
    }
    // Reconnect succeeds for a middle type without external refs: delete
    // Animal after removing Keeper? — instead use Animal: Bird <: Animal,
    // nothing references Animal => reconnect Bird to ANY.
    {
        let (mut mgr, animal, bird, _) = world();
        mgr.begin_evolution().unwrap();
        let report = delete_type(&mut mgr, animal, DeleteTypeSemantics::Reconnect).unwrap();
        assert_eq!(report.reconnected, 1);
        let out = mgr.end_evolution().unwrap();
        assert!(out.is_consistent(), "{:?}", out.violations());
        assert_eq!(mgr.meta.supertypes(bird), vec![mgr.meta.builtins.any]);
        // Bird keeps only its own attribute now.
        assert_eq!(mgr.meta.attrs_inherited(bird).len(), 1);
    }
    // Cascade: Bird disappears along with Keeper.pet.
    {
        let (mut mgr, _, bird, keeper) = world();
        mgr.begin_evolution().unwrap();
        delete_type(&mut mgr, bird, DeleteTypeSemantics::Cascade).unwrap();
        let out = mgr.end_evolution().unwrap();
        assert!(out.is_consistent(), "{:?}", out.violations());
        assert!(mgr.meta.attrs_of(keeper).is_empty());
    }
    // CascadeInstances: objects go too.
    {
        let (mut mgr, _, bird, _) = world();
        let tweety = mgr.create_object(bird).unwrap();
        mgr.begin_evolution().unwrap();
        let report = delete_type(&mut mgr, bird, DeleteTypeSemantics::CascadeInstances).unwrap();
        assert_eq!(report.instances_deleted, 1);
        assert!(mgr.runtime.objects.get(tweety).is_none());
        assert!(mgr.end_evolution().unwrap().is_consistent());
    }
    // Orphan: danglers surface at EES for interactive repair.
    {
        let (mut mgr, _, bird, _) = world();
        mgr.begin_evolution().unwrap();
        delete_type(&mut mgr, bird, DeleteTypeSemantics::Orphan).unwrap();
        let out = mgr.end_evolution().unwrap();
        assert!(!out.is_consistent());
        mgr.rollback_evolution().unwrap();
    }
}

#[test]
fn add_argument_end_to_end_with_execution() {
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(
        "schema Bank is
           type Account is
             [ balance : float; ]
           operations
             declare deposit : float -> float;
             declare payday : || -> float;
           implementation
             define deposit(amount) is
             begin
               self.balance := self.balance + amount;
               return self.balance;
             end define deposit;
             define payday is
             begin
               return self.deposit(100.0);
             end define payday;
           end type Account;
         end schema Bank;",
    )
    .unwrap();
    let s = mgr.meta.schema_by_name("Bank").unwrap();
    let account = mgr.meta.type_by_name(s, "Account").unwrap();
    let (d_deposit, _, _) = mgr
        .meta
        .decls_of(account)
        .into_iter()
        .find(|(_, n, _)| n == "deposit")
        .unwrap();
    let (d_payday, _, _) = mgr
        .meta
        .decls_of(account)
        .into_iter()
        .find(|(_, n, _)| n == "payday")
        .unwrap();

    // Before: payday deposits 100.
    let acct = mgr.create_object(account).unwrap();
    assert_eq!(mgr.call(acct, "payday", &[]).unwrap(), Value::Float(100.0));

    // The complex operation: deposit gains a `bonus` argument; the call
    // site inside payday must be patched.
    let plan = add_argument_plan(&mgr.meta, d_deposit);
    let (cid_payday, _) = mgr.meta.code_of(d_payday).unwrap();
    assert_eq!(plan, vec![cid_payday]);
    let mut patches = BTreeMap::new();
    patches.insert(
        cid_payday,
        "begin return self.deposit(100.0, 10.0); end".to_string(),
    );
    mgr.begin_evolution().unwrap();
    let float = mgr.meta.builtins.float;
    // Also patch deposit itself to actually use the bonus.
    let report = add_argument(&mut mgr, d_deposit, float, "bonus", &patches).unwrap();
    assert_eq!(report.pos, 2);
    let (cid_deposit, _) = mgr.meta.code_of(d_deposit).unwrap();
    gomflex::evolution::replace_code_text(
        &mut mgr.meta,
        cid_deposit,
        "begin self.balance := self.balance + amount + bonus; return self.balance; end",
    )
    .unwrap();
    let out = mgr.end_evolution().unwrap();
    assert!(out.is_consistent(), "{:?}", out.violations());

    // After: the patched payday deposits 110 on top of the earlier 100.
    assert_eq!(mgr.call(acct, "payday", &[]).unwrap(), Value::Float(210.0));
}

#[test]
fn delete_operation_used_elsewhere_is_caught() {
    // The behavioural-consistency payoff: dropping an operation that other
    // code calls violates codereq_decl_refs, and a repair exists.
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(
        "schema S is
           type T is
           operations
             declare helper : || -> int;
             declare caller : || -> int;
           implementation
             define helper is begin return 1; end define helper;
             define caller is begin return self.helper(); end define caller;
           end type T;
         end schema S;",
    )
    .unwrap();
    let s = mgr.meta.schema_by_name("S").unwrap();
    let t = mgr.meta.type_by_name(s, "T").unwrap();
    let (d_helper, _, _) = mgr
        .meta
        .decls_of(t)
        .into_iter()
        .find(|(_, n, _)| n == "helper")
        .unwrap();
    mgr.begin_evolution().unwrap();
    gomflex::evolution::apply(&mut mgr.meta, &Primitive::DeleteDecl { decl: d_helper }).unwrap();
    let out = mgr.end_evolution().unwrap();
    let names: Vec<&str> = out
        .violations()
        .iter()
        .map(|v| v.constraint.as_str())
        .collect();
    assert!(names.contains(&"codereq_decl_refs"), "{names:?}");
    // And the code fact now dangles too.
    assert!(names.contains(&"code_decl_ref"), "{names:?}");
    mgr.rollback_evolution().unwrap();
}

#[test]
fn rename_type_is_visible_in_at_notation() {
    let (mut mgr, animal, ..) = world();
    mgr.begin_evolution().unwrap();
    rename_type(&mut mgr, animal, "Creature").unwrap();
    assert!(mgr.end_evolution().unwrap().is_consistent());
    assert!(mgr.meta.type_at("Creature@Zoo").is_some());
    assert!(mgr.meta.type_at("Animal@Zoo").is_none());
}
