//! Fault-injection sweep over the durable session journal.
//!
//! The acceptance property: a crash at *any* byte of the journal — at a
//! record boundary, mid-record, or mid-`write(2)` — recovers to exactly a
//! session boundary. The recovered state equals the pre-BES state or the
//! post-EES state of some committed session, never anything in between,
//! and it passes the consistency check.
//!
//! Two attack paths, both deterministic:
//!
//! * **prefix truncation** — run a scripted schema workload against an
//!   in-memory backend, record the expected state at every session
//!   boundary, then re-mount every truncated image `bytes[..cut]` for
//!   every record boundary plus ≥32 seeded random mid-record offsets;
//! * **partial writes** — re-run the same workload through a
//!   [`FailpointWriter`] that kills the stream at the Nth byte, proving
//!   the writer leaves exactly the reference prefix on "disk" and that
//!   the manager surfaces journal failures as errors, never panics.

use gomflex::prelude::*;
use gomflex::store::{FailpointWriter, MemBackend, MAGIC};
use std::collections::HashSet;

/// SplitMix64 — deterministic, dependency-free (same generator as the
/// deductive crate's property tests).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Expected durable state at one session boundary of the reference run.
struct Boundary {
    offset: u64,
    dump: String,
    label: &'static str,
}

fn open_mem(mem: &MemBackend) -> (SchemaManager, RecoveryReport) {
    SchemaManager::open_backend(Box::new(mem.clone()), SyncPolicy::OnCommit)
        .expect("open_backend on a journal image must recover, not fail")
}

/// The reference run: the scripted workload with every step asserted,
/// capturing the journal offset and EDB dump at each session boundary.
fn run_reference(mem: &MemBackend) -> Vec<Boundary> {
    let (mut mgr, _) = open_mem(mem);
    let snap = |mgr: &SchemaManager, label: &'static str| Boundary {
        offset: mgr.store_position().expect("store attached"),
        dump: mgr.meta.db.dump_facts(),
        label,
    };
    let mut bounds = vec![snap(&mgr, "fresh")];

    mgr.define_schema(CAR_SCHEMA_SRC).expect("define");
    bounds.push(snap(&mgr, "define CarSchema"));

    let sid = mgr.meta.schema_by_name("CarSchema").expect("schema");
    let car = mgr.meta.type_by_name(sid, "Car").expect("Car");
    let string = mgr.meta.builtins.string;

    mgr.begin_evolution().expect("bes");
    mgr.meta.add_attr(car, "color", string).expect("add color");
    mgr.rollback_evolution().expect("rollback");
    bounds.push(snap(&mgr, "rolled-back session"));

    mgr.begin_evolution().expect("bes");
    mgr.meta
        .add_attr(car, "fuelType", string)
        .expect("add fuelType");
    let out = mgr.end_evolution().expect("ees");
    assert!(out.is_consistent(), "{:?}", out.violations());
    bounds.push(snap(&mgr, "add fuelType"));

    mgr.begin_evolution().expect("bes");
    let truck = mgr.meta.new_type(sid, "Truck").expect("Truck");
    mgr.meta.add_subtype(truck, car).expect("subtype");
    let out = mgr.end_evolution().expect("ees");
    assert!(out.is_consistent(), "{:?}", out.violations());
    bounds.push(snap(&mgr, "add Truck"));
    bounds
}

/// The same workload with every step tolerated: once the failpoint trips,
/// journal appends error and individual steps fail — the workload presses
/// on regardless, like an application retrying after I/O errors. Nothing
/// here may panic.
fn run_workload_tolerant(mgr: &mut SchemaManager) {
    let _ = mgr.define_schema(CAR_SCHEMA_SRC);
    let string = mgr.meta.builtins.string;
    if let Some(sid) = mgr.meta.schema_by_name("CarSchema") {
        if let Some(car) = mgr.meta.type_by_name(sid, "Car") {
            if mgr.begin_evolution().is_ok() {
                let _ = mgr.meta.add_attr(car, "color", string);
                let _ = mgr.rollback_evolution();
            }
            if mgr.begin_evolution().is_ok() {
                let _ = mgr.meta.add_attr(car, "fuelType", string);
                let _ = mgr.end_evolution();
            }
            if mgr.begin_evolution().is_ok() {
                if let Ok(truck) = mgr.meta.new_type(sid, "Truck") {
                    let _ = mgr.meta.add_subtype(truck, car);
                }
                let _ = mgr.end_evolution();
            }
        }
    }
}

/// End offsets of every framed record (walking the length prefixes), plus
/// the magic boundary itself.
fn record_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = vec![MAGIC.len()];
    let mut off = MAGIC.len();
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
        let end = off + 8 + len as usize;
        if end > bytes.len() {
            break;
        }
        ends.push(end);
        off = end;
    }
    ends
}

/// The boundary state recovery must land on for a journal cut at `cut`.
fn expected_at(bounds: &[Boundary], cut: usize) -> &Boundary {
    bounds
        .iter()
        .rfind(|b| b.offset <= cut as u64)
        .unwrap_or(&bounds[0])
}

/// Recover from an image, assert it matches the expected boundary exactly,
/// and (memoized per distinct state) that the recovered state is
/// consistent.
fn assert_recovers_to(
    bytes: &[u8],
    cut: usize,
    bounds: &[Boundary],
    checked: &mut HashSet<String>,
) {
    let mem = MemBackend::new();
    mem.set_bytes(bytes[..cut].to_vec());
    let (mut mgr, report) = open_mem(&mem);
    let expected = expected_at(bounds, cut);
    assert_eq!(
        mgr.meta.db.dump_facts(),
        expected.dump,
        "cut={cut}: recovered state must equal the `{}` boundary ({} bytes), report {report:?}",
        expected.label,
        expected.offset,
    );
    assert_eq!(
        mgr.store_position(),
        Some(expected.offset),
        "cut={cut}: journal must be truncated back to the boundary"
    );
    if cut as u64 > expected.offset {
        assert!(
            report.recovered_from_crash(),
            "cut={cut}: discarding {} bytes must be reported",
            cut as u64 - expected.offset
        );
    }
    assert!(
        !mgr.in_evolution(),
        "cut={cut}: no session survives recovery"
    );
    if checked.insert(expected.dump.clone()) {
        assert!(
            mgr.check().expect("check").is_empty(),
            "cut={cut}: recovered `{}` state must be consistent",
            expected.label
        );
    }
}

/// Truncate the journal at every record boundary and at ≥32 seeded random
/// mid-record offsets; every image must recover to a session boundary.
#[test]
fn truncation_sweep_recovers_to_a_session_boundary() {
    let mem = MemBackend::new();
    let bounds = run_reference(&mem);
    let bytes = mem.bytes();
    assert_eq!(
        bounds.last().expect("boundaries").offset,
        bytes.len() as u64,
        "reference run must end on a session boundary"
    );

    let ends = record_ends(&bytes);
    assert!(
        ends.len() > bounds.len(),
        "ops must be individually framed records"
    );
    let end_set: HashSet<usize> = ends.iter().copied().collect();

    // Every record boundary…
    let mut cuts = ends.clone();
    // …plus ≥32 random mid-record offsets (torn headers, torn payloads).
    let mut rng = Rng(0x0901_4e5d_ab1e_0000);
    let mut random_cuts = 0usize;
    while random_cuts < 48 {
        let cut = rng.below(bytes.len() + 1);
        if !end_set.contains(&cut) {
            cuts.push(cut);
            random_cuts += 1;
        }
    }
    assert!(random_cuts >= 32);
    // …plus the degenerate edges: empty image and every partial-magic cut.
    cuts.extend(0..MAGIC.len());
    cuts.sort_unstable();
    cuts.dedup();

    let mut checked = HashSet::new();
    for &cut in &cuts {
        if cut > 0 && cut < MAGIC.len() {
            // A torn magic is unrecoverable by design: refuse loudly rather
            // than silently treating a damaged journal as fresh.
            let mem = MemBackend::new();
            mem.set_bytes(bytes[..cut].to_vec());
            assert!(
                SchemaManager::open_backend(Box::new(mem), SyncPolicy::OnCommit).is_err(),
                "cut={cut}: partial magic must be rejected"
            );
            continue;
        }
        assert_recovers_to(&bytes, cut, &bounds, &mut checked);
    }
}

/// Kill the journal writer at the Nth byte with [`FailpointWriter`]: the
/// surviving prefix is byte-identical to the reference stream, the live
/// manager keeps returning errors (never panics), and re-mounting the
/// partial image recovers to a session boundary.
#[test]
fn failpoint_partial_writes_recover_to_a_session_boundary() {
    let reference = MemBackend::new();
    let bounds = run_reference(&reference);
    let ref_bytes = reference.bytes();
    let ends = record_ends(&ref_bytes);

    // Budgets: every session boundary, a spread of record ends, and ≥32
    // seeded random mid-record byte counts.
    let mut budgets: Vec<usize> = bounds.iter().map(|b| b.offset as usize).collect();
    let mut rng = Rng(0xfa11_9019_7e57_0001);
    for _ in 0..12 {
        budgets.push(ends[rng.below(ends.len())]);
    }
    let mut random_budgets = 0usize;
    while random_budgets < 32 {
        let b = MAGIC.len() + rng.below(ref_bytes.len() + 1 - MAGIC.len());
        budgets.push(b);
        random_budgets += 1;
    }
    budgets.sort_unstable();
    budgets.dedup();

    let mut checked = HashSet::new();
    for &budget in &budgets {
        let mem = MemBackend::new();
        let fp = FailpointWriter::new(mem.clone(), budget as u64);
        let (mut mgr, _) = SchemaManager::open_backend(Box::new(fp), SyncPolicy::OnCommit)
            .expect("budget covers the magic, open must succeed");
        run_workload_tolerant(&mut mgr);
        drop(mgr); // crash: whatever reached the inner backend survives

        let survived = mem.bytes();
        let want = &ref_bytes[..budget.min(ref_bytes.len())];
        assert_eq!(
            survived, want,
            "budget={budget}: the failpoint must leave exactly the \
             reference prefix on disk"
        );
        assert_recovers_to(&ref_bytes, survived.len(), &bounds, &mut checked);
    }
}

/// Corrupt a byte in the *middle* of the journal (not the tail): the scan
/// must stop at the corrupted record and recovery must land on the last
/// boundary before it — the later, intact-looking commit record is never
/// replayed.
#[test]
fn corrupted_crc_is_truncated_never_replayed() {
    let mem = MemBackend::new();
    let bounds = run_reference(&mem);
    let bytes = mem.bytes();

    // Corrupt inside the `add fuelType` session: between the boundary it
    // starts after ("rolled-back session") and its own commit boundary.
    let before = bounds
        .iter()
        .find(|b| b.label == "rolled-back session")
        .expect("boundary");
    let after = bounds
        .iter()
        .find(|b| b.label == "add fuelType")
        .expect("boundary");
    let target = (before.offset as usize + after.offset as usize) / 2;
    let mut corrupted = bytes.clone();
    corrupted[target] ^= 0xA5;

    let mem2 = MemBackend::new();
    mem2.set_bytes(corrupted);
    let (mut mgr, report) = open_mem(&mem2);
    assert!(
        report.torn.is_some(),
        "corruption must be detected: {report:?}"
    );
    assert_eq!(
        mgr.meta.db.dump_facts(),
        before.dump,
        "recovery must land on the boundary before the corrupted session"
    );
    assert_ne!(
        mgr.meta.db.dump_facts(),
        after.dump,
        "the corrupted session's commit must NOT be replayed"
    );
    assert_eq!(mgr.store_position(), Some(before.offset));
    assert_eq!(
        mem2.bytes().len() as u64,
        before.offset,
        "the corrupt tail must be physically truncated"
    );
    assert!(mgr.check().expect("check").is_empty());

    // The truncated journal is healthy again: a new session commits and
    // survives a clean reopen.
    let sid = mgr.meta.schema_by_name("CarSchema").expect("schema");
    let car = mgr.meta.type_by_name(sid, "Car").expect("Car");
    let string = mgr.meta.builtins.string;
    mgr.begin_evolution().expect("bes");
    mgr.meta.add_attr(car, "repaired", string).expect("attr");
    let out = mgr.end_evolution().expect("ees");
    assert!(out.is_consistent(), "{:?}", out.violations());
    let dump = mgr.meta.db.dump_facts();
    drop(mgr);
    let (mgr2, r) = open_mem(&mem2);
    assert!(!r.recovered_from_crash());
    assert_eq!(mgr2.meta.db.dump_facts(), dump);
}

/// Checkpoint rotation is all-or-nothing: kill the writer at every byte
/// budget across the rotation. A failed rotation leaves the old journal
/// byte-identical (full history, full state); a completed one leaves
/// exactly the snapshot image. Either way, reopening recovers the same
/// logical state, and the post-checkpoint file is *smaller* than the
/// history it replaced (the unbounded-growth bug).
#[test]
fn checkpoint_rotation_kill_sweep() {
    let ref_mem = MemBackend::new();
    let bounds = run_reference(&ref_mem);
    let pre_bytes = ref_mem.bytes();
    let final_dump = &bounds.last().expect("boundaries").dump;

    // Clean rotation first, to learn the rotated image.
    let rot_mem = MemBackend::new();
    rot_mem.set_bytes(pre_bytes.clone());
    let (mut mgr, _) = open_mem(&rot_mem);
    let rotated_len = mgr.checkpoint().expect("checkpoint") as usize;
    drop(mgr);
    let rotated_bytes = rot_mem.bytes();
    assert_eq!(rotated_bytes.len(), rotated_len);
    assert!(
        rotated_len < pre_bytes.len(),
        "rotation must bound the journal by the snapshot size \
         ({rotated_len} vs {} bytes of history)",
        pre_bytes.len()
    );
    let (mgr2, r) = open_mem(&rot_mem);
    assert!(r.snapshot_loaded);
    assert_eq!(r.sessions_replayed, 0, "the snapshot absorbed all history");
    assert_eq!(&mgr2.meta.db.dump_facts(), final_dump);
    drop(mgr2);

    // A second checkpoint must not grow the file: size is bounded by the
    // snapshot, not by how many checkpoints ever ran.
    let (mut mgr3, _) = open_mem(&rot_mem);
    let len2 = mgr3.checkpoint().expect("re-checkpoint") as usize;
    assert_eq!(len2, rotated_len);
    drop(mgr3);

    // Kill sweep: allow `extra` bytes through the failpoint, then crash.
    // The rotation image is written atomically, so every budget below its
    // size must fail without touching the old journal.
    for extra in 0..=rotated_len {
        let mem = MemBackend::new();
        mem.set_bytes(pre_bytes.clone());
        let fp = FailpointWriter::new(mem.clone(), extra as u64);
        let (mut mgr, _) = SchemaManager::open_backend(Box::new(fp), SyncPolicy::OnCommit)
            .expect("clean journal, open must succeed");
        let res = mgr.checkpoint();
        drop(mgr); // crash

        let survived = mem.bytes();
        if extra < rotated_len {
            assert!(
                res.is_err(),
                "extra={extra}: rotation must report the crash"
            );
            assert_eq!(
                survived, pre_bytes,
                "extra={extra}: a failed rotation must leave the old journal untouched"
            );
        } else {
            assert_eq!(res.expect("rotation fits the budget"), rotated_len as u64);
            assert_eq!(
                survived, rotated_bytes,
                "extra={extra}: a completed rotation leaves exactly the snapshot image"
            );
        }
        let (mgr, report) = open_mem(&mem);
        assert_eq!(
            &mgr.meta.db.dump_facts(),
            final_dump,
            "extra={extra}: the logical state survives either outcome"
        );
        assert!(!report.discarded_in_flight);
    }

    // Prefix sweep over the rotated image itself: a cut anywhere inside
    // the snapshot record recovers to the empty (fresh) state, never to a
    // half-applied snapshot.
    let fresh_dump = &bounds[0].dump;
    for cut in MAGIC.len()..rotated_len {
        let mem = MemBackend::new();
        mem.set_bytes(rotated_bytes[..cut].to_vec());
        let (mgr, report) = open_mem(&mem);
        assert_eq!(
            &mgr.meta.db.dump_facts(),
            fresh_dump,
            "cut={cut}: torn snapshot must recover to the fresh state"
        );
        assert!(report.recovered_from_crash() || cut == MAGIC.len());
    }
}

/// Rotation on a real file: crash *before* the atomic rename (modelled by
/// a stale `<journal>.tmp` next to an intact journal) must be swept on the
/// next open, with the old journal's state fully recovered.
#[test]
fn stale_rotation_tmp_is_swept_on_open() {
    let dir = std::env::temp_dir().join(format!("gomflex_rot_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("journal.gom");
    let tmp = dir.join("journal.gom.tmp");

    let (mut mgr, _) = SchemaManager::open(&path, SyncPolicy::OnCommit).expect("open");
    mgr.define_schema(CAR_SCHEMA_SRC).expect("define");
    let dump = mgr.meta.db.dump_facts();
    drop(mgr);

    // A crash between writing the replacement and renaming it leaves a tmp
    // file of arbitrary (possibly garbage) content beside the real journal.
    std::fs::write(&tmp, b"half-written snapshot image").expect("write tmp");

    let (mut mgr2, report) = SchemaManager::open(&path, SyncPolicy::OnCommit).expect("reopen");
    assert!(!tmp.exists(), "stale rotation tmp must be removed on open");
    assert_eq!(mgr2.meta.db.dump_facts(), dump);
    assert_eq!(report.sessions_replayed, 1);

    // And a real checkpoint on the file backend rotates in place.
    let before = std::fs::metadata(&path).expect("stat").len();
    let rotated = mgr2.checkpoint().expect("checkpoint");
    assert_eq!(std::fs::metadata(&path).expect("stat").len(), rotated);
    assert!(rotated < before);
    assert!(!tmp.exists(), "rotation must not leave its tmp behind");
    drop(mgr2);
    let (mgr3, r) = SchemaManager::open(&path, SyncPolicy::OnCommit).expect("reopen 2");
    assert!(r.snapshot_loaded);
    assert_eq!(mgr3.meta.db.dump_facts(), dump);

    let _ = std::fs::remove_dir_all(&dir);
}
