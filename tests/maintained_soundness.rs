//! Differential soundness of the maintained EES path.
//!
//! Over many seeded random evolution sessions the maintained violation
//! read must be *bit-identical* to delta checking and to the full
//! [`check()`] — same commit/rollback decision, same rendered violations —
//! at 1 and 4 eval threads, including rollback-then-recommit sessions
//! (which discard and re-arm the maintained state) and sessions replayed
//! through durable-store recovery (which rebuild it from a journal).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gom_bench::{build_synth_schema, populate_objects, synth_manager, SplitMix64, SynthParams};
use gomflex::prelude::*;

/// Random sessions per thread configuration (the issue asks for >= 120).
const SESSIONS: usize = 120;

/// Apply one random schema-evolution primitive inside the open session.
/// Same mix as `impact_soundness.rs`: a healthy fraction of sessions must
/// end up inconsistent so both branches of the decision are exercised.
fn mutate(mgr: &mut SchemaManager, types: &[TypeId], rng: &mut SplitMix64, tag: usize) {
    let ty = types[rng.below(types.len())];
    match rng.below(6) {
        0 => {
            let dom = if rng.below(2) == 0 {
                mgr.meta.builtins.string
            } else {
                types[rng.below(types.len())]
            };
            mgr.meta.add_attr(ty, &format!("mnt{tag}"), dom).unwrap();
        }
        1 => {
            let attrs = mgr.meta.attrs_of(ty);
            if !attrs.is_empty() {
                let (name, _) = &attrs[rng.below(attrs.len())];
                mgr.meta.remove_attr(ty, name).unwrap();
            }
        }
        2 => {
            let sup = types[rng.below(types.len())];
            mgr.meta.add_subtype(ty, sup).unwrap();
        }
        3 => {
            if mgr.meta.phrep_of(ty).is_none() {
                mgr.meta.new_phrep(ty).unwrap();
            }
        }
        4 => {
            if let Some(clid) = mgr.meta.phrep_of(ty) {
                let attrs = mgr.meta.attrs_of(ty);
                let name = if attrs.is_empty() || rng.below(3) == 0 {
                    format!("ghost{tag}")
                } else {
                    attrs[rng.below(attrs.len())].0.clone()
                };
                let val = mgr
                    .meta
                    .builtins
                    .phrep_of(mgr.meta.builtins.string)
                    .unwrap();
                mgr.meta.add_slot(clid, &name, val).unwrap();
            }
        }
        _ => {
            if let Some(clid) = mgr.meta.phrep_of(ty) {
                let slots = mgr.meta.slots_of(clid);
                if !slots.is_empty() {
                    let (name, _) = &slots[rng.below(slots.len())];
                    mgr.meta.remove_slot(clid, name).unwrap();
                }
            }
        }
    }
}

fn sorted_render(mgr: &SchemaManager, vs: &[Violation]) -> Vec<String> {
    let mut out: Vec<String> = vs.iter().map(|v| v.render(&mgr.meta.db)).collect();
    out.sort();
    out
}

/// One differential session: mutate, then compare every check path.
/// Returns the (maintained) violation report.
fn differential_session(
    mgr: &mut SchemaManager,
    types: &[TypeId],
    rng: &mut SplitMix64,
    session: usize,
    label: &str,
) -> Vec<Violation> {
    mgr.begin_evolution().unwrap();
    assert!(
        mgr.meta.db.maintenance_active(),
        "{label} session={session}: BES must arm maintenance"
    );
    let nops = 1 + rng.below(5);
    for op in 0..nops {
        mutate(mgr, types, rng, session * 8 + op);
    }
    let delta = mgr.meta.db.session_delta().unwrap();

    // (a) The maintained read must be available on the clean path (no
    // fallback) and bit-identical to the delta check.
    let maintained = mgr
        .meta
        .db
        .check_maintained(&delta)
        .unwrap()
        .unwrap_or_else(|| panic!("{label} session={session}: maintained state lost mid-session"));
    let full_delta = mgr.meta.db.check_delta(&delta).unwrap();
    assert_eq!(
        maintained.is_empty(),
        full_delta.is_empty(),
        "{label} session={session}: maintained read changed the decision"
    );
    assert_eq!(
        sorted_render(mgr, &maintained),
        sorted_render(mgr, &full_delta),
        "{label} session={session}: maintained read changed the report\ndelta: {delta:?}"
    );

    // (b) The maintained state's *complete* violation set must equal a full
    // from-scratch check() — pre-session consistency makes the two
    // comparable, and this is the strongest statement: the maintained
    // violation relations are correct, not merely delta-equivalent.
    let all_maintained = mgr
        .meta
        .db
        .maintained_violations()
        .unwrap()
        .expect("maintained state armed");
    let full = mgr.meta.db.check().unwrap();
    assert_eq!(
        sorted_render(mgr, &all_maintained),
        sorted_render(mgr, &full),
        "{label} session={session}: maintained violation relations diverge from check()"
    );
    maintained
}

fn run_sweep(threads: usize) {
    let (mut mgr, types) = synth_manager(SynthParams {
        types: 12,
        ..Default::default()
    });
    // Give some types live instances so attribute changes become breaking.
    populate_objects(&mut mgr, &types[..4], 1);
    mgr.meta.db.set_eval_threads(threads);
    assert!(
        mgr.check().unwrap().is_empty(),
        "synth schema must start consistent"
    );

    let mut rng = SplitMix64::new(0x3A1D_7000 + threads as u64);
    let mut inconsistent = 0usize;
    for session in 0..SESSIONS {
        let label = format!("threads={threads}");
        let maintained = differential_session(&mut mgr, &types, &mut rng, session, &label);

        if maintained.is_empty() {
            // Every 5th consistent session commits through the fallback
            // ladder instead: discarding the maintained state mid-session
            // must not change the outcome, only the path.
            if session % 5 == 0 {
                mgr.meta.db.discard_maintained();
            }
            match mgr.end_evolution().unwrap() {
                EvolutionOutcome::Consistent(_) => {}
                EvolutionOutcome::Inconsistent(vs) => panic!(
                    "{label} session={session}: EES disagreed with the differential \
                     ({} violations)",
                    vs.len()
                ),
            }
        } else {
            inconsistent += 1;
            match mgr.end_evolution().unwrap() {
                EvolutionOutcome::Inconsistent(_) => {}
                EvolutionOutcome::Consistent(_) => {
                    panic!("{label} session={session}: EES committed an inconsistent session")
                }
            }
            mgr.rollback_evolution().unwrap();
            assert!(
                !mgr.meta.db.maintenance_active(),
                "{label} session={session}: rollback must discard maintained state"
            );
            // Rollback-then-recommit: the very next session re-arms from a
            // fresh materialisation; an empty session must commit cleanly.
            mgr.begin_evolution().unwrap();
            assert!(mgr.meta.db.maintenance_active());
            match mgr.end_evolution().unwrap() {
                EvolutionOutcome::Consistent(_) => {}
                EvolutionOutcome::Inconsistent(vs) => panic!(
                    "{label} session={session}: state dirty after rollback \
                     ({} violations)",
                    vs.len()
                ),
            }
        }
    }

    // The op mix must actually exercise the interesting half of the space.
    assert!(
        inconsistent >= SESSIONS / 10,
        "threads={threads}: only {inconsistent}/{SESSIONS} sessions were inconsistent — \
         the random mix no longer stresses the maintained path"
    );
}

#[test]
fn maintained_is_sound_single_threaded() {
    run_sweep(1);
}

#[test]
fn maintained_is_sound_multi_threaded() {
    run_sweep(4);
}

/// The two thread counts must agree with *each other*: same seeds, same
/// decisions through the maintained path.
#[test]
fn maintained_sweep_is_deterministic_across_thread_counts() {
    let decisions = |threads: usize| -> Vec<bool> {
        let (mut mgr, types) = synth_manager(SynthParams {
            types: 12,
            ..Default::default()
        });
        populate_objects(&mut mgr, &types[..4], 1);
        mgr.meta.db.set_eval_threads(threads);
        let mut rng = SplitMix64::new(0x3A1D_7000);
        let mut out = Vec::with_capacity(SESSIONS);
        for session in 0..SESSIONS {
            mgr.begin_evolution().unwrap();
            let nops = 1 + rng.below(5);
            for op in 0..nops {
                mutate(&mut mgr, &types, &mut rng, session * 8 + op);
            }
            let delta = mgr.meta.db.session_delta().unwrap();
            let maintained = mgr
                .meta
                .db
                .check_maintained(&delta)
                .unwrap()
                .expect("maintained state armed");
            out.push(maintained.is_empty());
            mgr.rollback_evolution().unwrap();
        }
        out
    };
    assert_eq!(decisions(1), decisions(4));
}

/// Durable-store recovery: sessions journaled while the maintained path was
/// live must replay to a bit-identical database, and the replayed manager's
/// maintained path must agree with full checking again.
#[test]
fn maintained_sessions_survive_recovery_replay() {
    use gomflex::store::MemBackend;

    let mem = MemBackend::new();
    let (mut mgr, _) =
        SchemaManager::open_backend(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
    // Build the schema *inside* a journaled session so replay sees it.
    mgr.begin_evolution().unwrap();
    let types = build_synth_schema(
        &mut mgr,
        SynthParams {
            types: 12,
            ..Default::default()
        },
    );
    populate_objects(&mut mgr, &types[..4], 1);
    match mgr.end_evolution().unwrap() {
        EvolutionOutcome::Consistent(_) => {}
        EvolutionOutcome::Inconsistent(vs) => panic!("synth build inconsistent: {}", vs.len()),
    }

    // A run of maintained differential sessions, committing the consistent
    // ones (those land in the journal) and rolling back the rest.
    let mut rng = SplitMix64::new(0x3A1D_7EC0);
    let mut committed = 0usize;
    for session in 0..24 {
        let maintained = differential_session(&mut mgr, &types, &mut rng, session, "recovery-pre");
        if maintained.is_empty() {
            mgr.end_evolution().unwrap();
            committed += 1;
        } else {
            mgr.rollback_evolution().unwrap();
        }
    }
    assert!(committed > 0, "no sessions committed — seed went stale");
    let digest = mgr.meta.db.debug_state_digest();
    let full_violations = mgr.meta.db.check().unwrap();
    let full = sorted_render(&mgr, &full_violations);
    drop(mgr);

    // Reopen: replay happens unarmed (plain inserts/removes), yet must
    // land on the same state the armed sessions produced.
    let (mut mgr2, report) =
        SchemaManager::open_backend(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
    assert_eq!(report.sessions_replayed, committed + 1);
    assert_eq!(
        mgr2.meta.db.debug_state_digest(),
        digest,
        "recovery replay diverged from the maintained sessions"
    );
    let full2_violations = mgr2.meta.db.check().unwrap();
    assert_eq!(full, sorted_render(&mgr2, &full2_violations));

    // And the recovered manager's maintained path still agrees.
    let mut rng2 = SplitMix64::new(0x3A1D_7EC1);
    for session in 0..6 {
        differential_session(
            &mut mgr2,
            &types,
            &mut rng2,
            1000 + session,
            "recovery-post",
        );
        mgr2.rollback_evolution().unwrap();
    }
}
