//! Acceptance tests for `gomsh lint`: a fixture exhibiting five distinct
//! problem classes must yield five distinct codes, deny-level exit codes,
//! and JSON that round-trips through the serde-free serializer.

use std::collections::BTreeSet;
use std::io::Write;
use std::process::{Command, Output, Stdio};

use gomflex::prelude::LintReport;

/// Negation cycle (L0201), unsafe rule (L0101), arity mismatch (L0302),
/// cartesian product (L0401), dangling type reference (L0501) — plus an
/// unused predicate (L0303) for good measure.
const BAD_FIXTURE: &str = "\
base N(x).
base Type(tid, name, sid).
base Attr(tid, attr, domain).
derived Foo(x).
derived Bar(x).
derived Unsafe(x).
derived Cart(x, y).
derived Wrong(x).
Foo(X) :- N(X), not Bar(X).
Bar(X) :- N(X), not Foo(X).
Unsafe(X) :- N(Y).
Cart(X, Y) :- N(X), N(Y).
Wrong(X) :- N(X, X).
Type('t1', 'T1', 's1').
Attr('t1', 'x', 't_missing').
";

const GOOD_FIXTURE: &str = "\
base E(x, y).
derived Path(x, y).
Path(X, Y) :- E(X, Y).
Path(X, Z) :- E(X, Y), Path(Y, Z).
constraint acyclic: forall X: !Path(X, X).
E('a', 'b').
";

fn fixture(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("gomsh_lint_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

fn gomsh_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gomsh"))
        .arg("lint")
        .args(args)
        .output()
        .expect("spawn gomsh lint")
}

#[test]
fn bad_fixture_yields_five_distinct_codes() {
    let path = fixture("bad.cdl", BAD_FIXTURE);
    let out = gomsh_lint(&[path.to_str().unwrap(), "--json"]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    let report = LintReport::from_json(&stdout).expect("valid JSON report");
    let codes: BTreeSet<&str> = report.diags.iter().map(|d| d.code).collect();
    for code in ["L0201", "L0101", "L0302", "L0401", "L0501"] {
        assert!(codes.contains(code), "missing {code}; got {codes:?}");
    }
    assert!(codes.len() >= 5, "want >=5 distinct codes, got {codes:?}");
}

#[test]
fn human_output_names_the_file_and_summarizes() {
    let path = fixture("bad_human.cdl", BAD_FIXTURE);
    let out = gomsh_lint(&[path.to_str().unwrap()]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[L0201]"), "{stdout}");
    assert!(stdout.contains(&format!("{}:", path.display())), "{stdout}");
    assert!(stdout.contains("error(s)"), "{stdout}");
}

#[test]
fn deny_levels_drive_exit_codes() {
    let bad = fixture("bad_exit.cdl", BAD_FIXTURE);
    let good = fixture("good_exit.cdl", GOOD_FIXTURE);
    // Errors present: nonzero under the default gate and under --deny warn.
    assert_eq!(gomsh_lint(&[bad.to_str().unwrap()]).status.code(), Some(1));
    assert_eq!(
        gomsh_lint(&[bad.to_str().unwrap(), "--deny", "warn"])
            .status
            .code(),
        Some(1)
    );
    // A clean program passes even the strictest gate.
    assert_eq!(
        gomsh_lint(&[good.to_str().unwrap(), "--deny", "note"])
            .status
            .code(),
        Some(0)
    );
    // Usage errors are distinguishable from lint failures.
    assert_eq!(gomsh_lint(&["--deny", "bogus"]).status.code(), Some(2));
    assert_eq!(gomsh_lint(&[]).status.code(), Some(2));
}

#[test]
fn json_round_trips_through_the_serde_free_serializer() {
    let path = fixture("bad_json.cdl", BAD_FIXTURE);
    let out = gomsh_lint(&[path.to_str().unwrap(), "--json"]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    let report = LintReport::from_json(&stdout).expect("valid JSON report");
    assert_eq!(report.to_json(), stdout.trim_end());
}

#[test]
fn in_shell_lint_command_reports_and_gates() {
    let schema = fixture("car_schema.gom", gomflex::prelude::CAR_SCHEMA_SRC);
    let script = format!(
        "load {}\n\
         lint\n\
         lint deny note\n\
         quit\n",
        schema.display()
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_gomsh"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gomsh");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("gomsh runs");
    assert!(out.status.success(), "gomsh exited nonzero: {out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("clean: no diagnostics"), "{stdout}");
    assert!(stdout.contains("lint gate armed at `note`"), "{stdout}");
}
