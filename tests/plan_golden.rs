//! Golden tests for the pre-EES commit planner against the paper's car
//! schema: footprint contents, breaking-change classification, `L06xx`
//! diagnostics, and the rendered plan transcript.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use gomflex::impact::{ImpactIndex, PlanConfig};
use gomflex::prelude::*;

fn car_manager() -> SchemaManager {
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
    mgr
}

fn tid(mgr: &SchemaManager, name: &str) -> TypeId {
    let s = mgr.meta.schema_by_name("CarSchema").unwrap();
    mgr.meta.type_by_name(s, name).unwrap()
}

/// The paper's §3.5 scenario through the planner: adding `fuelType` to a
/// `Car` that has live instances is breaking, carries no migration, and
/// the footprint names exactly the constraint EES will then find violated.
#[test]
fn fueltype_plan_is_breaking_with_l0601_and_sound_footprint() {
    let mut mgr = car_manager();
    let car = tid(&mgr, "Car");
    mgr.create_object(car).unwrap();
    mgr.begin_evolution().unwrap();
    let string = mgr.meta.builtins.string;
    mgr.meta.add_attr(car, "fuelType", string).unwrap();

    let plan = mgr.plan().unwrap();
    assert_eq!(plan.ops, 1);
    assert_eq!(plan.classes.len(), 1);
    assert!(plan.classes[0].breaking);
    assert!(!plan.classes[0].migrated);
    assert_eq!(plan.classes[0].pred, "Attr");
    assert!(
        plan.footprint.contains(&"slot_for_every_attr".to_string()),
        "footprint {:?}",
        plan.footprint
    );
    assert!(
        plan.diagnostics.diags.iter().any(|d| d.code == "L0601"),
        "{:?}",
        plan.diagnostics
    );

    let rendered = plan.render();
    assert!(
        rendered.contains("impact plan — 1 op(s) in the session delta"),
        "{rendered}"
    );
    assert!(rendered.contains("BREAKING (no migration)"), "{rendered}");
    assert!(rendered.contains("- slot_for_every_attr"), "{rendered}");
    assert!(rendered.contains("warn[L0601]"), "{rendered}");

    // The plan's promise holds: the violation EES finds is in the footprint.
    let out = mgr.end_evolution().unwrap();
    assert!(!out.is_consistent());
    for v in out.violations() {
        assert!(
            plan.footprint.contains(&v.constraint),
            "EES violated {:?} outside the planned footprint {:?}",
            v.constraint,
            plan.footprint
        );
    }
    mgr.rollback_evolution().unwrap();
}

/// Same primitive without live instances: non-breaking, clean diagnostics.
#[test]
fn fueltype_without_instances_is_non_breaking_and_clean() {
    let mut mgr = car_manager();
    let car = tid(&mgr, "Car");
    mgr.begin_evolution().unwrap();
    let string = mgr.meta.builtins.string;
    mgr.meta.add_attr(car, "fuelType", string).unwrap();

    let plan = mgr.plan().unwrap();
    assert!(!plan.classes[0].breaking);
    assert!(plan.diagnostics.is_clean(), "{:?}", plan.diagnostics);
    let rendered = plan.render();
    assert!(rendered.contains("— ok:"), "{rendered}");
    assert!(rendered.contains("plan diagnostics: clean"), "{rendered}");

    assert!(mgr.end_evolution().unwrap().is_consistent());
}

/// A breaking change that migrates representations in the same session is
/// downgraded: no L0601, and the plan says so.
#[test]
fn migrated_breaking_change_has_no_l0601() {
    let mut mgr = car_manager();
    let car = tid(&mgr, "Car");
    mgr.create_object(car).unwrap();
    mgr.begin_evolution().unwrap();
    let string = mgr.meta.builtins.string;
    mgr.meta.add_attr(car, "fuelType", string).unwrap();
    // Migrate by hand: give the existing representation the new slot.
    let clid = mgr.meta.phrep_of(car).unwrap();
    let phrep_string = mgr.meta.builtins.phrep_of(string).unwrap();
    mgr.meta.add_slot(clid, "fuelType", phrep_string).unwrap();

    let plan = mgr.plan().unwrap();
    assert!(plan.classes.iter().any(|c| c.breaking && c.migrated));
    assert!(
        !plan.diagnostics.diags.iter().any(|d| d.code == "L0601"),
        "{:?}",
        plan.diagnostics
    );
    assert!(
        plan.render().contains("BREAKING (migrated)"),
        "{}",
        plan.render()
    );

    assert!(mgr.end_evolution().unwrap().is_consistent());
}

/// `plan` is a session-scoped verb: outside BES..EES it must refuse.
#[test]
fn plan_outside_a_session_is_an_error() {
    let mut mgr = car_manager();
    assert!(mgr.plan().is_err());
}

/// L0603 fires when the footprint crosses the configured threshold; the
/// car schema's single-primitive footprint is small, so force it with a
/// zero threshold through the library API.
#[test]
fn l0603_fires_on_a_tight_threshold() {
    let mut mgr = car_manager();
    let car = tid(&mgr, "Car");
    mgr.begin_evolution().unwrap();
    let string = mgr.meta.builtins.string;
    mgr.meta.add_attr(car, "fuelType", string).unwrap();
    let delta = mgr.meta.db.session_delta().unwrap();
    let index = ImpactIndex::build(&mut mgr.meta.db).unwrap();
    let plan = gomflex::impact::plan(
        &mgr.meta.db,
        &index,
        &delta,
        &PlanConfig { max_footprint: 0 },
    );
    assert!(
        plan.diagnostics.diags.iter().any(|d| d.code == "L0603"),
        "{:?}",
        plan.diagnostics
    );
    mgr.rollback_evolution().unwrap();
}

/// Every built-in consistency constraint of the car schema is reachable
/// from some evolution primitive — L0602 stays quiet on the shipped rules.
#[test]
fn shipped_constraints_are_all_touchable() {
    let mut mgr = car_manager();
    let index = ImpactIndex::build(&mut mgr.meta.db).unwrap();
    assert_eq!(
        index.untouchable(),
        &[] as &[String],
        "untouchable constraints"
    );
}

/// The full rendered plan for the fuelType session, golden. Identifiers
/// are deterministic (the id allocator is seeded per manager), so the
/// transcript is stable byte for byte.
#[test]
fn fueltype_plan_render_golden() {
    let mut mgr = car_manager();
    let car = tid(&mgr, "Car");
    mgr.create_object(car).unwrap();
    mgr.begin_evolution().unwrap();
    let string = mgr.meta.builtins.string;
    mgr.meta.add_attr(car, "fuelType", string).unwrap();
    let rendered = mgr.plan().unwrap().render();
    mgr.rollback_evolution().unwrap();

    let golden = "\
impact plan — 1 op(s) in the session delta
  +Attr(tid4, fuelType, tid_string) — BREAKING (no migration): adds an attribute to a type with live instances; every object representation needs a new slot
footprint: 4 of 31 constraint(s) reachable from this delta
  - attr_domain_ref
  - attr_type_ref
  - inherited_attr_unique
  - slot_for_every_attr
EES can provably skip 27 constraint(s)
";
    assert!(
        rendered.starts_with(golden),
        "plan render drifted from golden:\n--- got ---\n{rendered}\n--- want prefix ---\n{golden}"
    );
    assert!(rendered.contains("warn[L0601]"), "{rendered}");
}

/// The planner through the shell: `plan` between `begin` and `end`.
mod shell {
    use std::io::Write;
    use std::process::{Command, Stdio};

    fn run_script(script: &str) -> String {
        let mut child = Command::new(env!("CARGO_BIN_EXE_gomsh"))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn gomsh");
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(script.as_bytes())
            .unwrap();
        let out = child.wait_with_output().expect("gomsh runs");
        assert!(out.status.success(), "gomsh exited nonzero: {out:?}");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn plan_verb_via_shell() {
        let dir = std::env::temp_dir().join("plan_golden_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("car_schema.gom");
        std::fs::write(&path, gomflex::prelude::CAR_SCHEMA_SRC).unwrap();
        let script = format!(
            "load {}\n\
             new Car@CarSchema\n\
             begin\n\
             add-attr Car@CarSchema fuelType string\n\
             plan\n\
             rollback\n\
             quit\n",
            path.display()
        );
        let out = run_script(&script);
        assert!(out.contains("impact plan — 1 op(s)"), "{out}");
        assert!(out.contains("BREAKING (no migration)"), "{out}");
        assert!(out.contains("slot_for_every_attr"), "{out}");
        assert!(out.contains("warn[L0601]"), "{out}");
    }
}
