//! Drives the `gomsh` shell binary through a script and checks the
//! transcript — the "interactive schema editor" front end of §2.2.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_script(script: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gomsh"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gomsh");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("gomsh runs");
    assert!(out.status.success(), "gomsh exited nonzero: {out:?}");
    String::from_utf8(out.stdout).expect("utf8")
}

fn write_car_schema() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("gomsh_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("car_schema.gom");
    std::fs::write(&path, gomflex::prelude::CAR_SCHEMA_SRC).unwrap();
    path
}

#[test]
fn full_fueltype_session_via_shell() {
    let schema = write_car_schema();
    let script = format!(
        "load {}\n\
         new Car@CarSchema\n\
         begin\n\
         add-attr Car@CarSchema fuelType string\n\
         end\n\
         repairs 0\n\
         apply 0 2\n\
         check\n\
         quit\n",
        schema.display()
    );
    let out = run_script(&script);
    assert!(out.contains("defined 1 schema(s), consistent"), "{out}");
    assert!(out.contains("slot_for_every_attr"), "{out}");
    assert!(out.contains("CONVERSION"), "{out}");
    assert!(out.contains("repair executed — session committed"), "{out}");
    assert!(out.contains("consistent"), "{out}");
}

#[test]
fn rollback_via_shell() {
    let schema = write_car_schema();
    let script = format!(
        "load {}\n\
         begin\n\
         del-type Person@CarSchema orphan\n\
         end\n\
         rollback\n\
         check\n\
         quit\n",
        schema.display()
    );
    let out = run_script(&script);
    assert!(out.contains("violation(s); session stays open"), "{out}");
    assert!(out.contains("session rolled back"), "{out}");
    // The final `check` prints a bare `consistent` line.
    assert!(
        out.lines()
            .any(|l| l.trim_end().ends_with("consistent") && !l.contains("violation")),
        "{out}"
    );
}

#[test]
fn query_and_why_via_shell() {
    let schema = write_car_schema();
    let script = format!(
        "load {}\n\
         query SubTypRel(X, Y), Y != 'tid_any'.\n\
         why SubTypRelT tid3 tid2\n\
         quit\n",
        schema.display()
    );
    let out = run_script(&script);
    assert!(out.contains("(1 row(s))"), "{out}"); // City <: Location
    assert!(out.contains("[fact]"), "{out}");
}

#[test]
fn errors_are_reported_not_fatal() {
    let out = run_script(
        "dump Nonexistent\n\
         get ghost attr\n\
         frobnicate\n\
         check\n\
         quit\n",
    );
    assert!(out.contains("error: unknown predicate"), "{out}");
    assert!(out.contains("error: unknown object"), "{out}");
    assert!(out.contains("unknown command"), "{out}");
    assert!(out.contains("consistent"), "{out}");
}
