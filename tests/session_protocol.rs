//! End-to-end tests of the evolution-session protocol (paper §3.5) across
//! all components: deferred checking, repair execution, rollback, and the
//! decoupling of evolution operations from consistency.

use gomflex::prelude::*;

#[test]
fn full_protocol_walkthrough() {
    // The nine steps, in order.
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
    let s = mgr.meta.schema_by_name("CarSchema").unwrap();
    let car = mgr.meta.type_by_name(s, "Car").unwrap();
    mgr.create_object(car).unwrap();

    // 1. the user starts a schema evolution session
    mgr.begin_evolution().unwrap();
    assert!(mgr.in_evolution());
    // 2.+3. the user proposes changes; the Analyzer/typed API extracts the
    //        base-predicate changes
    let string = mgr.meta.builtins.string;
    mgr.meta.add_attr(car, "fuelType", string).unwrap();
    // 4. the Consistency Control performs a consistency check
    let outcome = mgr.end_evolution().unwrap();
    // 5./6. a violation was detected; repairs on request
    let violations = outcome.violations().to_vec();
    assert_eq!(violations.len(), 1);
    let repairs = mgr.repairs_for(&violations[0]).unwrap();
    // 7. explanations from Analyzer/Runtime vocabulary
    assert!(repairs.iter().all(|r| !r.explanations.is_empty()));
    // 8. the user chooses (conversion)…
    let conversion = repairs
        .iter()
        .find(|r| r.repair.kind == RepairKind::CompleteConclusion)
        .unwrap()
        .repair
        .clone();
    // 9. …and the Consistency Control initiates its execution.
    let outcome = mgr
        .execute_repair(&conversion, Value::Str("unleaded".into()))
        .unwrap();
    assert!(outcome.is_consistent());
    assert!(!mgr.in_evolution());
    assert!(mgr.check().unwrap().is_empty());
}

#[test]
fn deferred_checking_allows_temporarily_inconsistent_states() {
    // The §2.1 motivating example: adding an argument requires several
    // primitive steps; intermediate states are inconsistent but never
    // observed because checking happens at EES only.
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(
        "schema S is
           type T is
           operations
             declare f : int -> int;
           implementation
             define f(x) is begin return x; end define f;
           end type T;
         end schema S;",
    )
    .unwrap();
    let s = mgr.meta.schema_by_name("S").unwrap();
    let t = mgr.meta.type_by_name(s, "T").unwrap();
    let (d, _, _) = mgr.meta.decls_of(t)[0];

    mgr.begin_evolution().unwrap();
    // Step A: add the ArgDecl — mid-session the implementation has fewer
    // parameters than the declaration, but nobody checks yet.
    let int = mgr.meta.builtins.int;
    mgr.meta.add_argdecl(d, 2, int).unwrap();
    // Step B: record the new parameter name for the implementation.
    let (cid, _) = mgr.meta.code_of(d).unwrap();
    let cp = mgr.meta.db.pred_id("CodeParam").unwrap();
    let pname = mgr.meta.db.constant("y");
    mgr.meta
        .db
        .insert(
            cp,
            vec![cid.constant(), gomflex::deductive::Const::Int(2), pname],
        )
        .unwrap();
    let outcome = mgr.end_evolution().unwrap();
    assert!(outcome.is_consistent(), "{:?}", outcome.violations());
}

#[test]
fn rollback_after_partial_complex_operation() {
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
    let before = mgr.meta.db.fact_count();
    let s = mgr.meta.schema_by_name("CarSchema").unwrap();
    let person = mgr.meta.type_by_name(s, "Person").unwrap();
    mgr.begin_evolution().unwrap();
    // A half-done change the user abandons.
    delete_type(&mut mgr, person, DeleteTypeSemantics::Orphan).unwrap();
    let t = mgr.meta.new_type(s, "Human").unwrap();
    let any = mgr.meta.builtins.any;
    mgr.meta.add_subtype(t, any).unwrap();
    assert!(!mgr.end_evolution().unwrap().is_consistent());
    mgr.rollback_evolution().unwrap();
    assert_eq!(mgr.meta.db.fact_count(), before);
    assert!(mgr.meta.type_by_name(s, "Person").is_some());
    assert!(mgr.meta.type_by_name(s, "Human").is_none());
    assert!(mgr.check().unwrap().is_empty());
}

#[test]
fn repairs_compose_over_multiple_rounds() {
    // Orphan-delete a referenced type, then repair violation by violation
    // until the schema is consistent again.
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(
        "schema S is
           type A is [ x : int; ] end type A;
           type B is [ a : A; ] end type B;
         end schema S;",
    )
    .unwrap();
    let s = mgr.meta.schema_by_name("S").unwrap();
    let a = mgr.meta.type_by_name(s, "A").unwrap();
    mgr.begin_evolution().unwrap();
    delete_type(&mut mgr, a, DeleteTypeSemantics::Orphan).unwrap();
    let mut outcome = mgr.end_evolution().unwrap();
    let mut rounds = 0;
    while let EvolutionOutcome::Inconsistent(violations) = &outcome {
        rounds += 1;
        assert!(rounds < 20, "repair loop did not converge");
        let v = violations[0].clone();
        let repairs = mgr.repairs_for(&v).unwrap();
        // Prefer deletions (cleaning up the danglers) over re-inserting.
        let pick = repairs
            .iter()
            .find(|r| r.repair.kind == RepairKind::InvalidatePremise)
            .unwrap_or(&repairs[0])
            .repair
            .clone();
        outcome = mgr.execute_repair(&pick, Value::Null).unwrap();
    }
    assert!(mgr.check().unwrap().is_empty());
    // The dangling references are gone.
    let b = mgr.meta.type_by_name(s, "B").unwrap();
    assert!(mgr.meta.attrs_of(b).is_empty());
}

#[test]
fn check_delta_matches_full_check_for_session_changes() {
    // On a database that was consistent at BES, the incremental check must
    // find exactly the violations the full check finds.
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
    let s = mgr.meta.schema_by_name("CarSchema").unwrap();
    let car = mgr.meta.type_by_name(s, "Car").unwrap();
    mgr.create_object(car).unwrap();
    assert!(mgr.check().unwrap().is_empty());

    mgr.begin_evolution().unwrap();
    let string = mgr.meta.builtins.string;
    mgr.meta.add_attr(car, "fuelType", string).unwrap();
    let ghost = TypeId(mgr.meta.db.intern("tid_ghost"));
    mgr.meta.add_attr(car, "phantom", ghost).unwrap();
    let delta = mgr.meta.db.session_delta().unwrap();
    let mut incremental: Vec<String> = mgr
        .meta
        .db
        .check_delta(&delta)
        .unwrap()
        .iter()
        .map(|v| v.render(&mgr.meta.db))
        .collect();
    let mut full: Vec<String> = mgr
        .meta
        .db
        .check()
        .unwrap()
        .iter()
        .map(|v| v.render(&mgr.meta.db))
        .collect();
    incremental.sort();
    full.sort();
    assert_eq!(incremental, full);
    mgr.rollback_evolution().unwrap();
}

#[test]
fn sessions_fail_safely_on_db_errors() {
    let mut mgr = SchemaManager::new().unwrap();
    assert!(mgr.end_evolution().is_err()); // no session
    assert!(mgr.rollback_evolution().is_err());
    mgr.begin_evolution().unwrap();
    assert!(mgr.begin_evolution().is_err()); // nested
    mgr.rollback_evolution().unwrap();
}

#[test]
fn define_schema_is_atomic_per_source() {
    let mut mgr = SchemaManager::new().unwrap();
    // Second schema in the same source is broken (dangling supertype).
    let src = "
schema Good is type A is end type A; end schema Good;
schema Bad is type B supertype Ghost is end type B; end schema Bad;";
    assert!(mgr.define_schema(src).is_err());
    // Nothing from the source survives — not even the good schema.
    assert!(mgr.meta.schema_by_name("Good").is_none());
    assert!(mgr.meta.schema_by_name("Bad").is_none());
    assert!(mgr.check().unwrap().is_empty());
}
