#![cfg(feature = "proptest-tests")]
// Gated: requires the external `proptest` crate (no offline mirror).
// See the `proptest-tests` feature note in Cargo.toml.

//! Property-based tests (proptest) on the core invariants of the system.

use gomflex::prelude::*;
use proptest::prelude::*;

/// A recipe for a small random schema, expressed as indices so shrinking
/// stays meaningful.
#[derive(Clone, Debug)]
struct SchemaRecipe {
    types: usize,
    // for each type: optional supertype (index of an earlier type)
    supers: Vec<Option<usize>>,
    // attrs: (type index, domain selector)
    attrs: Vec<(usize, usize)>,
    // decls with code: (type index, result selector)
    decls: Vec<(usize, usize)>,
}

fn recipe_strategy() -> impl Strategy<Value = SchemaRecipe> {
    (2usize..8).prop_flat_map(|types| {
        let supers = proptest::collection::vec(proptest::option::of(0usize..types), types);
        let attrs = proptest::collection::vec((0usize..types, 0usize..4), 0..12);
        let decls = proptest::collection::vec((0usize..types, 0usize..4), 0..6);
        (supers, attrs, decls).prop_map(move |(supers, attrs, decls)| SchemaRecipe {
            types,
            supers,
            attrs,
            decls,
        })
    })
}

/// Materialise a recipe into a consistent schema (supertype edges only to
/// EARLIER types keep the hierarchy acyclic; every attr/decl name is
/// unique).
fn build(mgr: &mut SchemaManager, r: &SchemaRecipe) -> Vec<TypeId> {
    let schema = mgr.meta.new_schema("P").unwrap();
    let any = mgr.meta.builtins.any;
    let doms = [
        mgr.meta.builtins.int,
        mgr.meta.builtins.float,
        mgr.meta.builtins.string,
        mgr.meta.builtins.bool_,
    ];
    let mut types = Vec::new();
    for i in 0..r.types {
        let t = mgr.meta.new_type(schema, &format!("T{i}")).unwrap();
        match r.supers[i] {
            Some(j) if j < i => mgr.meta.add_subtype(t, types[j]).unwrap(),
            _ => mgr.meta.add_subtype(t, any).unwrap(),
        }
        types.push(t);
    }
    for (k, &(ti, di)) in r.attrs.iter().enumerate() {
        mgr.meta
            .add_attr(types[ti], &format!("a{k}"), doms[di])
            .unwrap();
    }
    for (k, &(ti, ri)) in r.decls.iter().enumerate() {
        let d = mgr
            .meta
            .new_decl(types[ti], &format!("op{k}"), doms[ri])
            .unwrap();
        mgr.meta.new_code(d, "return 0;").unwrap();
    }
    types
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recipes always produce consistent schemas, and checking is
    /// deterministic and idempotent.
    #[test]
    fn random_schemas_are_consistent_and_check_is_idempotent(r in recipe_strategy()) {
        let mut mgr = SchemaManager::new().unwrap();
        build(&mut mgr, &r);
        let v1: Vec<String> = mgr.check().unwrap().iter().map(|v| v.render(&mgr.meta.db)).collect();
        prop_assert!(v1.is_empty(), "{v1:?}");
        mgr.meta.db.invalidate_caches();
        let v2: Vec<String> = mgr.check().unwrap().iter().map(|v| v.render(&mgr.meta.db)).collect();
        prop_assert_eq!(v1, v2);
    }

    /// Rolling back a session restores the exact fact population, whatever
    /// happened inside.
    #[test]
    fn rollback_restores_everything(r in recipe_strategy(), seed in 0u64..1000) {
        let mut mgr = SchemaManager::new().unwrap();
        let types = build(&mut mgr, &r);
        let before = mgr.meta.db.fact_count();
        mgr.begin_evolution().unwrap();
        // A messy session driven by the seed.
        let t = types[(seed as usize) % types.len()];
        let int = mgr.meta.builtins.int;
        mgr.meta.add_attr(t, "chaos", int).unwrap();
        if seed % 2 == 0 {
            delete_type(&mut mgr, t, DeleteTypeSemantics::Orphan).unwrap();
        }
        if seed % 3 == 0 {
            let s = mgr.meta.schema_by_name("P").unwrap();
            let fresh = mgr.meta.new_type(s, "Fresh").unwrap();
            let any = mgr.meta.builtins.any;
            mgr.meta.add_subtype(fresh, any).unwrap();
        }
        mgr.rollback_evolution().unwrap();
        prop_assert_eq!(mgr.meta.db.fact_count(), before);
        prop_assert!(mgr.check().unwrap().is_empty());
    }

    /// The declarative and the fixed-procedural checker agree on
    /// consistency verdicts for random schemas, both intact and corrupted.
    #[test]
    fn declarative_and_fixed_checkers_agree(r in recipe_strategy(), kill in 0usize..4) {
        let mut mgr = SchemaManager::new().unwrap();
        let types = build(&mut mgr, &r);
        prop_assert!(mgr.check().unwrap().is_empty());
        prop_assert!(fixed_check(&mgr.meta).is_empty());
        // Corrupt: orphan-delete one type (dangles if referenced).
        mgr.begin_evolution().unwrap();
        let victim = types[kill % types.len()];
        delete_type(&mut mgr, victim, DeleteTypeSemantics::Orphan).unwrap();
        let declarative = mgr.meta.db.check().unwrap();
        let fixed = fixed_check(&mgr.meta);
        // Both must detect the inconsistency (the victim had at least a
        // subtype edge to ANY or a supertype, which now dangles).
        prop_assert!(!declarative.is_empty());
        prop_assert!(!fixed.is_empty());
        mgr.rollback_evolution().unwrap();
    }

    /// Every generated repair, executed, removes the violation it was
    /// generated for (soundness of repair generation).
    #[test]
    fn repairs_are_sound(r in recipe_strategy(), which in 0usize..8) {
        let mut mgr = SchemaManager::new().unwrap();
        let types = build(&mut mgr, &r);
        // Create one object so schema/object constraints engage, then break
        // (*) by adding an attribute without a slot.
        let t = types[which % types.len()];
        mgr.create_object(t).unwrap();
        mgr.begin_evolution().unwrap();
        let string = mgr.meta.builtins.string;
        mgr.meta.add_attr(t, "gap", string).unwrap();
        let out = mgr.end_evolution().unwrap();
        let violations = out.violations().to_vec();
        prop_assert!(!violations.is_empty());
        let target = violations[0].clone();
        let repairs = mgr.repairs_for(&target).unwrap();
        prop_assert!(!repairs.is_empty());
        for er in &repairs {
            // Work on a snapshot via sub-session semantics: execute, verify
            // the target violation is gone, then undo by rolling back the
            // whole session and rebuilding.
            let mut m2 = SchemaManager::new().unwrap();
            let t2types = build(&mut m2, &r);
            let t2 = t2types[which % t2types.len()];
            m2.create_object(t2).unwrap();
            m2.begin_evolution().unwrap();
            let string2 = m2.meta.builtins.string;
            m2.meta.add_attr(t2, "gap", string2).unwrap();
            let out2 = m2.end_evolution().unwrap();
            prop_assert!(!out2.is_consistent());
            // Map the repair into m2's world by re-generating (ids differ);
            // repair sets correspond by index because generation is
            // deterministic.
            let reps2 = m2.repairs_for(&out2.violations()[0]).unwrap();
            prop_assert_eq!(reps2.len(), repairs.len());
            let idx = repairs.iter().position(|x| std::ptr::eq(x, er)).unwrap();
            let outcome = m2.execute_repair(&reps2[idx].repair, Value::Null).unwrap();
            // The specific target violation must be gone (others may remain
            // in principle, but in this scenario the fix is complete).
            prop_assert!(outcome.is_consistent(),
                "repair {} left: {:?}",
                reps2[idx].repair.render(&m2.meta.db),
                outcome.violations().iter().map(|v| v.render(&m2.meta.db)).collect::<Vec<_>>());
        }
        mgr.rollback_evolution().unwrap();
    }

    /// Transitive closure computed by the deductive engine equals BFS
    /// reachability computed in plain Rust, on random edge sets.
    #[test]
    fn datalog_closure_equals_bfs(edges in proptest::collection::vec((0u8..12, 0u8..12), 0..40)) {
        let mut db = Database::new();
        db.load(
            "base Edge(a, b).
             derived Path(a, b).
             Path(X, Y) :- Edge(X, Y).
             Path(X, Z) :- Edge(X, Y), Path(Y, Z).",
        ).unwrap();
        let e = db.pred_id("Edge").unwrap();
        for &(a, b) in &edges {
            let ca = gomflex::deductive::Const::Int(a as i64);
            let cb = gomflex::deductive::Const::Int(b as i64);
            db.insert(e, vec![ca, cb]).unwrap();
        }
        let p = db.pred_id("Path").unwrap();
        let derived: std::collections::BTreeSet<(i64, i64)> = db
            .derived_facts(p)
            .unwrap()
            .iter()
            .map(|t| (t.get(0).as_int().unwrap(), t.get(1).as_int().unwrap()))
            .collect();
        // BFS reachability (1+ steps).
        let mut expect = std::collections::BTreeSet::new();
        let mut adj: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
        for &(a, b) in &edges {
            adj.entry(a as i64).or_default().push(b as i64);
        }
        for &start in adj.keys() {
            let mut stack: Vec<i64> = adj[&start].clone();
            let mut seen = std::collections::BTreeSet::new();
            while let Some(x) = stack.pop() {
                if seen.insert(x) {
                    expect.insert((start, x));
                    if let Some(next) = adj.get(&x) {
                        stack.extend(next.iter().copied());
                    }
                }
            }
        }
        prop_assert_eq!(derived, expect);
    }

    /// Applying a change set and then its inverse is an identity on the
    /// fact population.
    #[test]
    fn changesets_invert(vals in proptest::collection::vec((0i64..20, 0i64..20), 1..20)) {
        let mut db = Database::new();
        let p = db.declare_base("P", 2).unwrap();
        // preload half
        for &(a, b) in vals.iter().take(vals.len() / 2) {
            db.insert(p, vec![gomflex::deductive::Const::Int(a), gomflex::deductive::Const::Int(b)]).unwrap();
        }
        let before: usize = db.fact_count();
        let mut cs = gomflex::deductive::ChangeSet::new();
        for &(a, b) in &vals {
            let t = gomflex::deductive::Tuple::from(vec![
                gomflex::deductive::Const::Int(a),
                gomflex::deductive::Const::Int(b),
            ]);
            if a % 2 == 0 {
                cs.insert(p, t);
            } else {
                cs.delete(p, t);
            }
        }
        let effective = db.apply(&cs).unwrap();
        let mut inverse = gomflex::deductive::ChangeSet::new();
        for op in effective.ops.iter().rev() {
            inverse.ops.push(op.inverse());
        }
        db.apply(&inverse).unwrap();
        prop_assert_eq!(db.fact_count(), before);
    }
}
