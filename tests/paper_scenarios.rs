//! Integration tests asserting the paper's concrete artifacts row by row
//! (the experiment index F1–F3/T1–T6 of DESIGN.md).

use gomflex::prelude::*;

fn car_manager() -> SchemaManager {
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
    mgr
}

fn tid(mgr: &SchemaManager, name: &str) -> TypeId {
    let s = mgr.meta.schema_by_name("CarSchema").unwrap();
    mgr.meta.type_by_name(s, name).unwrap()
}

// ---------- F2: Figure 2 ---------------------------------------------------------

#[test]
fn f2_type_extension_rows() {
    let mgr = car_manager();
    let s = mgr.meta.schema_by_name("CarSchema").unwrap();
    let names: Vec<String> = mgr
        .meta
        .types_of_schema(s)
        .iter()
        .map(|&t| mgr.meta.type_name(t).unwrap())
        .collect();
    assert_eq!(names, vec!["Car", "City", "Location", "Person"]); // sorted
}

#[test]
fn f2_attr_extension_rows() {
    let mgr = car_manager();
    let person = tid(&mgr, "Person");
    let location = tid(&mgr, "Location");
    let city = tid(&mgr, "City");
    let car = tid(&mgr, "Car");
    let b = &mgr.meta.builtins;
    // Row for row, Figure 2's Attr table:
    assert_eq!(
        mgr.meta.attrs_of(person),
        vec![("age".into(), b.int), ("name".into(), b.string)]
    );
    assert_eq!(
        mgr.meta.attrs_of(location),
        vec![("lati".into(), b.float), ("longi".into(), b.float)]
    );
    assert_eq!(
        mgr.meta.attrs_of(city),
        vec![("name".into(), b.string), ("noOfInhabitants".into(), b.int)]
    );
    assert_eq!(
        mgr.meta.attrs_of(car),
        vec![
            ("location".into(), city),
            ("maxspeed".into(), b.float),
            ("milage".into(), b.float),
            ("owner".into(), person)
        ]
    );
}

#[test]
fn f2_decl_and_argdecl_rows() {
    let mgr = car_manager();
    let location = tid(&mgr, "Location");
    let city = tid(&mgr, "City");
    let car = tid(&mgr, "Car");
    let person = tid(&mgr, "Person");
    let b = &mgr.meta.builtins;
    let (d1, n1, r1) = mgr.meta.decls_of(location)[0].clone();
    assert_eq!((n1.as_str(), r1), ("distance", b.float));
    assert_eq!(mgr.meta.args_of(d1), vec![(1, location)]);
    let (d2, n2, r2) = mgr.meta.decls_of(city)[0].clone();
    assert_eq!((n2.as_str(), r2), ("distance", b.float));
    assert_eq!(mgr.meta.args_of(d2), vec![(1, location)]);
    let (d3, n3, r3) = mgr.meta.decls_of(car)[0].clone();
    assert_eq!((n3.as_str(), r3), ("changeLocation", b.float));
    assert_eq!(mgr.meta.args_of(d3), vec![(1, person), (2, city)]);
    // Code present for each (Figure 2's Code table).
    for d in [d1, d2, d3] {
        assert!(mgr.meta.code_of(d).is_some());
    }
}

// ---------- T1: relationship extensions --------------------------------------------

#[test]
fn t1_subtyprel_and_refinement_rows() {
    let mgr = car_manager();
    let location = tid(&mgr, "Location");
    let city = tid(&mgr, "City");
    assert_eq!(mgr.meta.supertypes(city), vec![location]);
    let (d_city, _, _) = mgr.meta.decls_of(city)[0];
    let (d_loc, _, _) = mgr.meta.decls_of(location)[0];
    assert_eq!(mgr.meta.refined_by(d_city), vec![d_loc]);
    assert_eq!(mgr.meta.refinements_of(d_loc), vec![d_city]);
}

#[test]
fn t1_codereq_rows_match_paper() {
    let mgr = car_manager();
    let location = tid(&mgr, "Location");
    let city = tid(&mgr, "City");
    let car = tid(&mgr, "Car");
    let (d_loc, _, _) = mgr.meta.decls_of(location)[0];
    let (d_city, _, _) = mgr.meta.decls_of(city)[0];
    let (d_car, _, _) = mgr.meta.decls_of(car)[0];
    let (cid1, _) = mgr.meta.code_of(d_loc).unwrap();
    let (cid2, _) = mgr.meta.code_of(d_city).unwrap();
    let (cid3, _) = mgr.meta.code_of(d_car).unwrap();
    let p = mgr.meta.db.pred_id("CodeReqAttr").unwrap();
    let rows = mgr.meta.db.facts_sorted(p);
    let expect = [
        (cid1.constant(), location.constant(), "longi"),
        (cid1.constant(), location.constant(), "lati"),
        (cid2.constant(), location.constant(), "longi"),
        (cid2.constant(), location.constant(), "lati"),
        (cid2.constant(), city.constant(), "name"),
        (cid3.constant(), car.constant(), "owner"),
        (cid3.constant(), car.constant(), "milage"),
        (cid3.constant(), car.constant(), "location"),
    ];
    for (c, t, a) in expect {
        let asym = mgr
            .meta
            .db
            .sym(a)
            .map(gomflex::deductive::Const::Sym)
            .unwrap();
        assert!(
            rows.iter()
                .any(|r| r.get(0) == c && r.get(1) == t && r.get(2) == asym),
            "missing CodeReqAttr row for {a}"
        );
    }
    // CodeReqDecl: paper's (cid2, did1); plus our extra (cid3, did_city).
    let p = mgr.meta.db.pred_id("CodeReqDecl").unwrap();
    let rows = mgr.meta.db.facts_sorted(p);
    assert!(rows
        .iter()
        .any(|r| r.get(0) == cid2.constant() && r.get(1) == d_loc.constant()));
    assert!(rows
        .iter()
        .any(|r| r.get(0) == cid3.constant() && r.get(1) == d_city.constant()));
    assert_eq!(rows.len(), 2);
}

// ---------- T2: object base model ------------------------------------------------

#[test]
fn t2_phrep_slot_rows() {
    let mut mgr = car_manager();
    for name in ["Person", "Location", "City", "Car"] {
        let t = tid(&mgr, name);
        mgr.create_object(t).unwrap();
    }
    assert!(mgr.check().unwrap().is_empty());
    let person = tid(&mgr, "Person");
    let city = tid(&mgr, "City");
    let car = tid(&mgr, "Car");
    let b = mgr.meta.builtins;
    let cl_person = mgr.meta.phrep_of(person).unwrap();
    let cl_city = mgr.meta.phrep_of(city).unwrap();
    let cl_car = mgr.meta.phrep_of(car).unwrap();
    // The paper's Slot table (plus City's inherited longi/lati, which the
    // paper's table actually omits but constraint (*) requires — the
    // paper's own consistent-extension claim needs them).
    assert_eq!(
        mgr.meta.slots_of(cl_person),
        vec![("age".into(), b.phrep_int), ("name".into(), b.phrep_string)]
    );
    let city_slots = mgr.meta.slots_of(cl_city);
    assert!(city_slots.contains(&("name".into(), b.phrep_string)));
    assert!(city_slots.contains(&("longi".into(), b.phrep_float)));
    assert_eq!(
        mgr.meta.slots_of(cl_car),
        vec![
            ("location".into(), cl_city),
            ("maxspeed".into(), b.phrep_float),
            ("milage".into(), b.phrep_float),
            ("owner".into(), cl_person)
        ]
    );
}

// ---------- T3: the three repairs ---------------------------------------------------

#[test]
fn t3_exactly_three_repairs_each_of_which_works() {
    let mut mgr = car_manager();
    let car = tid(&mgr, "Car");
    mgr.create_object(car).unwrap();
    mgr.begin_evolution().unwrap();
    let string = mgr.meta.builtins.string;
    mgr.meta.add_attr(car, "fuelType", string).unwrap();
    let out = mgr.end_evolution().unwrap();
    let violations = out.violations().to_vec();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].constraint, "slot_for_every_attr");
    let repairs = mgr.repairs_for(&violations[0]).unwrap();
    assert_eq!(repairs.len(), 3);
    let kinds: Vec<_> = repairs.iter().map(|r| r.repair.kind).collect();
    assert_eq!(
        kinds
            .iter()
            .filter(|k| **k == RepairKind::InvalidatePremise)
            .count(),
        2
    );
    assert_eq!(
        kinds
            .iter()
            .filter(|k| **k == RepairKind::CompleteConclusion)
            .count(),
        1
    );
    // Applying any one repair makes the session consistent.
    for i in 0..3 {
        let mut m2 = car_manager();
        let car2 = tid(&m2, "Car");
        m2.create_object(car2).unwrap();
        m2.begin_evolution().unwrap();
        let string2 = m2.meta.builtins.string;
        m2.meta.add_attr(car2, "fuelType", string2).unwrap();
        let out2 = m2.end_evolution().unwrap();
        let reps = m2.repairs_for(&out2.violations()[0]).unwrap();
        // Step 9: the Consistency Control initiates the execution of the
        // chosen repair by the Analyzer and/or Runtime System.
        let outcome = m2
            .execute_repair(&reps[i].repair, Value::Str("unleaded".into()))
            .unwrap();
        assert!(
            outcome.is_consistent(),
            "repair {i} failed: {:?}",
            outcome
                .violations()
                .iter()
                .map(|v| v.render(&m2.meta.db))
                .collect::<Vec<_>>()
        );
    }
    mgr.rollback_evolution().unwrap();
}

/// The planner sees the fuelType violation coming before EES runs: the
/// impact footprint names `slot_for_every_attr`, the change is classified
/// breaking-without-migration (L0601), and the violation EES then finds is
/// inside the predicted footprint.
#[test]
fn t3_plan_predicts_the_fueltype_violation() {
    let mut mgr = car_manager();
    let car = tid(&mgr, "Car");
    mgr.create_object(car).unwrap();
    mgr.begin_evolution().unwrap();
    let string = mgr.meta.builtins.string;
    mgr.meta.add_attr(car, "fuelType", string).unwrap();
    let plan = mgr.plan().unwrap();
    assert!(plan.footprint.contains(&"slot_for_every_attr".to_string()));
    assert!(plan.classes[0].breaking && !plan.classes[0].migrated);
    assert!(plan.diagnostics.diags.iter().any(|d| d.code == "L0601"));
    let out = mgr.end_evolution().unwrap();
    assert_eq!(out.violations().len(), 1);
    assert!(plan.footprint.contains(&out.violations()[0].constraint));
    mgr.rollback_evolution().unwrap();
}

// ---------- T4: versioning + fashion -------------------------------------------------

#[test]
fn t4_fashion_without_evolution_rejected_with_it_accepted() {
    let mut mgr = car_manager();
    install_versioning(&mut mgr).unwrap();
    mgr.define_schema(
        "schema NewCarSchema is
           type Person is [ name : string; birthday : date; ] end type Person;
         end schema NewCarSchema;",
    )
    .unwrap();
    let s1 = mgr.meta.schema_by_name("CarSchema").unwrap();
    let s2 = mgr.meta.schema_by_name("NewCarSchema").unwrap();
    let p1 = mgr.meta.type_by_name(s1, "Person").unwrap();
    let p2 = mgr.meta.type_by_name(s2, "Person").unwrap();
    mgr.begin_evolution().unwrap();
    record_schema_evolution(&mut mgr, s1, s2).unwrap();
    record_type_evolution(&mut mgr, p1, p2).unwrap();
    mgr.analyzer
        .lower_source(
            &mut mgr.meta,
            "fashion Person@CarSchema as Person@NewCarSchema where
               birthday : -> date is self.age * 365;
               birthday : <- date is begin self.age := value / 365; end;
               name : string is self.name;
             end fashion;",
        )
        .unwrap();
    assert!(mgr.end_evolution().unwrap().is_consistent());
    // Behavioural check: masking works both ways.
    let alice = mgr.create_object(p1).unwrap();
    mgr.set_attr(alice, "age", Value::Int(30)).unwrap();
    assert_eq!(mgr.get_attr(alice, "birthday").unwrap(), Value::Int(10950));
    mgr.set_attr(alice, "birthday", Value::Int(7300)).unwrap();
    assert_eq!(mgr.get_attr(alice, "age").unwrap(), Value::Int(20));
}

// ---------- T6: the seven-step evolution ----------------------------------------------

#[test]
fn t6_catalyst_split_end_to_end() {
    let mut mgr = car_manager();
    install_versioning(&mut mgr).unwrap();
    let old_schema = mgr.meta.schema_by_name("CarSchema").unwrap();
    let old_car = mgr.meta.type_by_name(old_schema, "Car").unwrap();
    let trabi = mgr.create_object(old_car).unwrap();

    mgr.begin_evolution().unwrap();
    let new_schema = mgr.meta.new_schema("NewCarSchema").unwrap();
    record_schema_evolution(&mut mgr, old_schema, new_schema).unwrap();
    let polluter = mgr.meta.new_type(new_schema, "PolluterCar").unwrap();
    record_type_evolution(&mut mgr, old_car, polluter).unwrap();
    let new_car = copy_type_into(&mut mgr, old_car, new_schema, "Car").unwrap();
    let any = mgr.meta.builtins.any;
    mgr.meta.add_subtype(new_car, any).unwrap();
    let catalyst = mgr.meta.new_type(new_schema, "CatalystCar").unwrap();
    mgr.meta.add_subtype(polluter, new_car).unwrap();
    mgr.meta.add_subtype(catalyst, new_car).unwrap();
    let fuel_sort = mgr.meta.new_type(new_schema, "Fuel").unwrap();
    mgr.meta.add_subtype(fuel_sort, any).unwrap();
    let sv = mgr.meta.db.pred_id("SortVariant").unwrap();
    for variant in ["leaded", "unleaded"] {
        let v = mgr.meta.db.constant(variant);
        mgr.meta
            .db
            .insert(sv, vec![fuel_sort.constant(), v])
            .unwrap();
    }
    let d_pol = mgr.meta.new_decl(polluter, "fuel", fuel_sort).unwrap();
    mgr.meta.new_code(d_pol, "return leaded;").unwrap();
    let d_cat = mgr.meta.new_decl(catalyst, "fuel", fuel_sort).unwrap();
    mgr.meta.new_code(d_cat, "return unleaded;").unwrap();
    mgr.analyzer
        .lower_source(
            &mut mgr.meta,
            "fashion Car@CarSchema as PolluterCar@NewCarSchema where
               owner    : Person is self.owner;
               maxspeed : float  is self.maxspeed;
               milage   : float  is self.milage;
               location : City   is self.location;
               operation changeLocation is begin return self.changeLocation(arg1, arg2); end;
               operation fuel is begin return leaded; end;
             end fashion;",
        )
        .unwrap();
    let out = mgr.end_evolution().unwrap();
    assert!(
        out.is_consistent(),
        "{:?}",
        out.violations()
            .iter()
            .map(|v| v.render(&mgr.meta.db))
            .collect::<Vec<_>>()
    );
    // Old instances answer the new behaviour; new subtypes differ.
    let fuel = mgr.call(trabi, "fuel", &[]).unwrap();
    assert!(matches!(&fuel, Value::Enum { variant, .. } if variant == "leaded"));
    let clean = mgr.create_object(catalyst).unwrap();
    let fuel = mgr.call(clean, "fuel", &[]).unwrap();
    assert!(matches!(&fuel, Value::Enum { variant, .. } if variant == "unleaded"));
    let dirty = mgr.create_object(polluter).unwrap();
    let fuel = mgr.call(dirty, "fuel", &[]).unwrap();
    assert!(matches!(&fuel, Value::Enum { variant, .. } if variant == "leaded"));
}

// ---------- F3: appendix hierarchy -----------------------------------------------------

#[test]
fn f3_company_hierarchy_and_namespaces() {
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(COMPANY_SCHEMA_SRC).unwrap();
    assert!(mgr.check().unwrap().is_empty());
    let h = mgr.analyzer.hierarchy().unwrap();
    assert_eq!(h.roots(), vec!["Company"]);
    assert_eq!(
        h.children("CAD"),
        vec!["Geometry", "FEM", "Function", "Technology"]
    );
    assert_eq!(
        h.absolute_path("BoundaryRep"),
        "/Company/CAD/Geometry/BoundaryRep"
    );
    // Renaming resolved the Cuboid conflict; hiding works.
    assert!(h.lookup_type("Geometry", "CSGCuboid").unwrap().is_some());
    assert!(h.lookup_type("Geometry", "Surface").unwrap().is_none());
    // The Converter's attrs reference the two distinct Cuboids.
    let conv_s = mgr.meta.schema_by_name("CSG2BoundRep").unwrap();
    let conv = mgr.meta.type_by_name(conv_s, "Converter").unwrap();
    let attrs = mgr.meta.attrs_of(conv);
    assert_eq!(attrs.len(), 2);
    assert_ne!(attrs[0].1, attrs[1].1);
}

// ---------- F1: the architecture is actually decoupled ----------------------------------

#[test]
fn f1_consistency_definition_is_data_not_code() {
    // The whole §2.1 flexibility claim in one test: swap the notion of
    // consistency at run time without touching any component.
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(
        "schema S is
           type A is end type A;
           type B is end type B;
           type C supertype A, B is end type C;
         end schema S;",
    )
    .unwrap();
    assert!(mgr.check().unwrap().is_empty());
    mgr.add_consistency(gomflex::core::SINGLE_INHERITANCE_CONSTRAINT)
        .unwrap();
    // two witnesses: (S1=a, S2=b) and its mirror image
    assert_eq!(mgr.check().unwrap().len(), 2);
    assert!(mgr.drop_constraint("single_inheritance"));
    assert!(mgr.check().unwrap().is_empty());
}
