//! The §4.1 developer-flexibility scenario: retrofitting schema versioning
//! and fashion masking onto the simple schema manager.
//!
//! The entire "implementation effort" of the GOM-V1.0 release is visible in
//! this file: (1) feed the versioning/fashion definitions into the
//! consistency control, (2) declare the new schema version and the
//! `fashion`, (3) keep using old `Person` instances where
//! `Person@NewCarSchema` is expected — `birthday` reads and writes are
//! redirected to `age`.
//!
//! Run with: `cargo run --example versioning_fashion`

use gomflex::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mgr = SchemaManager::new()?;
    mgr.define_schema(CAR_SCHEMA_SRC)
        .map_err(|e| e.to_string())?;

    // Step 1 of §4.1: "the above base predicates, rules, and constraints
    // have to be inserted into the system. This simple keyboard exercise
    // can be performed within an hour."
    install_versioning(&mut mgr)?;
    println!("== versioning + fashion definitions installed ==");
    println!("constraints now: {}", mgr.meta.db.constraints().len());

    // Old-world Person with an age.
    let old_schema = mgr.meta.schema_by_name("CarSchema").unwrap();
    let old_person = mgr.meta.type_by_name(old_schema, "Person").unwrap();
    let alice = mgr.create_object(old_person)?;
    mgr.set_attr(alice, "name", Value::Str("Alice".into()))?;
    mgr.set_attr(alice, "age", Value::Int(30))?;

    // The new schema version: Person with birthday instead of age.
    println!("\n== BES: Person@NewCarSchema replaces age by birthday ==");
    mgr.begin_evolution()?;
    mgr.analyzer
        .lower_source(
            &mut mgr.meta,
            "schema NewCarSchema is
               type Person is
                 [ name     : string;
                   birthday : date; ]
               end type Person;
             end schema NewCarSchema;",
        )
        .map_err(|e| e.to_string())?;
    let new_schema = mgr.meta.schema_by_name("NewCarSchema").unwrap();
    let new_person = mgr.meta.type_by_name(new_schema, "Person").unwrap();
    record_schema_evolution(&mut mgr, old_schema, new_schema)?;
    record_type_evolution(&mut mgr, old_person, new_person)?;

    // The paper's fashion declaration (with concrete derivation code:
    // birthday in days = age * 365, and back).
    mgr.analyzer
        .lower_source(
            &mut mgr.meta,
            "fashion Person@CarSchema as Person@NewCarSchema where
               birthday : -> date is self.age * 365;
               birthday : <- date is begin self.age := value / 365; end;
               name : string is self.name;
             end fashion;",
        )
        .map_err(|e| e.to_string())?;
    let outcome = mgr.end_evolution()?;
    println!(
        "EES: {}",
        if outcome.is_consistent() {
            "consistent — committed".to_string()
        } else {
            format!("{:?}", outcome.violations())
        }
    );

    // Old instances are substitutable: birthday reads/writes redirect.
    println!("\n== masking in action (old Person, new signature) ==");
    println!("alice.age      = {}", mgr.get_attr(alice, "age")?);
    println!(
        "alice.birthday = {}  (derived from age)",
        mgr.get_attr(alice, "birthday")?
    );
    mgr.set_attr(alice, "birthday", Value::Int(40 * 365))?;
    println!("after alice.birthday := 14600:");
    println!(
        "alice.age      = {}  (derived from birthday)",
        mgr.get_attr(alice, "age")?
    );

    // Incomplete fashions are rejected — remove a redirection and watch the
    // consistency control object.
    println!("\n== the consistency control rejects incomplete fashions ==");
    mgr.begin_evolution()?;
    let fattr = mgr.meta.db.pred_id("FashionAttr").unwrap();
    let name_sym = mgr.meta.db.constant("name");
    mgr.meta.db.remove_matching(fattr, &[(1, name_sym)])?;
    let outcome = mgr.end_evolution()?;
    for v in outcome.violations() {
        println!("violation: {}", v.render(&mgr.meta.db));
    }
    mgr.rollback_evolution()?;
    println!(
        "rolled back; final check: {} violation(s)",
        mgr.check()?.len()
    );
    Ok(())
}
