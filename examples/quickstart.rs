//! Quickstart: the paper's running example end to end.
//!
//! Defines the §3.1 `CarSchema`, dumps the Figure-2 base-predicate
//! extensions, instantiates objects, runs the interpreted
//! `changeLocation` method, and walks one evolution session through the
//! §3.5 protocol (violation → repairs → choice).
//!
//! Run with: `cargo run --example quickstart`

use gomflex::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. define the schema through the Analyzer --------------------------------
    let mut mgr = SchemaManager::new()?;
    mgr.define_schema(CAR_SCHEMA_SRC)
        .map_err(|e| e.to_string())?;
    println!(
        "== CarSchema defined; consistency check: {} violation(s)\n",
        mgr.check()?.len()
    );

    // ---- 2. the Figure-2 extensions -------------------------------------------------
    println!("== Schema Base extensions (paper Figure 2) ==");
    for pred in ["Schema", "Type", "Attr", "Decl", "ArgDecl", "Code"] {
        let p = mgr.meta.db.pred_id(pred).unwrap();
        print!("{}", mgr.meta.render_relation(p));
    }
    println!("\n== Relationship extensions (paper §3.2, second table) ==");
    for pred in ["SubTypRel", "DeclRefinement", "CodeReqDecl", "CodeReqAttr"] {
        let p = mgr.meta.db.pred_id(pred).unwrap();
        print!("{}", mgr.meta.render_relation(p));
    }

    // ---- 3. objects + interpreted behaviour -----------------------------------------
    let sid = mgr.meta.schema_by_name("CarSchema").unwrap();
    let person = mgr.meta.type_by_name(sid, "Person").unwrap();
    let city = mgr.meta.type_by_name(sid, "City").unwrap();
    let car = mgr.meta.type_by_name(sid, "Car").unwrap();

    let alice = mgr.create_object(person)?;
    mgr.set_attr(alice, "name", Value::Str("Alice".into()))?;
    let karlsruhe = mgr.create_object(city)?;
    mgr.set_attr(karlsruhe, "name", Value::Str("Karlsruhe".into()))?;
    mgr.set_attr(karlsruhe, "longi", Value::Float(8.4))?;
    mgr.set_attr(karlsruhe, "lati", Value::Float(49.0))?;
    let munich = mgr.create_object(city)?;
    mgr.set_attr(munich, "name", Value::Str("Munich".into()))?;
    mgr.set_attr(munich, "longi", Value::Float(11.6))?;
    mgr.set_attr(munich, "lati", Value::Float(48.1))?;
    let beetle = mgr.create_object(car)?;
    mgr.set_attr(beetle, "owner", Value::Obj(alice))?;
    mgr.set_attr(beetle, "location", Value::Obj(karlsruhe))?;

    let milage = mgr.call(
        beetle,
        "changeLocation",
        &[Value::Obj(alice), Value::Obj(munich)],
    )?;
    println!("\n== changeLocation(alice, munich) returned {milage}");
    println!("== Object Base Model (paper §3.4 table) ==");
    for pred in ["PhRep", "Slot"] {
        let p = mgr.meta.db.pred_id(pred).unwrap();
        print!("{}", mgr.meta.render_relation(p));
    }

    // ---- 4. an evolution session needing a repair (§3.5) ------------------------------
    println!("\n== Evolution session: add `fuelType : string` to Car (BES) ==");
    mgr.begin_evolution()?;
    let string = mgr.meta.builtins.string;
    mgr.meta.add_attr(car, "fuelType", string)?;
    let outcome = mgr.end_evolution()?; // EES
    match &outcome {
        EvolutionOutcome::Consistent(_) => println!("session committed"),
        EvolutionOutcome::Inconsistent(violations) => {
            for v in violations {
                println!("violation: {}", v.render(&mgr.meta.db));
            }
            println!("\ngenerated repairs (plus: roll back the session):");
            let repairs = mgr.repairs_for(&violations[0])?;
            for (i, r) in repairs.iter().enumerate() {
                println!("  {}. {}", i + 1, r.render(&mgr.meta));
            }
            // Choose the conversion repair: insert the missing slot, with
            // the value physically supplied by the Runtime System.
            let conversion = repairs
                .iter()
                .find(|r| r.repair.kind == RepairKind::CompleteConclusion)
                .expect("conversion repair exists");
            let repair = conversion.repair.clone();
            mgr.runtime.convert_add_slot(
                &mut mgr.meta,
                car,
                "fuelType",
                string,
                ValueSource::Default(Value::Str("unleaded".into())),
            )?;
            // The conversion already reported +Slot; applying the repair is
            // then a no-op fact-wise, and the session commits.
            let outcome = mgr.apply_repair(&repair)?;
            println!(
                "\nafter executing the conversion: session {}",
                if outcome.is_consistent() {
                    "committed"
                } else {
                    "still inconsistent"
                }
            );
        }
    }
    println!("beetle.fuelType = {}", mgr.get_attr(beetle, "fuelType")?);
    println!("final check: {} violation(s)", mgr.check()?.len());
    Ok(())
}
