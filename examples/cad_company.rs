//! Appendix A / Figure 3: the manufacturing company's schema hierarchy —
//! structuring, information hiding, name spaces, renaming, and imports.
//!
//! Run with: `cargo run --example cad_company`

use gomflex::prelude::*;

fn print_tree(h: &gomflex::analyzer::paths::Hierarchy, name: &str, indent: usize) {
    println!("{}{name}", "  ".repeat(indent));
    for child in h.children(name) {
        print_tree(h, child, indent + 1);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mgr = SchemaManager::new()?;
    mgr.define_schema(COMPANY_SCHEMA_SRC)
        .map_err(|e| e.to_string())?;

    // Figure 3, regenerated from the parsed frames.
    let h = mgr.analyzer.hierarchy().map_err(|e| e.to_string())?;
    println!("== Figure 3: the sample schema hierarchy ==");
    for root in h.roots() {
        print_tree(&h, root, 0);
    }

    // Absolute paths (appendix A.5).
    println!("\n== schema paths ==");
    for s in ["CSG", "BoundaryRep", "CSG2BoundRep", "Schedule"] {
        if h.defs.contains_key(s) {
            println!("{s:>14} -> {}", h.absolute_path(s));
        }
    }

    // Name spaces: two Cuboid types coexist without conflict.
    let csg = mgr.meta.schema_by_name("CSG").unwrap();
    let brep = mgr.meta.schema_by_name("BoundaryRep").unwrap();
    let c1 = mgr.meta.type_by_name(csg, "Cuboid").unwrap();
    let c2 = mgr.meta.type_by_name(brep, "Cuboid").unwrap();
    println!("\n== name spaces ==");
    println!("Cuboid@CSG          = {:?}", mgr.meta.db.resolve(c1.sym()));
    println!("Cuboid@BoundaryRep  = {:?}", mgr.meta.db.resolve(c2.sym()));
    assert_ne!(c1, c2);

    // Information hiding: Surface/Edge/Vertex are implementation-only.
    println!("\n== information hiding (public clause of BoundaryRep) ==");
    for name in ["Cuboid", "Surface", "Edge", "Vertex"] {
        let visible = h.lookup_type("Geometry", name).map_err(|e| e.to_string())?;
        println!(
            "{name:>8} visible from Geometry under its own name: {}",
            visible.is_some()
        );
    }
    println!(
        "renamed publics in Geometry: CSGCuboid -> {:?}, BRepCuboid -> {:?}",
        h.lookup_type("Geometry", "CSGCuboid")
            .map_err(|e| e.to_string())?,
        h.lookup_type("Geometry", "BRepCuboid")
            .map_err(|e| e.to_string())?
    );

    // Imports: the converter references both Cuboids through renaming.
    let conv_s = mgr.meta.schema_by_name("CSG2BoundRep").unwrap();
    let conv = mgr.meta.type_by_name(conv_s, "Converter").unwrap();
    println!("\n== the CSG2BoundRep converter (imports with renaming) ==");
    for (attr, domain) in mgr.meta.attrs_of(conv) {
        println!(
            "Converter.{attr} : {} (from schema {})",
            mgr.meta.type_name(domain).unwrap(),
            mgr.meta
                .schema_of(domain)
                .and_then(|s| {
                    let rel = mgr.meta.db.relation(mgr.meta.cat.schema);
                    rel.select(&[(0, s.constant())])
                        .next()
                        .and_then(|t| t.get(1).as_sym())
                        .map(|sym| mgr.meta.db.resolve(sym).to_string())
                })
                .unwrap()
        );
    }

    // Instantiate across the hierarchy and verify global consistency.
    let cuboid = mgr.create_object(c1)?;
    mgr.set_attr(cuboid, "xlen", Value::Float(2.0))?;
    let schedule_s = mgr.meta.schema_by_name("CAPP").unwrap();
    let schedule_t = mgr.meta.type_by_name(schedule_s, "Schedule").unwrap();
    let _sched = mgr.create_object(schedule_t)?;
    println!(
        "\nobjects created across departments; final check: {} violation(s)",
        mgr.check()?.len()
    );
    Ok(())
}
