//! The §4.2 user-flexibility scenario: evolving `CarSchema` into
//! `NewCarSchema` with `PolluterCar` / `CatalystCar` subtypes — executed as
//! the paper's seven explicit steps inside one evolution session, with
//! `fashion` making the old `Car` instances substitutable for
//! `PolluterCar`s.
//!
//! Run with: `cargo run --example car_evolution`

use gomflex::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mgr = SchemaManager::new()?;
    mgr.define_schema(CAR_SCHEMA_SRC)
        .map_err(|e| e.to_string())?;
    install_versioning(&mut mgr)?;

    let old_schema = mgr.meta.schema_by_name("CarSchema").unwrap();
    let old_car = mgr.meta.type_by_name(old_schema, "Car").unwrap();

    // A pre-evolution world: two cars on leaded fuel.
    let trabi = mgr.create_object(old_car)?;
    mgr.set_attr(trabi, "milage", Value::Float(120_000.0))?;
    let beetle = mgr.create_object(old_car)?;
    mgr.set_attr(beetle, "milage", Value::Float(80_000.0))?;
    println!(
        "== old world: {} Car instance(s), consistent: {}",
        2,
        mgr.check()?.is_empty()
    );

    // ---- the seven steps of §4.2, one evolution session --------------------------------
    println!("\n== BES: evolving CarSchema to NewCarSchema ==");
    mgr.begin_evolution()?;

    // Schema version first (digestibility needs it).
    let new_schema = mgr.meta.new_schema("NewCarSchema")?;
    record_schema_evolution(&mut mgr, old_schema, new_schema)?;

    // 1+2: PolluterCar as a new type that is the evolution target of the
    // old Car — its structure will come from the new Car by inheritance.
    let polluter = mgr.meta.new_type(new_schema, "PolluterCar")?;
    record_type_evolution(&mut mgr, old_car, polluter)?;
    println!("step 1-2: PolluterCar created as evolution of Car@CarSchema");

    // 4: a new Car with the same textual definition as the old one.
    let new_car =
        copy_type_into(&mut mgr, old_car, new_schema, "Car").map_err(|e| e.to_string())?;
    let any = mgr.meta.builtins.any;
    mgr.meta.add_subtype(new_car, any)?;
    println!("step 4:   Car@NewCarSchema copied from Car@CarSchema");

    // 5: CatalystCar.
    let catalyst = mgr.meta.new_type(new_schema, "CatalystCar")?;
    println!("step 5:   CatalystCar created");

    // 6: both are subtypes of the new Car.
    mgr.meta.add_subtype(polluter, new_car)?;
    mgr.meta.add_subtype(catalyst, new_car)?;
    println!("step 6:   PolluterCar, CatalystCar <: Car@NewCarSchema");

    // 3 (completed): the Fuel sort and the fuel operations. We express them
    // in GOM source and let the Analyzer lower the pieces onto the types we
    // just created: the sort plus one declaration per subtype.
    let fuel_sort = mgr.meta.new_type(new_schema, "Fuel")?;
    mgr.meta.add_subtype(fuel_sort, any)?;
    let sv = mgr.meta.db.pred_id("SortVariant").unwrap();
    for variant in ["leaded", "unleaded"] {
        let v = mgr.meta.db.constant(variant);
        mgr.meta.db.insert(sv, vec![fuel_sort.constant(), v])?;
    }
    let d_pol = mgr.meta.new_decl(polluter, "fuel", fuel_sort)?;
    mgr.meta.new_code(d_pol, "return leaded;")?;
    let d_cat = mgr.meta.new_decl(catalyst, "fuel", fuel_sort)?;
    mgr.meta.new_code(d_cat, "return unleaded;")?;
    println!("step 3:   fuel : -> Fuel declared and defined on both subtypes");

    // 7: the adoption mechanism — old Car instances are PolluterCars.
    let fashion_src = "\
fashion Car@CarSchema as PolluterCar@NewCarSchema where
  owner    : Person is self.owner;
  maxspeed : float  is self.maxspeed;
  milage   : float  is self.milage;
  location : City   is self.location;
  operation changeLocation is begin return self.changeLocation(arg1, arg2); end;
  operation fuel is begin return leaded; end;
end fashion;";
    mgr.analyzer
        .lower_source(&mut mgr.meta, fashion_src)
        .map_err(|e| e.to_string())?;
    println!("step 7:   fashion Car@CarSchema as PolluterCar@NewCarSchema declared");

    // EES.
    let outcome = mgr.end_evolution()?;
    match &outcome {
        EvolutionOutcome::Consistent(delta) => {
            println!(
                "\n== EES: consistent — session committed ({} base-fact change(s))",
                delta.len()
            );
        }
        EvolutionOutcome::Inconsistent(violations) => {
            println!("\n== EES: INCONSISTENT ==");
            for v in violations {
                println!("  {}", v.render(&mgr.meta.db));
            }
            mgr.rollback_evolution()?;
            return Err("evolution failed".into());
        }
    }

    // ---- old instances now answer the new behaviour -------------------------------------
    println!("\n== reuse: old Car instances as PolluterCars ==");
    for (name, oid) in [("trabi", trabi), ("beetle", beetle)] {
        let fuel = mgr.call(oid, "fuel", &[])?;
        let milage = mgr.get_attr(oid, "milage")?;
        println!("  {name}: fuel = {fuel}, milage = {milage}");
    }

    // And genuinely new CatalystCars:
    let clean = mgr.create_object(catalyst)?;
    println!(
        "  new CatalystCar: fuel = {}",
        mgr.call(clean, "fuel", &[])?
    );

    println!("\nfinal check: {} violation(s)", mgr.check()?.len());
    Ok(())
}
