//! Schema migration with the differencing tool: evolve a populated v1
//! schema to match a v2 target, letting the consistency control drive the
//! object conversion.
//!
//! This is the workflow the paper's introduction motivates — "tools which
//! automatically check schema consistency … analyze the situation and
//! generate possible repairs" — composed end to end: diff two versions,
//! apply the script inside a session, and discharge the schema/object
//! violations by executing the proposed conversions.
//!
//! Run with: `cargo run --example schema_migration`

use gomflex::evolution::{apply_diff, diff_schemas, render_diff};
use gomflex::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mgr = SchemaManager::new()?;

    // v1, in production, with live objects.
    mgr.define_schema(
        "schema Fleet is
           type Driver is
             [ name : string; ]
           end type Driver;
           type Car is
             [ driver : Driver;
               milage : float; ]
           operations
             declare service : || -> float;
           implementation
             define service is begin return self.milage * 0.01; end define service;
           end type Car;
         end schema Fleet;",
    )
    .map_err(|e| e.to_string())?;
    let fleet = mgr.meta.schema_by_name("Fleet").unwrap();
    let car = mgr.meta.type_by_name(fleet, "Car").unwrap();
    let driver = mgr.meta.type_by_name(fleet, "Driver").unwrap();
    let alice = mgr.create_object(driver)?;
    mgr.set_attr(alice, "name", Value::Str("Alice".into()))?;
    let mut cars = Vec::new();
    for i in 0..3 {
        let c = mgr.create_object(car)?;
        mgr.set_attr(c, "driver", Value::Obj(alice))?;
        mgr.set_attr(c, "milage", Value::Float(10_000.0 * (i + 1) as f64))?;
        cars.push(c);
    }
    println!(
        "== v1 live: {} cars, consistent: {}",
        cars.len(),
        mgr.check()?.is_empty()
    );

    // The v2 target, designed separately.
    mgr.define_schema(
        "schema FleetV2 is
           type Driver is
             [ name    : string;
               licence : string; ]
           end type Driver;
           type Car is
             [ driver   : Driver;
               milage   : float;
               fuelType : string; ]
           operations
             declare service : || -> float;
           implementation
             define service is begin return self.milage * 0.02; end define service;
           end type Car;
           type ElectricCar supertype Car is
             [ range : float; ]
           end type ElectricCar;
         end schema FleetV2;",
    )
    .map_err(|e| e.to_string())?;
    let v2 = mgr.meta.schema_by_name("FleetV2").unwrap();

    // 1. Compute the edit script.
    let steps = diff_schemas(&mgr.meta, fleet, v2);
    println!("\n== migration script (diff Fleet -> FleetV2) ==");
    for line in render_diff(&steps) {
        println!("  {line}");
    }

    // 2. Apply it in one evolution session.
    println!("\n== BES: applying {} step(s) ==", steps.len());
    mgr.begin_evolution()?;
    apply_diff(&mut mgr, fleet, &steps).map_err(|e| e.to_string())?;
    let mut outcome = mgr.end_evolution()?;

    // 3. Discharge the schema/object gap with generated repairs, preferring
    //    conversions (the objects survive).
    let mut rounds = 0;
    while let EvolutionOutcome::Inconsistent(violations) = &outcome {
        rounds += 1;
        if rounds > 16 {
            mgr.rollback_evolution()?;
            return Err("repair loop did not converge".into());
        }
        println!("\nviolations ({}):", violations.len());
        for v in violations.iter().take(4) {
            println!("  {}", v.render(&mgr.meta.db));
        }
        let v0 = violations[0].clone();
        let repairs = mgr.repairs_for(&v0)?;
        let chosen = repairs
            .iter()
            .find(|r| r.repair.kind == RepairKind::CompleteConclusion)
            .unwrap_or(&repairs[0]);
        println!("executing repair: {}", chosen.repair.render(&mgr.meta.db));
        let repair = chosen.repair.clone();
        outcome = mgr.execute_repair(&repair, Value::Str("unleaded".into()))?;
    }
    println!("\n== migration committed ==");

    // 4. Old objects carry the new structure and the new behaviour.
    for (i, &c) in cars.iter().enumerate() {
        let fuel = mgr.get_attr(c, "fuelType")?;
        let service = mgr.call(c, "service", &[])?;
        println!("car {i}: fuelType = {fuel}, service = {service}");
    }
    // New subtype usable immediately.
    let e_car = mgr.meta.type_by_name(fleet, "ElectricCar").unwrap();
    let tesla = mgr.create_object(e_car)?;
    mgr.set_attr(tesla, "range", Value::Float(500.0))?;
    println!(
        "new ElectricCar: range = {}, inherited fuelType = {}",
        mgr.get_attr(tesla, "range")?,
        mgr.get_attr(tesla, "fuelType")?
    );
    println!("\nfinal check: {} violation(s)", mgr.check()?.len());
    Ok(())
}
