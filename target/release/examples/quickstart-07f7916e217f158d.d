/root/repo/target/release/examples/quickstart-07f7916e217f158d.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-07f7916e217f158d: examples/quickstart.rs

examples/quickstart.rs:
