/root/repo/target/release/deps/gom_model-99a962c2836a5a8c.d: crates/model/src/lib.rs crates/model/src/builtins.rs crates/model/src/catalog.rs crates/model/src/ids.rs crates/model/src/schema_base.rs

/root/repo/target/release/deps/libgom_model-99a962c2836a5a8c.rlib: crates/model/src/lib.rs crates/model/src/builtins.rs crates/model/src/catalog.rs crates/model/src/ids.rs crates/model/src/schema_base.rs

/root/repo/target/release/deps/libgom_model-99a962c2836a5a8c.rmeta: crates/model/src/lib.rs crates/model/src/builtins.rs crates/model/src/catalog.rs crates/model/src/ids.rs crates/model/src/schema_base.rs

crates/model/src/lib.rs:
crates/model/src/builtins.rs:
crates/model/src/catalog.rs:
crates/model/src/ids.rs:
crates/model/src/schema_base.rs:
