/root/repo/target/release/deps/gom_analyzer-5127221e96662e24.d: crates/analyzer/src/lib.rs crates/analyzer/src/ast.rs crates/analyzer/src/body.rs crates/analyzer/src/car_schema.rs crates/analyzer/src/codereq.rs crates/analyzer/src/lex.rs crates/analyzer/src/lower.rs crates/analyzer/src/parse.rs crates/analyzer/src/paths.rs crates/analyzer/src/print.rs

/root/repo/target/release/deps/libgom_analyzer-5127221e96662e24.rlib: crates/analyzer/src/lib.rs crates/analyzer/src/ast.rs crates/analyzer/src/body.rs crates/analyzer/src/car_schema.rs crates/analyzer/src/codereq.rs crates/analyzer/src/lex.rs crates/analyzer/src/lower.rs crates/analyzer/src/parse.rs crates/analyzer/src/paths.rs crates/analyzer/src/print.rs

/root/repo/target/release/deps/libgom_analyzer-5127221e96662e24.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/ast.rs crates/analyzer/src/body.rs crates/analyzer/src/car_schema.rs crates/analyzer/src/codereq.rs crates/analyzer/src/lex.rs crates/analyzer/src/lower.rs crates/analyzer/src/parse.rs crates/analyzer/src/paths.rs crates/analyzer/src/print.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/ast.rs:
crates/analyzer/src/body.rs:
crates/analyzer/src/car_schema.rs:
crates/analyzer/src/codereq.rs:
crates/analyzer/src/lex.rs:
crates/analyzer/src/lower.rs:
crates/analyzer/src/parse.rs:
crates/analyzer/src/paths.rs:
crates/analyzer/src/print.rs:
