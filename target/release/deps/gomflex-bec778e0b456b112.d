/root/repo/target/release/deps/gomflex-bec778e0b456b112.d: src/lib.rs

/root/repo/target/release/deps/libgomflex-bec778e0b456b112.rlib: src/lib.rs

/root/repo/target/release/deps/libgomflex-bec778e0b456b112.rmeta: src/lib.rs

src/lib.rs:
