/root/repo/target/release/deps/gom_core-373ae7b753df5ada.d: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs

/root/repo/target/release/deps/libgom_core-373ae7b753df5ada.rlib: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs

/root/repo/target/release/deps/libgom_core-373ae7b753df5ada.rmeta: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs

crates/core/src/lib.rs:
crates/core/src/consistency.rs:
crates/core/src/explain.rs:
crates/core/src/manager.rs:
