/root/repo/target/release/deps/gomflex-540f3c4c79ff60b7.d: src/lib.rs

/root/repo/target/release/deps/libgomflex-540f3c4c79ff60b7.rlib: src/lib.rs

/root/repo/target/release/deps/libgomflex-540f3c4c79ff60b7.rmeta: src/lib.rs

src/lib.rs:
