/root/repo/target/release/deps/gom_runtime-6436b08c1fde6ada.d: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs

/root/repo/target/release/deps/libgom_runtime-6436b08c1fde6ada.rlib: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs

/root/repo/target/release/deps/libgom_runtime-6436b08c1fde6ada.rmeta: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs

crates/runtime/src/lib.rs:
crates/runtime/src/convert.rs:
crates/runtime/src/object.rs:
crates/runtime/src/runtime.rs:
crates/runtime/src/value.rs:
