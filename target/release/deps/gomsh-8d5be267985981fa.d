/root/repo/target/release/deps/gomsh-8d5be267985981fa.d: src/bin/gomsh.rs

/root/repo/target/release/deps/gomsh-8d5be267985981fa: src/bin/gomsh.rs

src/bin/gomsh.rs:
