/root/repo/target/release/deps/gomsh-1a17f18e537fb6d7.d: src/bin/gomsh.rs

/root/repo/target/release/deps/gomsh-1a17f18e537fb6d7: src/bin/gomsh.rs

src/bin/gomsh.rs:
