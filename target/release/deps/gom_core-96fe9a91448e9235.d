/root/repo/target/release/deps/gom_core-96fe9a91448e9235.d: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs

/root/repo/target/release/deps/libgom_core-96fe9a91448e9235.rlib: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs

/root/repo/target/release/deps/libgom_core-96fe9a91448e9235.rmeta: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs

crates/core/src/lib.rs:
crates/core/src/consistency.rs:
crates/core/src/explain.rs:
crates/core/src/manager.rs:
