/root/repo/target/release/deps/gom_evolution-afa20a38c3c0e014.d: crates/evolution/src/lib.rs crates/evolution/src/baselines.rs crates/evolution/src/complex.rs crates/evolution/src/diff.rs crates/evolution/src/macros.rs crates/evolution/src/primitive.rs crates/evolution/src/versioning.rs

/root/repo/target/release/deps/libgom_evolution-afa20a38c3c0e014.rlib: crates/evolution/src/lib.rs crates/evolution/src/baselines.rs crates/evolution/src/complex.rs crates/evolution/src/diff.rs crates/evolution/src/macros.rs crates/evolution/src/primitive.rs crates/evolution/src/versioning.rs

/root/repo/target/release/deps/libgom_evolution-afa20a38c3c0e014.rmeta: crates/evolution/src/lib.rs crates/evolution/src/baselines.rs crates/evolution/src/complex.rs crates/evolution/src/diff.rs crates/evolution/src/macros.rs crates/evolution/src/primitive.rs crates/evolution/src/versioning.rs

crates/evolution/src/lib.rs:
crates/evolution/src/baselines.rs:
crates/evolution/src/complex.rs:
crates/evolution/src/diff.rs:
crates/evolution/src/macros.rs:
crates/evolution/src/primitive.rs:
crates/evolution/src/versioning.rs:
