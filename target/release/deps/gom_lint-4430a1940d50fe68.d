/root/repo/target/release/deps/gom_lint-4430a1940d50fe68.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/json.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/depgraph.rs crates/lint/src/passes/perf.rs crates/lint/src/passes/safety.rs crates/lint/src/passes/schema.rs crates/lint/src/passes/strat.rs crates/lint/src/render.rs

/root/repo/target/release/deps/libgom_lint-4430a1940d50fe68.rlib: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/json.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/depgraph.rs crates/lint/src/passes/perf.rs crates/lint/src/passes/safety.rs crates/lint/src/passes/schema.rs crates/lint/src/passes/strat.rs crates/lint/src/render.rs

/root/repo/target/release/deps/libgom_lint-4430a1940d50fe68.rmeta: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/json.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/depgraph.rs crates/lint/src/passes/perf.rs crates/lint/src/passes/safety.rs crates/lint/src/passes/schema.rs crates/lint/src/passes/strat.rs crates/lint/src/render.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/json.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/depgraph.rs:
crates/lint/src/passes/perf.rs:
crates/lint/src/passes/safety.rs:
crates/lint/src/passes/schema.rs:
crates/lint/src/passes/strat.rs:
crates/lint/src/render.rs:
