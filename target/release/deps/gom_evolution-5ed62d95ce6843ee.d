/root/repo/target/release/deps/gom_evolution-5ed62d95ce6843ee.d: crates/evolution/src/lib.rs crates/evolution/src/baselines.rs crates/evolution/src/complex.rs crates/evolution/src/diff.rs crates/evolution/src/macros.rs crates/evolution/src/primitive.rs crates/evolution/src/versioning.rs

/root/repo/target/release/deps/libgom_evolution-5ed62d95ce6843ee.rlib: crates/evolution/src/lib.rs crates/evolution/src/baselines.rs crates/evolution/src/complex.rs crates/evolution/src/diff.rs crates/evolution/src/macros.rs crates/evolution/src/primitive.rs crates/evolution/src/versioning.rs

/root/repo/target/release/deps/libgom_evolution-5ed62d95ce6843ee.rmeta: crates/evolution/src/lib.rs crates/evolution/src/baselines.rs crates/evolution/src/complex.rs crates/evolution/src/diff.rs crates/evolution/src/macros.rs crates/evolution/src/primitive.rs crates/evolution/src/versioning.rs

crates/evolution/src/lib.rs:
crates/evolution/src/baselines.rs:
crates/evolution/src/complex.rs:
crates/evolution/src/diff.rs:
crates/evolution/src/macros.rs:
crates/evolution/src/primitive.rs:
crates/evolution/src/versioning.rs:
