/root/repo/target/release/deps/gom_runtime-f600ac945c1ff5ea.d: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs

/root/repo/target/release/deps/libgom_runtime-f600ac945c1ff5ea.rlib: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs

/root/repo/target/release/deps/libgom_runtime-f600ac945c1ff5ea.rmeta: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs

crates/runtime/src/lib.rs:
crates/runtime/src/convert.rs:
crates/runtime/src/object.rs:
crates/runtime/src/runtime.rs:
crates/runtime/src/value.rs:
