/root/repo/target/debug/deps/dispatch-66cc46ddbdad2ddc.d: crates/runtime/tests/dispatch.rs

/root/repo/target/debug/deps/dispatch-66cc46ddbdad2ddc: crates/runtime/tests/dispatch.rs

crates/runtime/tests/dispatch.rs:
