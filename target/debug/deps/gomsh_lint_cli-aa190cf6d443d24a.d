/root/repo/target/debug/deps/gomsh_lint_cli-aa190cf6d443d24a.d: tests/gomsh_lint_cli.rs

/root/repo/target/debug/deps/gomsh_lint_cli-aa190cf6d443d24a: tests/gomsh_lint_cli.rs

tests/gomsh_lint_cli.rs:

# env-dep:CARGO_BIN_EXE_gomsh=/root/repo/target/debug/gomsh
