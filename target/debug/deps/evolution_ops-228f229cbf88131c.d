/root/repo/target/debug/deps/evolution_ops-228f229cbf88131c.d: tests/evolution_ops.rs

/root/repo/target/debug/deps/evolution_ops-228f229cbf88131c: tests/evolution_ops.rs

tests/evolution_ops.rs:
