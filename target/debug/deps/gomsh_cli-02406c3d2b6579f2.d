/root/repo/target/debug/deps/gomsh_cli-02406c3d2b6579f2.d: tests/gomsh_cli.rs

/root/repo/target/debug/deps/gomsh_cli-02406c3d2b6579f2: tests/gomsh_cli.rs

tests/gomsh_cli.rs:

# env-dep:CARGO_BIN_EXE_gomsh=/root/repo/target/debug/gomsh
