/root/repo/target/debug/deps/gom_evolution-0f7ea5d97152b776.d: crates/evolution/src/lib.rs crates/evolution/src/baselines.rs crates/evolution/src/complex.rs crates/evolution/src/diff.rs crates/evolution/src/macros.rs crates/evolution/src/primitive.rs crates/evolution/src/versioning.rs Cargo.toml

/root/repo/target/debug/deps/libgom_evolution-0f7ea5d97152b776.rmeta: crates/evolution/src/lib.rs crates/evolution/src/baselines.rs crates/evolution/src/complex.rs crates/evolution/src/diff.rs crates/evolution/src/macros.rs crates/evolution/src/primitive.rs crates/evolution/src/versioning.rs Cargo.toml

crates/evolution/src/lib.rs:
crates/evolution/src/baselines.rs:
crates/evolution/src/complex.rs:
crates/evolution/src/diff.rs:
crates/evolution/src/macros.rs:
crates/evolution/src/primitive.rs:
crates/evolution/src/versioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
