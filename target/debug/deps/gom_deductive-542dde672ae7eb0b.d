/root/repo/target/debug/deps/gom_deductive-542dde672ae7eb0b.d: crates/deductive/src/lib.rs crates/deductive/src/ast.rs crates/deductive/src/changes.rs crates/deductive/src/check.rs crates/deductive/src/compile.rs crates/deductive/src/constraint.rs crates/deductive/src/db.rs crates/deductive/src/error.rs crates/deductive/src/eval.rs crates/deductive/src/incr.rs crates/deductive/src/parse.rs crates/deductive/src/pred.rs crates/deductive/src/provenance.rs crates/deductive/src/relation.rs crates/deductive/src/repair.rs crates/deductive/src/stratify.rs crates/deductive/src/symbol.rs crates/deductive/src/tuple.rs crates/deductive/src/value.rs

/root/repo/target/debug/deps/gom_deductive-542dde672ae7eb0b: crates/deductive/src/lib.rs crates/deductive/src/ast.rs crates/deductive/src/changes.rs crates/deductive/src/check.rs crates/deductive/src/compile.rs crates/deductive/src/constraint.rs crates/deductive/src/db.rs crates/deductive/src/error.rs crates/deductive/src/eval.rs crates/deductive/src/incr.rs crates/deductive/src/parse.rs crates/deductive/src/pred.rs crates/deductive/src/provenance.rs crates/deductive/src/relation.rs crates/deductive/src/repair.rs crates/deductive/src/stratify.rs crates/deductive/src/symbol.rs crates/deductive/src/tuple.rs crates/deductive/src/value.rs

crates/deductive/src/lib.rs:
crates/deductive/src/ast.rs:
crates/deductive/src/changes.rs:
crates/deductive/src/check.rs:
crates/deductive/src/compile.rs:
crates/deductive/src/constraint.rs:
crates/deductive/src/db.rs:
crates/deductive/src/error.rs:
crates/deductive/src/eval.rs:
crates/deductive/src/incr.rs:
crates/deductive/src/parse.rs:
crates/deductive/src/pred.rs:
crates/deductive/src/provenance.rs:
crates/deductive/src/relation.rs:
crates/deductive/src/repair.rs:
crates/deductive/src/stratify.rs:
crates/deductive/src/symbol.rs:
crates/deductive/src/tuple.rs:
crates/deductive/src/value.rs:
