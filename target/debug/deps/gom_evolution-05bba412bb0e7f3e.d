/root/repo/target/debug/deps/gom_evolution-05bba412bb0e7f3e.d: crates/evolution/src/lib.rs crates/evolution/src/baselines.rs crates/evolution/src/complex.rs crates/evolution/src/diff.rs crates/evolution/src/macros.rs crates/evolution/src/primitive.rs crates/evolution/src/versioning.rs

/root/repo/target/debug/deps/gom_evolution-05bba412bb0e7f3e: crates/evolution/src/lib.rs crates/evolution/src/baselines.rs crates/evolution/src/complex.rs crates/evolution/src/diff.rs crates/evolution/src/macros.rs crates/evolution/src/primitive.rs crates/evolution/src/versioning.rs

crates/evolution/src/lib.rs:
crates/evolution/src/baselines.rs:
crates/evolution/src/complex.rs:
crates/evolution/src/diff.rs:
crates/evolution/src/macros.rs:
crates/evolution/src/primitive.rs:
crates/evolution/src/versioning.rs:
