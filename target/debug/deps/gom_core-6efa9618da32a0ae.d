/root/repo/target/debug/deps/gom_core-6efa9618da32a0ae.d: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs

/root/repo/target/debug/deps/libgom_core-6efa9618da32a0ae.rlib: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs

/root/repo/target/debug/deps/libgom_core-6efa9618da32a0ae.rmeta: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs

crates/core/src/lib.rs:
crates/core/src/consistency.rs:
crates/core/src/explain.rs:
crates/core/src/manager.rs:
