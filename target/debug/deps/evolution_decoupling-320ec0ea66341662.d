/root/repo/target/debug/deps/evolution_decoupling-320ec0ea66341662.d: tests/evolution_decoupling.rs Cargo.toml

/root/repo/target/debug/deps/libevolution_decoupling-320ec0ea66341662.rmeta: tests/evolution_decoupling.rs Cargo.toml

tests/evolution_decoupling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
