/root/repo/target/debug/deps/gomflex-50d8ab1f814ca06b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgomflex-50d8ab1f814ca06b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
