/root/repo/target/debug/deps/gomsh-7f6badd1589b1535.d: src/bin/gomsh.rs

/root/repo/target/debug/deps/gomsh-7f6badd1589b1535: src/bin/gomsh.rs

src/bin/gomsh.rs:
