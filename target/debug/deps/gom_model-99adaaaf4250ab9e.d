/root/repo/target/debug/deps/gom_model-99adaaaf4250ab9e.d: crates/model/src/lib.rs crates/model/src/builtins.rs crates/model/src/catalog.rs crates/model/src/ids.rs crates/model/src/schema_base.rs

/root/repo/target/debug/deps/gom_model-99adaaaf4250ab9e: crates/model/src/lib.rs crates/model/src/builtins.rs crates/model/src/catalog.rs crates/model/src/ids.rs crates/model/src/schema_base.rs

crates/model/src/lib.rs:
crates/model/src/builtins.rs:
crates/model/src/catalog.rs:
crates/model/src/ids.rs:
crates/model/src/schema_base.rs:
