/root/repo/target/debug/deps/gomsh_lint_cli-5282e23846f58558.d: tests/gomsh_lint_cli.rs Cargo.toml

/root/repo/target/debug/deps/libgomsh_lint_cli-5282e23846f58558.rmeta: tests/gomsh_lint_cli.rs Cargo.toml

tests/gomsh_lint_cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_gomsh=placeholder:gomsh
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
