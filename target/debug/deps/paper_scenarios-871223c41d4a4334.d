/root/repo/target/debug/deps/paper_scenarios-871223c41d4a4334.d: tests/paper_scenarios.rs

/root/repo/target/debug/deps/paper_scenarios-871223c41d4a4334: tests/paper_scenarios.rs

tests/paper_scenarios.rs:
