/root/repo/target/debug/deps/gom_core-e4309afccc51124d.d: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs Cargo.toml

/root/repo/target/debug/deps/libgom_core-e4309afccc51124d.rmeta: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/consistency.rs:
crates/core/src/explain.rs:
crates/core/src/manager.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
