/root/repo/target/debug/deps/gomsh-872444bc4e095791.d: src/bin/gomsh.rs

/root/repo/target/debug/deps/gomsh-872444bc4e095791: src/bin/gomsh.rs

src/bin/gomsh.rs:
