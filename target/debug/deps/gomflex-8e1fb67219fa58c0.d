/root/repo/target/debug/deps/gomflex-8e1fb67219fa58c0.d: src/lib.rs

/root/repo/target/debug/deps/gomflex-8e1fb67219fa58c0: src/lib.rs

src/lib.rs:
