/root/repo/target/debug/deps/evolution_ops-8056c9e3ecf68db4.d: tests/evolution_ops.rs Cargo.toml

/root/repo/target/debug/deps/libevolution_ops-8056c9e3ecf68db4.rmeta: tests/evolution_ops.rs Cargo.toml

tests/evolution_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
