/root/repo/target/debug/deps/gom_core-156fac33ea774d08.d: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs

/root/repo/target/debug/deps/libgom_core-156fac33ea774d08.rlib: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs

/root/repo/target/debug/deps/libgom_core-156fac33ea774d08.rmeta: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs

crates/core/src/lib.rs:
crates/core/src/consistency.rs:
crates/core/src/explain.rs:
crates/core/src/manager.rs:
