/root/repo/target/debug/deps/incremental_equivalence-39e38d84974c4847.d: crates/deductive/tests/incremental_equivalence.rs

/root/repo/target/debug/deps/incremental_equivalence-39e38d84974c4847: crates/deductive/tests/incremental_equivalence.rs

crates/deductive/tests/incremental_equivalence.rs:
