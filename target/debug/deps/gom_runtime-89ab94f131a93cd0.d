/root/repo/target/debug/deps/gom_runtime-89ab94f131a93cd0.d: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs

/root/repo/target/debug/deps/libgom_runtime-89ab94f131a93cd0.rlib: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs

/root/repo/target/debug/deps/libgom_runtime-89ab94f131a93cd0.rmeta: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs

crates/runtime/src/lib.rs:
crates/runtime/src/convert.rs:
crates/runtime/src/object.rs:
crates/runtime/src/runtime.rs:
crates/runtime/src/value.rs:
