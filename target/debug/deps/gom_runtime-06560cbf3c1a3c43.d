/root/repo/target/debug/deps/gom_runtime-06560cbf3c1a3c43.d: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libgom_runtime-06560cbf3c1a3c43.rmeta: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/convert.rs:
crates/runtime/src/object.rs:
crates/runtime/src/runtime.rs:
crates/runtime/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
