/root/repo/target/debug/deps/gom_analyzer-70e134eeb68ab07c.d: crates/analyzer/src/lib.rs crates/analyzer/src/ast.rs crates/analyzer/src/body.rs crates/analyzer/src/car_schema.rs crates/analyzer/src/codereq.rs crates/analyzer/src/lex.rs crates/analyzer/src/lower.rs crates/analyzer/src/parse.rs crates/analyzer/src/paths.rs crates/analyzer/src/print.rs

/root/repo/target/debug/deps/libgom_analyzer-70e134eeb68ab07c.rlib: crates/analyzer/src/lib.rs crates/analyzer/src/ast.rs crates/analyzer/src/body.rs crates/analyzer/src/car_schema.rs crates/analyzer/src/codereq.rs crates/analyzer/src/lex.rs crates/analyzer/src/lower.rs crates/analyzer/src/parse.rs crates/analyzer/src/paths.rs crates/analyzer/src/print.rs

/root/repo/target/debug/deps/libgom_analyzer-70e134eeb68ab07c.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/ast.rs crates/analyzer/src/body.rs crates/analyzer/src/car_schema.rs crates/analyzer/src/codereq.rs crates/analyzer/src/lex.rs crates/analyzer/src/lower.rs crates/analyzer/src/parse.rs crates/analyzer/src/paths.rs crates/analyzer/src/print.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/ast.rs:
crates/analyzer/src/body.rs:
crates/analyzer/src/car_schema.rs:
crates/analyzer/src/codereq.rs:
crates/analyzer/src/lex.rs:
crates/analyzer/src/lower.rs:
crates/analyzer/src/parse.rs:
crates/analyzer/src/paths.rs:
crates/analyzer/src/print.rs:
