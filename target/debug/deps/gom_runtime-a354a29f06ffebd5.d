/root/repo/target/debug/deps/gom_runtime-a354a29f06ffebd5.d: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs

/root/repo/target/debug/deps/libgom_runtime-a354a29f06ffebd5.rlib: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs

/root/repo/target/debug/deps/libgom_runtime-a354a29f06ffebd5.rmeta: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs

crates/runtime/src/lib.rs:
crates/runtime/src/convert.rs:
crates/runtime/src/object.rs:
crates/runtime/src/runtime.rs:
crates/runtime/src/value.rs:
