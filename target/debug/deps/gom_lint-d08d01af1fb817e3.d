/root/repo/target/debug/deps/gom_lint-d08d01af1fb817e3.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/json.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/depgraph.rs crates/lint/src/passes/perf.rs crates/lint/src/passes/safety.rs crates/lint/src/passes/schema.rs crates/lint/src/passes/strat.rs crates/lint/src/render.rs

/root/repo/target/debug/deps/gom_lint-d08d01af1fb817e3: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/json.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/depgraph.rs crates/lint/src/passes/perf.rs crates/lint/src/passes/safety.rs crates/lint/src/passes/schema.rs crates/lint/src/passes/strat.rs crates/lint/src/render.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/json.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/depgraph.rs:
crates/lint/src/passes/perf.rs:
crates/lint/src/passes/safety.rs:
crates/lint/src/passes/schema.rs:
crates/lint/src/passes/strat.rs:
crates/lint/src/render.rs:
