/root/repo/target/debug/deps/gomsh-a4e047b24a916358.d: src/bin/gomsh.rs

/root/repo/target/debug/deps/gomsh-a4e047b24a916358: src/bin/gomsh.rs

src/bin/gomsh.rs:
