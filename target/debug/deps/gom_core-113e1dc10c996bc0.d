/root/repo/target/debug/deps/gom_core-113e1dc10c996bc0.d: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs

/root/repo/target/debug/deps/gom_core-113e1dc10c996bc0: crates/core/src/lib.rs crates/core/src/consistency.rs crates/core/src/explain.rs crates/core/src/manager.rs

crates/core/src/lib.rs:
crates/core/src/consistency.rs:
crates/core/src/explain.rs:
crates/core/src/manager.rs:
