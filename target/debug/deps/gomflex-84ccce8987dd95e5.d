/root/repo/target/debug/deps/gomflex-84ccce8987dd95e5.d: src/lib.rs

/root/repo/target/debug/deps/libgomflex-84ccce8987dd95e5.rlib: src/lib.rs

/root/repo/target/debug/deps/libgomflex-84ccce8987dd95e5.rmeta: src/lib.rs

src/lib.rs:
