/root/repo/target/debug/deps/properties-a28e87c3ba3a02ac.d: tests/properties.rs

/root/repo/target/debug/deps/properties-a28e87c3ba3a02ac: tests/properties.rs

tests/properties.rs:
