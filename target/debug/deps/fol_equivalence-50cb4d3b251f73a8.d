/root/repo/target/debug/deps/fol_equivalence-50cb4d3b251f73a8.d: crates/deductive/tests/fol_equivalence.rs

/root/repo/target/debug/deps/fol_equivalence-50cb4d3b251f73a8: crates/deductive/tests/fol_equivalence.rs

crates/deductive/tests/fol_equivalence.rs:
