/root/repo/target/debug/deps/evolution_decoupling-5e512f4cf4d06347.d: tests/evolution_decoupling.rs

/root/repo/target/debug/deps/evolution_decoupling-5e512f4cf4d06347: tests/evolution_decoupling.rs

tests/evolution_decoupling.rs:
