/root/repo/target/debug/deps/evolution_ops-e96a1d12cec51518.d: tests/evolution_ops.rs

/root/repo/target/debug/deps/evolution_ops-e96a1d12cec51518: tests/evolution_ops.rs

tests/evolution_ops.rs:
