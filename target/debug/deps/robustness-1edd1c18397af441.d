/root/repo/target/debug/deps/robustness-1edd1c18397af441.d: crates/analyzer/tests/robustness.rs

/root/repo/target/debug/deps/robustness-1edd1c18397af441: crates/analyzer/tests/robustness.rs

crates/analyzer/tests/robustness.rs:
