/root/repo/target/debug/deps/gomsh-723ad422ab1fde33.d: src/bin/gomsh.rs

/root/repo/target/debug/deps/gomsh-723ad422ab1fde33: src/bin/gomsh.rs

src/bin/gomsh.rs:
