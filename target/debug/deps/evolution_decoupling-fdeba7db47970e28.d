/root/repo/target/debug/deps/evolution_decoupling-fdeba7db47970e28.d: tests/evolution_decoupling.rs

/root/repo/target/debug/deps/evolution_decoupling-fdeba7db47970e28: tests/evolution_decoupling.rs

tests/evolution_decoupling.rs:
