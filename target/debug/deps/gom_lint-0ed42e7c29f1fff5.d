/root/repo/target/debug/deps/gom_lint-0ed42e7c29f1fff5.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/json.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/depgraph.rs crates/lint/src/passes/perf.rs crates/lint/src/passes/safety.rs crates/lint/src/passes/schema.rs crates/lint/src/passes/strat.rs crates/lint/src/render.rs Cargo.toml

/root/repo/target/debug/deps/libgom_lint-0ed42e7c29f1fff5.rmeta: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/json.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/depgraph.rs crates/lint/src/passes/perf.rs crates/lint/src/passes/safety.rs crates/lint/src/passes/schema.rs crates/lint/src/passes/strat.rs crates/lint/src/render.rs Cargo.toml

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/json.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/depgraph.rs:
crates/lint/src/passes/perf.rs:
crates/lint/src/passes/safety.rs:
crates/lint/src/passes/schema.rs:
crates/lint/src/passes/strat.rs:
crates/lint/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
