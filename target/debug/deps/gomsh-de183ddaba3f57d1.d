/root/repo/target/debug/deps/gomsh-de183ddaba3f57d1.d: src/bin/gomsh.rs Cargo.toml

/root/repo/target/debug/deps/libgomsh-de183ddaba3f57d1.rmeta: src/bin/gomsh.rs Cargo.toml

src/bin/gomsh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
