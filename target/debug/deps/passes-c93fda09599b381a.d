/root/repo/target/debug/deps/passes-c93fda09599b381a.d: crates/lint/tests/passes.rs

/root/repo/target/debug/deps/passes-c93fda09599b381a: crates/lint/tests/passes.rs

crates/lint/tests/passes.rs:
