/root/repo/target/debug/deps/gomflex-5785333b0e0f40cd.d: src/lib.rs

/root/repo/target/debug/deps/gomflex-5785333b0e0f40cd: src/lib.rs

src/lib.rs:
