/root/repo/target/debug/deps/paper_scenarios-b2e5efb8441320c9.d: tests/paper_scenarios.rs

/root/repo/target/debug/deps/paper_scenarios-b2e5efb8441320c9: tests/paper_scenarios.rs

tests/paper_scenarios.rs:
