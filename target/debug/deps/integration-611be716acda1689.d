/root/repo/target/debug/deps/integration-611be716acda1689.d: crates/lint/tests/integration.rs

/root/repo/target/debug/deps/integration-611be716acda1689: crates/lint/tests/integration.rs

crates/lint/tests/integration.rs:
