/root/repo/target/debug/deps/gom_evolution-c7ceced2d6fdc0e9.d: crates/evolution/src/lib.rs crates/evolution/src/baselines.rs crates/evolution/src/complex.rs crates/evolution/src/diff.rs crates/evolution/src/macros.rs crates/evolution/src/primitive.rs crates/evolution/src/versioning.rs

/root/repo/target/debug/deps/libgom_evolution-c7ceced2d6fdc0e9.rlib: crates/evolution/src/lib.rs crates/evolution/src/baselines.rs crates/evolution/src/complex.rs crates/evolution/src/diff.rs crates/evolution/src/macros.rs crates/evolution/src/primitive.rs crates/evolution/src/versioning.rs

/root/repo/target/debug/deps/libgom_evolution-c7ceced2d6fdc0e9.rmeta: crates/evolution/src/lib.rs crates/evolution/src/baselines.rs crates/evolution/src/complex.rs crates/evolution/src/diff.rs crates/evolution/src/macros.rs crates/evolution/src/primitive.rs crates/evolution/src/versioning.rs

crates/evolution/src/lib.rs:
crates/evolution/src/baselines.rs:
crates/evolution/src/complex.rs:
crates/evolution/src/diff.rs:
crates/evolution/src/macros.rs:
crates/evolution/src/primitive.rs:
crates/evolution/src/versioning.rs:
