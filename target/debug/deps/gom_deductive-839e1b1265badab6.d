/root/repo/target/debug/deps/gom_deductive-839e1b1265badab6.d: crates/deductive/src/lib.rs crates/deductive/src/ast.rs crates/deductive/src/changes.rs crates/deductive/src/check.rs crates/deductive/src/compile.rs crates/deductive/src/constraint.rs crates/deductive/src/db.rs crates/deductive/src/error.rs crates/deductive/src/eval.rs crates/deductive/src/incr.rs crates/deductive/src/parse.rs crates/deductive/src/pred.rs crates/deductive/src/provenance.rs crates/deductive/src/relation.rs crates/deductive/src/repair.rs crates/deductive/src/stratify.rs crates/deductive/src/symbol.rs crates/deductive/src/tuple.rs crates/deductive/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libgom_deductive-839e1b1265badab6.rmeta: crates/deductive/src/lib.rs crates/deductive/src/ast.rs crates/deductive/src/changes.rs crates/deductive/src/check.rs crates/deductive/src/compile.rs crates/deductive/src/constraint.rs crates/deductive/src/db.rs crates/deductive/src/error.rs crates/deductive/src/eval.rs crates/deductive/src/incr.rs crates/deductive/src/parse.rs crates/deductive/src/pred.rs crates/deductive/src/provenance.rs crates/deductive/src/relation.rs crates/deductive/src/repair.rs crates/deductive/src/stratify.rs crates/deductive/src/symbol.rs crates/deductive/src/tuple.rs crates/deductive/src/value.rs Cargo.toml

crates/deductive/src/lib.rs:
crates/deductive/src/ast.rs:
crates/deductive/src/changes.rs:
crates/deductive/src/check.rs:
crates/deductive/src/compile.rs:
crates/deductive/src/constraint.rs:
crates/deductive/src/db.rs:
crates/deductive/src/error.rs:
crates/deductive/src/eval.rs:
crates/deductive/src/incr.rs:
crates/deductive/src/parse.rs:
crates/deductive/src/pred.rs:
crates/deductive/src/provenance.rs:
crates/deductive/src/relation.rs:
crates/deductive/src/repair.rs:
crates/deductive/src/stratify.rs:
crates/deductive/src/symbol.rs:
crates/deductive/src/tuple.rs:
crates/deductive/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
