/root/repo/target/debug/deps/gom_runtime-5f09b495edc82dcf.d: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs

/root/repo/target/debug/deps/gom_runtime-5f09b495edc82dcf: crates/runtime/src/lib.rs crates/runtime/src/convert.rs crates/runtime/src/object.rs crates/runtime/src/runtime.rs crates/runtime/src/value.rs

crates/runtime/src/lib.rs:
crates/runtime/src/convert.rs:
crates/runtime/src/object.rs:
crates/runtime/src/runtime.rs:
crates/runtime/src/value.rs:
