/root/repo/target/debug/deps/gom_model-08d5e24f6dbb198d.d: crates/model/src/lib.rs crates/model/src/builtins.rs crates/model/src/catalog.rs crates/model/src/ids.rs crates/model/src/schema_base.rs

/root/repo/target/debug/deps/libgom_model-08d5e24f6dbb198d.rlib: crates/model/src/lib.rs crates/model/src/builtins.rs crates/model/src/catalog.rs crates/model/src/ids.rs crates/model/src/schema_base.rs

/root/repo/target/debug/deps/libgom_model-08d5e24f6dbb198d.rmeta: crates/model/src/lib.rs crates/model/src/builtins.rs crates/model/src/catalog.rs crates/model/src/ids.rs crates/model/src/schema_base.rs

crates/model/src/lib.rs:
crates/model/src/builtins.rs:
crates/model/src/catalog.rs:
crates/model/src/ids.rs:
crates/model/src/schema_base.rs:
