/root/repo/target/debug/deps/experiments-43b5d4a4db645a4b.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-43b5d4a4db645a4b: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
