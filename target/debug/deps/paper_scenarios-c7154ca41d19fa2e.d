/root/repo/target/debug/deps/paper_scenarios-c7154ca41d19fa2e.d: tests/paper_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_scenarios-c7154ca41d19fa2e.rmeta: tests/paper_scenarios.rs Cargo.toml

tests/paper_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
