/root/repo/target/debug/deps/gomsh_cli-6f218b7571488e26.d: tests/gomsh_cli.rs

/root/repo/target/debug/deps/gomsh_cli-6f218b7571488e26: tests/gomsh_cli.rs

tests/gomsh_cli.rs:

# env-dep:CARGO_BIN_EXE_gomsh=/root/repo/target/debug/gomsh
