/root/repo/target/debug/deps/gomsh-c04a1238540b6377.d: src/bin/gomsh.rs Cargo.toml

/root/repo/target/debug/deps/libgomsh-c04a1238540b6377.rmeta: src/bin/gomsh.rs Cargo.toml

src/bin/gomsh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
