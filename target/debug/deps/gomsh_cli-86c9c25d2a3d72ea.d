/root/repo/target/debug/deps/gomsh_cli-86c9c25d2a3d72ea.d: tests/gomsh_cli.rs Cargo.toml

/root/repo/target/debug/deps/libgomsh_cli-86c9c25d2a3d72ea.rmeta: tests/gomsh_cli.rs Cargo.toml

tests/gomsh_cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_gomsh=placeholder:gomsh
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
