/root/repo/target/debug/deps/gom_model-afa23d4016c8efee.d: crates/model/src/lib.rs crates/model/src/builtins.rs crates/model/src/catalog.rs crates/model/src/ids.rs crates/model/src/schema_base.rs Cargo.toml

/root/repo/target/debug/deps/libgom_model-afa23d4016c8efee.rmeta: crates/model/src/lib.rs crates/model/src/builtins.rs crates/model/src/catalog.rs crates/model/src/ids.rs crates/model/src/schema_base.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/builtins.rs:
crates/model/src/catalog.rs:
crates/model/src/ids.rs:
crates/model/src/schema_base.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
