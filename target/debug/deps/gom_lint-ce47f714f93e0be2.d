/root/repo/target/debug/deps/gom_lint-ce47f714f93e0be2.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/json.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/depgraph.rs crates/lint/src/passes/perf.rs crates/lint/src/passes/safety.rs crates/lint/src/passes/schema.rs crates/lint/src/passes/strat.rs crates/lint/src/render.rs

/root/repo/target/debug/deps/libgom_lint-ce47f714f93e0be2.rlib: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/json.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/depgraph.rs crates/lint/src/passes/perf.rs crates/lint/src/passes/safety.rs crates/lint/src/passes/schema.rs crates/lint/src/passes/strat.rs crates/lint/src/render.rs

/root/repo/target/debug/deps/libgom_lint-ce47f714f93e0be2.rmeta: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/json.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/depgraph.rs crates/lint/src/passes/perf.rs crates/lint/src/passes/safety.rs crates/lint/src/passes/schema.rs crates/lint/src/passes/strat.rs crates/lint/src/render.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/json.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/depgraph.rs:
crates/lint/src/passes/perf.rs:
crates/lint/src/passes/safety.rs:
crates/lint/src/passes/schema.rs:
crates/lint/src/passes/strat.rs:
crates/lint/src/render.rs:
