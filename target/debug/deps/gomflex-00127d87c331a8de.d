/root/repo/target/debug/deps/gomflex-00127d87c331a8de.d: src/lib.rs

/root/repo/target/debug/deps/libgomflex-00127d87c331a8de.rlib: src/lib.rs

/root/repo/target/debug/deps/libgomflex-00127d87c331a8de.rmeta: src/lib.rs

src/lib.rs:
