/root/repo/target/debug/deps/gomflex-220fc42a5fdbed0a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgomflex-220fc42a5fdbed0a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
