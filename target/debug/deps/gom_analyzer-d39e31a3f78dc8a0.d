/root/repo/target/debug/deps/gom_analyzer-d39e31a3f78dc8a0.d: crates/analyzer/src/lib.rs crates/analyzer/src/ast.rs crates/analyzer/src/body.rs crates/analyzer/src/car_schema.rs crates/analyzer/src/codereq.rs crates/analyzer/src/lex.rs crates/analyzer/src/lower.rs crates/analyzer/src/parse.rs crates/analyzer/src/paths.rs crates/analyzer/src/print.rs Cargo.toml

/root/repo/target/debug/deps/libgom_analyzer-d39e31a3f78dc8a0.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/ast.rs crates/analyzer/src/body.rs crates/analyzer/src/car_schema.rs crates/analyzer/src/codereq.rs crates/analyzer/src/lex.rs crates/analyzer/src/lower.rs crates/analyzer/src/parse.rs crates/analyzer/src/paths.rs crates/analyzer/src/print.rs Cargo.toml

crates/analyzer/src/lib.rs:
crates/analyzer/src/ast.rs:
crates/analyzer/src/body.rs:
crates/analyzer/src/car_schema.rs:
crates/analyzer/src/codereq.rs:
crates/analyzer/src/lex.rs:
crates/analyzer/src/lower.rs:
crates/analyzer/src/parse.rs:
crates/analyzer/src/paths.rs:
crates/analyzer/src/print.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
