/root/repo/target/debug/deps/gom_bench-12efc3e4a3de1c58.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/gom_bench-12efc3e4a3de1c58: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
