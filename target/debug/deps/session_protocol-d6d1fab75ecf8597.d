/root/repo/target/debug/deps/session_protocol-d6d1fab75ecf8597.d: tests/session_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libsession_protocol-d6d1fab75ecf8597.rmeta: tests/session_protocol.rs Cargo.toml

tests/session_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
