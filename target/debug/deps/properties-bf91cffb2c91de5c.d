/root/repo/target/debug/deps/properties-bf91cffb2c91de5c.d: tests/properties.rs

/root/repo/target/debug/deps/properties-bf91cffb2c91de5c: tests/properties.rs

tests/properties.rs:
