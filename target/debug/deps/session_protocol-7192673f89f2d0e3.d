/root/repo/target/debug/deps/session_protocol-7192673f89f2d0e3.d: tests/session_protocol.rs

/root/repo/target/debug/deps/session_protocol-7192673f89f2d0e3: tests/session_protocol.rs

tests/session_protocol.rs:
