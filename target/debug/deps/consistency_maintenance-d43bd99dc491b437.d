/root/repo/target/debug/deps/consistency_maintenance-d43bd99dc491b437.d: crates/runtime/tests/consistency_maintenance.rs

/root/repo/target/debug/deps/consistency_maintenance-d43bd99dc491b437: crates/runtime/tests/consistency_maintenance.rs

crates/runtime/tests/consistency_maintenance.rs:
