/root/repo/target/debug/deps/gom_bench-bbc8fdffc5fdcded.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgom_bench-bbc8fdffc5fdcded.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgom_bench-bbc8fdffc5fdcded.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
