/root/repo/target/debug/deps/session_protocol-24ac943ef355a1c6.d: tests/session_protocol.rs

/root/repo/target/debug/deps/session_protocol-24ac943ef355a1c6: tests/session_protocol.rs

tests/session_protocol.rs:
