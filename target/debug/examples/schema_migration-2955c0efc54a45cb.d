/root/repo/target/debug/examples/schema_migration-2955c0efc54a45cb.d: examples/schema_migration.rs Cargo.toml

/root/repo/target/debug/examples/libschema_migration-2955c0efc54a45cb.rmeta: examples/schema_migration.rs Cargo.toml

examples/schema_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
