/root/repo/target/debug/examples/versioning_fashion-98e40d9798d0d8e7.d: examples/versioning_fashion.rs Cargo.toml

/root/repo/target/debug/examples/libversioning_fashion-98e40d9798d0d8e7.rmeta: examples/versioning_fashion.rs Cargo.toml

examples/versioning_fashion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
