/root/repo/target/debug/examples/quickstart-9e55249510571f2f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9e55249510571f2f: examples/quickstart.rs

examples/quickstart.rs:
