/root/repo/target/debug/examples/schema_migration-12ee0529c7bd6f9c.d: examples/schema_migration.rs

/root/repo/target/debug/examples/schema_migration-12ee0529c7bd6f9c: examples/schema_migration.rs

examples/schema_migration.rs:
