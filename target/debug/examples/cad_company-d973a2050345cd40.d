/root/repo/target/debug/examples/cad_company-d973a2050345cd40.d: examples/cad_company.rs

/root/repo/target/debug/examples/cad_company-d973a2050345cd40: examples/cad_company.rs

examples/cad_company.rs:
