/root/repo/target/debug/examples/car_evolution-e7b37cdce9cb335d.d: examples/car_evolution.rs Cargo.toml

/root/repo/target/debug/examples/libcar_evolution-e7b37cdce9cb335d.rmeta: examples/car_evolution.rs Cargo.toml

examples/car_evolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
