/root/repo/target/debug/examples/schema_migration-6f4cb39255301e8e.d: examples/schema_migration.rs

/root/repo/target/debug/examples/schema_migration-6f4cb39255301e8e: examples/schema_migration.rs

examples/schema_migration.rs:
