/root/repo/target/debug/examples/car_evolution-dc60d25bf5d3ae50.d: examples/car_evolution.rs

/root/repo/target/debug/examples/car_evolution-dc60d25bf5d3ae50: examples/car_evolution.rs

examples/car_evolution.rs:
