/root/repo/target/debug/examples/cad_company-7f013e67ffa39c46.d: examples/cad_company.rs Cargo.toml

/root/repo/target/debug/examples/libcad_company-7f013e67ffa39c46.rmeta: examples/cad_company.rs Cargo.toml

examples/cad_company.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
