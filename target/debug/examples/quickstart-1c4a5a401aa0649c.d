/root/repo/target/debug/examples/quickstart-1c4a5a401aa0649c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1c4a5a401aa0649c: examples/quickstart.rs

examples/quickstart.rs:
