/root/repo/target/debug/examples/versioning_fashion-5344e8670916a4ac.d: examples/versioning_fashion.rs

/root/repo/target/debug/examples/versioning_fashion-5344e8670916a4ac: examples/versioning_fashion.rs

examples/versioning_fashion.rs:
