/root/repo/target/debug/examples/versioning_fashion-243df12437f46931.d: examples/versioning_fashion.rs

/root/repo/target/debug/examples/versioning_fashion-243df12437f46931: examples/versioning_fashion.rs

examples/versioning_fashion.rs:
