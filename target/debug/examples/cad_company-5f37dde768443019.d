/root/repo/target/debug/examples/cad_company-5f37dde768443019.d: examples/cad_company.rs

/root/repo/target/debug/examples/cad_company-5f37dde768443019: examples/cad_company.rs

examples/cad_company.rs:
