/root/repo/target/debug/examples/car_evolution-136090ced6f3005c.d: examples/car_evolution.rs

/root/repo/target/debug/examples/car_evolution-136090ced6f3005c: examples/car_evolution.rs

examples/car_evolution.rs:
