//! The schema manager: evolution sessions and the §3.5 protocol.
//!
//! > 1. The user starts a schema evolution session. 2. The user proposes
//! > change(s) and suggests to end the session. 3. The Analyzer extracts
//! > the necessary changes to the extensions of the base predicates. 4. The
//! > Consistency Control performs a consistency check. 5. If no violation
//! > was detected, the session ends successfully. 6. Otherwise repairs are
//! > derived upon user request … 8. …undoing the evolution session is
//! > always among the repairs. 9. The chosen repair is executed and the
//! > session ends successfully.
//!
//! [`SchemaManager`] wires the Analyzer, the Runtime System, and the
//! Consistency Control around the shared Database Model and exposes exactly
//! this protocol.

use crate::consistency;
use crate::explain::{explain_repair, ExplainedRepair};
use gom_analyzer::lower::{AnalyzeError, Analyzer, LoweredSchema};
use gom_deductive::{
    ChangeSet, Error as DbError, FxHashSet, Repair, Result as DbResult, Violation,
};
use gom_impact::{ImpactIndex, PlanConfig, PlanReport};
use gom_lint::{Baseline, LintConfig, LintReport, Severity};
use gom_model::{MetaModel, Oid, TypeId};
use gom_runtime::{RtResult, Runtime, Value};

/// Outcome of ending an evolution session (EES).
#[derive(Debug)]
pub enum EvolutionOutcome {
    /// The session committed; the net change set is returned.
    Consistent(ChangeSet),
    /// Violations were detected; the session stays open so the user can
    /// request repairs, apply one, or roll back.
    Inconsistent(Vec<Violation>),
}

impl EvolutionOutcome {
    /// True when the session committed.
    pub fn is_consistent(&self) -> bool {
        matches!(self, EvolutionOutcome::Consistent(_))
    }

    /// The violations, when inconsistent.
    pub fn violations(&self) -> &[Violation] {
        match self {
            EvolutionOutcome::Consistent(_) => &[],
            EvolutionOutcome::Inconsistent(v) => v,
        }
    }
}

/// The schema manager of Figure 1: Analyzer + Runtime System + Consistency
/// Control around the Database Model.
pub struct SchemaManager {
    /// The Database Model (schema base + object base model) with the
    /// consistency definition loaded.
    pub meta: MetaModel,
    /// The Analyzer front end.
    pub analyzer: Analyzer,
    /// The Runtime System.
    pub runtime: Runtime,
    /// Definition counts right after system setup; user-facing lints skip
    /// everything below this baseline.
    lint_baseline: Baseline,
    /// When set, [`Self::end_evolution`] refuses to commit a session whose
    /// schema base lints at this severity or worse.
    lint_gate: Option<Severity>,
    /// The durable session journal, when opened via
    /// [`SchemaManager::open`] (see [`crate::durable`]).
    store: Option<gom_store::Journal>,
    /// Cached impact index; rebuilt when the definition fingerprint moves.
    impact: Option<ImpactIndex>,
}

impl SchemaManager {
    /// Create a schema manager with the full GOM consistency definition
    /// installed.
    pub fn new() -> DbResult<Self> {
        let mut meta = MetaModel::new()?;
        Analyzer::install_extensions(&mut meta)
            .map_err(|e| DbError::SessionProtocol(e.to_string()))?;
        consistency::install(&mut meta)?;
        let lint_baseline = Baseline::current(&meta.db);
        Ok(SchemaManager {
            meta,
            analyzer: Analyzer::new(),
            runtime: Runtime::new(),
            lint_baseline,
            lint_gate: None,
            store: None,
            impact: None,
        })
    }

    pub(crate) fn set_store(&mut self, store: Option<gom_store::Journal>) {
        self.store = store;
    }

    pub(crate) fn store_ref(&self) -> Option<&gom_store::Journal> {
        self.store.as_ref()
    }

    pub(crate) fn store_mut(&mut self) -> Option<&mut gom_store::Journal> {
        self.store.as_mut()
    }

    // ----- linting ---------------------------------------------------------

    /// Lint the schema base (system definitions exempt).
    pub fn lint(&mut self) -> LintReport {
        let cfg = self.lint_config();
        gom_lint::lint_database(&mut self.meta.db, &cfg)
    }

    /// The lint configuration this manager uses (exposes the baseline so
    /// front ends can lint source text with the same exemptions).
    pub fn lint_config(&self) -> LintConfig {
        LintConfig {
            baseline: self.lint_baseline,
            ..LintConfig::default()
        }
    }

    /// Refuse to commit evolution sessions whose schema base lints at
    /// `level` or worse (`None` disables the gate).
    pub fn set_lint_gate(&mut self, level: Option<Severity>) {
        self.lint_gate = level;
    }

    /// When the lint gate is armed and trips, return the blocking error;
    /// the session stays open so the user can repair or roll back.
    fn check_lint_gate(&mut self) -> DbResult<()> {
        let Some(level) = self.lint_gate else {
            return Ok(());
        };
        let report = self.lint();
        if report.denies(level) {
            return Err(DbError::SessionProtocol(format!(
                "lint gate ({}): {} error(s), {} warning(s), {} note(s) — \
                 session left open; fix the schema or roll back",
                level.name(),
                report.count(Severity::Error),
                report.count(Severity::Warn),
                report.count(Severity::Note),
            )));
        }
        Ok(())
    }

    // ----- impact analysis -------------------------------------------------

    /// Build or reuse the cached impact index for the current definitions.
    fn impact_index(&mut self) -> DbResult<&ImpactIndex> {
        let fresh = self
            .impact
            .as_ref()
            .is_some_and(|i| i.is_fresh(&self.meta.db));
        if fresh {
            gom_obs::counter_add("impact.index.hits", 1);
        } else {
            self.impact = Some(ImpactIndex::build(&mut self.meta.db)?);
        }
        match self.impact.as_ref() {
            Some(i) => Ok(i),
            None => Err(DbError::SessionProtocol("impact index unavailable".into())),
        }
    }

    /// Pre-EES commit planner: the impact footprint, breaking/non-breaking
    /// classification, and `L06xx` diagnostics for the currently open
    /// session's net delta. Requires an open session (it plans the EES you
    /// have not run yet).
    pub fn plan(&mut self) -> DbResult<PlanReport> {
        if !self.in_evolution() {
            return Err(DbError::SessionProtocol(
                "no open evolution session (plan runs between BES and EES)".into(),
            ));
        }
        let delta = self.meta.db.session_delta()?;
        self.impact_index()?;
        let Some(index) = self.impact.as_ref() else {
            return Err(DbError::SessionProtocol("impact index unavailable".into()));
        };
        Ok(gom_impact::plan(
            &self.meta.db,
            index,
            &delta,
            &PlanConfig::default(),
        ))
    }

    /// The session's impact footprint, used to narrow EES delta-checking.
    /// `None` when impact analysis fails for any reason — EES then falls
    /// back to unfiltered delta checking, so planning can never block a
    /// commit.
    fn footprint_for(&mut self, delta: &ChangeSet) -> Option<FxHashSet<String>> {
        self.impact_index().ok()?;
        let index = self.impact.as_ref()?;
        let fp = index.footprint(&self.meta.db, delta);
        if gom_obs::enabled() {
            gom_obs::counter_add("impact.footprint.size", fp.constraints.len() as u64);
        }
        Some(fp.constraints)
    }

    // ----- session protocol ------------------------------------------------------

    /// Step 1 — BES: begin an evolution session. With a durable store
    /// attached, the `Bes` record is journaled immediately; if journaling
    /// fails, the in-memory session is rolled back so memory and disk agree.
    pub fn begin_evolution(&mut self) -> DbResult<()> {
        let _sp = gom_obs::span("session.bes");
        self.meta.db.begin_session()?;
        if let Some(j) = self.store.as_mut() {
            if let Err(e) = j.append(&gom_store::Record::Bes) {
                let _ = self.meta.db.rollback_session();
                return Err(crate::durable::db_err(e));
            }
        }
        // Arm incremental violation maintenance: every primitive inside the
        // session feeds its delta through DRed, so EES becomes a read of
        // the maintained violation relations (O(Δ), flat in schema size).
        // A no-op when already armed from a previous committed session.
        // Failure to arm never blocks a session — EES falls back down the
        // check ladder.
        if self.meta.db.ensure_maintained().is_err() {
            self.meta.db.discard_maintained();
        }
        Ok(())
    }

    /// Is a session active?
    pub fn in_evolution(&self) -> bool {
        self.meta.db.in_session()
    }

    /// Steps 4–5 — EES: check consistency incrementally against the
    /// session's delta. On success the session commits; on violations it
    /// stays open.
    pub fn end_evolution(&mut self) -> DbResult<EvolutionOutcome> {
        let _sp = gom_obs::span("session.ees");
        let delta = self.meta.db.session_delta()?;
        if gom_obs::enabled() {
            gom_obs::counter_add("session.delta.ops", delta.ops.len() as u64);
        }
        // Check ladder: maintained read → footprint-filtered delta check →
        // full delta check. The maintained path is a read of violation
        // relations DRed kept up to date per primitive (O(Δ)); if the
        // maintained state was discarded mid-session for any reason, the
        // fall-back re-derives exactly what the read would have returned
        // (sound given pre-session consistency; see gom-impact).
        let violations = match self.meta.db.check_maintained(&delta)? {
            Some(vs) => vs,
            None => {
                gom_obs::counter_add("check.maintenance.fallbacks", 1);
                match self.footprint_for(&delta) {
                    Some(allowed) => self.meta.db.check_delta_filtered(&delta, &allowed)?,
                    None => self.meta.db.check_delta(&delta)?,
                }
            }
        };
        if violations.is_empty() {
            self.check_lint_gate()?;
            self.journal_commit()?;
            let delta = self.meta.db.commit_session()?;
            gom_obs::counter_add("session.commits", 1);
            Ok(EvolutionOutcome::Consistent(delta))
        } else {
            gom_obs::counter_add("session.inconsistent", 1);
            Ok(EvolutionOutcome::Inconsistent(violations))
        }
    }

    /// Write-ahead commit: journal the session's delta and the `EesCommit`
    /// boundary (with a durability barrier) *before* the in-memory commit.
    /// On failure the session stays open and rollbackable.
    fn journal_commit(&mut self) -> DbResult<()> {
        let Some(j) = self.store.as_mut() else {
            return Ok(());
        };
        let _sp = gom_obs::span("session.journal_commit");
        let delta = self.meta.db.session_delta()?;
        for op in &delta.ops {
            j.append(&gom_store::Record::Op(crate::durable::to_jop(
                &self.meta.db,
                op,
            )))
            .map_err(crate::durable::db_err)?;
        }
        j.append(&gom_store::Record::EesCommit)
            .map_err(crate::durable::db_err)?;
        j.boundary_sync().map_err(crate::durable::db_err)?;
        Ok(())
    }

    /// Like [`Self::end_evolution`] but with a *full* (non-incremental)
    /// check — used when the pre-session state may already be inconsistent.
    pub fn end_evolution_full_check(&mut self) -> DbResult<EvolutionOutcome> {
        let violations = self.meta.db.check()?;
        if violations.is_empty() {
            self.check_lint_gate()?;
            self.journal_commit()?;
            let delta = self.meta.db.commit_session()?;
            Ok(EvolutionOutcome::Consistent(delta))
        } else {
            Ok(EvolutionOutcome::Inconsistent(violations))
        }
    }

    /// Steps 6–7: generate repairs for a violation, each explained in
    /// Analyzer / Runtime-System vocabulary. "Undoing the evolution session
    /// is always among the repairs" — callers additionally have
    /// [`Self::rollback_evolution`].
    pub fn repairs_for(&mut self, v: &Violation) -> DbResult<Vec<ExplainedRepair>> {
        let repairs = self.meta.db.repairs(v)?;
        Ok(repairs
            .into_iter()
            .map(|r| explain_repair(&self.meta, &self.runtime, r))
            .collect())
    }

    /// Step 9: execute a chosen repair (its changes join the session) and
    /// re-check. Returns the new outcome.
    ///
    /// This applies the base-fact changes verbatim. Repairs whose ops have
    /// physical consequences (`−PhRep`, `±Slot`) should go through
    /// [`Self::execute_repair`], which routes them to the Runtime System
    /// first — the paper's "the Consistency Control initiates the execution
    /// of the chosen repair by the Analyzer and/or Runtime System".
    pub fn apply_repair(&mut self, repair: &Repair) -> DbResult<EvolutionOutcome> {
        self.meta.db.apply(&repair.changes)?;
        self.end_evolution()
    }

    /// Step 9, architecturally: execute a repair by routing each operation
    /// to the component that owns it. `−PhRep(c, t)` means the Runtime
    /// System deletes every instance of `t` (retracting the slots too);
    /// `+Slot(c, a, v)` runs a conversion routine filling the new slot of
    /// every instance with `default`; `−Slot` runs the dropping conversion.
    /// All remaining operations are plain schema-base changes. Ends with a
    /// re-check.
    pub fn execute_repair(
        &mut self,
        repair: &Repair,
        default: gom_runtime::Value,
    ) -> DbResult<EvolutionOutcome> {
        let _sp = gom_obs::span("repair.execute");
        use gom_deductive::Op;
        // A repair generated elsewhere (or hand-built) may not have the
        // column shapes this router expects; reject malformed tuples as
        // errors instead of panicking mid-repair.
        fn sym_col(
            t: &gom_deductive::Tuple,
            i: usize,
            what: &str,
        ) -> DbResult<gom_deductive::Symbol> {
            t.get(i).as_sym().ok_or_else(|| {
                DbError::SessionProtocol(format!(
                    "malformed repair: {what} (column {i}) is not a symbol"
                ))
            })
        }
        for op in &repair.changes.ops {
            let pred_name = self.meta.db.pred_name(op.pred()).to_string();
            match (pred_name.as_str(), op) {
                ("PhRep", Op::Delete(_, t)) => {
                    let ty = gom_model::TypeId(sym_col(t, 1, "PhRep type")?);
                    let oids = self.runtime.objects.oids();
                    for oid in oids {
                        if self.runtime.objects.get(oid).map(|o| o.ty) == Some(ty) {
                            self.runtime
                                .delete(&mut self.meta, oid)
                                .map_err(|e| DbError::SessionProtocol(e.to_string()))?;
                        }
                    }
                    // Deleting the last instance already retracted the
                    // facts; remove explicitly in case there were none.
                    if self.meta.db.contains(op.pred(), t) {
                        if let Some(clid) = self.meta.phrep_of(ty) {
                            for (attr, _) in self.meta.slots_of(clid) {
                                self.meta.remove_slot(clid, &attr)?;
                            }
                        }
                        self.meta.db.remove(op.pred(), t)?;
                    }
                }
                ("Slot", Op::Insert(_, t)) => {
                    let clid = gom_model::PhRepId(sym_col(t, 0, "Slot phrep")?);
                    let attr = self
                        .meta
                        .db
                        .resolve(sym_col(t, 1, "Slot attr")?)
                        .to_string();
                    // Resolve the type behind the representation and the
                    // attribute's domain, then run the conversion.
                    let ty = {
                        let rows = self
                            .meta
                            .db
                            .relation(self.meta.cat.phrep)
                            .select(&[(0, clid.constant())]);
                        let mut rows = rows;
                        rows.next()
                            .and_then(|r| r.get(1).as_sym())
                            .map(gom_model::TypeId)
                    };
                    if let Some(ty) = ty {
                        let domain = self
                            .meta
                            .attrs_inherited(ty)
                            .into_iter()
                            .find(|(n, _)| *n == attr)
                            .map(|(_, d)| d)
                            .unwrap_or(self.meta.builtins.any);
                        self.runtime
                            .convert_add_slot(
                                &mut self.meta,
                                ty,
                                &attr,
                                domain,
                                gom_runtime::ValueSource::Default(default.clone()),
                            )
                            .map_err(|e| DbError::SessionProtocol(e.to_string()))?;
                    }
                    // Ensure the exact fact is present even when the
                    // conversion path differed.
                    if !self.meta.db.contains(op.pred(), t) {
                        self.meta.db.insert(op.pred(), t.clone())?;
                    }
                }
                ("Slot", Op::Delete(_, t)) => {
                    let clid = gom_model::PhRepId(sym_col(t, 0, "Slot phrep")?);
                    let attr = self
                        .meta
                        .db
                        .resolve(sym_col(t, 1, "Slot attr")?)
                        .to_string();
                    let ty = {
                        let rows = self
                            .meta
                            .db
                            .relation(self.meta.cat.phrep)
                            .select(&[(0, clid.constant())]);
                        let mut rows = rows;
                        rows.next()
                            .and_then(|r| r.get(1).as_sym())
                            .map(gom_model::TypeId)
                    };
                    if let Some(ty) = ty {
                        self.runtime
                            .convert_remove_slot(&mut self.meta, ty, &attr)
                            .map_err(|e| DbError::SessionProtocol(e.to_string()))?;
                    }
                    if self.meta.db.contains(op.pred(), t) {
                        self.meta.db.remove(op.pred(), t)?;
                    }
                }
                (_, Op::Insert(p, t)) => {
                    self.meta.db.insert(*p, t.clone())?;
                }
                (_, Op::Delete(p, t)) => {
                    self.meta.db.remove(*p, t)?;
                }
            }
        }
        self.end_evolution()
    }

    /// Roll the whole session back (always-available repair). The journal
    /// records `EesRollback`; even if that write is lost to a crash, the
    /// dangling `Bes` is discarded at recovery — the same end state.
    pub fn rollback_evolution(&mut self) -> DbResult<()> {
        let _sp = gom_obs::span("session.rollback");
        gom_obs::counter_add("session.rollbacks", 1);
        self.meta.db.rollback_session()?;
        if let Some(j) = self.store.as_mut() {
            j.append(&gom_store::Record::EesRollback)
                .map_err(crate::durable::db_err)?;
            j.boundary_sync().map_err(crate::durable::db_err)?;
        }
        Ok(())
    }

    /// Full consistency check outside any session.
    pub fn check(&mut self) -> DbResult<Vec<Violation>> {
        self.meta.db.check()
    }

    // ----- convenience front ends ---------------------------------------------------

    /// Define schemas from GOM source inside one evolution session: parse,
    /// lower, check. On violations the session is rolled back and the
    /// violations returned in the error; use the step-wise API to repair
    /// interactively instead.
    pub fn define_schema(&mut self, src: &str) -> Result<Vec<LoweredSchema>, DefineError> {
        self.begin_evolution().map_err(DefineError::Db)?;
        let lowered = match self.analyzer.lower_source(&mut self.meta, src) {
            Ok(l) => l,
            Err(e) => {
                self.rollback_evolution().map_err(DefineError::Db)?;
                return Err(DefineError::Analyze(e));
            }
        };
        match self.end_evolution().map_err(DefineError::Db)? {
            EvolutionOutcome::Consistent(_) => Ok(lowered),
            EvolutionOutcome::Inconsistent(violations) => {
                let rendered = violations.iter().map(|v| v.render(&self.meta.db)).collect();
                self.rollback_evolution().map_err(DefineError::Db)?;
                Err(DefineError::Inconsistent(rendered))
            }
        }
    }

    /// Create an object (delegates to the Runtime System; `PhRep`/`Slot`
    /// facts are reported automatically).
    pub fn create_object(&mut self, t: TypeId) -> RtResult<Oid> {
        self.runtime.create(&mut self.meta, t)
    }

    /// Read an attribute of an object (with masking).
    pub fn get_attr(&mut self, oid: Oid, attr: &str) -> RtResult<Value> {
        self.runtime.get_attr(&mut self.meta, oid, attr)
    }

    /// Write an attribute of an object (with masking).
    pub fn set_attr(&mut self, oid: Oid, attr: &str, v: Value) -> RtResult<()> {
        self.runtime.set_attr(&mut self.meta, oid, attr, v)
    }

    /// Call an operation on an object (dynamic binding, interpretation).
    pub fn call(&mut self, oid: Oid, op: &str, args: &[Value]) -> RtResult<Value> {
        self.runtime.call(&mut self.meta, oid, op, args)
    }

    /// Add consistency definitions (rules and/or constraints) from text —
    /// the paper's "feeding some additional definitions into the
    /// consistency control component".
    pub fn add_consistency(&mut self, text: &str) -> DbResult<()> {
        self.meta.db.load(text)
    }

    /// Drop a constraint by name (changing the definition of consistency).
    pub fn drop_constraint(&mut self, name: &str) -> bool {
        self.meta.db.remove_constraint(name)
    }
}

/// Error from the one-shot [`SchemaManager::define_schema`] front end.
#[derive(Debug)]
pub enum DefineError {
    /// Parse/lowering failure (session rolled back).
    Analyze(AnalyzeError),
    /// Consistency violations (rendered; session rolled back).
    Inconsistent(Vec<String>),
    /// Database error.
    Db(DbError),
}

impl std::fmt::Display for DefineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DefineError::Analyze(e) => write!(f, "{e}"),
            DefineError::Inconsistent(v) => {
                write!(f, "schema is inconsistent: {}", v.join("; "))
            }
            DefineError::Db(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DefineError {}

#[cfg(test)]
mod tests {
    use super::*;
    use gom_analyzer::car_schema::CAR_SCHEMA_SRC;
    use gom_deductive::RepairKind;

    #[test]
    fn car_schema_defines_consistently() {
        let mut mgr = SchemaManager::new().unwrap();
        let lowered = mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
        assert_eq!(lowered.len(), 1);
        assert!(mgr.check().unwrap().is_empty());
    }

    #[test]
    fn inconsistent_schema_is_rolled_back() {
        let mut mgr = SchemaManager::new().unwrap();
        // An operation without implementation violates decl_has_code.
        let src = "\
schema S is
  type T is
  operations
    declare op : || -> int;
  end type T;
end schema S;";
        let err = mgr.define_schema(src).unwrap_err();
        let DefineError::Inconsistent(v) = err else {
            panic!("expected Inconsistent, got different error");
        };
        assert!(v.iter().any(|s| s.contains("decl_has_code")), "{v:?}");
        // Rollback left no trace.
        assert!(mgr.meta.schema_by_name("S").is_none());
        assert!(mgr.check().unwrap().is_empty());
    }

    #[test]
    fn paper_fueltype_session_with_repairs() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
        let sid = mgr.meta.schema_by_name("CarSchema").unwrap();
        let car = mgr.meta.type_by_name(sid, "Car").unwrap();
        // Cars exist (so PhRep/Slot facts exist).
        mgr.create_object(car).unwrap();
        assert!(mgr.check().unwrap().is_empty());
        // §3.5: add fuelType to Car in a session.
        mgr.begin_evolution().unwrap();
        let string = mgr.meta.builtins.string;
        mgr.meta.add_attr(car, "fuelType", string).unwrap();
        let outcome = mgr.end_evolution().unwrap();
        let EvolutionOutcome::Inconsistent(violations) = outcome else {
            panic!("expected inconsistency");
        };
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].constraint, "slot_for_every_attr");
        // Repairs, explained.
        let repairs = mgr.repairs_for(&violations[0]).unwrap();
        assert_eq!(
            repairs.len(),
            3,
            "{:?}",
            repairs
                .iter()
                .map(|r| r.render(&mgr.meta))
                .collect::<Vec<_>>()
        );
        let all = repairs
            .iter()
            .map(|r| r.render(&mgr.meta))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(all.contains("remove attribute `fuelType"), "{all}");
        assert!(all.contains("DELETE ALL 1 instance(s)"), "{all}");
        assert!(all.contains("CONVERSION"), "{all}");
        // Choose the conversion repair (insert the slot) and execute the
        // actual conversion in the Runtime System, then apply.
        let conv = repairs
            .iter()
            .find(|r| r.repair.kind == RepairKind::CompleteConclusion)
            .unwrap()
            .repair
            .clone();
        let outcome = mgr.apply_repair(&conv).unwrap();
        assert!(outcome.is_consistent(), "{:?}", outcome.violations());
        assert!(mgr.check().unwrap().is_empty());
    }

    #[test]
    fn rollback_is_always_available() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
        let facts_before = mgr.meta.db.fact_count();
        let sid = mgr.meta.schema_by_name("CarSchema").unwrap();
        let car = mgr.meta.type_by_name(sid, "Car").unwrap();
        mgr.begin_evolution().unwrap();
        let string = mgr.meta.builtins.string;
        mgr.meta.add_attr(car, "fuelType", string).unwrap();
        let car2 = mgr.meta.new_type(sid, "Truck").unwrap();
        mgr.meta.add_subtype(car2, car).unwrap();
        mgr.rollback_evolution().unwrap();
        assert_eq!(mgr.meta.db.fact_count(), facts_before);
        assert!(mgr.meta.type_by_name(sid, "Truck").is_none());
    }

    #[test]
    fn runtime_calls_work_through_manager() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
        let sid = mgr.meta.schema_by_name("CarSchema").unwrap();
        let person = mgr.meta.type_by_name(sid, "Person").unwrap();
        let p = mgr.create_object(person).unwrap();
        mgr.set_attr(p, "age", Value::Int(30)).unwrap();
        assert_eq!(mgr.get_attr(p, "age").unwrap(), Value::Int(30));
        // Consistency still holds with objects around.
        assert!(mgr.check().unwrap().is_empty());
    }

    #[test]
    fn nested_sessions_rejected_by_protocol() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.begin_evolution().unwrap();
        assert!(mgr.begin_evolution().is_err());
        mgr.rollback_evolution().unwrap();
        assert!(!mgr.in_evolution());
    }
}
