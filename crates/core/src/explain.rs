//! Repair explanations (paper §3.5, "readability of repairs").
//!
//! "Since the Consistency Control is not aware of the actual changes in the
//! Object Base necessary to derive the proposed changes in the Database
//! Model, we assume that for each change to a base predicate's extension
//! either the Analyzer or the Runtime System can explain the changes to be
//! performed." This module is that explanation service: it maps raw
//! `+P(…)`/`−P(…)` operations to user-facing sentences, including the two
//! famous ones — deleting a `PhRep` fact "results in deleting all cars",
//! and inserting a `Slot` fact "can be achieved by executing the conversion
//! routines".

use gom_deductive::{Op, Repair};
use gom_model::{MetaModel, PhRepId, TypeId};
use gom_runtime::Runtime;

/// A repair together with its per-operation explanations.
#[derive(Clone, Debug)]
pub struct ExplainedRepair {
    /// The executable repair.
    pub repair: Repair,
    /// One sentence per operation, in order.
    pub explanations: Vec<String>,
}

impl ExplainedRepair {
    /// Render for display: kind, raw ops, explanations.
    pub fn render(&self, m: &MetaModel) -> String {
        let mut s = self.repair.render(&m.db);
        for e in &self.explanations {
            s.push_str("\n      → ");
            s.push_str(e);
        }
        s
    }
}

fn type_label(m: &MetaModel, t: TypeId) -> String {
    match (
        m.type_name(t),
        m.schema_of(t).and_then(|s| schema_label(m, s)),
    ) {
        (Some(n), Some(s)) => format!("{n}@{s}"),
        (Some(n), None) => n,
        _ => format!("<{}>", m.db.resolve(t.sym())),
    }
}

fn schema_label(m: &MetaModel, s: gom_model::SchemaId) -> Option<String> {
    let mut rel = m.db.relation(m.cat.schema).select(&[(0, s.constant())]);
    rel.next()
        .and_then(|t| t.get(1).as_sym())
        .map(|sym| m.db.resolve(sym).to_string())
}

fn sym_str(m: &MetaModel, c: gom_deductive::Const) -> String {
    match c {
        gom_deductive::Const::Sym(s) => m.db.resolve(s).to_string(),
        gom_deductive::Const::Int(n) => n.to_string(),
    }
}

/// Explain one base-predicate operation in Analyzer/Runtime-System terms.
pub fn explain_op(m: &MetaModel, rt: &Runtime, op: &Op) -> String {
    let pred_name = m.db.pred_name(op.pred()).to_string();
    let t = op.tuple();
    let ins = matches!(op, Op::Insert(..));
    let tid = |i: usize| TypeId(t.get(i).as_sym().expect("type column"));
    match pred_name.as_str() {
        "Schema" => format!(
            "{} schema `{}`",
            if ins { "create" } else { "drop" },
            sym_str(m, t.get(1))
        ),
        "Type" => format!(
            "{} type `{}` in schema `{}`",
            if ins { "introduce" } else { "delete" },
            sym_str(m, t.get(1)),
            m.schema_of(tid(0))
                .and_then(|s| schema_label(m, s))
                .unwrap_or_else(|| sym_str(m, t.get(2)))
        ),
        "Attr" => format!(
            "{} attribute `{} : {}` {} type `{}`",
            if ins { "add" } else { "remove" },
            sym_str(m, t.get(1)),
            type_label(m, tid(2)),
            if ins { "to" } else { "from" },
            type_label(m, tid(0))
        ),
        "Decl" => format!(
            "{} operation `{}` on type `{}`",
            if ins { "declare" } else { "drop" },
            sym_str(m, t.get(2)),
            type_label(m, tid(1))
        ),
        "ArgDecl" => format!(
            "{} argument {} of declaration `{}`",
            if ins { "add" } else { "remove" },
            sym_str(m, t.get(1)),
            sym_str(m, t.get(0))
        ),
        "Code" => format!(
            "{} the implementation of declaration `{}`",
            if ins { "supply" } else { "remove" },
            sym_str(m, t.get(2))
        ),
        "SubTypRel" => format!(
            "{} the subtype edge `{} <: {}`",
            if ins { "add" } else { "remove" },
            type_label(m, tid(0)),
            type_label(m, tid(1))
        ),
        "DeclRefinement" => format!(
            "{} the refinement `{}` of `{}`",
            if ins { "record" } else { "drop" },
            sym_str(m, t.get(0)),
            sym_str(m, t.get(1))
        ),
        "CodeReqDecl" | "CodeReqAttr" => format!(
            "adjust the code dependency `{pred_name}{}` (re-analyze or edit the method body)",
            t.display(m.db.interner())
        ),
        "PhRep" => {
            let ty = tid(1);
            let count = rt.objects.extent(ty).len();
            if ins {
                format!(
                    "materialise a physical representation for type `{}`",
                    type_label(m, ty)
                )
            } else {
                format!(
                    "DELETE ALL {count} instance(s) of type `{}` (drop its physical representation)",
                    type_label(m, ty)
                )
            }
        }
        "Slot" => {
            let clid = PhRepId(t.get(0).as_sym().expect("phrep column"));
            let ty =
                m.db.relation(m.cat.phrep)
                    .select(&[(0, clid.constant())])
                    .next()
                    .and_then(|r| r.get(1).as_sym())
                    .map(TypeId);
            let tyname = ty.map_or_else(|| "?".to_string(), |ty| type_label(m, ty));
            if ins {
                format!(
                    "execute a CONVERSION routine adding slot `{}` to every instance of `{tyname}` \
                     (value from a default, per-instance input, or a user-supplied operation)",
                    sym_str(m, t.get(1))
                )
            } else {
                format!(
                    "execute a conversion routine dropping slot `{}` from every instance of `{tyname}`",
                    sym_str(m, t.get(1))
                )
            }
        }
        "evolves_to_S" => format!(
            "{} the schema-version edge {}",
            if ins { "record" } else { "remove" },
            t.display(m.db.interner())
        ),
        "evolves_to_T" => format!(
            "{} the type-version edge {}",
            if ins { "record" } else { "remove" },
            t.display(m.db.interner())
        ),
        "FashionType" => format!(
            "{} substitutability of `{}` for `{}` (fashion)",
            if ins { "declare" } else { "revoke" },
            type_label(m, tid(0)),
            type_label(m, tid(1))
        ),
        "FashionDecl" => format!(
            "{} a fashion imitation of operation `{}`",
            if ins { "supply" } else { "remove" },
            sym_str(m, t.get(0))
        ),
        "FashionAttr" => format!(
            "{} fashion read/write redirection for attribute `{}`",
            if ins { "supply" } else { "remove" },
            sym_str(m, t.get(1))
        ),
        _ => format!(
            "{}{}{}",
            if ins { "+" } else { "-" },
            pred_name,
            t.display(m.db.interner())
        ),
    }
}

/// Attach explanations to a repair.
pub fn explain_repair(m: &MetaModel, rt: &Runtime, repair: Repair) -> ExplainedRepair {
    let explanations = repair
        .changes
        .ops
        .iter()
        .map(|op| explain_op(m, rt, op))
        .collect();
    ExplainedRepair {
        repair,
        explanations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gom_deductive::{ChangeSet, Tuple};

    #[test]
    fn phrep_delete_mentions_instance_count() {
        let mut m = MetaModel::new().unwrap();
        let s = m.new_schema("CarSchema").unwrap();
        let car = m.new_type(s, "Car").unwrap();
        m.add_subtype(car, m.builtins.any).unwrap();
        let mut rt = Runtime::new();
        rt.create(&mut m, car).unwrap();
        rt.create(&mut m, car).unwrap();
        let clid = m.phrep_of(car).unwrap();
        let op = Op::Delete(
            m.cat.phrep,
            Tuple::from(vec![clid.constant(), car.constant()]),
        );
        let text = explain_op(&m, &rt, &op);
        assert!(text.contains("DELETE ALL 2 instance(s)"), "{text}");
        assert!(text.contains("Car@CarSchema"), "{text}");
    }

    #[test]
    fn slot_insert_mentions_conversion() {
        let mut m = MetaModel::new().unwrap();
        let s = m.new_schema("CarSchema").unwrap();
        let car = m.new_type(s, "Car").unwrap();
        m.add_subtype(car, m.builtins.any).unwrap();
        let rt = Runtime::new();
        let clid = m.new_phrep(car).unwrap();
        let fuel = m.db.constant("fuelType");
        let op = Op::Insert(
            m.cat.slot,
            Tuple::from(vec![
                clid.constant(),
                fuel,
                m.builtins.phrep_string.constant(),
            ]),
        );
        let text = explain_op(&m, &rt, &op);
        assert!(text.contains("CONVERSION"), "{text}");
        assert!(text.contains("fuelType"), "{text}");
    }

    #[test]
    fn attr_ops_name_type_and_domain() {
        let mut m = MetaModel::new().unwrap();
        let s = m.new_schema("S").unwrap();
        let t = m.new_type(s, "T").unwrap();
        let rt = Runtime::new();
        let a = m.db.constant("x");
        let op = Op::Insert(
            m.cat.attr,
            Tuple::from(vec![t.constant(), a, m.builtins.int.constant()]),
        );
        let text = explain_op(&m, &rt, &op);
        assert!(
            text.contains("add attribute `x : int@__builtin` to type `T@S`"),
            "{text}"
        );
    }

    #[test]
    fn explained_repair_renders_all_ops() {
        let mut m = MetaModel::new().unwrap();
        let s = m.new_schema("S").unwrap();
        let t = m.new_type(s, "T").unwrap();
        let rt = Runtime::new();
        let a = m.db.constant("x");
        let mut cs = ChangeSet::new();
        cs.delete(
            m.cat.attr,
            Tuple::from(vec![t.constant(), a, m.builtins.int.constant()]),
        );
        let er = explain_repair(
            &m,
            &rt,
            Repair {
                changes: cs,
                kind: gom_deductive::RepairKind::InvalidatePremise,
            },
        );
        assert_eq!(er.explanations.len(), 1);
        assert!(er.render(&m).contains("remove attribute"));
    }
}
