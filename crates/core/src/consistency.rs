//! The declarative consistency definition for the core of GOM.
//!
//! This module *is* the implementation of the Consistency Control in the
//! sense of the paper's §2.2: "Deciding to rely on deductive database
//! technology cuts the implementational efforts for this component down to
//! zero". The entire consistency definition is the two text documents below
//! — derived-predicate rules ([`GOM_RULES`], §3.3) and constraints
//! ([`GOM_CONSTRAINTS`], §3.3–§3.4) — fed verbatim into the deductive
//! database. Changing the notion of consistency (paper §2.1, e.g.
//! restraining to single inheritance) is editing this text or calling
//! `add_constraint`/`remove_constraint`, never touching module code.

use gom_deductive::Result;
use gom_model::MetaModel;

/// Derived predicates of §3.3: transitive closures, inherited attributes
/// (`Attr^i`), refinement screening (`Refined`), and inherited operations
/// (`Decl^i`).
pub const GOM_RULES: &str = "\
derived SubTypRelT(sub, super).
SubTypRelT(X, Y) :- SubTypRel(X, Y).
SubTypRelT(X, Z) :- SubTypRel(X, Y), SubTypRelT(Y, Z).

derived DeclRefinementT(refining, refined).
DeclRefinementT(X, Y) :- DeclRefinement(X, Y).
DeclRefinementT(X, Z) :- DeclRefinement(X, Y), DeclRefinementT(Y, Z).

% Attr^i — attributes including inherited ones.
derived AttrI(tid, attr, domain).
AttrI(T, A, D) :- Attr(T, A, D).
AttrI(T1, A, D) :- SubTypRelT(T1, T2), Attr(T2, A, D).

% Refined(X, Y): declaration X has a refinement associated to type Y or one
% of Y's subtypes on the path — the paper's screening predicate.
derived Refined(did, tid).
Refined(X1, Y21) :- Decl(X1, Y11, Z1, Y12), DeclRefinementT(X2, X1),
                    Decl(X2, Y21, Z2, Y22).
Refined(X1, Y)   :- Decl(X1, Y11, Z1, Y12), DeclRefinementT(X2, X1),
                    Decl(X2, Y21, Z2, Y22), SubTypRelT(Y, Y21).

% Decl^i — operations including inherited ones, hiding refined originals.
derived DeclI(did, tid, op, result).
DeclI(X, Y11, Z, Y12) :- Decl(X, Y11, Z, Y12).
DeclI(X, Y11, Z, Y12) :- SubTypRelT(Y11, Y21), Decl(X, Y21, Z, Y12),
                         not Refined(X, Y11).
";

/// The constraint catalog: §3.3 (schema consistency) and §3.4
/// (schema/object consistency). Key constraints are declared on the base
/// predicates themselves (`!` columns in the catalog) and therefore do not
/// appear here — exactly as the paper "does not state \[keys\] explicitly due
/// to their simplicity".
pub const GOM_CONSTRAINTS: &str = "\
% ===== uniqueness (§3.3) =====================================================
constraint type_name_unique \"every type name can be used at most once within one schema\":
  forall X1, X2, Y1, Y2, Z:
    Type(X1, Y1, Z) & Type(X2, Y2, Z) & Y1 = Y2 -> X1 = X2.

constraint code_unique_per_decl \"a declaration has exactly one implementation (1:1 implements)\":
  forall C1, X1, C2, X2, D: Code(C1, X1, D) & Code(C2, X2, D) -> C1 = C2.

% ===== referential integrity (§3.3, 'always the same pattern') ==============
constraint type_schema_ref \"the schema of a type must exist\":
  forall T, N, S: Type(T, N, S) -> exists SN: Schema(S, SN).

constraint attr_type_ref \"attributes belong to existing types\":
  forall T, A, D: Attr(T, A, D) -> exists N, S: Type(T, N, S).

constraint attr_domain_ref \"the domain of every attribute must be defined\":
  forall T, A, D: Attr(T, A, D) -> exists N, S: Type(D, N, S).

constraint decl_receiver_ref \"declarations belong to existing types\":
  forall D, Tc, O, Tt: Decl(D, Tc, O, Tt) -> exists N, S: Type(Tc, N, S).

constraint decl_result_ref \"result types of declarations must be defined\":
  forall D, Tc, O, Tt: Decl(D, Tc, O, Tt) -> exists N, S: Type(Tt, N, S).

constraint argdecl_decl_ref \"argument declarations belong to existing declarations\":
  forall D, I, T: ArgDecl(D, I, T) -> exists Tc, O, Tt: Decl(D, Tc, O, Tt).

constraint argdecl_type_ref \"argument types must be defined\":
  forall D, I, T: ArgDecl(D, I, T) -> exists N, S: Type(T, N, S).

constraint code_decl_ref \"code implements an existing declaration\":
  forall C, X, D: Code(C, X, D) -> exists Tc, O, Tt: Decl(D, Tc, O, Tt).

constraint subtyp_sub_ref \"subtype edges reference existing types (sub)\":
  forall X, Y: SubTypRel(X, Y) -> exists N, S: Type(X, N, S).

constraint subtyp_super_ref \"subtype edges reference existing types (super)\":
  forall X, Y: SubTypRel(X, Y) -> exists N, S: Type(Y, N, S).

constraint refine_refs \"refinement edges reference existing declarations\":
  forall X, Y: DeclRefinement(X, Y) ->
    (exists T1, O1, R1: Decl(X, T1, O1, R1)) & (exists T2, O2, R2: Decl(Y, T2, O2, R2)).

constraint codereq_decl_refs \"all invoked operations must be present\":
  forall C, D: CodeReqDecl(C, D) ->
    (exists X, D2: Code(C, X, D2)) & (exists Tc, O, Tt: Decl(D, Tc, O, Tt)).

constraint codereq_attr_refs \"all accessed attributes must be present (inherited ones count)\":
  forall C, T, A: CodeReqAttr(C, T, A) ->
    (exists X, D: Code(C, X, D)) & (exists TD: AttrI(T, A, TD)).

% ===== existence (§3.3) ======================================================
constraint decl_has_code \"for any declaration a piece of code implementing it must be present\":
  forall D, Tc, O, Tt: Decl(D, Tc, O, Tt) -> exists C1, C2: Code(C1, C2, D).

% ===== SubTypRel / DeclRefinement structure (§3.3) ===========================
constraint subtype_acyclic \"the subtype relationship must be acyclic\":
  forall X: !SubTypRelT(X, X).

constraint any_is_root \"there must exist a unique root called ANY\":
  forall X, Y, Z: Type(X, Y, Z) -> X = 'tid_any' | SubTypRelT(X, 'tid_any').

constraint refinement_acyclic \"the refinement relationship must be acyclic\":
  forall X: !DeclRefinementT(X, X).

% ===== multiple inheritance (§3.3) ===========================================
constraint inherited_attr_unique \"inherited attributes with the same name must have the same domain\":
  forall T, A, D1, D2: AttrI(T, A, D1) & AttrI(T, A, D2) -> D1 = D2.

constraint inherited_op_needs_refinement \"commonly inherited operations need a common refinement\":
  forall T, T1, T2, O, Tt1, Tt2, D1, D2:
    SubTypRel(T, T1) & SubTypRel(T, T2) &
    DeclI(D1, T1, O, Tt1) & DeclI(D2, T2, O, Tt2) & D1 != D2
  -> exists D: DeclRefinement(D, D1) & DeclRefinement(D, D2).

% ===== refinement / contravariance (§3.3) ====================================
constraint refinement_contravariance \"refinements must obey contravariance\":
  forall D1, D2, Tc1, Tc2, O1, O2, Tt1, Tt2:
    DeclRefinement(D2, D1) & Decl(D1, Tc1, O1, Tt1) & Decl(D2, Tc2, O2, Tt2)
  ->
    O1 = O2
    & (Tc1 = Tc2 | SubTypRelT(Tc2, Tc1))
    & (Tt1 = Tt2 | SubTypRelT(Tt2, Tt1))
    & (forall N, TA1, TA2:
         ArgDecl(D1, N, TA1) & ArgDecl(D2, N, TA2) -> TA1 = TA2 | SubTypRelT(TA1, TA2))
    & (forall N1, TA1b: ArgDecl(D1, N1, TA1b) -> exists TA2b: ArgDecl(D2, N1, TA2b))
    & (forall N2, TA2c: ArgDecl(D2, N2, TA2c) -> exists TA1c: ArgDecl(D1, N2, TA1c)).

% ===== schema/object consistency (§3.4) ======================================
constraint phrep_type_ref \"physical representations belong to existing types\":
  forall C, T: PhRep(C, T) -> exists N, S: Type(T, N, S).

constraint phrep_unique_per_type \"only one physical representation per type\":
  forall C1, T, C2: PhRep(C1, T) & PhRep(C2, T) -> C1 = C2.

constraint slot_phrep_ref \"slots belong to existing physical representations\":
  forall C, A, CA: Slot(C, A, CA) -> exists T: PhRep(C, T).

constraint slot_value_ref \"slot values are existing physical representations\":
  forall C, A, CA: Slot(C, A, CA) -> exists T: PhRep(CA, T).

constraint slot_for_every_attr \"(*) every attribute (inherited ones included) needs a slot in every representation\":
  forall T, A, TA, C:
    AttrI(T, A, TA) & PhRep(C, T) -> exists CA: Slot(C, A, CA) & PhRep(CA, TA).

constraint slot_matches_attr \"every slot corresponds to an attribute of its type\":
  forall C, A, CA, T: Slot(C, A, CA) & PhRep(C, T) -> exists TA: AttrI(T, A, TA).
";

/// Install the GOM consistency definition (rules + constraints) into the
/// meta model's deductive database. Idempotent.
pub fn install(m: &mut MetaModel) -> Result<()> {
    if m.db.pred_id("SubTypRelT").is_none() {
        m.db.load(GOM_RULES)?;
    }
    if m.db.constraint("type_name_unique").is_none() {
        m.db.load(GOM_CONSTRAINTS)?;
    }
    Ok(())
}

/// The §2.1 example of a changed consistency definition: a project decides
/// to restrain inheritance to single inheritance. Adding this constraint is
/// the *entire* change.
pub const SINGLE_INHERITANCE_CONSTRAINT: &str = "\
constraint single_inheritance \"project policy: multiple inheritance is forbidden\":
  forall T, S1, S2: SubTypRel(T, S1) & SubTypRel(T, S2) -> S1 = S2.
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_checks_builtins_clean() {
        let mut m = MetaModel::new().unwrap();
        install(&mut m).unwrap();
        install(&mut m).unwrap();
        let v = m.db.check().unwrap();
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|x| x.render(&m.db)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dangling_attr_domain_detected() {
        let mut m = MetaModel::new().unwrap();
        install(&mut m).unwrap();
        let s = m.new_schema("S").unwrap();
        let t = m.new_type(s, "T").unwrap();
        m.add_subtype(t, m.builtins.any).unwrap();
        // Domain that is not a type:
        let ghost = gom_model::TypeId(m.db.intern("ghost"));
        m.add_attr(t, "x", ghost).unwrap();
        let v = m.db.check().unwrap();
        assert!(v.iter().any(|x| x.constraint == "attr_domain_ref"));
    }

    #[test]
    fn rootless_type_detected() {
        let mut m = MetaModel::new().unwrap();
        install(&mut m).unwrap();
        let s = m.new_schema("S").unwrap();
        let _t = m.new_type(s, "Orphan").unwrap(); // no subtype edge to ANY
        let v = m.db.check().unwrap();
        assert!(v.iter().any(|x| x.constraint == "any_is_root"), "{v:?}");
    }

    #[test]
    fn duplicate_type_name_detected() {
        let mut m = MetaModel::new().unwrap();
        install(&mut m).unwrap();
        let s = m.new_schema("S").unwrap();
        let a = m.new_type(s, "Dup").unwrap();
        let b = m.new_type(s, "Dup").unwrap();
        m.add_subtype(a, m.builtins.any).unwrap();
        m.add_subtype(b, m.builtins.any).unwrap();
        let v = m.db.check().unwrap();
        assert!(v.iter().any(|x| x.constraint == "type_name_unique"));
        // Same name in DIFFERENT schemas is fine (local name spaces).
        let mut m2 = MetaModel::new().unwrap();
        install(&mut m2).unwrap();
        let s1 = m2.new_schema("A").unwrap();
        let s2 = m2.new_schema("B").unwrap();
        let t1 = m2.new_type(s1, "Dup").unwrap();
        let t2 = m2.new_type(s2, "Dup").unwrap();
        m2.add_subtype(t1, m2.builtins.any).unwrap();
        m2.add_subtype(t2, m2.builtins.any).unwrap();
        assert!(m2.db.check().unwrap().is_empty());
    }

    #[test]
    fn decl_without_code_detected() {
        let mut m = MetaModel::new().unwrap();
        install(&mut m).unwrap();
        let s = m.new_schema("S").unwrap();
        let t = m.new_type(s, "T").unwrap();
        m.add_subtype(t, m.builtins.any).unwrap();
        let d = m.new_decl(t, "op", m.builtins.int).unwrap();
        let v = m.db.check().unwrap();
        assert!(v.iter().any(|x| x.constraint == "decl_has_code"), "{v:?}");
        m.new_code(d, "return 1;").unwrap();
        assert!(m.db.check().unwrap().is_empty());
    }

    #[test]
    fn subtype_cycle_detected() {
        let mut m = MetaModel::new().unwrap();
        install(&mut m).unwrap();
        let s = m.new_schema("S").unwrap();
        let a = m.new_type(s, "A").unwrap();
        let b = m.new_type(s, "B").unwrap();
        m.add_subtype(a, m.builtins.any).unwrap();
        m.add_subtype(b, m.builtins.any).unwrap();
        m.add_subtype(a, b).unwrap();
        m.add_subtype(b, a).unwrap();
        let v = m.db.check().unwrap();
        assert!(v.iter().any(|x| x.constraint == "subtype_acyclic"));
    }

    #[test]
    fn inherited_attr_conflict_detected() {
        let mut m = MetaModel::new().unwrap();
        install(&mut m).unwrap();
        let s = m.new_schema("S").unwrap();
        let a = m.new_type(s, "A").unwrap();
        let b = m.new_type(s, "B").unwrap();
        let c = m.new_type(s, "C").unwrap();
        for t in [a, b, c] {
            m.add_subtype(t, m.builtins.any).unwrap();
        }
        m.add_attr(a, "x", m.builtins.int).unwrap();
        m.add_attr(b, "x", m.builtins.float).unwrap(); // different domain!
        m.add_subtype(c, a).unwrap();
        m.add_subtype(c, b).unwrap();
        let v = m.db.check().unwrap();
        assert!(
            v.iter().any(|x| x.constraint == "inherited_attr_unique"),
            "{:?}",
            v.iter().map(|x| x.render(&m.db)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn contravariance_violation_detected() {
        let mut m = MetaModel::new().unwrap();
        install(&mut m).unwrap();
        let s = m.new_schema("S").unwrap();
        let sup = m.new_type(s, "Sup").unwrap();
        let sub = m.new_type(s, "Sub").unwrap();
        m.add_subtype(sup, m.builtins.any).unwrap();
        m.add_subtype(sub, sup).unwrap();
        let d1 = m.new_decl(sup, "op", m.builtins.float).unwrap();
        m.add_argdecl(d1, 1, sup).unwrap();
        m.new_code(d1, "return 0.0;").unwrap();
        // Refinement narrows the parameter type — contravariance violation.
        let d2 = m.new_decl(sub, "op", m.builtins.float).unwrap();
        m.add_argdecl(d2, 1, sub).unwrap();
        m.new_code(d2, "return 1.0;").unwrap();
        m.add_refinement(d2, d1).unwrap();
        let v = m.db.check().unwrap();
        assert!(
            v.iter()
                .any(|x| x.constraint == "refinement_contravariance"),
            "{:?}",
            v.iter().map(|x| x.render(&m.db)).collect::<Vec<_>>()
        );
        // Widening (or equal) parameter types are fine.
        let mut m2 = MetaModel::new().unwrap();
        install(&mut m2).unwrap();
        let s = m2.new_schema("S").unwrap();
        let sup = m2.new_type(s, "Sup").unwrap();
        let sub = m2.new_type(s, "Sub").unwrap();
        m2.add_subtype(sup, m2.builtins.any).unwrap();
        m2.add_subtype(sub, sup).unwrap();
        let d1 = m2.new_decl(sup, "op", m2.builtins.float).unwrap();
        m2.add_argdecl(d1, 1, sub).unwrap();
        m2.new_code(d1, "return 0.0;").unwrap();
        let d2 = m2.new_decl(sub, "op", m2.builtins.float).unwrap();
        m2.add_argdecl(d2, 1, sup).unwrap(); // wider: OK
        m2.new_code(d2, "return 1.0;").unwrap();
        m2.add_refinement(d2, d1).unwrap();
        assert!(m2.db.check().unwrap().is_empty());
    }

    #[test]
    fn arity_mismatch_in_refinement_detected() {
        let mut m = MetaModel::new().unwrap();
        install(&mut m).unwrap();
        let s = m.new_schema("S").unwrap();
        let sup = m.new_type(s, "Sup").unwrap();
        let sub = m.new_type(s, "Sub").unwrap();
        m.add_subtype(sup, m.builtins.any).unwrap();
        m.add_subtype(sub, sup).unwrap();
        let d1 = m.new_decl(sup, "op", m.builtins.float).unwrap();
        m.add_argdecl(d1, 1, sup).unwrap();
        m.new_code(d1, "return 0.0;").unwrap();
        let d2 = m.new_decl(sub, "op", m.builtins.float).unwrap();
        // No arguments declared for the refinement: arity mismatch.
        m.new_code(d2, "return 1.0;").unwrap();
        m.add_refinement(d2, d1).unwrap();
        let v = m.db.check().unwrap();
        assert!(v
            .iter()
            .any(|x| x.constraint == "refinement_contravariance"));
    }

    #[test]
    fn single_inheritance_policy_change() {
        let mut m = MetaModel::new().unwrap();
        install(&mut m).unwrap();
        let s = m.new_schema("S").unwrap();
        let a = m.new_type(s, "A").unwrap();
        let b = m.new_type(s, "B").unwrap();
        let c = m.new_type(s, "C").unwrap();
        for t in [a, b, c] {
            m.add_subtype(t, m.builtins.any).unwrap();
        }
        m.add_subtype(c, a).unwrap();
        m.add_subtype(c, b).unwrap();
        // Base definition allows multiple inheritance…
        assert!(m.db.check().unwrap().is_empty());
        // …until the project leader adds the policy (paper §2.1).
        m.db.load(SINGLE_INHERITANCE_CONSTRAINT).unwrap();
        let v = m.db.check().unwrap();
        assert!(v.iter().any(|x| x.constraint == "single_inheritance"));
        // Dropping the policy restores the old notion of consistency.
        assert!(m.db.remove_constraint("single_inheritance"));
        assert!(m.db.check().unwrap().is_empty());
    }

    #[test]
    fn slot_constraints_detect_both_directions() {
        let mut m = MetaModel::new().unwrap();
        install(&mut m).unwrap();
        let s = m.new_schema("S").unwrap();
        let t = m.new_type(s, "T").unwrap();
        m.add_subtype(t, m.builtins.any).unwrap();
        m.add_attr(t, "x", m.builtins.int).unwrap();
        let clid = m.new_phrep(t).unwrap();
        // Missing slot for x → (*) violated.
        let v = m.db.check().unwrap();
        assert!(v.iter().any(|x| x.constraint == "slot_for_every_attr"));
        m.add_slot(clid, "x", m.builtins.phrep_int).unwrap();
        assert!(m.db.check().unwrap().is_empty());
        // A stray slot without an attribute → converse violated.
        m.add_slot(clid, "ghost", m.builtins.phrep_int).unwrap();
        let v = m.db.check().unwrap();
        assert!(v.iter().any(|x| x.constraint == "slot_matches_attr"));
    }
}
