//! # gom-core — the flexible schema manager
//!
//! The paper's primary contribution: a schema manager whose consistency
//! definition is *declarative* data, not code. The generic architecture
//! (paper Fig. 1) is wired here:
//!
//! * the **Analyzer** (`gom-analyzer`) maps user schema updates to base-
//!   predicate changes,
//! * the **Runtime System** (`gom-runtime`) keeps the Object Base Model
//!   faithful and executes conversions and masking,
//! * the **Consistency Control** is the deductive database
//!   (`gom-deductive`) loaded with the GOM rules and constraints
//!   ([`consistency`]),
//! * evolution sessions ([`manager::SchemaManager`]) implement the paper's
//!   §3.5 nine-step protocol: *BES* … *EES*, deferred checking, violation
//!   reports, generated repairs with explanations, and rollback.

#![warn(missing_docs)]

pub mod consistency;
pub mod durable;
pub mod explain;
pub mod manager;

pub use consistency::{install, GOM_CONSTRAINTS, GOM_RULES, SINGLE_INHERITANCE_CONSTRAINT};
pub use durable::{OpenError, RecoveryReport};
pub use explain::{explain_op, ExplainedRepair};
pub use gom_impact::{ClassifiedOp, Footprint, ImpactIndex, PlanConfig, PlanReport};
pub use manager::{EvolutionOutcome, SchemaManager};
