//! Durable evolution sessions: the write-ahead journal behind the
//! schema manager.
//!
//! The paper's evolution session (BES…EES, §3.5) is the natural atomicity
//! unit, and this module makes it the *durability* unit too. When a
//! [`SchemaManager`] has a store attached, the session protocol writes a
//! `gom-store` journal with write-ahead discipline:
//!
//! * **BES** appends a [`Record::Bes`] immediately;
//! * **EES (commit)** appends the session's net delta as [`Record::Op`]s
//!   followed by [`Record::EesCommit`] — *before* the in-memory commit, and
//!   with an fsync under [`SyncPolicy::OnCommit`] — so a reported commit
//!   survives a crash;
//! * **EES (rollback)** appends [`Record::EesRollback`];
//! * [`SchemaManager::checkpoint`] appends a full EDB [`Record::Snapshot`],
//!   bounding future replay work.
//!
//! A crash at *any* byte leaves either a complete committed session on disk
//! or a tail (torn record, dangling `Bes`, corrupt CRC) that
//! [`SchemaManager::open`] truncates — recovery always lands exactly on a
//! session boundary, never between BES and EES.
//!
//! Only base facts (the EDB) are journaled. Rules, constraints, and the
//! catalog are reinstalled by [`SchemaManager::new`]; derived facts (the
//! IDB) are re-derived by the existing fixpoint after replay. The Runtime
//! System's object heap is volatile — the store persists the schema base
//! and the schema-level consequences of object operations, not the objects.

use crate::manager::SchemaManager;
use gom_deductive::{Const, Database, Error as DbError, Op, Result as DbResult, Tuple};
use gom_store::{
    Backend, JConst, JOp, Journal, Record, Replay, SnapshotPred, StoreError, SyncPolicy,
};
use std::path::Path;

/// What [`SchemaManager::open`] reconstructed from the journal.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Whether a snapshot was found and used as the replay base.
    pub snapshot_loaded: bool,
    /// Committed sessions replayed (after the snapshot, if any).
    pub sessions_replayed: usize,
    /// Rolled-back sessions skipped.
    pub sessions_rolled_back: usize,
    /// Individual base-fact operations re-applied.
    pub ops_applied: usize,
    /// Whether an in-flight session (dangling `Bes`) was discarded.
    pub discarded_in_flight: bool,
    /// Bytes truncated off the journal tail (torn records + in-flight
    /// session).
    pub truncated_bytes: u64,
    /// Total journal bytes the recovery scan examined (durable prefix +
    /// truncated tail).
    pub bytes_scanned: u64,
    /// Why the recovery scan stopped early, when it did.
    pub torn: Option<String>,
}

impl RecoveryReport {
    /// True when recovery had to discard anything (torn tail or in-flight
    /// session) — the recovered state is still exactly a session boundary.
    pub fn recovered_from_crash(&self) -> bool {
        self.discarded_in_flight || self.torn.is_some() || self.truncated_bytes > 0
    }

    /// One-line recovery summary, e.g.
    /// `recovery: 12 op(s) replayed (3 session(s)), 4821 bytes scanned, tail truncated: no`.
    pub fn summary_line(&self) -> String {
        format!(
            "recovery: {} op(s) replayed ({} session(s)), {} bytes scanned, tail truncated: {}",
            self.ops_applied,
            self.sessions_replayed,
            self.bytes_scanned,
            if self.truncated_bytes > 0 {
                "yes"
            } else {
                "no"
            }
        )
    }
}

/// Error opening a durable store.
#[derive(Debug)]
pub enum OpenError {
    /// The journal itself failed (I/O, bad magic).
    Store(StoreError),
    /// Replaying the journal into a fresh manager failed.
    Db(DbError),
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Store(e) => write!(f, "{e}"),
            OpenError::Db(e) => write!(f, "replaying journal: {e}"),
        }
    }
}

impl std::error::Error for OpenError {}

impl From<StoreError> for OpenError {
    fn from(e: StoreError) -> Self {
        OpenError::Store(e)
    }
}

/// Journal failures surface through the session protocol as database
/// errors; the session they interrupt stays open (and rollbackable).
pub(crate) fn db_err(e: StoreError) -> DbError {
    DbError::SessionProtocol(format!("durable store: {e}"))
}

pub(crate) fn to_jop(db: &Database, op: &Op) -> JOp {
    let (insert, pred, tuple) = match op {
        Op::Insert(p, t) => (true, p, t),
        Op::Delete(p, t) => (false, p, t),
    };
    JOp {
        insert,
        pred: db.pred_name(*pred).to_string(),
        tuple: tuple.iter().map(|c| to_jconst(db, c)).collect(),
    }
}

fn to_jconst(db: &Database, c: Const) -> JConst {
    match c {
        Const::Int(n) => JConst::Int(n),
        Const::Sym(s) => JConst::Sym(db.resolve(s).to_string()),
    }
}

fn from_jconst(db: &mut Database, c: &JConst) -> Const {
    match c {
        JConst::Int(n) => Const::Int(*n),
        JConst::Sym(s) => db.constant(s),
    }
}

fn from_jrow(db: &mut Database, row: &[JConst]) -> Tuple {
    Tuple::from(row.iter().map(|c| from_jconst(db, c)).collect::<Vec<_>>())
}

/// The full EDB as snapshot records: every base predicate (auxiliary `__`
/// predicates excluded), sorted by name, rows sorted — deterministic, so
/// identical states produce identical snapshots.
fn snapshot_records(db: &Database) -> Vec<SnapshotPred> {
    let mut preds: Vec<_> = db
        .base_preds()
        .filter(|&p| !db.pred_name(p).starts_with("__"))
        .collect();
    preds.sort_by_key(|&p| db.pred_name(p).to_string());
    preds
        .into_iter()
        .map(|p| SnapshotPred {
            pred: db.pred_name(p).to_string(),
            arity: db.pred_decl(p).arity as u16,
            rows: db
                .facts_sorted(p)
                .iter()
                .map(|t| t.iter().map(|c| to_jconst(db, c)).collect())
                .collect(),
        })
        .collect()
}

/// Reshape the fresh manager's EDB into the snapshot: remove facts the
/// snapshot lacks, insert facts it has, declare predicates it introduces.
/// Diffing (rather than clearing wholesale) keeps the catalog predicates
/// installed by [`SchemaManager::new`] aligned without re-deriving them.
fn apply_snapshot(db: &mut Database, snapshot: &[SnapshotPred]) -> DbResult<()> {
    use std::collections::BTreeMap;
    let mut target: BTreeMap<&str, &SnapshotPred> =
        snapshot.iter().map(|sp| (sp.pred.as_str(), sp)).collect();
    // Existing base predicates: diff toward the snapshot (empty when the
    // snapshot does not mention them).
    let existing: Vec<_> = db.base_preds().collect();
    for p in existing {
        let name = db.pred_name(p).to_string();
        if name.starts_with("__") {
            continue;
        }
        let want: Vec<Tuple> = match target.remove(name.as_str()) {
            Some(sp) => sp.rows.iter().map(|r| from_jrow(db, r)).collect(),
            None => Vec::new(),
        };
        let have = db.facts_sorted(p);
        for t in &have {
            if !want.contains(t) {
                db.remove(p, t)?;
            }
        }
        for t in want {
            if !db.contains(p, &t) {
                db.insert(p, t)?;
            }
        }
    }
    // Predicates the snapshot introduces that the fresh manager lacks
    // (e.g. declared by user consistency definitions, which are not
    // persisted themselves).
    for (name, sp) in target {
        let p = db.declare_base(name, sp.arity as usize)?;
        for row in &sp.rows {
            let t = from_jrow(db, row);
            db.insert(p, t)?;
        }
    }
    Ok(())
}

fn apply_jop(db: &mut Database, jop: &JOp) -> DbResult<()> {
    let pred = match db.pred_id(&jop.pred) {
        Some(p) => p,
        None => db.declare_base(&jop.pred, jop.tuple.len())?,
    };
    let tuple = from_jrow(db, &jop.tuple);
    if jop.insert {
        db.insert(pred, tuple)?;
    } else {
        db.remove(pred, &tuple)?;
    }
    Ok(())
}

impl SchemaManager {
    /// Open (or create) a durable schema manager backed by the journal file
    /// at `path`: recover the committed state, truncate any torn or
    /// in-flight tail, re-derive the IDB, and keep journaling subsequent
    /// sessions.
    pub fn open(path: &Path, policy: SyncPolicy) -> Result<(Self, RecoveryReport), OpenError> {
        let (journal, replay) = Journal::open_path(path, policy)?;
        Self::from_journal(journal, replay)
    }

    /// Like [`Self::open`] over an arbitrary [`Backend`] — the
    /// fault-injection harness mounts in-memory and failpoint backends
    /// through this.
    pub fn open_backend(
        backend: Box<dyn Backend>,
        policy: SyncPolicy,
    ) -> Result<(Self, RecoveryReport), OpenError> {
        let (journal, replay) = Journal::open(backend, policy)?;
        Self::from_journal(journal, replay)
    }

    fn from_journal(journal: Journal, replay: Replay) -> Result<(Self, RecoveryReport), OpenError> {
        let _sp = gom_obs::span("session.recover");
        let mut mgr = SchemaManager::new().map_err(OpenError::Db)?;
        let mut report = RecoveryReport {
            snapshot_loaded: replay.snapshot.is_some(),
            sessions_replayed: replay.sessions_replayed,
            sessions_rolled_back: replay.sessions_rolled_back,
            discarded_in_flight: replay.discarded_in_flight,
            truncated_bytes: replay.truncated_bytes,
            bytes_scanned: replay.durable_len + replay.truncated_bytes,
            torn: replay.torn.clone(),
            ops_applied: 0,
        };
        if let Some(snapshot) = &replay.snapshot {
            apply_snapshot(&mut mgr.meta.db, snapshot).map_err(OpenError::Db)?;
        }
        for jop in &replay.ops {
            apply_jop(&mut mgr.meta.db, jop).map_err(OpenError::Db)?;
            report.ops_applied += 1;
        }
        // Derived facts are never persisted: re-derive them with the
        // ordinary fixpoint over the recovered EDB.
        mgr.meta.db.evaluate().map_err(OpenError::Db)?;
        mgr.set_store(Some(journal));
        gom_obs::event(
            "journal.recovery",
            &[
                (
                    "ops_replayed",
                    gom_obs::Field::U64(report.ops_applied as u64),
                ),
                (
                    "sessions_replayed",
                    gom_obs::Field::U64(report.sessions_replayed as u64),
                ),
                ("bytes_scanned", gom_obs::Field::U64(report.bytes_scanned)),
                (
                    "tail_truncated",
                    gom_obs::Field::Bool(report.truncated_bytes > 0),
                ),
            ],
        );
        Ok((mgr, report))
    }

    /// Rotate the journal down to a full EDB snapshot: the entire history
    /// is replaced by one [`Record::Snapshot`] via a crash-safe
    /// write-to-temp / fsync / atomic-rename sequence, so the journal file
    /// size after a checkpoint is bounded by the snapshot itself rather
    /// than growing with every session ever committed. Refused inside an
    /// evolution session (a snapshot is a session boundary). Returns the
    /// journal end offset.
    pub fn checkpoint(&mut self) -> DbResult<u64> {
        let _sp = gom_obs::span("session.checkpoint");
        if self.in_evolution() {
            return Err(DbError::SessionProtocol(
                "cannot checkpoint inside an evolution session".into(),
            ));
        }
        let snap = snapshot_records(&self.meta.db);
        let journal = self.store_mut().ok_or_else(|| {
            DbError::SessionProtocol("no durable store attached (open with --store)".into())
        })?;
        journal.rotate(&Record::Snapshot(snap)).map_err(db_err)
    }

    /// Is a durable store attached?
    pub fn has_store(&self) -> bool {
        self.store_ref().is_some()
    }

    /// Current end-of-journal byte offset, when a store is attached.
    pub fn store_position(&self) -> Option<u64> {
        self.store_ref().map(|j| j.position())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gom_analyzer::car_schema::CAR_SCHEMA_SRC;
    use gom_store::MemBackend;

    fn open_mem(mem: &MemBackend) -> (SchemaManager, RecoveryReport) {
        SchemaManager::open_backend(Box::new(mem.clone()), SyncPolicy::OnCommit)
            .expect("open_backend")
    }

    #[test]
    fn committed_schema_survives_reopen() {
        let mem = MemBackend::new();
        let (mut mgr, r0) = open_mem(&mem);
        assert_eq!(r0.sessions_replayed, 0);
        mgr.define_schema(CAR_SCHEMA_SRC).expect("define");
        let dump = mgr.meta.db.dump_facts();
        drop(mgr);

        let (mut mgr2, r) = open_mem(&mem);
        assert_eq!(r.sessions_replayed, 1);
        assert!(!r.recovered_from_crash());
        assert_eq!(mgr2.meta.db.dump_facts(), dump);
        assert!(mgr2.check().expect("check").is_empty());
        // Recovered ids must not collide: evolving further still works.
        let sid = mgr2.meta.schema_by_name("CarSchema").expect("schema");
        assert!(mgr2.meta.type_by_name(sid, "Car").is_some());
    }

    #[test]
    fn rollback_leaves_no_durable_trace() {
        let mem = MemBackend::new();
        let (mut mgr, _) = open_mem(&mem);
        mgr.define_schema(CAR_SCHEMA_SRC).expect("define");
        let dump = mgr.meta.db.dump_facts();
        mgr.begin_evolution().expect("bes");
        let sid = mgr.meta.schema_by_name("CarSchema").expect("schema");
        let car = mgr.meta.type_by_name(sid, "Car").expect("car");
        let string = mgr.meta.builtins.string;
        mgr.meta.add_attr(car, "fuelType", string).expect("attr");
        mgr.rollback_evolution().expect("rollback");
        drop(mgr);

        let (mgr2, r) = open_mem(&mem);
        assert_eq!(r.sessions_rolled_back, 1);
        assert_eq!(mgr2.meta.db.dump_facts(), dump);
    }

    #[test]
    fn checkpoint_resets_replay_base_and_preserves_state() {
        let mem = MemBackend::new();
        let (mut mgr, _) = open_mem(&mem);
        mgr.define_schema(CAR_SCHEMA_SRC).expect("define");
        mgr.checkpoint().expect("checkpoint");
        let dump = mgr.meta.db.dump_facts();
        drop(mgr);

        let (mgr2, r) = open_mem(&mem);
        assert!(r.snapshot_loaded);
        assert_eq!(r.sessions_replayed, 0, "snapshot absorbed the session");
        assert_eq!(mgr2.meta.db.dump_facts(), dump);
    }

    #[test]
    fn dangling_bes_is_discarded_on_reopen() {
        let mem = MemBackend::new();
        let (mut mgr, _) = open_mem(&mem);
        mgr.define_schema(CAR_SCHEMA_SRC).expect("define");
        let dump = mgr.meta.db.dump_facts();
        // Crash mid-session: BES written, no EES ever.
        mgr.begin_evolution().expect("bes");
        drop(mgr);

        let (mgr2, r) = open_mem(&mem);
        assert!(r.discarded_in_flight);
        assert!(r.truncated_bytes > 0);
        assert_eq!(mgr2.meta.db.dump_facts(), dump);
        assert!(!mgr2.in_evolution());
    }

    #[test]
    fn checkpoint_refused_mid_session() {
        let mem = MemBackend::new();
        let (mut mgr, _) = open_mem(&mem);
        mgr.begin_evolution().expect("bes");
        assert!(mgr.checkpoint().is_err());
        mgr.rollback_evolution().expect("rollback");
        assert!(mgr.checkpoint().is_ok());
    }
}
