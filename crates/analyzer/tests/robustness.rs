#![cfg(feature = "proptest-tests")]
// Gated: requires the external `proptest` crate (no offline mirror).
// See the `proptest-tests` feature note in Cargo.toml.

//! Parser robustness: arbitrary input never panics, mutated valid sources
//! fail gracefully with positioned errors, and valid sources round-trip
//! through the token stream.

use gom_analyzer::car_schema::{CAR_SCHEMA_SRC, COMPANY_SCHEMA_SRC};
use gom_analyzer::lex::tokenize;
use gom_analyzer::parse_source;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer and parser must never panic, whatever the input.
    #[test]
    fn parser_never_panics_on_arbitrary_ascii(src in "[ -~\n]{0,300}") {
        let _ = parse_source(&src); // Ok or Err — both fine
    }

    /// Random single-character corruption of a valid source either still
    /// parses (the change hit a comment or irrelevant spot) or produces a
    /// positioned error — never a panic, never a bogus success with a
    /// mangled schema name.
    #[test]
    fn mutated_car_schema_fails_gracefully(
        pos in 0usize..CAR_SCHEMA_SRC.len(),
        replacement in "[ -~]",
    ) {
        let mut src = CAR_SCHEMA_SRC.to_string();
        let c = replacement.chars().next().unwrap();
        // splice at a char boundary
        if src.is_char_boundary(pos) && pos + 1 <= src.len() && src.is_char_boundary(pos + 1) {
            src.replace_range(pos..pos + 1, &c.to_string());
        }
        match parse_source(&src) {
            Ok(items) => prop_assert!(!items.is_empty()),
            Err(e) => {
                prop_assert!(e.line >= 1);
                prop_assert!(!e.msg.is_empty());
            }
        }
    }

    /// Token truncation at any prefix length never panics.
    #[test]
    fn truncated_sources_never_panic(len in 0usize..COMPANY_SCHEMA_SRC.len()) {
        if COMPANY_SCHEMA_SRC.is_char_boundary(len) {
            let _ = parse_source(&COMPANY_SCHEMA_SRC[..len]);
        }
    }
}

#[test]
fn canonical_sources_tokenize_exactly_once() {
    for src in [CAR_SCHEMA_SRC, COMPANY_SCHEMA_SRC] {
        let toks = tokenize(src).unwrap();
        assert!(!toks.is_empty());
        // Spans are monotonically increasing and within bounds.
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start >= prev_end, "overlapping spans");
            assert!(t.end <= src.len());
            prev_end = t.start;
        }
    }
}

#[test]
fn error_positions_point_into_the_source() {
    let src = "schema S is\n  type T is\n    [ x : ; ]\n  end type T;\nend schema S;";
    let err = parse_source(src).unwrap_err();
    assert_eq!(err.line, 3, "{err}");
}
