//! Static analysis of method bodies: deriving `CodeReqDecl` and
//! `CodeReqAttr` (paper §3.2, second group of base predicates).
//!
//! The Consistency Control must not inspect code, but it needs to know
//! which operations a code fragment calls and which attributes it accesses.
//! This module performs the light type inference necessary to resolve
//! attribute paths and dynamic dispatch statically: `self` has the receiver
//! type, parameters have their declared types, and `x.attr` resolves
//! against the *declaring* type of `attr` (walking up the subtype
//! hierarchy), which is why the paper's table records `(cid2, tid2, longi)`
//! — `longi` is declared on `Location` even when accessed through a `City`.

use crate::ast::{Block, Expr, Stmt};
use gom_model::{DeclId, MetaModel, TypeId};

/// The dependencies extracted from one code fragment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CodeAnalysis {
    /// `(declaring type, attribute name)` pairs accessed (read or write).
    pub attr_reqs: Vec<(TypeId, String)>,
    /// Declarations called.
    pub decl_reqs: Vec<DeclId>,
}

/// Analysis error (unresolvable names are reported, not guessed).
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisError(pub String);

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "code analysis: {}", self.0)
    }
}

impl std::error::Error for AnalysisError {}

/// Find the type (in `t` or its supertypes, nearest first) that declares
/// attribute `name`.
pub fn declaring_type_of_attr(m: &MetaModel, t: TypeId, name: &str) -> Option<TypeId> {
    if m.attrs_of(t).iter().any(|(n, _)| n == name) {
        return Some(t);
    }
    m.supertypes_transitive(t)
        .into_iter()
        .find(|&sup| m.attrs_of(sup).iter().any(|(n, _)| n == name))
}

/// Resolve an operation call on static type `t`: the declaration on `t`
/// itself or on the nearest supertype (static counterpart of dynamic
/// binding).
pub fn resolve_op(m: &MetaModel, t: TypeId, name: &str) -> Option<DeclId> {
    if let Some((d, _, _)) = m.decls_of(t).into_iter().find(|(_, n, _)| n == name) {
        return Some(d);
    }
    m.supertypes_transitive(t).into_iter().find_map(|sup| {
        m.decls_of(sup)
            .into_iter()
            .find(|(_, n, _)| n == name)
            .map(|(d, _, _)| d)
    })
}

struct Cx<'a> {
    m: &'a MetaModel,
    receiver: TypeId,
    decl: DeclId,
    params: &'a [(String, TypeId)],
    out: CodeAnalysis,
}

impl Cx<'_> {
    fn record_attr(&mut self, t: TypeId, name: &str) {
        let pair = (t, name.to_string());
        if !self.out.attr_reqs.contains(&pair) {
            self.out.attr_reqs.push(pair);
        }
    }

    fn record_decl(&mut self, d: DeclId) {
        if !self.out.decl_reqs.contains(&d) {
            self.out.decl_reqs.push(d);
        }
    }

    /// Infer the static type of an expression, recording dependencies.
    /// `None` for expressions whose type cannot be resolved (e.g. enum
    /// literals of sorts) — dependencies inside are still collected.
    fn infer(&mut self, e: &Expr) -> Result<Option<TypeId>, AnalysisError> {
        let b = &self.m.builtins;
        Ok(match e {
            Expr::Int(_) => Some(b.int),
            Expr::Float(_) => Some(b.float),
            Expr::Str(_) => Some(b.string),
            Expr::SelfRef => Some(self.receiver),
            Expr::Super => {
                return Err(AnalysisError(
                    "`super` may only appear as the receiver of a call".into(),
                ))
            }
            Expr::Ident(name) => {
                if let Some((_, t)) = self.params.iter().find(|(n, _)| n == name) {
                    Some(*t)
                } else {
                    // Enum literal or schema variable: type unknown here.
                    None
                }
            }
            Expr::Attr { recv, name } => {
                let rt = self.infer(recv)?;
                match rt {
                    Some(t) => match declaring_type_of_attr(self.m, t, name) {
                        Some(decl_t) => {
                            self.record_attr(decl_t, name);
                            self.m
                                .attrs_of(decl_t)
                                .into_iter()
                                .find(|(n, _)| n == name)
                                .map(|(_, d)| d)
                        }
                        None => {
                            return Err(AnalysisError(format!(
                                "type `{}` has no attribute `{name}`",
                                self.m.type_name(t).unwrap_or_default()
                            )))
                        }
                    },
                    None => None,
                }
            }
            Expr::Call { recv, name, args } => {
                for a in args {
                    self.infer(a)?;
                }
                if matches!(recv.as_ref(), Expr::Super) {
                    // `super.op(...)`: the declaration this method refines.
                    let refined = self.m.refined_by(self.decl);
                    let target = refined
                        .into_iter()
                        .find(|d| self.m.decl_info(*d).is_some_and(|(_, n, _)| n == *name))
                        .or_else(|| {
                            self.m
                                .supertypes_transitive(self.receiver)
                                .into_iter()
                                .find_map(|sup| {
                                    self.m
                                        .decls_of(sup)
                                        .into_iter()
                                        .find(|(_, n, _)| n == name)
                                        .map(|(d, _, _)| d)
                                })
                        });
                    match target {
                        Some(d) => {
                            self.record_decl(d);
                            Some(self.m.decl_info(d).expect("decl exists").2)
                        }
                        None => {
                            return Err(AnalysisError(format!(
                                "`super.{name}` does not resolve to a refined declaration"
                            )))
                        }
                    }
                } else {
                    let rt = self.infer(recv)?;
                    match rt {
                        Some(t) => match resolve_op(self.m, t, name) {
                            Some(d) => {
                                self.record_decl(d);
                                Some(self.m.decl_info(d).expect("decl exists").2)
                            }
                            None => {
                                return Err(AnalysisError(format!(
                                    "type `{}` has no operation `{name}`",
                                    self.m.type_name(t).unwrap_or_default()
                                )))
                            }
                        },
                        None => None,
                    }
                }
            }
            Expr::Binary { op, l, r } => {
                let lt = self.infer(l)?;
                let rt = self.infer(r)?;
                use crate::ast::BinOp::*;
                match op {
                    Eq | Ne | Lt | Le | Gt | Ge => Some(b.bool_),
                    Add | Sub | Mul | Div => {
                        if lt == Some(b.float) || rt == Some(b.float) {
                            Some(b.float)
                        } else if lt == Some(b.int) && rt == Some(b.int) {
                            Some(b.int)
                        } else {
                            lt.or(rt)
                        }
                    }
                }
            }
            Expr::Neg(e) => self.infer(e)?,
        })
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), AnalysisError> {
        match s {
            Stmt::Assign { target, value } => {
                self.infer(target)?;
                self.infer(value)?;
            }
            Stmt::If { cond, then, els } => {
                self.infer(cond)?;
                self.block(then)?;
                self.block(els)?;
            }
            Stmt::Return(e) | Stmt::Expr(e) => {
                self.infer(e)?;
            }
        }
        Ok(())
    }

    fn block(&mut self, b: &Block) -> Result<(), AnalysisError> {
        for s in &b.0 {
            self.stmt(s)?;
        }
        Ok(())
    }
}

/// Analyze the body of `decl` (receiver `receiver`, formal parameters
/// `params`), returning its attribute and declaration dependencies.
pub fn analyze(
    m: &MetaModel,
    receiver: TypeId,
    decl: DeclId,
    params: &[(String, TypeId)],
    body: &Block,
) -> Result<CodeAnalysis, AnalysisError> {
    let mut cx = Cx {
        m,
        receiver,
        decl,
        params,
        out: CodeAnalysis::default(),
    };
    cx.block(body)?;
    Ok(cx.out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::parse_code_text;

    fn setup() -> (MetaModel, TypeId, TypeId) {
        let mut m = MetaModel::new().unwrap();
        let s = m.new_schema("S").unwrap();
        let loc = m.new_type(s, "Location").unwrap();
        m.add_subtype(loc, m.builtins.any).unwrap();
        m.add_attr(loc, "longi", m.builtins.float).unwrap();
        m.add_attr(loc, "lati", m.builtins.float).unwrap();
        let city = m.new_type(s, "City").unwrap();
        m.add_subtype(city, loc).unwrap();
        m.add_attr(city, "name", m.builtins.string).unwrap();
        (m, loc, city)
    }

    #[test]
    fn attr_records_declaring_type() {
        let (mut m, loc, city) = setup();
        let d = m.new_decl(city, "f", m.builtins.float).unwrap();
        let body = parse_code_text("self.longi + self.lati").unwrap();
        let a = analyze(&m, city, d, &[], &body).unwrap();
        // longi/lati are declared on Location, even though accessed via City.
        assert_eq!(
            a.attr_reqs,
            vec![(loc, "longi".to_string()), (loc, "lati".to_string())]
        );
    }

    #[test]
    fn param_types_resolve_attrs() {
        let (mut m, loc, city) = setup();
        let d = m.new_decl(city, "f", m.builtins.float).unwrap();
        let body = parse_code_text("other.longi").unwrap();
        let a = analyze(&m, city, d, &[("other".into(), loc)], &body).unwrap();
        assert_eq!(a.attr_reqs, vec![(loc, "longi".to_string())]);
    }

    #[test]
    fn call_resolves_to_most_specific_decl() {
        let (mut m, loc, city) = setup();
        let d_loc = m.new_decl(loc, "distance", m.builtins.float).unwrap();
        let d_city = m.new_decl(city, "distance", m.builtins.float).unwrap();
        m.add_refinement(d_city, d_loc).unwrap();
        let caller = m.new_decl(city, "go", m.builtins.float).unwrap();
        let body = parse_code_text("self.distance(self)").unwrap();
        let a = analyze(&m, city, caller, &[], &body).unwrap();
        assert_eq!(a.decl_reqs, vec![d_city]);
    }

    #[test]
    fn super_call_resolves_to_refined_decl() {
        let (mut m, loc, city) = setup();
        let d_loc = m.new_decl(loc, "distance", m.builtins.float).unwrap();
        let d_city = m.new_decl(city, "distance", m.builtins.float).unwrap();
        m.add_refinement(d_city, d_loc).unwrap();
        let body = parse_code_text("super.distance(other)").unwrap();
        let a = analyze(&m, city, d_city, &[("other".into(), loc)], &body).unwrap();
        assert_eq!(a.decl_reqs, vec![d_loc]);
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let (mut m, _loc, city) = setup();
        let d = m.new_decl(city, "f", m.builtins.float).unwrap();
        let body = parse_code_text("self.nonexistent").unwrap();
        assert!(analyze(&m, city, d, &[], &body).is_err());
    }

    #[test]
    fn comparisons_type_as_bool_and_collect_both_sides() {
        let (mut m, loc, city) = setup();
        let d = m.new_decl(city, "f", m.builtins.bool_).unwrap();
        let body = parse_code_text("self.longi == self.lati").unwrap();
        let a = analyze(&m, city, d, &[], &body).unwrap();
        assert_eq!(a.attr_reqs.len(), 2);
        let _ = loc;
    }

    #[test]
    fn duplicates_are_not_recorded_twice() {
        let (mut m, loc, city) = setup();
        let d = m.new_decl(city, "f", m.builtins.float).unwrap();
        let body = parse_code_text("self.longi + self.longi").unwrap();
        let a = analyze(&m, city, d, &[], &body).unwrap();
        assert_eq!(a.attr_reqs, vec![(loc, "longi".to_string())]);
    }
}
