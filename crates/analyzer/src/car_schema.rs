//! Canonical source texts from the paper, used by tests, examples, and the
//! experiment harness.

/// The paper's §3.1 `CarSchema` (leaded/unleaded cars example, after Skarra
/// & Zdonik). Method bodies are filled in so that the code analysis derives
/// exactly the `CodeReqAttr` rows of the paper's second extension table:
/// `distance` uses `longi`/`lati`, the refined `distance` additionally uses
/// the city `name` and calls the original via `super`, and
/// `changeLocation` is verbatim from the paper.
pub const CAR_SCHEMA_SRC: &str = "\
schema CarSchema is

  type Person is
    [ name : string;
      age  : int; ]
  end type Person;

  type Location is
    [ longi : float;
      lati  : float; ]
  operations
    declare distance : || Location -> float;
  implementation
    define distance(other) is
    begin
      return (self.longi - other.longi) * (self.longi - other.longi)
           + (self.lati  - other.lati)  * (self.lati  - other.lati);
    end define distance;
  end type Location;

  type City supertype Location is
    [ name            : string;
      noOfInhabitants : int; ]
  refine
    declare distance : || Location -> float;
  implementation
    define distance(other) is
    begin
      !! uses longi and lati as well as city name.
      if (self.name == \"nowhere\") return super.distance(other);
      return (self.longi - other.longi) * (self.longi - other.longi)
           + (self.lati  - other.lati)  * (self.lati  - other.lati);
    end define distance;
  end type City;

  type Car is
    [ owner    : Person;
      maxspeed : float;
      milage   : float;
      location : City; ]
  operations
    declare changeLocation : || Person, City -> float;
  implementation
    define changeLocation(driver, newLocation) is
    begin
      if (self.owner == driver)
      begin
        self.milage   := self.milage + self.location.distance(newLocation);
        self.location := newLocation;
        return self.milage;
      end
      else return -1.0;
    end define changeLocation;
  end type Car;

end schema CarSchema;
";

/// The §4.2 evolved schema: `Car` plus the `PolluterCar`/`CatalystCar`
/// subtypes with a `fuel` operation each, and the `Fuel` enum sort.
pub const NEW_CAR_SCHEMA_TYPES_SRC: &str = "\
schema NewCarSchema is

  sort Fuel is enum (leaded, unleaded);

  type PolluterCar is
  operations
    declare fuel : || -> Fuel;
  implementation
    define fuel is
    begin
      return leaded;
    end define fuel;
  end type PolluterCar;

  type CatalystCar is
  operations
    declare fuel : || -> Fuel;
  implementation
    define fuel is
    begin
      return unleaded;
    end define fuel;
  end type CatalystCar;

end schema NewCarSchema;
";

/// Appendix A (Figure 3): the company's schema hierarchy with information
/// hiding, name spaces, renaming, and imports.
pub const COMPANY_SCHEMA_SRC: &str = "\
schema Company is
  subschema CAD;
  subschema CAPP;
  subschema CAM;
  subschema Marketing;
end schema Company;

schema CAD is
  subschema Geometry;
  subschema FEM;
  subschema Function;
  subschema Technology;
end schema CAD;

schema Geometry is
  public CSGCuboid, BRepCuboid;
  interface
    subschema CSG with
      type Cuboid as CSGCuboid;
    end subschema CSG;
    subschema BoundaryRep with
      type Cuboid as BRepCuboid;
    end subschema BoundaryRep;
  implementation
    subschema CSG2BoundRep;
end schema Geometry;

schema CSG is
  public Cuboid;
  interface
    type Cuboid is
      [ xlen : float;
        ylen : float;
        zlen : float; ]
    end type Cuboid;
  implementation
end schema CSG;

schema BoundaryRep is
  public Cuboid;
  interface
    type Cuboid is
      [ surfaceCount : int; ]
    end type Cuboid;
  implementation
    type Surface is
      [ edgeCount : int; ]
    end type Surface;
    type Edge is
      [ length : float; ]
    end type Edge;
    type Vertex is
      [ x : float;
        y : float;
        z : float; ]
    end type Vertex;
    var exampleCuboid : Cuboid;
end schema BoundaryRep;

schema CSG2BoundRep is
  public Converter;
  interface
    import /Company/CAD/Geometry/CSG with
      type Cuboid as CSGCuboid;
    end schema CSG;
    import ../BoundaryRep with
      type Cuboid as BRepCuboid;
    end schema BoundaryRep;
    type Converter is
      [ input  : CSGCuboid;
        output : BRepCuboid; ]
    end type Converter;
  implementation
end schema CSG2BoundRep;

schema FEM is
end schema FEM;

schema Function is
end schema Function;

schema Technology is
end schema Technology;

schema CAPP is
  public Schedule;
  interface
    type Schedule is
      [ steps : int; ]
    end type Schedule;
  implementation
end schema CAPP;

schema CAM is
end schema CAM;

schema Marketing is
end schema Marketing;
";
