//! Pretty-printing: rendering the schema base back to GOM source.
//!
//! The inverse of lowering. Useful for inspection (`gomsh`), for exporting
//! evolved schemas, and as a test oracle: `parse → lower → print → parse →
//! lower` must reproduce the same extensions (see the round-trip tests).
//!
//! Stored method bodies are re-emitted verbatim (the `Code` predicate keeps
//! the raw text), so behaviour survives the round trip exactly.

use gom_model::{CodeId, MetaModel, SchemaId, TypeId};

/// Recorded parameter names of a code fragment, `(position, name)`.
fn codeparams(m: &MetaModel, cid: CodeId) -> Vec<(i64, String)> {
    let Some(cp) = m.db.pred_id("CodeParam") else {
        return Vec::new();
    };
    m.db.relation(cp)
        .select(&[(0, cid.constant())])
        .filter_map(|t| {
            Some((
                t.get(1).as_int()?,
                m.db.resolve(t.get(2).as_sym()?).to_string(),
            ))
        })
        .collect()
}

/// Render one schema as a GOM schema definition frame.
pub fn print_schema(m: &MetaModel, schema: SchemaId) -> String {
    let name = schema_name(m, schema);
    let mut out = format!("schema {name} is\n");
    for t in m.types_of_schema(schema) {
        if let Some(p) = m.db.pred_id("SortVariant") {
            let mut variants = m.db.relation(p).select(&[(0, t.constant())]);
            if variants.next().is_some() {
                out.push_str(&print_sort(m, t));
                continue;
            }
        }
        out.push_str(&print_type(m, t));
    }
    // schema-level variables
    if let Some(p) = m.db.pred_id("SchemaVar") {
        for row in m.db.relation(p).select(&[(0, schema.constant())]) {
            let var = m.db.resolve(row.get(1).as_sym().expect("var name"));
            let ty = TypeId(row.get(2).as_sym().expect("var type"));
            out.push_str(&format!("  var {var} : {};\n", type_ref(m, schema, ty)));
        }
    }
    out.push_str(&format!("end schema {name};\n"));
    out
}

fn schema_name(m: &MetaModel, s: SchemaId) -> String {
    m.db.relation(m.cat.schema)
        .select(&[(0, s.constant())])
        .next()
        .and_then(|t| t.get(1).as_sym())
        .map(|sym| m.db.resolve(sym).to_string())
        .unwrap_or_else(|| "?".to_string())
}

/// How to write a reference to `t` from inside `from_schema`: the bare name
/// for local and built-in types, at-notation otherwise.
fn type_ref(m: &MetaModel, from_schema: SchemaId, t: TypeId) -> String {
    let tname = m.type_name(t).unwrap_or_else(|| "?".to_string());
    match m.schema_of(t) {
        Some(s) if s == from_schema => tname,
        Some(s) if s == m.builtins.schema => tname,
        Some(s) => format!("{tname}@{}", schema_name(m, s)),
        None => tname,
    }
}

/// Render an enum sort.
fn print_sort(m: &MetaModel, t: TypeId) -> String {
    let name = m.type_name(t).unwrap_or_default();
    let p = m.db.pred_id("SortVariant").expect("caller checked");
    let mut variants: Vec<String> =
        m.db.relation(p)
            .select(&[(0, t.constant())])
            .filter_map(|r| r.get(1).as_sym())
            .map(|s| m.db.resolve(s).to_string())
            .collect();
    variants.sort();
    format!("  sort {name} is enum ({});\n", variants.join(", "))
}

/// Render one type definition frame.
pub fn print_type(m: &MetaModel, t: TypeId) -> String {
    let schema = m.schema_of(t).expect("type has a schema");
    let name = m.type_name(t).unwrap_or_default();
    let mut out = format!("  type {name}");
    let sups: Vec<String> = m
        .supertypes(t)
        .into_iter()
        .filter(|&s| s != m.builtins.any)
        .map(|s| type_ref(m, schema, s))
        .collect();
    if !sups.is_empty() {
        out.push_str(&format!(" supertype {}", sups.join(", ")));
    }
    out.push_str(" is\n");
    let attrs = m.attrs_of(t);
    if !attrs.is_empty() {
        out.push_str("    [ ");
        for (i, (a, d)) in attrs.iter().enumerate() {
            if i > 0 {
                out.push_str("      ");
            }
            out.push_str(&format!("{a} : {};\n", type_ref(m, schema, *d)));
        }
        out.push_str("    ]\n");
    }
    // declarations: refinements go into `refine`, the rest into `operations`
    let decls = m.decls_of(t);
    let (refines, ops): (Vec<_>, Vec<_>) = decls
        .iter()
        .partition(|(d, _, _)| !m.refined_by(*d).is_empty());
    for (kw, group) in [("operations", &ops), ("refine", &refines)] {
        if group.is_empty() {
            continue;
        }
        out.push_str(&format!("  {kw}\n"));
        for (d, op, result) in group.iter() {
            let args: Vec<String> = m
                .args_of(*d)
                .into_iter()
                .map(|(_, at)| type_ref(m, schema, at))
                .collect();
            let arglist = if args.is_empty() {
                String::new()
            } else {
                format!("{} ", args.join(", "))
            };
            out.push_str(&format!(
                "    declare {op} : || {arglist}-> {};\n",
                type_ref(m, schema, *result)
            ));
        }
    }
    // implementations (raw text verbatim)
    let with_code: Vec<_> = decls
        .iter()
        .filter_map(|(d, op, _)| m.code_of(*d).map(|(cid, text)| (*d, op.clone(), cid, text)))
        .collect();
    if !with_code.is_empty() {
        out.push_str("  implementation\n");
        for (_d, op, cid, text) in with_code {
            let params: Vec<String> = {
                let mut ps = codeparams(m, cid);
                ps.sort();
                ps.into_iter().map(|(_, n)| n).collect()
            };
            let paramlist = if params.is_empty() {
                String::new()
            } else {
                format!("({})", params.join(", "))
            };
            // The stored raw text is a closed block (`begin … end`) whose
            // final `end` doubles as the frame closer in GOM's grammar.
            let trimmed = text.trim();
            let closed_body = if trimmed.starts_with("begin") {
                if trimmed.ends_with("end") {
                    trimmed.to_string()
                } else {
                    format!("{trimmed}\n    end")
                }
            } else {
                let stmt = if trimmed.starts_with("return") || trimmed.starts_with("if") {
                    trimmed.to_string()
                } else {
                    format!("return {trimmed};")
                };
                format!("begin\n      {stmt}\n    end")
            };
            out.push_str(&format!(
                "    define {op}{paramlist} is\n    {closed_body} define {op};\n"
            ));
        }
    }
    out.push_str(&format!("  end type {name};\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::car_schema::CAR_SCHEMA_SRC;
    use crate::lower::Analyzer;

    /// parse → lower → print → parse → lower again: the second model has
    /// the same structural extensions as the first (ids differ).
    #[test]
    fn car_schema_round_trips() {
        let mut m1 = MetaModel::new().unwrap();
        let mut a1 = Analyzer::new();
        let lowered = a1.lower_source(&mut m1, CAR_SCHEMA_SRC).unwrap();
        let printed = print_schema(&m1, lowered[0].id);

        let mut m2 = MetaModel::new().unwrap();
        let mut a2 = Analyzer::new();
        let lowered2 = a2
            .lower_source(&mut m2, &printed)
            .unwrap_or_else(|e| panic!("printed source does not lower: {e}\n---\n{printed}"));
        let (s1, s2) = (lowered[0].id, lowered2[0].id);

        // same type names
        let names = |m: &MetaModel, s| {
            m.types_of_schema(s)
                .iter()
                .map(|&t| m.type_name(t).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&m1, s1), names(&m2, s2));
        // same attrs per type (names + domain names)
        for n in names(&m1, s1) {
            let t1 = m1.type_by_name(s1, &n).unwrap();
            let t2 = m2.type_by_name(s2, &n).unwrap();
            let sig = |m: &MetaModel, t| {
                m.attrs_of(t)
                    .into_iter()
                    .map(|(a, d)| (a, m.type_name(d).unwrap()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(sig(&m1, t1), sig(&m2, t2), "attrs of {n}");
            // same op names and arities
            let ops = |m: &MetaModel, t| {
                m.decls_of(t)
                    .into_iter()
                    .map(|(d, o, r)| (o, m.args_of(d).len(), m.type_name(r).unwrap()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(ops(&m1, t1), ops(&m2, t2), "ops of {n}");
        }
        // refinement edges preserved (City.distance refines Location.distance)
        let city2 = m2.type_by_name(s2, "City").unwrap();
        let (d_city2, _, _) = m2.decls_of(city2)[0].clone();
        assert_eq!(m2.refined_by(d_city2).len(), 1);
        // code dependencies re-derived identically (counts)
        let count = |m: &MetaModel, p: &str| m.db.relation(m.db.pred_id(p).unwrap()).len();
        assert_eq!(count(&m1, "CodeReqAttr"), count(&m2, "CodeReqAttr"));
        assert_eq!(count(&m1, "CodeReqDecl"), count(&m2, "CodeReqDecl"));
    }

    /// The printed schema is itself consistent end to end.
    #[test]
    fn printed_schema_defines_consistently() {
        let mut mgr = gom_core_check::manager_with_car();
        let s = mgr.meta.schema_by_name("CarSchema").unwrap();
        let printed = print_schema(&mgr.meta, s);
        // define under a fresh name to avoid the duplicate-schema error
        let renamed = printed.replace("CarSchema", "CarSchema2");
        mgr.define_schema(&renamed).unwrap();
        assert!(mgr.check().unwrap().is_empty());
    }

    /// Sorts and schema variables print and re-lower.
    #[test]
    fn sorts_and_vars_round_trip() {
        let mut m = MetaModel::new().unwrap();
        let mut a = Analyzer::new();
        let src = "\
schema S is
  sort Fuel is enum (leaded, unleaded);
  type T is
    [ f : Fuel; ]
  end type T;
  var default : T;
end schema S;";
        let lowered = a.lower_source(&mut m, src).unwrap();
        let printed = print_schema(&m, lowered[0].id);
        assert!(
            printed.contains("sort Fuel is enum (leaded, unleaded);"),
            "{printed}"
        );
        assert!(printed.contains("var default : T;"), "{printed}");
        let renamed = printed.replace("schema S", "schema S2");
        let mut m2 = MetaModel::new().unwrap();
        let mut a2 = Analyzer::new();
        a2.lower_source(&mut m2, &renamed).unwrap();
    }

    // tiny helper shim so the test can use gom-core without a circular
    // dev-dependency: lowering + the catalog is enough to "define".
    mod gom_core_check {
        use super::*;
        pub struct Mgr {
            pub meta: MetaModel,
            analyzer: Analyzer,
        }
        impl Mgr {
            pub fn define_schema(&mut self, src: &str) -> Result<(), String> {
                self.analyzer
                    .lower_source(&mut self.meta, src)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }
            pub fn check(&mut self) -> Result<Vec<String>, String> {
                Ok(Vec::new()) // structural check happens in integration tests
            }
        }
        pub fn manager_with_car() -> Mgr {
            let mut meta = MetaModel::new().unwrap();
            let mut analyzer = Analyzer::new();
            analyzer.lower_source(&mut meta, CAR_SCHEMA_SRC).unwrap();
            Mgr { meta, analyzer }
        }
    }
}
