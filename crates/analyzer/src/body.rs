//! Statement and expression parser for GOM method bodies.
//!
//! The body language is exactly what the paper's `changeLocation` example
//! exercises: blocks (`begin … end`), assignment (`:=`), `if`/`else`,
//! `return`, attribute paths (`self.location`), operation calls
//! (`self.location.distance(newLocation)`), `super` calls, arithmetic, and
//! comparisons.

use crate::ast::{BinOp, Block, Expr, Stmt};
use crate::lex::Tok;
use crate::parse::{PResult, Parser};

impl Parser<'_> {
    /// `begin stmts` — stops at (and does not consume) the matching `end`.
    /// Used for implementation bodies whose `end <name>;` closes both the
    /// block and the frame (the paper's style).
    pub(crate) fn open_block(&mut self) -> PResult<Block> {
        self.expect_kw("begin")?;
        let mut stmts = Vec::new();
        while !self.at_kw("end") {
            if self.peek().is_none() {
                return Err(self.err("unterminated `begin` block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block(stmts))
    }

    /// `begin stmts end` — consumes the `end`.
    pub(crate) fn closed_block(&mut self) -> PResult<Block> {
        let b = self.open_block()?;
        self.expect_kw("end")?;
        Ok(b)
    }

    /// Either a closed block or a bare expression (wrapped as `return`),
    /// used for fashion member bodies.
    pub(crate) fn block_or_expr(&mut self) -> PResult<Block> {
        if self.at_kw("begin") {
            self.closed_block()
        } else {
            let e = self.expr()?;
            Ok(Block(vec![Stmt::Return(e)]))
        }
    }

    fn block_or_stmt(&mut self) -> PResult<Block> {
        if self.at_kw("begin") {
            self.closed_block()
        } else {
            Ok(Block(vec![self.stmt()?]))
        }
    }

    pub(crate) fn stmt(&mut self) -> PResult<Stmt> {
        if self.eat_kw("return") {
            let e = self.expr()?;
            self.expect_tok(&Tok::Semi, "`;`")?;
            return Ok(Stmt::Return(e));
        }
        if self.eat_kw("if") {
            self.expect_tok(&Tok::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect_tok(&Tok::RParen, "`)`")?;
            let then = self.block_or_stmt()?;
            let els = if self.eat_kw("else") {
                self.block_or_stmt()?
            } else {
                Block::default()
            };
            return Ok(Stmt::If { cond, then, els });
        }
        let e = self.expr()?;
        if self.peek() == Some(&Tok::Assign) {
            self.bump();
            let value = self.expr()?;
            self.expect_tok(&Tok::Semi, "`;`")?;
            if !matches!(e, Expr::Attr { .. } | Expr::Ident(_)) {
                return Err(self.err("assignment target must be an attribute path or variable"));
            }
            return Ok(Stmt::Assign { target: e, value });
        }
        self.expect_tok(&Tok::Semi, "`;`")?;
        Ok(Stmt::Expr(e))
    }

    pub(crate) fn expr(&mut self) -> PResult<Expr> {
        let l = self.additive()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => Some(BinOp::Eq),
            Some(Tok::NotEq) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let r = self.additive()?;
            return Ok(Expr::Binary {
                op,
                l: Box::new(l),
                r: Box::new(r),
            });
        }
        Ok(l)
    }

    fn additive(&mut self) -> PResult<Expr> {
        let mut l = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.multiplicative()?;
            l = Expr::Binary {
                op,
                l: Box::new(l),
                r: Box::new(r),
            };
        }
        Ok(l)
    }

    fn multiplicative(&mut self) -> PResult<Expr> {
        let mut l = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.bump();
            let r = self.unary()?;
            l = Expr::Binary {
                op,
                l: Box::new(l),
                r: Box::new(r),
            };
        }
        Ok(l)
    }

    fn unary(&mut self) -> PResult<Expr> {
        if self.peek() == Some(&Tok::Minus) {
            self.bump();
            let e = self.unary()?;
            return Ok(Expr::Neg(Box::new(e)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        while self.peek() == Some(&Tok::Dot) {
            self.bump();
            let name = self.expect_ident("attribute or operation name")?;
            if self.peek() == Some(&Tok::LParen) {
                self.bump();
                let mut args = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    loop {
                        args.push(self.expr()?);
                        match self.bump() {
                            Some(Tok::Comma) => continue,
                            Some(Tok::RParen) => break,
                            other => {
                                return Err(
                                    self.err(format!("expected `,` or `)`, found {other:?}"))
                                )
                            }
                        }
                    }
                } else {
                    self.bump();
                }
                e = Expr::Call {
                    recv: Box::new(e),
                    name,
                    args,
                };
            } else {
                e = Expr::Attr {
                    recv: Box::new(e),
                    name,
                };
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<Expr> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Expr::Int(n)),
            Some(Tok::Float(x)) => Ok(Expr::Float(x)),
            Some(Tok::Str(s)) => Ok(Expr::Str(s)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect_tok(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(s)) if s == "self" => Ok(Expr::SelfRef),
            Some(Tok::Ident(s)) if s == "super" => Ok(Expr::Super),
            Some(Tok::Ident(s)) => Ok(Expr::Ident(s)),
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parse a stored code fragment (a full `begin … end` block or a bare
/// expression). This is how the interpreting Runtime System turns `Code`
/// facts back into executable bodies.
pub fn parse_code_text(src: &str) -> PResult<Block> {
    let mut p = Parser::new(src)?;
    let block = if p.at_kw("begin") {
        // The stored raw text may be an open block (the frame's `end` closed
        // it) or a closed one; accept both.
        let b = p.open_block()?;
        let _ = p.eat_kw("end");
        b
    } else if p.at_kw("return") || p.at_kw("if") {
        // Bare statement sequence (e.g. `return leaded;`).
        let mut stmts = Vec::new();
        while p.peek().is_some() {
            stmts.push(p.stmt()?);
        }
        Block(stmts)
    } else {
        // Expression — but an assignment statement also starts like one;
        // retry as statements when the expression doesn't consume all input.
        let start = p.save();
        match p.block_or_expr() {
            Ok(b) if p.peek().is_none() => b,
            _ => {
                p.restore(start);
                let mut stmts = Vec::new();
                while p.peek().is_some() {
                    stmts.push(p.stmt()?);
                }
                Block(stmts)
            }
        }
    };
    if p.peek().is_some() {
        return Err(p.err("trailing tokens after code body"));
    }
    Ok(block)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn change_location_body_parses() {
        let src = "\
begin
  if (self.owner == driver)
  begin
    self.milage := self.milage + self.location.distance(newLocation);
    self.location := newLocation;
    return self.milage;
  end
  else return -1.0;
end";
        let b = parse_code_text(src).unwrap();
        assert_eq!(b.0.len(), 1);
        let Stmt::If { cond, then, els } = &b.0[0] else {
            panic!("expected if");
        };
        assert!(matches!(cond, Expr::Binary { op: BinOp::Eq, .. }));
        assert_eq!(then.0.len(), 3);
        assert_eq!(els.0.len(), 1);
        assert!(matches!(&els.0[0], Stmt::Return(Expr::Neg(_))));
    }

    #[test]
    fn precedence_mul_over_add() {
        let b = parse_code_text("1 + 2 * 3").unwrap();
        let Stmt::Return(Expr::Binary {
            op: BinOp::Add, r, ..
        }) = &b.0[0]
        else {
            panic!("expected return of +");
        };
        assert!(matches!(r.as_ref(), Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn call_chain_parses() {
        let b = parse_code_text("self.location.distance(newLocation)").unwrap();
        let Stmt::Return(Expr::Call { recv, name, args }) = &b.0[0] else {
            panic!("expected call");
        };
        assert_eq!(name, "distance");
        assert_eq!(args.len(), 1);
        assert!(matches!(recv.as_ref(), Expr::Attr { .. }));
    }

    #[test]
    fn super_call_parses() {
        let b = parse_code_text("super.distance(other)").unwrap();
        let Stmt::Return(Expr::Call { recv, .. }) = &b.0[0] else {
            panic!();
        };
        assert!(matches!(recv.as_ref(), Expr::Super));
    }

    #[test]
    fn bad_assignment_target_rejected() {
        assert!(parse_code_text("begin 1 + 2 := 3; end").is_err());
    }

    #[test]
    fn ident_assignment_allowed() {
        let b = parse_code_text("begin x := 1; end").unwrap();
        assert!(matches!(&b.0[0], Stmt::Assign { .. }));
    }
}
