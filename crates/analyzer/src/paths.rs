//! Schema hierarchy, name spaces, and import resolution (appendix A).
//!
//! Schemas form a tree via `subschema` entries. Each schema has its own
//! name space; the publics of direct subschemas (optionally renamed) and of
//! explicitly imported schemas (by absolute or relative *schema path*) are
//! merged into it. Name conflicts are detected exactly as the appendix
//! prescribes: only when the same name would denote two different components
//! *and* the name is actually used does resolution fail.

use crate::ast::{Component, Item, Rename, RenameKind, SchemaDef, SchemaPath};
use std::collections::BTreeMap;

/// Resolution error.
#[derive(Clone, Debug, PartialEq)]
pub enum PathError {
    /// A subschema entry references an undefined schema.
    UnknownSchema(String),
    /// A schema was claimed as subschema by two parents.
    TwoParents {
        /// The contested schema.
        schema: String,
        /// First parent.
        a: String,
        /// Second parent.
        b: String,
    },
    /// The subschema graph has a cycle.
    Cycle(String),
    /// A schema path does not resolve.
    BadPath {
        /// The path as written.
        path: String,
        /// Schema it was written in.
        from: String,
        /// Why it failed.
        msg: String,
    },
    /// A name is ambiguous in some schema's name space.
    Ambiguous {
        /// The conflicting name.
        name: String,
        /// Schema whose name space is ambiguous.
        schema: String,
        /// The origins that clash (schema names).
        origins: Vec<String>,
    },
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::UnknownSchema(s) => write!(f, "unknown schema `{s}`"),
            PathError::TwoParents { schema, a, b } => {
                write!(f, "schema `{schema}` is a subschema of both `{a}` and `{b}`")
            }
            PathError::Cycle(s) => write!(f, "schema hierarchy contains a cycle through `{s}`"),
            PathError::BadPath { path, from, msg } => {
                write!(f, "schema path `{path}` (in `{from}`) does not resolve: {msg}")
            }
            PathError::Ambiguous {
                name,
                schema,
                origins,
            } => write!(
                f,
                "name `{name}` is ambiguous in schema `{schema}` (defined in {}) — rename on import",
                origins.join(", ")
            ),
        }
    }
}

impl std::error::Error for PathError {}

/// The parsed schema hierarchy: definitions plus parent links.
#[derive(Clone, Debug, Default)]
pub struct Hierarchy {
    /// Schema definitions by name.
    pub defs: BTreeMap<String, SchemaDef>,
    /// Parent schema of each schema (roots absent).
    pub parent: BTreeMap<String, String>,
}

impl Hierarchy {
    /// Build the hierarchy from parsed items, validating single-parenthood
    /// and acyclicity.
    pub fn build(items: &[Item]) -> Result<Hierarchy, PathError> {
        let mut h = Hierarchy::default();
        for item in items {
            if let Item::Schema(s) = item {
                h.defs.insert(s.name.clone(), s.clone());
            }
        }
        for (name, def) in &h.defs {
            for c in def.components() {
                if let Component::Subschema(sub) = c {
                    if !h.defs.contains_key(&sub.name) {
                        return Err(PathError::UnknownSchema(sub.name.clone()));
                    }
                    if let Some(prev) = h.parent.get(&sub.name) {
                        if prev != name {
                            return Err(PathError::TwoParents {
                                schema: sub.name.clone(),
                                a: prev.clone(),
                                b: name.clone(),
                            });
                        }
                    }
                    h.parent.insert(sub.name.clone(), name.clone());
                }
            }
        }
        // acyclicity: walk up from every schema
        for name in h.defs.keys() {
            let mut cur = name.clone();
            let mut steps = 0;
            while let Some(p) = h.parent.get(&cur) {
                cur = p.clone();
                steps += 1;
                if steps > h.defs.len() {
                    return Err(PathError::Cycle(name.clone()));
                }
            }
        }
        Ok(h)
    }

    /// Root schemas (no parent), sorted.
    pub fn roots(&self) -> Vec<&str> {
        self.defs
            .keys()
            .filter(|n| !self.parent.contains_key(*n))
            .map(String::as_str)
            .collect()
    }

    /// Direct subschemas of `name`, in declaration order.
    pub fn children(&self, name: &str) -> Vec<&str> {
        let Some(def) = self.defs.get(name) else {
            return Vec::new();
        };
        def.components()
            .filter_map(|c| match c {
                Component::Subschema(s) => Some(s.name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Absolute path of a schema from its root, e.g.
    /// `/Company/CAD/Geometry`.
    pub fn absolute_path(&self, name: &str) -> String {
        let mut parts = vec![name.to_string()];
        let mut cur = name.to_string();
        while let Some(p) = self.parent.get(&cur) {
            parts.push(p.clone());
            cur = p.clone();
        }
        parts.reverse();
        format!("/{}", parts.join("/"))
    }

    /// Resolve a schema path written inside `from`.
    pub fn resolve_path(&self, from: &str, path: &SchemaPath) -> Result<String, PathError> {
        let bad = |msg: &str| PathError::BadPath {
            path: path.to_string(),
            from: from.to_string(),
            msg: msg.to_string(),
        };
        let mut cur: String;
        let mut steps = path.steps.iter();
        if path.absolute {
            let first = steps.next().ok_or_else(|| bad("empty absolute path"))?;
            if !self.defs.contains_key(first) || self.parent.contains_key(first) {
                return Err(bad(&format!("`{first}` is not a root schema")));
            }
            cur = first.clone();
        } else if path.ups > 0 {
            cur = from.to_string();
            for _ in 0..path.ups {
                cur = self
                    .parent
                    .get(&cur)
                    .cloned()
                    .ok_or_else(|| bad("`..` above a root schema"))?;
            }
        } else {
            // Relative path starting with a name: a direct or indirect
            // subschema of the enclosing schema.
            let first = steps.next().ok_or_else(|| bad("empty path"))?;
            if !self.children(from).contains(&first.as_str()) {
                return Err(bad(&format!("`{first}` is not a subschema of `{from}`")));
            }
            cur = first.clone();
        }
        for s in steps {
            if !self.children(&cur).contains(&s.as_str()) {
                return Err(bad(&format!("`{s}` is not a subschema of `{cur}`")));
            }
            cur = s.clone();
        }
        Ok(cur)
    }

    /// Compute the *type* name space of `schema`: every visible type name
    /// mapped to `(defining_schema, original_name)`.
    ///
    /// Sources: locally defined types and sorts; publics of direct
    /// subschemas (renamed per the `with` clause, and — for renamed entries
    /// that are re-exported via the `public` clause — visible to the super
    /// schema, as in appendix A.4); publics of imported schemas.
    ///
    /// A name mapping to two *different* origins is recorded and only
    /// reported when the name is looked up, matching appendix A.4.
    pub fn type_namespace(&self, schema: &str) -> BTreeMap<String, Vec<(String, String)>> {
        let mut visiting = Vec::new();
        self.type_namespace_guarded(schema, &mut visiting)
    }

    fn type_namespace_guarded(
        &self,
        schema: &str,
        visiting: &mut Vec<String>,
    ) -> BTreeMap<String, Vec<(String, String)>> {
        let mut space: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
        if visiting.iter().any(|s| s == schema) {
            return space; // cyclic import: expose nothing along the cycle
        }
        visiting.push(schema.to_string());
        let add = |name: String,
                   origin: (String, String),
                   space: &mut BTreeMap<String, Vec<(String, String)>>| {
            let entry = space.entry(name).or_default();
            if !entry.contains(&origin) {
                entry.push(origin);
            }
        };
        let Some(def) = self.defs.get(schema) else {
            visiting.pop();
            return space;
        };
        // local types and sorts
        for c in def.components() {
            match c {
                Component::Type(t) => add(
                    t.name.clone(),
                    (schema.to_string(), t.name.clone()),
                    &mut space,
                ),
                Component::Sort(s) => add(
                    s.name.clone(),
                    (schema.to_string(), s.name.clone()),
                    &mut space,
                ),
                _ => {}
            }
        }
        // subschema publics + imports (transitively re-exported names
        // included: a subschema's exports are its namespace entries listed
        // in its `public` clause)
        for c in def.components() {
            let (origin_schema, renames): (String, &[Rename]) = match c {
                Component::Subschema(s) => (s.name.clone(), &s.renames),
                Component::Import(i) => {
                    let Ok(target) = self.resolve_path(schema, &i.path) else {
                        continue;
                    };
                    (target, &i.renames)
                }
                _ => continue,
            };
            let Some(origin_def) = self.defs.get(&origin_schema) else {
                continue;
            };
            let exported = self.type_namespace_guarded(&origin_schema, visiting);
            for (visible_there, origins) in exported {
                if !origin_def.is_public(&visible_there) {
                    continue;
                }
                let rename = renames
                    .iter()
                    .find(|r| r.kind == RenameKind::Type && r.old == visible_there);
                let visible_here = rename.map_or(visible_there.clone(), |r| r.new.clone());
                for origin in origins {
                    add(visible_here.clone(), origin, &mut space);
                }
            }
        }
        visiting.pop();
        space
    }

    /// Look up a type name in `schema`'s name space; error when ambiguous.
    pub fn lookup_type(
        &self,
        schema: &str,
        name: &str,
    ) -> Result<Option<(String, String)>, PathError> {
        let space = self.type_namespace(schema);
        match space.get(name) {
            None => Ok(None),
            Some(origins) if origins.len() == 1 => Ok(Some(origins[0].clone())),
            Some(origins) => Err(PathError::Ambiguous {
                name: name.to_string(),
                schema: schema.to_string(),
                origins: origins.iter().map(|(s, _)| s.clone()).collect(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::car_schema::COMPANY_SCHEMA_SRC;
    use crate::parse::parse_source;

    fn company() -> Hierarchy {
        Hierarchy::build(&parse_source(COMPANY_SCHEMA_SRC).unwrap()).unwrap()
    }

    #[test]
    fn figure3_hierarchy_builds() {
        let h = company();
        assert_eq!(h.roots(), vec!["Company"]);
        assert_eq!(
            h.children("Company"),
            vec!["CAD", "CAPP", "CAM", "Marketing"]
        );
        assert_eq!(
            h.children("Geometry"),
            vec!["CSG", "BoundaryRep", "CSG2BoundRep"]
        );
        assert_eq!(h.absolute_path("CSG"), "/Company/CAD/Geometry/CSG");
    }

    #[test]
    fn absolute_and_relative_paths_resolve() {
        let h = company();
        let abs = SchemaPath {
            absolute: true,
            ups: 0,
            steps: vec![
                "Company".into(),
                "CAD".into(),
                "Geometry".into(),
                "CSG".into(),
            ],
        };
        assert_eq!(h.resolve_path("CSG2BoundRep", &abs).unwrap(), "CSG");
        let up = SchemaPath {
            absolute: false,
            ups: 1,
            steps: vec!["BoundaryRep".into()],
        };
        assert_eq!(h.resolve_path("CSG2BoundRep", &up).unwrap(), "BoundaryRep");
        // From CAD, `Geometry/CSG` reaches down two levels (appendix A.5).
        let rel = SchemaPath {
            absolute: false,
            ups: 0,
            steps: vec!["Geometry".into(), "CSG".into()],
        };
        assert_eq!(h.resolve_path("CAD", &rel).unwrap(), "CSG");
    }

    #[test]
    fn double_dot_iterates() {
        let h = company();
        let upup = SchemaPath {
            absolute: false,
            ups: 2,
            steps: vec![],
        };
        // ../../ from Geometry is Company (appendix A.5).
        assert_eq!(h.resolve_path("Geometry", &upup).unwrap(), "Company");
        // ../.. from BoundaryRep is CAD.
        assert_eq!(h.resolve_path("BoundaryRep", &upup).unwrap(), "CAD");
    }

    #[test]
    fn bad_paths_error() {
        let h = company();
        let bad = SchemaPath {
            absolute: true,
            ups: 0,
            steps: vec!["CAD".into()],
        };
        assert!(h.resolve_path("CSG", &bad).is_err()); // CAD is not a root
        let above_root = SchemaPath {
            absolute: false,
            ups: 1,
            steps: vec![],
        };
        assert!(h.resolve_path("Company", &above_root).is_err());
    }

    #[test]
    fn renaming_resolves_cuboid_conflict() {
        let h = company();
        // In Geometry, the renamed names are unambiguous.
        assert_eq!(
            h.lookup_type("Geometry", "CSGCuboid").unwrap(),
            Some(("CSG".to_string(), "Cuboid".to_string()))
        );
        assert_eq!(
            h.lookup_type("Geometry", "BRepCuboid").unwrap(),
            Some(("BoundaryRep".to_string(), "Cuboid".to_string()))
        );
        // After renaming, the bare name `Cuboid` no longer enters
        // Geometry's name space…
        assert_eq!(h.lookup_type("Geometry", "Cuboid").unwrap(), None);
        // …and hidden components are not visible at all.
        assert_eq!(h.lookup_type("Geometry", "Surface").unwrap(), None);
    }

    #[test]
    fn unrenamed_conflict_is_ambiguous_only_on_use() {
        // Two subschemas both export `Cuboid`; without renaming the name is
        // ambiguous exactly when looked up (appendix A.4).
        let src = "\
schema Geo is
  subschema A;
  subschema B;
end schema Geo;
schema A is public Cuboid; interface type Cuboid is end type Cuboid; implementation end schema A;
schema B is public Cuboid; interface type Cuboid is end type Cuboid; implementation end schema B;";
        let h = Hierarchy::build(&parse_source(src).unwrap()).unwrap();
        // Namespace construction itself succeeds…
        let space = h.type_namespace("Geo");
        assert_eq!(space.get("Cuboid").unwrap().len(), 2);
        // …the error surfaces on lookup.
        assert!(matches!(
            h.lookup_type("Geo", "Cuboid"),
            Err(PathError::Ambiguous { .. })
        ));
    }

    #[test]
    fn import_brings_renamed_publics() {
        let h = company();
        assert_eq!(
            h.lookup_type("CSG2BoundRep", "CSGCuboid").unwrap(),
            Some(("CSG".to_string(), "Cuboid".to_string()))
        );
        assert_eq!(
            h.lookup_type("CSG2BoundRep", "BRepCuboid").unwrap(),
            Some(("BoundaryRep".to_string(), "Cuboid".to_string()))
        );
    }

    #[test]
    fn two_parents_rejected() {
        let src = "\
schema A is subschema C; end schema A;
schema B is subschema C; end schema B;
schema C is end schema C;";
        let items = parse_source(src).unwrap();
        assert!(matches!(
            Hierarchy::build(&items),
            Err(PathError::TwoParents { .. })
        ));
    }

    #[test]
    fn unknown_subschema_rejected() {
        let src = "schema A is subschema Ghost; end schema A;";
        let items = parse_source(src).unwrap();
        assert!(matches!(
            Hierarchy::build(&items),
            Err(PathError::UnknownSchema(_))
        ));
    }
}
