//! Recursive-descent parser for GOM schema definition frames.
//!
//! The grammar covers everything the paper exercises: type frames with
//! attribute bodies, `operations`/`refine`/`implementation` sections, enum
//! sorts, `fashion` declarations, and the appendix-A schema frames with
//! `public`/`interface`/`implementation` sections, `subschema` entries, and
//! `import` clauses with schema paths and renaming.

use crate::ast::*;
use crate::lex::{tokenize, Spanned, Tok};
use std::fmt;

/// Parse error with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parsing.
pub type PResult<T> = Result<T, ParseError>;

/// Parser state over the token stream. Body-statement parsing lives in
/// [`crate::body`].
pub struct Parser<'a> {
    pub(crate) toks: Vec<Spanned>,
    pub(crate) pos: usize,
    pub(crate) src: &'a str,
}

impl<'a> Parser<'a> {
    /// Create a parser for `src`.
    pub fn new(src: &'a str) -> PResult<Self> {
        let toks = tokenize(src).map_err(|e| ParseError {
            line: e.line,
            col: e.col,
            msg: e.msg,
        })?;
        Ok(Parser { toks, pos: 0, src })
    }

    pub(crate) fn err(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self
            .toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or((0, 0), |s| (s.line, s.col));
        ParseError {
            line,
            col,
            msg: msg.into(),
        }
    }

    pub(crate) fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    pub(crate) fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    pub(crate) fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    pub(crate) fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_kw(&mut self, kw: &str) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    pub(crate) fn expect_tok(&mut self, t: &Tok, what: &str) -> PResult<()> {
        match self.peek() {
            Some(x) if x == t => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    pub(crate) fn expect_ident(&mut self, what: &str) -> PResult<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Snapshot of the cursor, for backtracking.
    pub(crate) fn save(&self) -> usize {
        self.pos
    }

    /// Restore a cursor snapshot.
    pub(crate) fn restore(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Byte offset of the current token (for raw-source capture).
    pub(crate) fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map_or_else(|| self.src.len(), |s| s.start)
    }

    /// Byte offset just past the previous token.
    pub(crate) fn prev_end(&self) -> usize {
        if self.pos == 0 {
            0
        } else {
            self.toks[self.pos - 1].end
        }
    }

    // ----- top level -------------------------------------------------------------

    /// Parse a whole source file: a sequence of schema and fashion frames.
    pub fn items(&mut self) -> PResult<Vec<Item>> {
        let mut out = Vec::new();
        while self.peek().is_some() {
            if self.at_kw("schema") {
                out.push(Item::Schema(self.schema_frame()?));
            } else if self.at_kw("fashion") {
                out.push(Item::Fashion(self.fashion_frame()?));
            } else {
                return Err(self.err("expected `schema` or `fashion`"));
            }
        }
        Ok(out)
    }

    /// `schema Name is … end schema Name;`
    pub fn schema_frame(&mut self) -> PResult<SchemaDef> {
        self.expect_kw("schema")?;
        let name = self.expect_ident("schema name")?;
        self.expect_kw("is")?;
        let mut def = SchemaDef {
            name: name.clone(),
            ..Default::default()
        };
        // optional `public A, B, …;`
        if self.eat_kw("public") {
            let mut publics = Vec::new();
            loop {
                publics.push(self.expect_ident("public component name")?);
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect_tok(&Tok::Semi, "`;`")?;
            def.publics = Some(publics);
        }
        // sections
        let mut in_interface = true;
        let mut sectioned = false;
        loop {
            if self.at_kw("interface") {
                self.bump();
                in_interface = true;
                sectioned = true;
                continue;
            }
            if self.at_kw("implementation") {
                self.bump();
                in_interface = false;
                sectioned = true;
                continue;
            }
            if self.at_kw("end") {
                break;
            }
            let comp = self.component()?;
            if in_interface {
                def.interface.push(comp);
            } else {
                def.implementation.push(comp);
            }
        }
        // When no explicit sections were used, everything is "interface".
        let _ = sectioned;
        self.expect_kw("end")?;
        self.expect_kw("schema")?;
        let end_name = self.expect_ident("schema name")?;
        if end_name != name {
            return Err(self.err(format!(
                "schema frame `{name}` closed with `end schema {end_name}`"
            )));
        }
        self.expect_tok(&Tok::Semi, "`;`")?;
        Ok(def)
    }

    fn component(&mut self) -> PResult<Component> {
        if self.at_kw("type") {
            Ok(Component::Type(self.type_frame()?))
        } else if self.at_kw("sort") {
            Ok(Component::Sort(self.sort_frame()?))
        } else if self.at_kw("var") {
            self.bump();
            let name = self.expect_ident("variable name")?;
            self.expect_tok(&Tok::Colon, "`:`")?;
            let ty = self.type_ref()?;
            self.expect_tok(&Tok::Semi, "`;`")?;
            Ok(Component::Var(VarDef { name, ty }))
        } else if self.at_kw("subschema") {
            self.bump();
            let name = self.expect_ident("subschema name")?;
            let mut renames = Vec::new();
            if self.eat_kw("with") {
                renames = self.renames()?;
                self.expect_kw("end")?;
                self.expect_kw("subschema")?;
                let n2 = self.expect_ident("subschema name")?;
                if n2 != name {
                    return Err(self.err("mismatched `end subschema` name"));
                }
            }
            self.expect_tok(&Tok::Semi, "`;`")?;
            Ok(Component::Subschema(SubschemaDecl { name, renames }))
        } else if self.at_kw("import") {
            self.bump();
            let path = self.schema_path()?;
            let mut renames = Vec::new();
            if self.eat_kw("with") {
                renames = self.renames()?;
                self.expect_kw("end")?;
                self.expect_kw("schema")?;
                let _ = self.expect_ident("schema name")?;
            }
            self.expect_tok(&Tok::Semi, "`;`")?;
            Ok(Component::Import(ImportDecl { path, renames }))
        } else {
            Err(self.err("expected `type`, `sort`, `var`, `subschema`, or `import`"))
        }
    }

    fn renames(&mut self) -> PResult<Vec<Rename>> {
        let mut out = Vec::new();
        loop {
            let kind = if self.eat_kw("type") {
                RenameKind::Type
            } else if self.eat_kw("var") {
                RenameKind::Var
            } else if self.eat_kw("operation") {
                RenameKind::Operation
            } else {
                break;
            };
            let old = self.expect_ident("old name")?;
            self.expect_kw("as")?;
            let new = self.expect_ident("new name")?;
            self.expect_tok(&Tok::Semi, "`;`")?;
            out.push(Rename { kind, old, new });
        }
        Ok(out)
    }

    fn schema_path(&mut self) -> PResult<SchemaPath> {
        let mut absolute = false;
        let mut ups = 0usize;
        let mut steps = Vec::new();
        if self.peek() == Some(&Tok::Slash) {
            absolute = true;
            self.bump();
        }
        while self.peek() == Some(&Tok::DotDot) {
            self.bump();
            ups += 1;
            if self.peek() == Some(&Tok::Slash) {
                self.bump();
            }
        }
        while let Some(Tok::Ident(_)) = self.peek() {
            steps.push(self.expect_ident("schema path step")?);
            if self.peek() == Some(&Tok::Slash) {
                self.bump();
            } else {
                break;
            }
        }
        if !absolute && ups == 0 && steps.is_empty() {
            return Err(self.err("empty schema path"));
        }
        Ok(SchemaPath {
            absolute,
            ups,
            steps,
        })
    }

    /// `sort Fuel is enum (leaded, unleaded);`
    fn sort_frame(&mut self) -> PResult<SortDef> {
        self.expect_kw("sort")?;
        let name = self.expect_ident("sort name")?;
        self.expect_kw("is")?;
        self.expect_kw("enum")?;
        self.expect_tok(&Tok::LParen, "`(`")?;
        let mut variants = Vec::new();
        loop {
            variants.push(self.expect_ident("enum literal")?);
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                other => return Err(self.err(format!("expected `,` or `)`, found {other:?}"))),
            }
        }
        self.expect_tok(&Tok::Semi, "`;`")?;
        Ok(SortDef { name, variants })
    }

    /// A type reference: `Name` or `Name@Schema`.
    pub(crate) fn type_ref(&mut self) -> PResult<TypeRef> {
        let name = self.expect_ident("type name")?;
        if self.peek() == Some(&Tok::At) {
            self.bump();
            let schema = self.expect_ident("schema name")?;
            Ok(TypeRef::at(name, schema))
        } else {
            Ok(TypeRef::plain(name))
        }
    }

    /// `type Name [supertype S1, S2] is … end type Name;`
    pub fn type_frame(&mut self) -> PResult<TypeDef> {
        self.expect_kw("type")?;
        let name = self.expect_ident("type name")?;
        let mut def = TypeDef {
            name: name.clone(),
            ..Default::default()
        };
        if self.eat_kw("supertype") {
            loop {
                def.supertypes.push(self.type_ref()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_kw("is")?;
        // attribute body `[ a : T; b : T; ]`
        if self.peek() == Some(&Tok::LBracket) {
            self.bump();
            while self.peek() != Some(&Tok::RBracket) {
                let aname = self.expect_ident("attribute name")?;
                self.expect_tok(&Tok::Colon, "`:`")?;
                let ty = self.type_ref()?;
                self.expect_tok(&Tok::Semi, "`;`")?;
                def.attrs.push(AttrDef { name: aname, ty });
            }
            self.bump(); // `]`
        }
        // sections: operations / refine / implementation (any order, repeatable)
        loop {
            if self.eat_kw("operations") {
                while self.at_op_sig() {
                    let sig = self.op_sig()?;
                    def.ops.push(sig);
                }
            } else if self.eat_kw("refine") {
                while self.at_op_sig() {
                    let sig = self.op_sig()?;
                    def.refines.push(sig);
                }
            } else if self.eat_kw("implementation") {
                while self.at_kw("define") || self.at_impl_header() {
                    def.impls.push(self.op_impl()?);
                }
            } else {
                break;
            }
        }
        self.expect_kw("end")?;
        self.expect_kw("type")?;
        let end_name = self.expect_ident("type name")?;
        if end_name != name {
            return Err(self.err(format!(
                "type frame `{name}` closed with `end type {end_name}`"
            )));
        }
        self.expect_tok(&Tok::Semi, "`;`")?;
        Ok(def)
    }

    /// Are we looking at `name :` (an operation signature)?
    fn at_op_sig(&self) -> bool {
        if self.at_kw("declare") {
            return true;
        }
        matches!(
            (self.peek(), self.peek2()),
            (Some(Tok::Ident(n)), Some(Tok::Colon))
                if n != "end" && n != "implementation" && n != "refine" && n != "operations"
        )
    }

    /// `[declare] name : [||] [T1, T2] -> R;`
    fn op_sig(&mut self) -> PResult<OpSig> {
        let _ = self.eat_kw("declare");
        let name = self.expect_ident("operation name")?;
        self.expect_tok(&Tok::Colon, "`:`")?;
        let _ = self.peek() == Some(&Tok::PipePipe) && self.bump().is_some();
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::Arrow) {
            loop {
                args.push(self.type_ref()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_tok(&Tok::Arrow, "`->`")?;
        let result = self.type_ref()?;
        self.expect_tok(&Tok::Semi, "`;`")?;
        Ok(OpSig { name, args, result })
    }

    /// Is the next token sequence `name ( … ) is` (paper-style
    /// implementation header without `define`)?
    fn at_impl_header(&self) -> bool {
        matches!(
            (self.peek(), self.peek2()),
            (Some(Tok::Ident(n)), Some(Tok::LParen)) if n != "end"
        ) || matches!(
            (self.peek(), self.peek2()),
            (Some(Tok::Ident(n)), Some(Tok::Ident(is))) if n != "end" && is == "is"
        )
    }

    /// `define name(params) is begin … end [define] name;`
    /// or paper style `name(params) is begin … end name;`
    fn op_impl(&mut self) -> PResult<OpImpl> {
        let _ = self.eat_kw("define");
        let name = self.expect_ident("operation name")?;
        let mut params = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            self.bump();
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    params.push(self.expect_ident("parameter name")?);
                    match self.bump() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RParen) => break,
                        other => {
                            return Err(self.err(format!("expected `,` or `)`, found {other:?}")))
                        }
                    }
                }
            } else {
                self.bump();
            }
        }
        self.expect_kw("is")?;
        let raw_start = self.offset();
        let body = self.open_block()?;
        // `end [define] name;` — the `end` closes the body block too.
        self.expect_kw("end")?;
        let raw = self.src[raw_start..self.prev_end()].to_string();
        let _ = self.eat_kw("define");
        let end_name = self.expect_ident("operation name")?;
        if end_name != name {
            return Err(self.err(format!(
                "implementation of `{name}` closed with `end {end_name}`"
            )));
        }
        self.expect_tok(&Tok::Semi, "`;`")?;
        Ok(OpImpl {
            name,
            params,
            body,
            raw,
        })
    }

    /// `fashion From as To where … end fashion;`
    pub fn fashion_frame(&mut self) -> PResult<FashionDef> {
        self.expect_kw("fashion")?;
        let from = self.type_ref()?;
        self.expect_kw("as")?;
        let to = self.type_ref()?;
        self.expect_kw("where")?;
        let mut members = Vec::new();
        while !self.at_kw("end") {
            members.push(self.fashion_member()?);
        }
        self.expect_kw("end")?;
        self.expect_kw("fashion")?;
        self.expect_tok(&Tok::Semi, "`;`")?;
        Ok(FashionDef { from, to, members })
    }

    fn fashion_member(&mut self) -> PResult<FashionMember> {
        if self.eat_kw("operation") {
            let name = self.expect_ident("operation name")?;
            self.expect_kw("is")?;
            let raw_start = self.offset();
            let body = self.closed_block()?;
            let raw = self.src[raw_start..self.prev_end()].to_string();
            self.expect_tok(&Tok::Semi, "`;`")?;
            return Ok(FashionMember::Op { name, body, raw });
        }
        let name = self.expect_ident("attribute name")?;
        self.expect_tok(&Tok::Colon, "`:`")?;
        enum Dir {
            Read,
            Write,
            Both,
        }
        let dir = if self.peek() == Some(&Tok::Arrow) {
            self.bump();
            Dir::Read
        } else if self.peek() == Some(&Tok::BackArrow) {
            self.bump();
            Dir::Write
        } else {
            Dir::Both
        };
        let ty = self.type_ref()?;
        self.expect_kw("is")?;
        let raw_start = self.offset();
        let body = self.block_or_expr()?;
        let raw = self.src[raw_start..self.prev_end()].to_string();
        self.expect_tok(&Tok::Semi, "`;`")?;
        Ok(match dir {
            Dir::Read => FashionMember::AttrRead {
                name,
                ty,
                body,
                raw,
            },
            Dir::Write => FashionMember::AttrWrite {
                name,
                ty,
                body,
                raw,
            },
            Dir::Both => FashionMember::AttrBoth {
                name,
                ty,
                body,
                raw,
            },
        })
    }
}

/// Parse a full source file into items.
pub fn parse_source(src: &str) -> PResult<Vec<Item>> {
    let mut p = Parser::new(src)?;
    p.items()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::car_schema::CAR_SCHEMA_SRC;

    #[test]
    fn parses_the_paper_car_schema() {
        let items = parse_source(CAR_SCHEMA_SRC).unwrap();
        assert_eq!(items.len(), 1);
        let Item::Schema(s) = &items[0] else {
            panic!("expected schema");
        };
        assert_eq!(s.name, "CarSchema");
        let types: Vec<&TypeDef> = s
            .components()
            .filter_map(|c| match c {
                Component::Type(t) => Some(t),
                _ => None,
            })
            .collect();
        let names: Vec<&str> = types.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["Person", "Location", "City", "Car"]);
        let city = types[2];
        assert_eq!(city.supertypes, vec![TypeRef::plain("Location")]);
        assert_eq!(city.refines.len(), 1);
        assert_eq!(city.refines[0].name, "distance");
        let car = types[3];
        assert_eq!(car.attrs.len(), 4);
        assert_eq!(car.ops[0].name, "changeLocation");
        assert_eq!(car.ops[0].args.len(), 2);
        assert_eq!(car.impls.len(), 1);
        assert!(car.impls[0].raw.contains("self.owner"));
    }

    #[test]
    fn sort_enum_parses() {
        let src = "schema S is sort Fuel is enum (leaded, unleaded); end schema S;";
        let items = parse_source(src).unwrap();
        let Item::Schema(s) = &items[0] else { panic!() };
        let Component::Sort(f) = &s.interface[0] else {
            panic!("expected sort")
        };
        assert_eq!(f.variants, vec!["leaded", "unleaded"]);
    }

    #[test]
    fn fashion_frame_parses() {
        let src = "\
fashion Person@CarSchema as Person@NewCarSchema where
  birthday : -> date is self.age;
  birthday : <- date is begin self.age := value; end;
  name : string is self.name;
end fashion;";
        let items = parse_source(src).unwrap();
        let Item::Fashion(f) = &items[0] else {
            panic!("expected fashion")
        };
        assert_eq!(f.from, TypeRef::at("Person", "CarSchema"));
        assert_eq!(f.to, TypeRef::at("Person", "NewCarSchema"));
        assert_eq!(f.members.len(), 3);
        assert!(matches!(f.members[0], FashionMember::AttrRead { .. }));
        assert!(matches!(f.members[1], FashionMember::AttrWrite { .. }));
        assert!(matches!(f.members[2], FashionMember::AttrBoth { .. }));
    }

    #[test]
    fn appendix_schema_frames_parse() {
        let src = "\
schema Geometry is
  public CSGCuboid, BRepCuboid;
  interface
    subschema CSG with
      type Cuboid as CSGCuboid;
    end subschema CSG;
    subschema BoundaryRep with
      type Cuboid as BRepCuboid;
    end subschema BoundaryRep;
end schema Geometry;

schema CSG2BoundRep is
  public convert;
  interface
    import /Company/CAD/Geometry/CSG with
      type Cuboid as CSGCuboid;
    end schema CSG;
    import ../BoundaryRep;
end schema CSG2BoundRep;";
        let items = parse_source(src).unwrap();
        assert_eq!(items.len(), 2);
        let Item::Schema(geo) = &items[0] else {
            panic!()
        };
        assert_eq!(geo.publics.as_ref().unwrap().len(), 2);
        let Component::Subschema(csg) = &geo.interface[0] else {
            panic!("expected subschema")
        };
        assert_eq!(csg.renames[0].new, "CSGCuboid");
        let Item::Schema(conv) = &items[1] else {
            panic!()
        };
        let Component::Import(imp) = &conv.interface[0] else {
            panic!("expected import")
        };
        assert!(imp.path.absolute);
        assert_eq!(imp.path.steps.len(), 4);
        let Component::Import(imp2) = &conv.interface[1] else {
            panic!("expected import")
        };
        assert_eq!(imp2.path.ups, 1);
        assert_eq!(imp2.path.steps, vec!["BoundaryRep".to_string()]);
    }

    #[test]
    fn mismatched_end_name_is_an_error() {
        let src = "schema A is end schema B;";
        assert!(parse_source(src).is_err());
    }

    #[test]
    fn multiple_supertypes_parse() {
        let src = "\
schema S is
  type A is end type A;
  type B is end type B;
  type C supertype A, B is end type C;
end schema S;";
        let items = parse_source(src).unwrap();
        let Item::Schema(s) = &items[0] else { panic!() };
        let Component::Type(c) = &s.interface[2] else {
            panic!()
        };
        assert_eq!(c.supertypes.len(), 2);
    }
}
