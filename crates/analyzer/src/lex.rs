//! Lexer for the GOM surface language (paper §3.1, §4.1, appendix A).

use std::fmt;

/// A token of the GOM language.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Identifier or keyword (keywords are contextual).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (double quotes).
    Str(String),
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `..` (relative schema path step)
    DotDot,
    /// `/` (schema path separator or division)
    Slash,
    /// `->`
    Arrow,
    /// `<-`
    BackArrow,
    /// `:=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `||` (empty receiver-argument marker in paper signatures)
    PipePipe,
    /// `@` (type-version notation `Person@CarSchema`)
    At,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(n) => write!(f, "`{n}`"),
            Tok::Float(x) => write!(f, "`{x}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            other => {
                let s = match other {
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::Semi => ";",
                    Tok::Comma => ",",
                    Tok::Colon => ":",
                    Tok::Dot => ".",
                    Tok::DotDot => "..",
                    Tok::Slash => "/",
                    Tok::Arrow => "->",
                    Tok::BackArrow => "<-",
                    Tok::Assign => ":=",
                    Tok::EqEq => "==",
                    Tok::NotEq => "!=",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::PipePipe => "||",
                    Tok::At => "@",
                    _ => unreachable!(),
                };
                write!(f, "`{s}`")
            }
        }
    }
}

/// A token with source position.
#[derive(Clone, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Byte offset of the token's first character.
    pub start: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
}

/// Lexing error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenize GOM source. `!! …` comments run to end of line (the paper's
/// comment syntax); `//` works too.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LexError> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    let mut out = Vec::new();
    macro_rules! bump {
        () => {{
            let c = b[pos];
            pos += 1;
            if c == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            c
        }};
    }
    while pos < b.len() {
        let c = b[pos];
        // whitespace
        if c.is_ascii_whitespace() {
            bump!();
            continue;
        }
        // comments: `!!` or `//` to end of line
        if (c == b'!' && b.get(pos + 1) == Some(&b'!'))
            || (c == b'/' && b.get(pos + 1) == Some(&b'/'))
        {
            while pos < b.len() && b[pos] != b'\n' {
                bump!();
            }
            continue;
        }
        let (tl, tc) = (line, col);
        let tstart = pos;
        let tok = match c {
            b'[' => {
                bump!();
                Tok::LBracket
            }
            b']' => {
                bump!();
                Tok::RBracket
            }
            b'(' => {
                bump!();
                Tok::LParen
            }
            b')' => {
                bump!();
                Tok::RParen
            }
            b';' => {
                bump!();
                Tok::Semi
            }
            b',' => {
                bump!();
                Tok::Comma
            }
            b'@' => {
                bump!();
                Tok::At
            }
            b'+' => {
                bump!();
                Tok::Plus
            }
            b'*' => {
                bump!();
                Tok::Star
            }
            b'/' => {
                bump!();
                Tok::Slash
            }
            b':' => {
                bump!();
                if pos < b.len() && b[pos] == b'=' {
                    bump!();
                    Tok::Assign
                } else {
                    Tok::Colon
                }
            }
            b'.' => {
                bump!();
                if pos < b.len() && b[pos] == b'.' {
                    bump!();
                    Tok::DotDot
                } else {
                    Tok::Dot
                }
            }
            b'-' => {
                bump!();
                if pos < b.len() && b[pos] == b'>' {
                    bump!();
                    Tok::Arrow
                } else {
                    Tok::Minus
                }
            }
            b'<' => {
                bump!();
                if pos < b.len() && b[pos] == b'-' {
                    bump!();
                    Tok::BackArrow
                } else if pos < b.len() && b[pos] == b'=' {
                    bump!();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            b'>' => {
                bump!();
                if pos < b.len() && b[pos] == b'=' {
                    bump!();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'=' => {
                bump!();
                if pos < b.len() && b[pos] == b'=' {
                    bump!();
                    Tok::EqEq
                } else {
                    return Err(LexError {
                        line: tl,
                        col: tc,
                        msg: "single `=` is not a GOM operator (use `==` or `:=`)".into(),
                    });
                }
            }
            b'!' => {
                bump!();
                if pos < b.len() && b[pos] == b'=' {
                    bump!();
                    Tok::NotEq
                } else {
                    return Err(LexError {
                        line: tl,
                        col: tc,
                        msg: "stray `!` (comments are `!!`)".into(),
                    });
                }
            }
            b'|' => {
                bump!();
                if pos < b.len() && b[pos] == b'|' {
                    bump!();
                    Tok::PipePipe
                } else {
                    return Err(LexError {
                        line: tl,
                        col: tc,
                        msg: "stray `|` (signatures use `||`)".into(),
                    });
                }
            }
            b'"' => {
                bump!();
                let mut s = String::new();
                loop {
                    if pos >= b.len() {
                        return Err(LexError {
                            line: tl,
                            col: tc,
                            msg: "unterminated string literal".into(),
                        });
                    }
                    let c = bump!();
                    if c == b'"' {
                        break;
                    }
                    s.push(c as char);
                }
                Tok::Str(s)
            }
            c if c.is_ascii_digit() => {
                let start = pos;
                while pos < b.len() && b[pos].is_ascii_digit() {
                    bump!();
                }
                if pos + 1 < b.len() && b[pos] == b'.' && b[pos + 1].is_ascii_digit() {
                    bump!();
                    while pos < b.len() && b[pos].is_ascii_digit() {
                        bump!();
                    }
                    let text = std::str::from_utf8(&b[start..pos]).expect("ascii");
                    Tok::Float(text.parse().map_err(|_| LexError {
                        line: tl,
                        col: tc,
                        msg: "bad float literal".into(),
                    })?)
                } else {
                    let text = std::str::from_utf8(&b[start..pos]).expect("ascii");
                    Tok::Int(text.parse().map_err(|_| LexError {
                        line: tl,
                        col: tc,
                        msg: "integer literal out of range".into(),
                    })?)
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = pos;
                while pos < b.len() && (b[pos].is_ascii_alphanumeric() || b[pos] == b'_') {
                    bump!();
                }
                Tok::Ident(
                    std::str::from_utf8(&b[start..pos])
                        .expect("ascii")
                        .to_string(),
                )
            }
            other => {
                return Err(LexError {
                    line: tl,
                    col: tc,
                    msg: format!("unexpected character `{}`", other as char),
                })
            }
        };
        out.push(Spanned {
            tok,
            line: tl,
            col: tc,
            start: tstart,
            end: pos,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_punctuation() {
        assert_eq!(
            toks("type Person is [ name : string; ]"),
            vec![
                Tok::Ident("type".into()),
                Tok::Ident("Person".into()),
                Tok::Ident("is".into()),
                Tok::LBracket,
                Tok::Ident("name".into()),
                Tok::Colon,
                Tok::Ident("string".into()),
                Tok::Semi,
                Tok::RBracket,
            ]
        );
    }

    #[test]
    fn signature_tokens() {
        assert_eq!(
            toks("distance : || Location -> float;"),
            vec![
                Tok::Ident("distance".into()),
                Tok::Colon,
                Tok::PipePipe,
                Tok::Ident("Location".into()),
                Tok::Arrow,
                Tok::Ident("float".into()),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn paper_comment_syntax() {
        assert_eq!(
            toks("x !! uses longi and lati.\ny"),
            vec![Tok::Ident("x".into()), Tok::Ident("y".into())]
        );
    }

    #[test]
    fn assignment_and_comparison() {
        assert_eq!(
            toks("self.milage := self.milage + 1.5; a == b"),
            vec![
                Tok::Ident("self".into()),
                Tok::Dot,
                Tok::Ident("milage".into()),
                Tok::Assign,
                Tok::Ident("self".into()),
                Tok::Dot,
                Tok::Ident("milage".into()),
                Tok::Plus,
                Tok::Float(1.5),
                Tok::Semi,
                Tok::Ident("a".into()),
                Tok::EqEq,
                Tok::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn schema_paths_and_at_notation() {
        assert_eq!(
            toks("/Company/CAD ../CSG Person@CarSchema <- ->"),
            vec![
                Tok::Slash,
                Tok::Ident("Company".into()),
                Tok::Slash,
                Tok::Ident("CAD".into()),
                Tok::DotDot,
                Tok::Slash,
                Tok::Ident("CSG".into()),
                Tok::Ident("Person".into()),
                Tok::At,
                Tok::Ident("CarSchema".into()),
                Tok::BackArrow,
                Tok::Arrow,
            ]
        );
    }

    #[test]
    fn negative_number_is_minus_then_int() {
        assert_eq!(toks("-1.0"), vec![Tok::Minus, Tok::Float(1.0)]);
    }

    #[test]
    fn errors_carry_position() {
        let err = tokenize("abc\n  ?").unwrap_err();
        assert_eq!((err.line, err.col), (2, 3));
    }
}
