//! Surface AST of the GOM language.
//!
//! Covers the paper's §3.1 type definition frames (attributes, operations,
//! refinement, implementations), §4.1 `fashion` declarations, §4.2 `sort`
//! enums, and appendix A schema definition frames (`public` / `interface` /
//! `implementation` sections, `subschema` entries with renaming, `import`
//! with schema paths).

/// A top-level item of a GOM source file.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// A schema definition frame.
    Schema(SchemaDef),
    /// A `fashion A as B where … end fashion;` declaration (§4.1).
    Fashion(FashionDef),
}

/// A reference to a type: a plain name resolved against the current name
/// space, or the at-notation `Name@Schema` pinning a schema (type version).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TypeRef {
    /// Type name.
    pub name: String,
    /// Schema qualifier from at-notation, if present.
    pub schema: Option<String>,
}

impl TypeRef {
    /// Plain reference.
    pub fn plain(name: impl Into<String>) -> Self {
        TypeRef {
            name: name.into(),
            schema: None,
        }
    }

    /// `Name@Schema` reference.
    pub fn at(name: impl Into<String>, schema: impl Into<String>) -> Self {
        TypeRef {
            name: name.into(),
            schema: Some(schema.into()),
        }
    }
}

impl std::fmt::Display for TypeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.schema {
            Some(s) => write!(f, "{}@{s}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A schema definition frame (appendix A.2–A.5).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SchemaDef {
    /// Schema name.
    pub name: String,
    /// Names listed in the `public` clause; `None` means no clause, in
    /// which case every component is public (the paper's §3.1 style).
    pub publics: Option<Vec<String>>,
    /// Components of the `interface` section (or of the whole frame when no
    /// sections are used).
    pub interface: Vec<Component>,
    /// Components of the `implementation` section.
    pub implementation: Vec<Component>,
}

impl SchemaDef {
    /// All components, interface first.
    pub fn components(&self) -> impl Iterator<Item = &Component> {
        self.interface.iter().chain(self.implementation.iter())
    }

    /// Is `name` visible outside this schema?
    pub fn is_public(&self, name: &str) -> bool {
        match &self.publics {
            None => true,
            Some(p) => p.iter().any(|n| n == name),
        }
    }
}

/// One component of a schema frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Component {
    /// A type definition.
    Type(TypeDef),
    /// An enum sort definition (§4.2 `sort Fuel is enum (leaded, unleaded)`).
    Sort(SortDef),
    /// A schema-level variable.
    Var(VarDef),
    /// A `subschema Name [with renames];` entry.
    Subschema(SubschemaDecl),
    /// An `import <path> [with renames];` entry.
    Import(ImportDecl),
}

/// `subschema CAD;` or `subschema CSG with type Cuboid as CSGCuboid; end subschema CSG;`
#[derive(Clone, Debug, PartialEq)]
pub struct SubschemaDecl {
    /// Subschema name.
    pub name: String,
    /// Renamings applied when the subschema's publics enter this name space.
    pub renames: Vec<Rename>,
}

/// `import /Company/CAD/Geometry/CSG with … end schema CSG;`
#[derive(Clone, Debug, PartialEq)]
pub struct ImportDecl {
    /// The schema path.
    pub path: SchemaPath,
    /// Renamings applied on import.
    pub renames: Vec<Rename>,
}

/// A schema path (appendix A.5): absolute (`/Company/CAD`), relative from
/// the enclosing schema (`Geometry/CSG`), or upward (`../CSG`, `../../X`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SchemaPath {
    /// Starts at the root?
    pub absolute: bool,
    /// Number of leading `..` steps.
    pub ups: usize,
    /// Remaining name steps.
    pub steps: Vec<String>,
}

impl std::fmt::Display for SchemaPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.absolute {
            write!(f, "/")?;
        }
        for i in 0..self.ups {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "..")?;
        }
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 || self.ups > 0 {
                write!(f, "/")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// What kind of schema component a rename applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RenameKind {
    /// `type Old as New`
    Type,
    /// `var Old as New`
    Var,
    /// `operation Old as New`
    Operation,
}

/// One `kind Old as New` entry of a `with` clause.
#[derive(Clone, Debug, PartialEq)]
pub struct Rename {
    /// Component kind.
    pub kind: RenameKind,
    /// Name in the source schema.
    pub old: String,
    /// Name in the importing schema.
    pub new: String,
}

/// A schema-level variable declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct VarDef {
    /// Variable name.
    pub name: String,
    /// Its type.
    pub ty: TypeRef,
}

/// An enum sort (modelled as a type whose instances are its literal values).
#[derive(Clone, Debug, PartialEq)]
pub struct SortDef {
    /// Sort name.
    pub name: String,
    /// Enumeration literals, in declaration order.
    pub variants: Vec<String>,
}

/// A type definition frame (§3.1).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TypeDef {
    /// Type name.
    pub name: String,
    /// Declared supertypes (`supertype Location`, possibly several).
    pub supertypes: Vec<TypeRef>,
    /// Tuple-structured body attributes.
    pub attrs: Vec<AttrDef>,
    /// Operation declarations from the `operations` section.
    pub ops: Vec<OpSig>,
    /// Operation declarations from the `refine` section.
    pub refines: Vec<OpSig>,
    /// Implementations from the `implementation` section.
    pub impls: Vec<OpImpl>,
}

/// One attribute `name : type;`.
#[derive(Clone, Debug, PartialEq)]
pub struct AttrDef {
    /// Attribute name.
    pub name: String,
    /// Domain type.
    pub ty: TypeRef,
}

/// An operation signature `name : T1, T2 -> R;` (an optional leading `||`
/// is accepted for fidelity with the paper's notation).
#[derive(Clone, Debug, PartialEq)]
pub struct OpSig {
    /// Operation name.
    pub name: String,
    /// Argument types, left to right.
    pub args: Vec<TypeRef>,
    /// Result type.
    pub result: TypeRef,
}

/// An operation implementation
/// `define name(p1, p2) is begin … end define name;`.
#[derive(Clone, Debug, PartialEq)]
pub struct OpImpl {
    /// Operation name.
    pub name: String,
    /// Formal parameter names.
    pub params: Vec<String>,
    /// Parsed body.
    pub body: Block,
    /// Raw body source (stored in the `Code` predicate and re-parsed by the
    /// interpreting Runtime System).
    pub raw: String,
}

/// A `fashion From as To where … end fashion;` declaration (§4.1).
#[derive(Clone, Debug, PartialEq)]
pub struct FashionDef {
    /// The type whose instances become substitutable…
    pub from: TypeRef,
    /// …for instances of this type.
    pub to: TypeRef,
    /// Imitated attributes and operations.
    pub members: Vec<FashionMember>,
}

/// One member of a fashion body.
#[derive(Clone, Debug, PartialEq)]
pub enum FashionMember {
    /// `attr : -> T is <expr>;` — read access redirection.
    AttrRead {
        /// Attribute name (of the `to` type).
        name: String,
        /// Attribute type.
        ty: TypeRef,
        /// Expression over `self` (the `from`-typed object).
        body: Block,
        /// Raw source.
        raw: String,
    },
    /// `attr : <- T is <stmts>;` — write access redirection; the incoming
    /// value is bound to `value`.
    AttrWrite {
        /// Attribute name.
        name: String,
        /// Attribute type.
        ty: TypeRef,
        /// Statements over `self` and `value`.
        body: Block,
        /// Raw source.
        raw: String,
    },
    /// `attr : T is <expr>;` — shorthand installing the expression as read
    /// access and (when the expression is a single attribute path) the
    /// inverse assignment as write access.
    AttrBoth {
        /// Attribute name.
        name: String,
        /// Attribute type.
        ty: TypeRef,
        /// Read expression.
        body: Block,
        /// Raw source.
        raw: String,
    },
    /// `operation name is <stmts>;` — operation imitation.
    Op {
        /// Operation name (of the `to` type).
        name: String,
        /// Body.
        body: Block,
        /// Raw source.
        raw: String,
    },
}

// ----- method bodies -----------------------------------------------------------

/// A statement block.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Block(pub Vec<Stmt>);

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `path := expr;`
    Assign {
        /// Assignment target (an attribute path).
        target: Expr,
        /// Right-hand side.
        value: Expr,
    },
    /// `if (cond) <stmt|block> [else <stmt|block>]`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Block,
        /// Else branch (empty when absent).
        els: Block,
    },
    /// `return expr;`
    Return(Expr),
    /// An expression evaluated for its effect (a call).
    Expr(Expr),
}

/// Binary operators of the body language.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Identifier: parameter, schema variable, or enum literal.
    Ident(String),
    /// `self`
    SelfRef,
    /// `super` — only valid as the receiver of a call; dispatches to the
    /// refined declaration.
    Super,
    /// `recv.name` attribute access.
    Attr {
        /// Receiver.
        recv: Box<Expr>,
        /// Attribute name.
        name: String,
    },
    /// `recv.name(args…)` operation call.
    Call {
        /// Receiver.
        recv: Box<Expr>,
        /// Operation name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// Unary negation.
    Neg(Box<Expr>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typeref_display() {
        assert_eq!(TypeRef::plain("Car").to_string(), "Car");
        assert_eq!(
            TypeRef::at("Person", "CarSchema").to_string(),
            "Person@CarSchema"
        );
    }

    #[test]
    fn schema_path_display() {
        let abs = SchemaPath {
            absolute: true,
            ups: 0,
            steps: vec!["Company".into(), "CAD".into()],
        };
        assert_eq!(abs.to_string(), "/Company/CAD");
        let rel = SchemaPath {
            absolute: false,
            ups: 1,
            steps: vec!["CSG".into()],
        };
        assert_eq!(rel.to_string(), "../CSG");
    }

    #[test]
    fn publics_default_to_everything() {
        let s = SchemaDef {
            name: "S".into(),
            ..Default::default()
        };
        assert!(s.is_public("anything"));
        let s2 = SchemaDef {
            name: "S".into(),
            publics: Some(vec!["Cuboid".into()]),
            ..Default::default()
        };
        assert!(s2.is_public("Cuboid"));
        assert!(!s2.is_public("Edge"));
    }
}
