//! Lowering: mapping parsed GOM frames to base-predicate extensions.
//!
//! This is the *Analyzer* of the paper's architecture: "Each call of an
//! update operation will be mapped to corresponding modifications of the
//! schema base" (§2.2). Lowering creates `Schema`/`Type`/`Attr`/`Decl`/
//! `ArgDecl`/`Code` facts, the `SubTypRel`/`DeclRefinement` relationship
//! facts, and the `CodeReqDecl`/`CodeReqAttr` facts derived by code
//! analysis. Consistency is *not* checked here — that is the Consistency
//! Control's job at the end of the evolution session (decoupling, §2.1).

use crate::ast::*;
use crate::codereq::{self, AnalysisError};
use crate::parse::{parse_source, ParseError};
use crate::paths::{Hierarchy, PathError};
use gom_model::{DeclId, MetaModel, SchemaId, TypeId};

/// Extension predicates owned by the Analyzer: enum sorts, the schema
/// hierarchy of appendix A, and schema-level variables. Installed on first
/// use; pure additions to the database model (paper §2.2, "expanding the
/// data model").
pub const ANALYZER_EXTENSION_DECLS: &str = "\
base SortVariant(tid, variant).
base SubSchemaOf(child!, parent).
base SchemaVar(sid!, var!, tid).
base CodeParam(cid!, argno!, pname).
derived SubSchemaOfT(child, parent).
SubSchemaOfT(X, Y) :- SubSchemaOf(X, Y).
SubSchemaOfT(X, Z) :- SubSchemaOf(X, Y), SubSchemaOfT(Y, Z).
constraint subschema_acyclic \"schema hierarchy must be acyclic\":
  forall X: !SubSchemaOfT(X, X).
constraint sortvariant_type_ref \"enum sorts must be declared types\":
  forall T, V: SortVariant(T, V) -> exists N, S: Type(T, N, S).
constraint schemavar_type_ref \"schema variables must have declared types\":
  forall S, V, T: SchemaVar(S, V, T) -> exists N, S2: Type(T, N, S2).
";

/// Errors raised by the Analyzer.
#[derive(Debug)]
pub enum AnalyzeError {
    /// Syntax error.
    Parse(ParseError),
    /// Schema hierarchy / name space error.
    Path(PathError),
    /// Method-body analysis error.
    Code(AnalysisError),
    /// Name resolution or structural error.
    Resolve(String),
    /// Database-level error.
    Db(gom_deductive::Error),
    /// The lowered schema base tripped the lint gate (rendered report).
    Lint(String),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Parse(e) => write!(f, "{e}"),
            AnalyzeError::Path(e) => write!(f, "{e}"),
            AnalyzeError::Code(e) => write!(f, "{e}"),
            AnalyzeError::Resolve(m) => write!(f, "resolve error: {m}"),
            AnalyzeError::Db(e) => write!(f, "{e}"),
            AnalyzeError::Lint(r) => write!(f, "schema lint failed:\n{r}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<ParseError> for AnalyzeError {
    fn from(e: ParseError) -> Self {
        AnalyzeError::Parse(e)
    }
}
impl From<PathError> for AnalyzeError {
    fn from(e: PathError) -> Self {
        AnalyzeError::Path(e)
    }
}
impl From<AnalysisError> for AnalyzeError {
    fn from(e: AnalysisError) -> Self {
        AnalyzeError::Code(e)
    }
}
impl From<gom_deductive::Error> for AnalyzeError {
    fn from(e: gom_deductive::Error) -> Self {
        AnalyzeError::Db(e)
    }
}

/// Result of lowering one schema frame.
#[derive(Clone, Debug)]
pub struct LoweredSchema {
    /// The schema's id.
    pub id: SchemaId,
    /// Its user name.
    pub name: String,
    /// The types created, `(name, id)`, in declaration order.
    pub types: Vec<(String, TypeId)>,
}

/// The Analyzer: front end for user-initiated schema updates.
///
/// Retains every frame it has lowered so that later frames can reference
/// earlier schemas through subschema entries, imports, and at-notation.
#[derive(Default)]
pub struct Analyzer {
    items: Vec<Item>,
    /// When set, every lowering ends with a lint of the schema base and
    /// fails with [`AnalyzeError::Lint`] if any diagnostic reaches this
    /// severity.
    lint_gate: Option<gom_lint::Severity>,
}

impl Analyzer {
    /// Fresh analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable (or disable, with `None`) linting after every lowering.
    /// Diagnostics at `level` or worse make the lowering fail; the
    /// definitions the linter flags stay in the database, so callers
    /// driving an evolution session should roll it back (the
    /// `SchemaManager::define_schema` front end does).
    pub fn set_lint_gate(&mut self, level: Option<gom_lint::Severity>) {
        self.lint_gate = level;
    }

    /// Install the Analyzer's extension predicates (idempotent).
    pub fn install_extensions(m: &mut MetaModel) -> Result<(), AnalyzeError> {
        if m.db.pred_id("SortVariant").is_none() {
            m.db.load(ANALYZER_EXTENSION_DECLS)?;
        }
        Ok(())
    }

    /// The accumulated schema hierarchy (appendix A view).
    pub fn hierarchy(&self) -> Result<Hierarchy, AnalyzeError> {
        Ok(Hierarchy::build(&self.items)?)
    }

    /// Parse and lower a source file into the database model.
    pub fn lower_source(
        &mut self,
        m: &mut MetaModel,
        src: &str,
    ) -> Result<Vec<LoweredSchema>, AnalyzeError> {
        let _sp = gom_obs::span("analyzer.lower");
        let items = {
            let _parse = gom_obs::span("analyzer.parse");
            parse_source(src)?
        };
        self.lower_items(m, items)
    }

    /// Lower already-parsed items.
    pub fn lower_items(
        &mut self,
        m: &mut MetaModel,
        items: Vec<Item>,
    ) -> Result<Vec<LoweredSchema>, AnalyzeError> {
        Self::install_extensions(m)?;
        // System definitions installed so far are exempt from the lint
        // gate; only the schema-level (fact) lints can fire on lowering.
        let lint_baseline = gom_lint::Baseline::current(&m.db);
        // Validate the combined hierarchy before touching the database.
        let mut combined = self.items.clone();
        combined.extend(items.iter().cloned());
        let hierarchy = Hierarchy::build(&combined)?;

        let mut lowered = Vec::new();
        let new_schemas: Vec<&SchemaDef> = items
            .iter()
            .filter_map(|i| match i {
                Item::Schema(s) => Some(s),
                Item::Fashion(_) => None,
            })
            .collect();

        // Pass 1: schema facts.
        for s in &new_schemas {
            if m.schema_by_name(&s.name).is_some() {
                return Err(AnalyzeError::Resolve(format!(
                    "schema `{}` already exists",
                    s.name
                )));
            }
            let sid = m.new_schema(&s.name)?;
            lowered.push(LoweredSchema {
                id: sid,
                name: s.name.clone(),
                types: Vec::new(),
            });
        }

        // Pass 2: subschema links (both directions may involve old schemas).
        let subschema_pred = m.db.pred_id_req("SubSchemaOf")?;
        for s in &new_schemas {
            for c in s.components() {
                if let Component::Subschema(sub) = c {
                    let parent = m.schema_by_name(&s.name).expect("just created");
                    let child = m.schema_by_name(&sub.name).ok_or_else(|| {
                        AnalyzeError::Resolve(format!(
                            "subschema `{}` of `{}` is not lowered yet — include its frame \
                             in the same source",
                            sub.name, s.name
                        ))
                    })?;
                    m.db.insert(subschema_pred, vec![child.constant(), parent.constant()])?;
                }
            }
        }

        // Pass 3: types and sorts (names only, so that forward references
        // within and across the new schemas resolve).
        let sortvariant_pred = m.db.pred_id_req("SortVariant")?;
        for (s, ls) in new_schemas.iter().zip(lowered.iter_mut()) {
            for c in s.components() {
                match c {
                    Component::Type(t) => {
                        let tid = m.new_type(ls.id, &t.name)?;
                        ls.types.push((t.name.clone(), tid));
                    }
                    Component::Sort(sd) => {
                        let tid = m.new_type(ls.id, &sd.name)?;
                        m.add_subtype(tid, m.builtins.any)?;
                        for v in &sd.variants {
                            let vc = m.db.constant(v);
                            m.db.insert(sortvariant_pred, vec![tid.constant(), vc])?;
                        }
                        ls.types.push((sd.name.clone(), tid));
                    }
                    _ => {}
                }
            }
        }

        // Pass 4: structure — supertypes, attributes, declarations.
        let schemavar_pred = m.db.pred_id_req("SchemaVar")?;
        for (s, ls) in new_schemas.iter().zip(lowered.iter()) {
            for c in s.components() {
                match c {
                    Component::Type(t) => {
                        let tid = ls
                            .types
                            .iter()
                            .find(|(n, _)| n == &t.name)
                            .expect("created in pass 3")
                            .1;
                        if t.supertypes.is_empty() {
                            m.add_subtype(tid, m.builtins.any)?;
                        }
                        for sup in &t.supertypes {
                            let sup_tid = resolve_type_ref(m, &hierarchy, &s.name, sup)?;
                            m.add_subtype(tid, sup_tid)?;
                        }
                        for a in &t.attrs {
                            let dom = resolve_type_ref(m, &hierarchy, &s.name, &a.ty)?;
                            m.add_attr(tid, &a.name, dom)?;
                        }
                        for sig in &t.ops {
                            lower_sig(m, &hierarchy, &s.name, tid, sig)?;
                        }
                    }
                    Component::Var(v) => {
                        let tid = resolve_type_ref(m, &hierarchy, &s.name, &v.ty)?;
                        let sid = ls.id;
                        let name = m.db.constant(&v.name);
                        m.db.insert(schemavar_pred, vec![sid.constant(), name, tid.constant()])?;
                    }
                    _ => {}
                }
            }
        }

        // Pass 5: refinements (need all declarations of pass 4 in place).
        for (s, ls) in new_schemas.iter().zip(lowered.iter()) {
            for c in s.components() {
                let Component::Type(t) = c else {
                    continue;
                };
                let tid = ls.types.iter().find(|(n, _)| n == &t.name).expect("p3").1;
                for sig in &t.refines {
                    let did = lower_sig(m, &hierarchy, &s.name, tid, sig)?;
                    let targets = refinement_targets(m, tid, &sig.name);
                    if targets.is_empty() {
                        return Err(AnalyzeError::Resolve(format!(
                            "`refine {}` in type `{}`: no supertype declares that operation",
                            sig.name, t.name
                        )));
                    }
                    for target in targets {
                        m.add_refinement(did, target)?;
                    }
                }
            }
        }

        // Pass 6: implementations (code facts + code analysis).
        for (s, ls) in new_schemas.iter().zip(lowered.iter()) {
            for c in s.components() {
                let Component::Type(t) = c else {
                    continue;
                };
                let tid = ls.types.iter().find(|(n, _)| n == &t.name).expect("p3").1;
                for imp in &t.impls {
                    lower_impl(m, tid, &t.name, imp)?;
                }
            }
        }

        // Fashion declarations (require the §4.1 extension predicates).
        for item in &items {
            if let Item::Fashion(f) = item {
                lower_fashion(m, f)?;
            }
        }

        if let Some(level) = self.lint_gate {
            let cfg = gom_lint::LintConfig {
                baseline: lint_baseline,
                ..gom_lint::LintConfig::default()
            };
            let report = gom_lint::lint_database(&mut m.db, &cfg);
            if report.denies(level) {
                return Err(AnalyzeError::Lint(gom_lint::render_report(
                    &report,
                    None,
                    "<schema base>",
                )));
            }
        }

        self.items.extend(items);
        Ok(lowered)
    }
}

/// Resolve a type reference written in `schema_name` against: at-notation,
/// local types, built-ins, and the schema's name space (subschema publics
/// and imports, appendix A).
pub fn resolve_type_ref(
    m: &MetaModel,
    hierarchy: &Hierarchy,
    schema_name: &str,
    r: &TypeRef,
) -> Result<TypeId, AnalyzeError> {
    if let Some(schema) = &r.schema {
        return m
            .type_at(&format!("{}@{schema}", r.name))
            .ok_or_else(|| AnalyzeError::Resolve(format!("unknown type `{r}`")));
    }
    if let Some(sid) = m.schema_by_name(schema_name) {
        if let Some(t) = m.type_by_name(sid, &r.name) {
            return Ok(t);
        }
    }
    if let Some(t) = m.builtins.by_name(&r.name) {
        return Ok(t);
    }
    if let Some((origin_schema, orig_name)) = hierarchy.lookup_type(schema_name, &r.name)? {
        let sid = m.schema_by_name(&origin_schema).ok_or_else(|| {
            AnalyzeError::Resolve(format!(
                "schema `{origin_schema}` (defining `{orig_name}`) is not lowered"
            ))
        })?;
        return m.type_by_name(sid, &orig_name).ok_or_else(|| {
            AnalyzeError::Resolve(format!("type `{orig_name}` missing in `{origin_schema}`"))
        });
    }
    Err(AnalyzeError::Resolve(format!(
        "unknown type `{}` in schema `{schema_name}`",
        r.name
    )))
}

fn lower_sig(
    m: &mut MetaModel,
    hierarchy: &Hierarchy,
    schema_name: &str,
    tid: TypeId,
    sig: &OpSig,
) -> Result<DeclId, AnalyzeError> {
    let result = resolve_type_ref(m, hierarchy, schema_name, &sig.result)?;
    let did = m.new_decl(tid, &sig.name, result)?;
    for (i, a) in sig.args.iter().enumerate() {
        let at = resolve_type_ref(m, hierarchy, schema_name, a)?;
        m.add_argdecl(did, (i + 1) as i64, at)?;
    }
    Ok(did)
}

/// Nearest declarations of `name` along each supertype path of `t`
/// (the declarations a `refine` in `t` refines).
pub fn refinement_targets(m: &MetaModel, t: TypeId, name: &str) -> Vec<DeclId> {
    let mut out = Vec::new();
    let mut visited = Vec::new();
    let mut queue: std::collections::VecDeque<TypeId> = m.supertypes(t).into();
    while let Some(s) = queue.pop_front() {
        if visited.contains(&s) {
            continue;
        }
        visited.push(s);
        if let Some((d, _, _)) = m.decls_of(s).into_iter().find(|(_, n, _)| n == name) {
            if !out.contains(&d) {
                out.push(d);
            }
            continue; // declared here: do not look further up this path
        }
        queue.extend(m.supertypes(s));
    }
    out
}

fn lower_impl(
    m: &mut MetaModel,
    tid: TypeId,
    type_name: &str,
    imp: &OpImpl,
) -> Result<(), AnalyzeError> {
    let Some((did, _, _)) = m.decls_of(tid).into_iter().find(|(_, n, _)| n == &imp.name) else {
        return Err(AnalyzeError::Resolve(format!(
            "implementation of `{}` in type `{type_name}` has no matching declaration",
            imp.name
        )));
    };
    let args = m.args_of(did);
    if args.len() != imp.params.len() {
        return Err(AnalyzeError::Resolve(format!(
            "`{}` declares {} argument(s) but the implementation names {}",
            imp.name,
            args.len(),
            imp.params.len()
        )));
    }
    let params: Vec<(String, TypeId)> = imp
        .params
        .iter()
        .cloned()
        .zip(args.into_iter().map(|(_, t)| t))
        .collect();
    let cid = m.new_code(did, &imp.raw)?;
    // Parameter names (the paper's footnote 3: "one has to model the
    // parameters of the code").
    let codeparam = m.db.pred_id_req("CodeParam")?;
    for (i, (pname, _)) in params.iter().enumerate() {
        let n = m.db.constant(pname);
        m.db.insert(
            codeparam,
            vec![cid.constant(), gom_deductive::Const::Int((i + 1) as i64), n],
        )?;
    }
    let analysis = codereq::analyze(m, tid, did, &params, &imp.body)?;
    for (t, a) in analysis.attr_reqs {
        m.add_codereq_attr(cid, t, &a)?;
    }
    for d in analysis.decl_reqs {
        m.add_codereq_decl(cid, d)?;
    }
    Ok(())
}

fn fashion_preds(
    m: &MetaModel,
) -> Result<
    (
        gom_deductive::PredId,
        gom_deductive::PredId,
        gom_deductive::PredId,
    ),
    AnalyzeError,
> {
    match (
        m.db.pred_id("FashionType"),
        m.db.pred_id("FashionDecl"),
        m.db.pred_id("FashionAttr"),
    ) {
        (Some(a), Some(b), Some(c)) => Ok((a, b, c)),
        _ => Err(AnalyzeError::Resolve(
            "fashion declarations require the versioning/masking extension (install the \
             §4.1 definitions first)"
                .into(),
        )),
    }
}

fn lower_fashion(m: &mut MetaModel, f: &FashionDef) -> Result<(), AnalyzeError> {
    let (p_ftype, p_fdecl, p_fattr) = fashion_preds(m)?;
    let dummy = Hierarchy::default();
    let from = resolve_type_ref(m, &dummy, "", &f.from)?;
    let to = resolve_type_ref(m, &dummy, "", &f.to)?;
    m.db.insert(p_ftype, vec![from.constant(), to.constant()])?;
    // Collect per-attribute read/write bodies.
    use std::collections::BTreeMap;
    let mut reads: BTreeMap<&str, &str> = BTreeMap::new();
    let mut writes: BTreeMap<&str, &str> = BTreeMap::new();
    for mem in &f.members {
        match mem {
            FashionMember::AttrRead { name, raw, .. } => {
                reads.insert(name, raw);
            }
            FashionMember::AttrWrite { name, raw, .. } => {
                writes.insert(name, raw);
            }
            FashionMember::AttrBoth {
                name, raw, body, ..
            } => {
                reads.insert(name, raw);
                // A plain attribute path is invertible: synthesize the write.
                if let [Stmt::Return(Expr::Attr { .. })] = body.0.as_slice() {
                    writes.insert(name, raw);
                }
            }
            FashionMember::Op { .. } => {}
        }
    }
    let attr_names: Vec<&str> = reads.keys().copied().collect();
    for name in attr_names {
        let read = reads[name];
        let write = writes.get(name).copied().unwrap_or("");
        let n = m.db.constant(name);
        let rc = m.db.constant(read);
        let wc = m.db.constant(write);
        m.db.insert(p_fattr, vec![to.constant(), n, from.constant(), rc, wc])?;
    }
    for mem in &f.members {
        if let FashionMember::Op { name, raw, .. } = mem {
            let Some(did) = codereq::resolve_op(m, to, name) else {
                return Err(AnalyzeError::Resolve(format!(
                    "fashion imitates unknown operation `{name}` of `{}`",
                    f.to
                )));
            };
            let code = m.db.constant(raw);
            m.db.insert(p_fdecl, vec![did.constant(), from.constant(), code])?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::car_schema::{CAR_SCHEMA_SRC, COMPANY_SCHEMA_SRC};

    #[test]
    fn car_schema_lowers_to_figure2_extensions() {
        let mut m = MetaModel::new().unwrap();
        let mut a = Analyzer::new();
        let lowered = a.lower_source(&mut m, CAR_SCHEMA_SRC).unwrap();
        assert_eq!(lowered.len(), 1);
        let sid = lowered[0].id;
        // Figure 2: four types.
        assert_eq!(m.types_of_schema(sid).len(), 4);
        let person = m.type_by_name(sid, "Person").unwrap();
        let location = m.type_by_name(sid, "Location").unwrap();
        let city = m.type_by_name(sid, "City").unwrap();
        let car = m.type_by_name(sid, "Car").unwrap();
        // Attr rows.
        assert_eq!(
            m.attrs_of(person),
            vec![
                ("age".to_string(), m.builtins.int),
                ("name".to_string(), m.builtins.string),
            ]
        );
        assert_eq!(m.attrs_of(car).len(), 4);
        assert_eq!(
            m.attrs_of(car)
                .iter()
                .find(|(n, _)| n == "owner")
                .unwrap()
                .1,
            person
        );
        // SubTypRel: City <: Location (plus roots to ANY).
        assert_eq!(m.supertypes(city), vec![location]);
        // Decl rows: distance ×2, changeLocation ×1.
        assert_eq!(m.decls_of(location).len(), 1);
        assert_eq!(m.decls_of(city).len(), 1);
        let (d_city, _, _) = m.decls_of(city)[0];
        let (d_loc, _, _) = m.decls_of(location)[0];
        // DeclRefinement row.
        assert_eq!(m.refined_by(d_city), vec![d_loc]);
        // ArgDecl rows: distance has 1 arg, changeLocation has 2.
        assert_eq!(m.args_of(d_loc).len(), 1);
        let (d_car, _, _) = m.decls_of(car)[0];
        assert_eq!(m.args_of(d_car), vec![(1, person), (2, city)]);
        // Code rows exist for every declaration.
        assert!(m.code_of(d_loc).is_some());
        assert!(m.code_of(d_city).is_some());
        assert!(m.code_of(d_car).is_some());
    }

    #[test]
    fn codereq_rows_match_paper_table() {
        let mut m = MetaModel::new().unwrap();
        let mut a = Analyzer::new();
        let lowered = a.lower_source(&mut m, CAR_SCHEMA_SRC).unwrap();
        let sid = lowered[0].id;
        let location = m.type_by_name(sid, "Location").unwrap();
        let city = m.type_by_name(sid, "City").unwrap();
        let car = m.type_by_name(sid, "Car").unwrap();
        let (d_loc, _, _) = m.decls_of(location)[0];
        let (d_city, _, _) = m.decls_of(city)[0];
        let (d_car, _, _) = m.decls_of(car)[0];
        let (cid1, _) = m.code_of(d_loc).unwrap();
        let (cid2, _) = m.code_of(d_city).unwrap();
        let (cid3, _) = m.code_of(d_car).unwrap();
        let reqattr = m.db.pred_id("CodeReqAttr").unwrap();
        let rows = m.db.facts_sorted(reqattr);
        let has = |cid: gom_model::CodeId, tid: TypeId, attr: &str| {
            let a = m.db.sym(attr).map(gom_deductive::Const::Sym);
            rows.iter().any(|t| {
                t.get(0) == cid.constant() && t.get(1) == tid.constant() && Some(t.get(2)) == a
            })
        };
        // Paper's table, row for row.
        assert!(has(cid1, location, "longi"));
        assert!(has(cid1, location, "lati"));
        assert!(has(cid2, location, "longi"));
        assert!(has(cid2, location, "lati"));
        assert!(has(cid2, city, "name"));
        assert!(has(cid3, car, "owner"));
        assert!(has(cid3, car, "milage"));
        assert!(has(cid3, car, "location"));
        // CodeReqDecl: the paper lists (cid2, did1); our analysis also finds
        // changeLocation's call to the refined distance (cid3 → did2).
        let reqdecl = m.db.pred_id("CodeReqDecl").unwrap();
        let drows = m.db.facts_sorted(reqdecl);
        assert!(drows
            .iter()
            .any(|t| t.get(0) == cid2.constant() && t.get(1) == d_loc.constant()));
        assert!(drows
            .iter()
            .any(|t| t.get(0) == cid3.constant() && t.get(1) == d_city.constant()));
    }

    #[test]
    fn company_hierarchy_lowers_with_namespaces() {
        let mut m = MetaModel::new().unwrap();
        let mut a = Analyzer::new();
        let lowered = a.lower_source(&mut m, COMPANY_SCHEMA_SRC).unwrap();
        assert_eq!(lowered.len(), 12);
        // Two distinct Cuboid types in two name spaces.
        let csg = m.schema_by_name("CSG").unwrap();
        let brep = m.schema_by_name("BoundaryRep").unwrap();
        let c1 = m.type_by_name(csg, "Cuboid").unwrap();
        let c2 = m.type_by_name(brep, "Cuboid").unwrap();
        assert_ne!(c1, c2);
        // The converter resolved the renamed imports to the right types.
        let conv_s = m.schema_by_name("CSG2BoundRep").unwrap();
        let conv = m.type_by_name(conv_s, "Converter").unwrap();
        let attrs = m.attrs_of(conv);
        assert_eq!(
            attrs,
            vec![("input".to_string(), c1), ("output".to_string(), c2),]
        );
        // Subschema facts recorded.
        let sub = m.db.pred_id("SubSchemaOf").unwrap();
        assert_eq!(m.db.relation(sub).len(), 11); // every schema but Company
                                                  // Schema variable recorded.
        let sv = m.db.pred_id("SchemaVar").unwrap();
        assert_eq!(m.db.relation(sv).len(), 1);
    }

    #[test]
    fn sort_lowering_creates_type_and_variants() {
        let mut m = MetaModel::new().unwrap();
        let mut a = Analyzer::new();
        let src = "schema S is sort Fuel is enum (leaded, unleaded); end schema S;";
        let lowered = a.lower_source(&mut m, src).unwrap();
        let fuel = lowered[0].types[0].1;
        assert_eq!(m.type_name(fuel).as_deref(), Some("Fuel"));
        let sv = m.db.pred_id("SortVariant").unwrap();
        assert_eq!(m.db.relation(sv).select(&[(0, fuel.constant())]).count(), 2);
    }

    #[test]
    fn duplicate_schema_rejected() {
        let mut m = MetaModel::new().unwrap();
        let mut a = Analyzer::new();
        let src = "schema S is end schema S;";
        a.lower_source(&mut m, src).unwrap();
        assert!(a.lower_source(&mut m, src).is_err());
    }

    #[test]
    fn unknown_supertype_rejected() {
        let mut m = MetaModel::new().unwrap();
        let mut a = Analyzer::new();
        let src = "schema S is type T supertype Ghost is end type T; end schema S;";
        assert!(matches!(
            a.lower_source(&mut m, src),
            Err(AnalyzeError::Resolve(_))
        ));
    }

    #[test]
    fn fashion_requires_extension() {
        let mut m = MetaModel::new().unwrap();
        let mut a = Analyzer::new();
        a.lower_source(&mut m, "schema A is type T is end type T; end schema A;")
            .unwrap();
        a.lower_source(&mut m, "schema B is type T is end type T; end schema B;")
            .unwrap();
        let f = "fashion T@A as T@B where end fashion;";
        assert!(matches!(
            a.lower_source(&mut m, f),
            Err(AnalyzeError::Resolve(_))
        ));
        // After installing the extension predicates it lowers fine.
        m.db.load(
            "base FashionType(from, to).\n\
             base FashionDecl(did, tid, code).\n\
             base FashionAttr(tid, attr, from, readcode, writecode).",
        )
        .unwrap();
        a.lower_source(&mut m, f).unwrap();
        let ft = m.db.pred_id("FashionType").unwrap();
        assert_eq!(m.db.relation(ft).len(), 1);
    }

    #[test]
    fn implementation_without_declaration_rejected() {
        let mut m = MetaModel::new().unwrap();
        let mut a = Analyzer::new();
        let src = "\
schema S is
  type T is
  implementation
    define ghost is begin return 1; end define ghost;
  end type T;
end schema S;";
        assert!(matches!(
            a.lower_source(&mut m, src),
            Err(AnalyzeError::Resolve(_))
        ));
    }
}
