//! # gom-analyzer — the GOM language front end
//!
//! The *Analyzer* of the paper's generic architecture (§2.2): it parses the
//! GOM surface language and maps schema definitions to modifications of the
//! base-predicate extensions in the Database Model. Schema changes never
//! touch the database directly — the lowering produces typed facts that the
//! consistency-control layer applies inside evolution sessions.

#![warn(missing_docs)]

pub mod ast;
pub mod body;
pub mod car_schema;
pub mod codereq;
pub mod lex;
pub mod lower;
pub mod parse;
pub mod paths;
pub mod print;

pub use body::parse_code_text;
pub use parse::{parse_source, ParseError, Parser};
