//! Schema and type versioning with fashion masking (paper §4.1).
//!
//! This module is the paper's flexibility demonstration made concrete: the
//! whole GOM-V1.0 extension — versioning after Cellary/Jomier, masking via
//! the `fashion` construct — consists of
//!
//! 1. [`VERSIONING_DEFS`]: new base predicates, two transitive closures,
//!    and seven constraints, fed verbatim into the consistency control
//!    ("this simple keyboard exercise can be performed within an hour"),
//! 2. the Analyzer's `fashion` syntax (already present in `gom-analyzer`,
//!    "since Lex and Yacc have been employed, this task takes a single
//!    day"),
//! 3. the Runtime System's masking redirection (already present in
//!    `gom-runtime`, "the hardest of the three necessary modifications").
//!
//! Nothing else changes — no module of the base schema manager is edited.

use gom_core::SchemaManager;
use gom_deductive::Result as DbResult;
use gom_model::{SchemaId, TypeId};

/// The §4.1 definitions: versioning + fashion, as consistency-control
/// input.
pub const VERSIONING_DEFS: &str = "\
% ----- base predicates (§4.1) ------------------------------------------------
base evolves_to_S(from, to).
base evolves_to_T(from, to).
base FashionType(from, to).
base FashionDecl(did, tid, code).
base FashionAttr(tid, attr, from, readcode, writecode).

% ----- transitive closures ----------------------------------------------------
derived EvolvesToST(from, to).
EvolvesToST(X, Y) :- evolves_to_S(X, Y).
EvolvesToST(X, Z) :- evolves_to_S(X, Y), EvolvesToST(Y, Z).

derived EvolvesToTT(from, to).
EvolvesToTT(X, Y) :- evolves_to_T(X, Y).
EvolvesToTT(X, Z) :- evolves_to_T(X, Y), EvolvesToTT(Y, Z).

% ----- version-graph constraints ------------------------------------------------
constraint evolve_s_acyclic \"the schema version graph must be a DAG\":
  forall X: !EvolvesToST(X, X).

constraint evolve_t_acyclic \"the type version graph must be a DAG\":
  forall X: !EvolvesToTT(X, X).

constraint evolve_s_refs \"schema version edges reference existing schemas\":
  forall X, Y: evolves_to_S(X, Y) ->
    (exists N1: Schema(X, N1)) & (exists N2: Schema(Y, N2)).

constraint evolve_t_refs \"type version edges reference existing types\":
  forall X, Y: evolves_to_T(X, Y) ->
    (exists N1, S1: Type(X, N1, S1)) & (exists N2, S2: Type(Y, N2, S2)).

constraint evolve_digestible \"types may evolve only along evolving schemas\":
  forall X1, X2, Y1, Y2, Z1, Z2:
    Type(X1, Y1, Z1) & Type(X2, Y2, Z2) & EvolvesToTT(X1, X2) -> EvolvesToST(Z1, Z2).

% ----- fashion constraints --------------------------------------------------------
constraint fashion_needs_evolution \"fashion is restricted to schema evolution purposes\":
  forall X, Y: FashionType(X, Y) -> evolves_to_T(X, Y) | evolves_to_T(Y, X).

constraint fashion_covers_decls \"the complete behaviour of the imitated type must be provided\":
  forall X, Y, Z, U, V: FashionType(X, Y) & DeclI(Z, Y, U, V)
    -> exists W: FashionDecl(Z, X, W).

constraint fashion_covers_attrs \"every (inherited) attribute of the imitated type must be redirected\":
  forall X, Y, Z, U: FashionType(X, Y) & AttrI(Y, Z, U)
    -> exists V1, V2: FashionAttr(Y, Z, X, V1, V2).
";

/// Install the versioning + fashion extension into a schema manager
/// (idempotent). This is the *entire* "implementation" step of §4.1.
pub fn install(mgr: &mut SchemaManager) -> DbResult<()> {
    if mgr.meta.db.pred_id("evolves_to_S").is_none() {
        mgr.add_consistency(VERSIONING_DEFS)?;
    }
    Ok(())
}

/// Record that schema `from` evolves to schema `to`.
pub fn record_schema_evolution(
    mgr: &mut SchemaManager,
    from: SchemaId,
    to: SchemaId,
) -> DbResult<bool> {
    let p = mgr.meta.db.pred_id_req("evolves_to_S")?;
    mgr.meta.db.insert(p, vec![from.constant(), to.constant()])
}

/// Record that type `from` evolves to type `to`.
pub fn record_type_evolution(mgr: &mut SchemaManager, from: TypeId, to: TypeId) -> DbResult<bool> {
    let p = mgr.meta.db.pred_id_req("evolves_to_T")?;
    mgr.meta.db.insert(p, vec![from.constant(), to.constant()])
}

/// All recorded versions a schema evolves to (direct edges).
pub fn schema_successors(mgr: &mut SchemaManager, s: SchemaId) -> DbResult<Vec<SchemaId>> {
    let p = mgr.meta.db.pred_id_req("evolves_to_S")?;
    Ok(mgr
        .meta
        .db
        .relation(p)
        .select(&[(0, s.constant())])
        .filter_map(|t| t.get(1).as_sym().map(SchemaId))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    use gom_runtime::Value;

    fn two_person_versions(mgr: &mut SchemaManager) -> (SchemaId, SchemaId, TypeId, TypeId) {
        mgr.define_schema(
            "schema CarSchema is
               type Person is
                 [ name : string;
                   age  : int; ]
               end type Person;
             end schema CarSchema;",
        )
        .unwrap();
        mgr.define_schema(
            "schema NewCarSchema is
               type Person is
                 [ name     : string;
                   birthday : date; ]
               end type Person;
             end schema NewCarSchema;",
        )
        .unwrap();
        let s1 = mgr.meta.schema_by_name("CarSchema").unwrap();
        let s2 = mgr.meta.schema_by_name("NewCarSchema").unwrap();
        let p1 = mgr.meta.type_by_name(s1, "Person").unwrap();
        let p2 = mgr.meta.type_by_name(s2, "Person").unwrap();
        (s1, s2, p1, p2)
    }

    #[test]
    fn extension_installs_and_base_stays_consistent() {
        let mut mgr = SchemaManager::new().unwrap();
        install(&mut mgr).unwrap();
        install(&mut mgr).unwrap(); // idempotent
        assert!(mgr.check().unwrap().is_empty());
    }

    #[test]
    fn digestibility_enforced() {
        let mut mgr = SchemaManager::new().unwrap();
        install(&mut mgr).unwrap();
        let (s1, s2, p1, p2) = two_person_versions(&mut mgr);
        // Type evolution WITHOUT schema evolution: rejected.
        mgr.begin_evolution().unwrap();
        record_type_evolution(&mut mgr, p1, p2).unwrap();
        let out = mgr.end_evolution().unwrap();
        assert!(
            out.violations()
                .iter()
                .any(|v| v.constraint == "evolve_digestible"),
            "{:?}",
            out.violations()
        );
        mgr.rollback_evolution().unwrap();
        // With the schema edge recorded, it is consistent.
        mgr.begin_evolution().unwrap();
        record_schema_evolution(&mut mgr, s1, s2).unwrap();
        record_type_evolution(&mut mgr, p1, p2).unwrap();
        let out = mgr.end_evolution().unwrap();
        assert!(out.is_consistent(), "{:?}", out.violations());
        assert_eq!(schema_successors(&mut mgr, s1).unwrap(), vec![s2]);
    }

    #[test]
    fn version_graph_must_be_acyclic() {
        let mut mgr = SchemaManager::new().unwrap();
        install(&mut mgr).unwrap();
        let (s1, s2, _p1, _p2) = two_person_versions(&mut mgr);
        mgr.begin_evolution().unwrap();
        record_schema_evolution(&mut mgr, s1, s2).unwrap();
        record_schema_evolution(&mut mgr, s2, s1).unwrap();
        let out = mgr.end_evolution().unwrap();
        assert!(out
            .violations()
            .iter()
            .any(|v| v.constraint == "evolve_s_acyclic"));
        mgr.rollback_evolution().unwrap();
    }

    #[test]
    fn fashion_requires_evolution_edge_and_coverage() {
        let mut mgr = SchemaManager::new().unwrap();
        install(&mut mgr).unwrap();
        let (s1, s2, p1, p2) = two_person_versions(&mut mgr);
        // Fashion without an evolution edge: two violations (edge missing,
        // coverage incomplete).
        mgr.begin_evolution().unwrap();
        let ft = mgr.meta.db.pred_id("FashionType").unwrap();
        mgr.meta
            .db
            .insert(ft, vec![p1.constant(), p2.constant()])
            .unwrap();
        let out = mgr.end_evolution().unwrap();
        let names: Vec<&str> = out
            .violations()
            .iter()
            .map(|v| v.constraint.as_str())
            .collect();
        assert!(names.contains(&"fashion_needs_evolution"), "{names:?}");
        assert!(names.contains(&"fashion_covers_attrs"), "{names:?}");
        mgr.rollback_evolution().unwrap();
        // The full §4.1 declaration: evolution edges + a complete fashion.
        mgr.begin_evolution().unwrap();
        record_schema_evolution(&mut mgr, s1, s2).unwrap();
        record_type_evolution(&mut mgr, p1, p2).unwrap();
        let fashion_src = "\
fashion Person@CarSchema as Person@NewCarSchema where
  birthday : -> date is self.age * 365;
  birthday : <- date is begin self.age := value / 365; end;
  name : string is self.name;
end fashion;";
        mgr.analyzer
            .lower_source(&mut mgr.meta, fashion_src)
            .unwrap();
        let out = mgr.end_evolution().unwrap();
        assert!(
            out.is_consistent(),
            "{:?}",
            out.violations()
                .iter()
                .map(|v| v.render(&mgr.meta.db))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn masking_redirects_old_instances() {
        let mut mgr = SchemaManager::new().unwrap();
        install(&mut mgr).unwrap();
        let (s1, s2, p1, p2) = two_person_versions(&mut mgr);
        mgr.begin_evolution().unwrap();
        record_schema_evolution(&mut mgr, s1, s2).unwrap();
        record_type_evolution(&mut mgr, p1, p2).unwrap();
        mgr.analyzer
            .lower_source(
                &mut mgr.meta,
                "fashion Person@CarSchema as Person@NewCarSchema where
                   birthday : -> date is self.age * 365;
                   birthday : <- date is begin self.age := value / 365; end;
                   name : string is self.name;
                 end fashion;",
            )
            .unwrap();
        assert!(mgr.end_evolution().unwrap().is_consistent());
        // An OLD Person (with age) answers birthday reads and writes.
        let old = mgr.create_object(p1).unwrap();
        mgr.set_attr(old, "age", Value::Int(30)).unwrap();
        assert_eq!(mgr.get_attr(old, "birthday").unwrap(), Value::Int(30 * 365));
        mgr.set_attr(old, "birthday", Value::Int(40 * 365)).unwrap();
        assert_eq!(mgr.get_attr(old, "age").unwrap(), Value::Int(40));
        // name passes straight through.
        mgr.set_attr(old, "name", Value::Str("Alice".into()))
            .unwrap();
        assert_eq!(
            mgr.get_attr(old, "name").unwrap(),
            Value::Str("Alice".into())
        );
    }
}
