//! Primitive schema evolution operations.
//!
//! "The possibility should exist to compose complex schema evolution
//! operations from a set of primitive operations which allow any schema
//! modification" (§2.1). [`Primitive`] is that set: one constructor per
//! base-predicate mutation, uniformly applicable and recordable (so complex
//! operations can be scripted, replayed, and logged). None of them checks
//! consistency — checking is deferred to the end of the evolution session.

use gom_deductive::{Const, Result as DbResult, Tuple};
use gom_model::{CodeId, DeclId, MetaModel, SchemaId, TypeId};

/// A primitive evolution operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Primitive {
    /// Create a schema.
    AddSchema {
        /// User name.
        name: String,
    },
    /// Create a type in a schema.
    AddType {
        /// Owning schema.
        schema: SchemaId,
        /// Type name.
        name: String,
    },
    /// Remove a type's `Type` fact (references are *not* touched; the
    /// consistency control will flag danglers).
    DeleteType {
        /// The type.
        ty: TypeId,
    },
    /// Add an attribute.
    AddAttr {
        /// Owning type.
        ty: TypeId,
        /// Attribute name.
        name: String,
        /// Domain type.
        domain: TypeId,
    },
    /// Remove an attribute.
    DeleteAttr {
        /// Owning type.
        ty: TypeId,
        /// Attribute name.
        name: String,
    },
    /// Add a direct subtype edge.
    AddSubtype {
        /// Subtype.
        sub: TypeId,
        /// Supertype.
        sup: TypeId,
    },
    /// Remove a direct subtype edge.
    DeleteSubtype {
        /// Subtype.
        sub: TypeId,
        /// Supertype.
        sup: TypeId,
    },
    /// Declare an operation (with argument types).
    AddDecl {
        /// Receiver type.
        ty: TypeId,
        /// Operation name.
        op: String,
        /// Result type.
        result: TypeId,
        /// Argument types, left to right.
        args: Vec<TypeId>,
    },
    /// Remove a declaration's `Decl` fact (arguments/code untouched).
    DeleteDecl {
        /// The declaration.
        decl: DeclId,
    },
    /// Add one argument declaration.
    AddArgDecl {
        /// The declaration.
        decl: DeclId,
        /// 1-based position.
        pos: i64,
        /// Argument type.
        ty: TypeId,
    },
    /// Remove one argument declaration.
    DeleteArgDecl {
        /// The declaration.
        decl: DeclId,
        /// 1-based position.
        pos: i64,
    },
    /// Attach code to a declaration.
    AddCode {
        /// The declaration.
        decl: DeclId,
        /// Source text.
        text: String,
    },
    /// Remove the code of a declaration.
    DeleteCode {
        /// The declaration.
        decl: DeclId,
    },
    /// Record a refinement edge.
    AddRefinement {
        /// Refining declaration.
        refining: DeclId,
        /// Refined declaration.
        refined: DeclId,
    },
    /// Remove a refinement edge.
    DeleteRefinement {
        /// Refining declaration.
        refining: DeclId,
        /// Refined declaration.
        refined: DeclId,
    },
}

/// Identifier produced by a primitive, if any.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PrimitiveResult {
    /// A schema was created.
    Schema(SchemaId),
    /// A type was created.
    Type(TypeId),
    /// A declaration was created.
    Decl(DeclId),
    /// A code fragment was created.
    Code(CodeId),
    /// No identifier.
    Unit,
}

impl PrimitiveResult {
    /// The type id, when this result is one.
    pub fn type_id(self) -> Option<TypeId> {
        match self {
            PrimitiveResult::Type(t) => Some(t),
            _ => None,
        }
    }

    /// The declaration id, when this result is one.
    pub fn decl_id(self) -> Option<DeclId> {
        match self {
            PrimitiveResult::Decl(d) => Some(d),
            _ => None,
        }
    }
}

/// Apply one primitive to the database model. Consistency is *not*
/// checked.
pub fn apply(m: &mut MetaModel, p: &Primitive) -> DbResult<PrimitiveResult> {
    gom_obs::counter_add("evolution.primitives", 1);
    Ok(match p {
        Primitive::AddSchema { name } => PrimitiveResult::Schema(m.new_schema(name)?),
        Primitive::AddType { schema, name } => PrimitiveResult::Type(m.new_type(*schema, name)?),
        Primitive::DeleteType { ty } => {
            m.db.remove_matching(m.cat.ty, &[(0, ty.constant())])?;
            PrimitiveResult::Unit
        }
        Primitive::AddAttr { ty, name, domain } => {
            m.add_attr(*ty, name, *domain)?;
            PrimitiveResult::Unit
        }
        Primitive::DeleteAttr { ty, name } => {
            m.remove_attr(*ty, name)?;
            PrimitiveResult::Unit
        }
        Primitive::AddSubtype { sub, sup } => {
            m.add_subtype(*sub, *sup)?;
            PrimitiveResult::Unit
        }
        Primitive::DeleteSubtype { sub, sup } => {
            let t = Tuple::from(vec![sub.constant(), sup.constant()]);
            m.db.remove(m.cat.subtyp, &t)?;
            PrimitiveResult::Unit
        }
        Primitive::AddDecl {
            ty,
            op,
            result,
            args,
        } => {
            let d = m.new_decl(*ty, op, *result)?;
            for (i, a) in args.iter().enumerate() {
                m.add_argdecl(d, (i + 1) as i64, *a)?;
            }
            PrimitiveResult::Decl(d)
        }
        Primitive::DeleteDecl { decl } => {
            m.db.remove_matching(m.cat.decl, &[(0, decl.constant())])?;
            PrimitiveResult::Unit
        }
        Primitive::AddArgDecl { decl, pos, ty } => {
            m.add_argdecl(*decl, *pos, *ty)?;
            PrimitiveResult::Unit
        }
        Primitive::DeleteArgDecl { decl, pos } => {
            m.db.remove_matching(
                m.cat.argdecl,
                &[(0, decl.constant()), (1, Const::Int(*pos))],
            )?;
            PrimitiveResult::Unit
        }
        Primitive::AddCode { decl, text } => PrimitiveResult::Code(m.new_code(*decl, text)?),
        Primitive::DeleteCode { decl } => {
            m.db.remove_matching(m.cat.code, &[(2, decl.constant())])?;
            PrimitiveResult::Unit
        }
        Primitive::AddRefinement { refining, refined } => {
            m.add_refinement(*refining, *refined)?;
            PrimitiveResult::Unit
        }
        Primitive::DeleteRefinement { refining, refined } => {
            let t = Tuple::from(vec![refining.constant(), refined.constant()]);
            m.db.remove(m.cat.declref, &t)?;
            PrimitiveResult::Unit
        }
    })
}

/// Apply a sequence of primitives, returning the per-step results.
pub fn apply_all(m: &mut MetaModel, ps: &[Primitive]) -> DbResult<Vec<PrimitiveResult>> {
    ps.iter().map(|p| apply(m, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gom_core::SchemaManager;

    #[test]
    fn primitives_compose_a_consistent_schema() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.begin_evolution().unwrap();
        let any = mgr.meta.builtins.any;
        let int = mgr.meta.builtins.int;
        let s = apply(&mut mgr.meta, &Primitive::AddSchema { name: "S".into() }).unwrap();
        let PrimitiveResult::Schema(s) = s else {
            panic!()
        };
        let t = apply(
            &mut mgr.meta,
            &Primitive::AddType {
                schema: s,
                name: "T".into(),
            },
        )
        .unwrap()
        .type_id()
        .unwrap();
        apply_all(
            &mut mgr.meta,
            &[
                Primitive::AddSubtype { sub: t, sup: any },
                Primitive::AddAttr {
                    ty: t,
                    name: "x".into(),
                    domain: int,
                },
            ],
        )
        .unwrap();
        let d = apply(
            &mut mgr.meta,
            &Primitive::AddDecl {
                ty: t,
                op: "getX".into(),
                result: int,
                args: vec![],
            },
        )
        .unwrap()
        .decl_id()
        .unwrap();
        apply(
            &mut mgr.meta,
            &Primitive::AddCode {
                decl: d,
                text: "self.x".into(),
            },
        )
        .unwrap();
        assert!(mgr.end_evolution().unwrap().is_consistent());
    }

    #[test]
    fn primitives_do_not_check_consistency() {
        // Deleting a type that is still referenced is ACCEPTED by the
        // primitive — the decoupling of §2.1 — and flagged at EES.
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema(
            "schema S is
               type A is [ x : int; ] end type A;
               type B is [ a : A; ] end type B;
             end schema S;",
        )
        .unwrap();
        let s = mgr.meta.schema_by_name("S").unwrap();
        let a = mgr.meta.type_by_name(s, "A").unwrap();
        mgr.begin_evolution().unwrap();
        apply(&mut mgr.meta, &Primitive::DeleteType { ty: a }).unwrap();
        let out = mgr.end_evolution().unwrap();
        assert!(!out.is_consistent());
        // attr_domain_ref (B.a dangles) and attr_type_ref (A.x dangles).
        let names: Vec<&str> = out
            .violations()
            .iter()
            .map(|v| v.constraint.as_str())
            .collect();
        assert!(names.contains(&"attr_domain_ref"), "{names:?}");
        assert!(names.contains(&"attr_type_ref"), "{names:?}");
        mgr.rollback_evolution().unwrap();
        assert!(mgr.check().unwrap().is_empty());
    }

    #[test]
    fn delete_primitives_are_inverses_of_adds() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema("schema S is type A is [ x : int; ] end type A; end schema S;")
            .unwrap();
        let s = mgr.meta.schema_by_name("S").unwrap();
        let a = mgr.meta.type_by_name(s, "A").unwrap();
        let before = mgr.meta.db.fact_count();
        mgr.begin_evolution().unwrap();
        let int = mgr.meta.builtins.int;
        apply_all(
            &mut mgr.meta,
            &[
                Primitive::AddAttr {
                    ty: a,
                    name: "y".into(),
                    domain: int,
                },
                Primitive::DeleteAttr {
                    ty: a,
                    name: "y".into(),
                },
            ],
        )
        .unwrap();
        assert!(mgr.end_evolution().unwrap().is_consistent());
        assert_eq!(mgr.meta.db.fact_count(), before);
    }
}
