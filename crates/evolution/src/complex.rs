//! User-definable complex schema evolution operations (paper §2.1, §4.2).
//!
//! Each operation here composes primitives (and Analyzer/Runtime services)
//! into one semantic step. None is privileged: all of them go through the
//! same base-predicate interface a user-scripted operation would use, and
//! none checks consistency — that stays with the session's EES check.
//!
//! The library includes the two operations the paper discusses explicitly:
//!
//! * [`add_argument`] — "if we want to change the argument list of an
//!   operation, even those locations within the code of (other) operations
//!   have to be changed, which contain calls of this operation. This case
//!   could be supported by a complex evolution operator which finds out all
//!   relevant locations and offers them to the user" (§4.2);
//! * [`delete_type`] — Bocionek's observation that "there exist five
//!   different semantics for a simple schema evolution operation like type
//!   deletion" (§1); all five are provided as [`DeleteTypeSemantics`].

use gom_analyzer::{body::parse_code_text, codereq};
use gom_core::SchemaManager;
use gom_deductive::{Const, Error as DbError, Tuple};
use gom_model::{CodeId, DeclId, MetaModel, SchemaId, TypeId};
use std::collections::BTreeMap;

/// Errors from complex evolution operations.
#[derive(Debug)]
pub enum EvolError {
    /// Database error.
    Db(DbError),
    /// The operation's preconditions are not met; reasons listed.
    Blocked(Vec<String>),
    /// Call sites need user-supplied patches (the "offer to the user").
    MissingPatches(Vec<CodeId>),
    /// A patched or copied code fragment failed analysis.
    Analyze(String),
}

impl std::fmt::Display for EvolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvolError::Db(e) => write!(f, "{e}"),
            EvolError::Blocked(rs) => write!(f, "operation blocked: {}", rs.join("; ")),
            EvolError::MissingPatches(cs) => {
                write!(f, "{} call site(s) need patches", cs.len())
            }
            EvolError::Analyze(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for EvolError {}

impl From<DbError> for EvolError {
    fn from(e: DbError) -> Self {
        EvolError::Db(e)
    }
}

type EvolResult<T> = Result<T, EvolError>;

// ----- code maintenance helpers ------------------------------------------------

/// Replace the text of a code fragment and re-derive its `CodeReqDecl` /
/// `CodeReqAttr` facts by re-analysis (parameter names are kept).
pub fn replace_code_text(m: &mut MetaModel, cid: CodeId, new_text: &str) -> EvolResult<()> {
    let mut rows = m.db.relation(m.cat.code).select(&[(0, cid.constant())]);
    let Some(row) = rows.next() else {
        return Err(EvolError::Blocked(vec![format!(
            "no code fragment `{}`",
            m.db.resolve(cid.sym())
        )]));
    };
    let row = row.clone();
    drop(rows);
    let decl = DeclId(row.get(2).as_sym().expect("decl column"));
    let (receiver, _, _) = m
        .decl_info(decl)
        .ok_or_else(|| EvolError::Blocked(vec!["code's declaration is gone".into()]))?;
    // Remove the old Code fact and dependency facts.
    m.db.remove(m.cat.code, &row)?;
    m.db.remove_matching(m.cat.codereq_attr, &[(0, cid.constant())])?;
    m.db.remove_matching(m.cat.codereq_decl, &[(0, cid.constant())])?;
    // Insert the new text under the same code id.
    let text_c = m.db.constant(new_text);
    m.db.insert(m.cat.code, vec![cid.constant(), text_c, decl.constant()])?;
    // Re-analysis with the recorded parameter names and declared arg types.
    let params = code_params(m, cid);
    let arg_types: Vec<TypeId> = m.args_of(decl).into_iter().map(|(_, t)| t).collect();
    let typed: Vec<(String, TypeId)> = params
        .into_iter()
        .zip(arg_types)
        .map(|((_, n), t)| (n, t))
        .collect();
    let block = parse_code_text(new_text).map_err(|e| EvolError::Analyze(e.to_string()))?;
    let analysis = codereq::analyze(m, receiver, decl, &typed, &block)
        .map_err(|e| EvolError::Analyze(e.to_string()))?;
    for (t, a) in analysis.attr_reqs {
        m.add_codereq_attr(cid, t, &a)?;
    }
    for d in analysis.decl_reqs {
        m.add_codereq_decl(cid, d)?;
    }
    Ok(())
}

/// Recorded parameter names of a code fragment, ordered.
pub fn code_params(m: &MetaModel, cid: CodeId) -> Vec<(i64, String)> {
    let Some(cp) = m.db.pred_id("CodeParam") else {
        return Vec::new();
    };
    let mut rows: Vec<(i64, String)> =
        m.db.relation(cp)
            .select(&[(0, cid.constant())])
            .filter_map(|t| {
                Some((
                    t.get(1).as_int()?,
                    m.db.resolve(t.get(2).as_sym()?).to_string(),
                ))
            })
            .collect();
    rows.sort();
    rows
}

// ----- add argument (§4.2) ----------------------------------------------------

/// Report of an [`add_argument`] execution.
#[derive(Debug)]
pub struct AddArgumentReport {
    /// 1-based position of the new argument.
    pub pos: i64,
    /// Call-site code fragments that were patched.
    pub patched: Vec<CodeId>,
    /// Refining/refined declarations that also received the argument (to
    /// keep contravariance arity intact).
    pub refinements_updated: Vec<DeclId>,
}

/// The call sites that must change when `decl` gains an argument —
/// step one of the complex operation: "finds out all relevant locations and
/// offers them to the user".
pub fn add_argument_plan(m: &MetaModel, decl: DeclId) -> Vec<CodeId> {
    let mut out: Vec<CodeId> =
        m.db.relation(m.cat.codereq_decl)
            .select(&[(1, decl.constant())])
            .filter_map(|t| t.get(0).as_sym().map(CodeId))
            .collect();
    out.sort();
    out.dedup();
    out
}

/// Add an argument of type `ty` (named `param_name` in the implementation)
/// to `decl` and to every declaration in its refinement family, patch the
/// affected call sites with the user-supplied texts, and re-analyze them.
pub fn add_argument(
    mgr: &mut SchemaManager,
    decl: DeclId,
    ty: TypeId,
    param_name: &str,
    patches: &BTreeMap<CodeId, String>,
) -> EvolResult<AddArgumentReport> {
    let m = &mut mgr.meta;
    let pos = (m.args_of(decl).len() + 1) as i64;
    // Refinement family: declarations transitively refining or refined by
    // `decl` must keep the same arity (contravariance).
    let mut family = vec![decl];
    let mut i = 0;
    while i < family.len() {
        let d = family[i];
        for r in m.refinements_of(d).into_iter().chain(m.refined_by(d)) {
            if !family.contains(&r) {
                family.push(r);
            }
        }
        i += 1;
    }
    // Collect all affected call sites first.
    let mut affected: Vec<CodeId> = Vec::new();
    for &d in &family {
        affected.extend(add_argument_plan(m, d));
    }
    affected.sort();
    affected.dedup();
    let missing: Vec<CodeId> = affected
        .iter()
        .copied()
        .filter(|c| !patches.contains_key(c))
        .collect();
    if !missing.is_empty() {
        return Err(EvolError::MissingPatches(missing));
    }
    // 1. ArgDecl rows for the whole family.
    for &d in &family {
        let have = m.args_of(d).len() as i64;
        if have < pos {
            m.add_argdecl(d, pos, ty)?;
        }
        // 2. The implementation gains a parameter name.
        if let Some((cid, _)) = m.code_of(d) {
            if let Some(cp) = m.db.pred_id("CodeParam") {
                let n = m.db.constant(param_name);
                m.db.insert(cp, vec![cid.constant(), Const::Int(pos), n])?;
            }
        }
    }
    // 3. Patch call sites.
    for (cid, text) in patches {
        if affected.contains(cid) {
            replace_code_text(m, *cid, text)?;
        }
    }
    Ok(AddArgumentReport {
        pos,
        patched: affected,
        refinements_updated: family[1..].to_vec(),
    })
}

// ----- type deletion (Bocionek's five semantics) --------------------------------

/// The five semantics of type deletion (Bocionek \[5\], paper §1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeleteTypeSemantics {
    /// 1 — reject when the type has subtypes, instances, or is referenced
    /// anywhere (safest).
    Restrict,
    /// 2 — delete the type and its own definitions; reconnect its subtypes
    /// to its supertypes; reject when other references remain.
    Reconnect,
    /// 3 — cascade at the schema level: also delete referencing attributes
    /// and declarations (with their code). Dangling *code bodies* that
    /// still mention removed operations surface as EES violations.
    Cascade,
    /// 4 — cascade including the object base: delete all instances first,
    /// then cascade.
    CascadeInstances,
    /// 5 — remove only the `Type` fact and leave every dangling reference
    /// for the consistency control to report and repair interactively.
    Orphan,
}

/// Report of a [`delete_type`] execution.
#[derive(Debug, Default)]
pub struct DeleteTypeReport {
    /// Facts removed (base-predicate count).
    pub facts_removed: usize,
    /// Subtype edges re-routed (Reconnect).
    pub reconnected: usize,
    /// Objects deleted (CascadeInstances).
    pub instances_deleted: usize,
    /// Declarations removed in cascades.
    pub decls_removed: usize,
}

fn external_references(m: &MetaModel, ty: TypeId) -> Vec<String> {
    let mut out = Vec::new();
    let label = m.type_name(ty).unwrap_or_default();
    for t in m.db.relation(m.cat.attr).select(&[(2, ty.constant())]) {
        if t.get(0) != ty.constant() {
            out.push(format!(
                "attribute {} has domain `{label}`",
                t.display(m.db.interner())
            ));
        }
    }
    for t in m.db.relation(m.cat.decl).select(&[(3, ty.constant())]) {
        if t.get(1) != ty.constant() {
            out.push(format!(
                "declaration {} has result `{label}`",
                t.display(m.db.interner())
            ));
        }
    }
    for t in m.db.relation(m.cat.argdecl).select(&[(2, ty.constant())]) {
        let did = DeclId(t.get(0).as_sym().expect("decl id"));
        if m.decl_info(did).map(|(r, _, _)| r) != Some(ty) {
            out.push(format!(
                "argument {} has type `{label}`",
                t.display(m.db.interner())
            ));
        }
    }
    for t in m.db.relation(m.cat.subtyp).select(&[(1, ty.constant())]) {
        out.push(format!(
            "type {} is a subtype of `{label}`",
            t.display(m.db.interner())
        ));
    }
    if m.phrep_of(ty).is_some() && !m.builtins.is_builtin(ty) {
        out.push(format!("`{label}` has instances"));
    }
    out
}

/// Remove a declaration with everything it owns (arguments, code, code
/// dependencies, refinement edges). Crate-public for the diff applier.
pub(crate) fn delete_decl_cascade_public(m: &mut MetaModel, decl: DeclId) {
    let mut report = DeleteTypeReport::default();
    remove_decl_cascade(m, decl, &mut report);
}

fn remove_decl_cascade(m: &mut MetaModel, decl: DeclId, report: &mut DeleteTypeReport) {
    let remove_all = |m: &mut MetaModel, pred, col, key: Const, report: &mut DeleteTypeReport| {
        report.facts_removed += m.db.remove_matching(pred, &[(col, key)]).unwrap_or(0);
    };
    // Code of the declaration (plus its dependency and parameter facts).
    let code_rows: Vec<Tuple> =
        m.db.relation(m.cat.code)
            .select(&[(2, decl.constant())])
            .cloned()
            .collect();
    for code_row in code_rows {
        let cid = code_row.get(0);
        remove_all(m, m.cat.codereq_attr, 0, cid, report);
        remove_all(m, m.cat.codereq_decl, 0, cid, report);
        if let Some(cp) = m.db.pred_id("CodeParam") {
            remove_all(m, cp, 0, cid, report);
        }
        if m.db.remove(m.cat.code, &code_row).unwrap_or(false) {
            report.facts_removed += 1;
        }
    }
    remove_all(m, m.cat.argdecl, 0, decl.constant(), report);
    remove_all(m, m.cat.declref, 0, decl.constant(), report);
    remove_all(m, m.cat.declref, 1, decl.constant(), report);
    remove_all(m, m.cat.decl, 0, decl.constant(), report);
    report.decls_removed += 1;
}

fn remove_own_definitions(m: &mut MetaModel, ty: TypeId, report: &mut DeleteTypeReport) {
    for (attr, _) in m.attrs_of(ty) {
        if m.remove_attr(ty, &attr).unwrap_or(false) {
            report.facts_removed += 1;
        }
    }
    for (d, _, _) in m.decls_of(ty) {
        remove_decl_cascade(m, d, report);
    }
    // subtype edges where ty is the sub
    report.facts_removed +=
        m.db.remove_matching(m.cat.subtyp, &[(0, ty.constant())])
            .unwrap_or(0);
    // extension facts owned by the type
    for pname in ["SortVariant", "evolves_to_T", "FashionType"] {
        if let Some(p) = m.db.pred_id(pname) {
            for col in [0, 1] {
                if col >= m.db.pred_decl(p).arity {
                    continue;
                }
                report.facts_removed +=
                    m.db.remove_matching(p, &[(col, ty.constant())])
                        .unwrap_or(0);
            }
        }
    }
    // the Type fact itself
    report.facts_removed +=
        m.db.remove_matching(m.cat.ty, &[(0, ty.constant())])
            .unwrap_or(0);
}

/// Delete a type under the chosen semantics. Runs inside the caller's
/// evolution session; EES decides whether the result is consistent.
pub fn delete_type(
    mgr: &mut SchemaManager,
    ty: TypeId,
    semantics: DeleteTypeSemantics,
) -> EvolResult<DeleteTypeReport> {
    let mut report = DeleteTypeReport::default();
    match semantics {
        DeleteTypeSemantics::Restrict => {
            let refs = external_references(&mgr.meta, ty);
            if !refs.is_empty() {
                return Err(EvolError::Blocked(refs));
            }
            remove_own_definitions(&mut mgr.meta, ty, &mut report);
        }
        DeleteTypeSemantics::Reconnect => {
            let m = &mut mgr.meta;
            let sups = m.supertypes(ty);
            let subs = m.subtypes(ty);
            let refs: Vec<String> = external_references(m, ty)
                .into_iter()
                .filter(|r| !r.contains("is a subtype of"))
                .collect();
            if !refs.is_empty() {
                return Err(EvolError::Blocked(refs));
            }
            for &sub in &subs {
                let t = Tuple::from(vec![sub.constant(), ty.constant()]);
                if m.db.remove(m.cat.subtyp, &t).unwrap_or(false) {
                    report.facts_removed += 1;
                }
                for &sup in &sups {
                    m.add_subtype(sub, sup)?;
                    report.reconnected += 1;
                }
            }
            remove_own_definitions(m, ty, &mut report);
        }
        DeleteTypeSemantics::Cascade | DeleteTypeSemantics::CascadeInstances => {
            if semantics == DeleteTypeSemantics::CascadeInstances {
                let oids: Vec<_> = mgr.runtime.objects.extent(ty).to_vec();
                for oid in oids {
                    if mgr
                        .runtime
                        .delete(&mut mgr.meta, oid)
                        .map_err(|e| EvolError::Blocked(vec![e.to_string()]))?
                    {
                        report.instances_deleted += 1;
                    }
                }
            }
            let m = &mut mgr.meta;
            // Referencing attributes elsewhere.
            let hits: Vec<Tuple> =
                m.db.relation(m.cat.attr)
                    .select(&[(2, ty.constant())])
                    .cloned()
                    .collect();
            for t in hits {
                if m.db.remove(m.cat.attr, &t).unwrap_or(false) {
                    report.facts_removed += 1;
                }
            }
            // Declarations with result or argument of this type.
            let mut doomed: Vec<DeclId> =
                m.db.relation(m.cat.decl)
                    .select(&[(3, ty.constant())])
                    .filter_map(|t| t.get(0).as_sym().map(DeclId))
                    .collect();
            doomed.extend(
                m.db.relation(m.cat.argdecl)
                    .select(&[(2, ty.constant())])
                    .filter_map(|t| t.get(0).as_sym().map(DeclId)),
            );
            doomed.sort();
            doomed.dedup();
            for d in doomed {
                // own decls are removed below with the type
                if m.decl_info(d).map(|(r, _, _)| r) != Some(ty) {
                    remove_decl_cascade(m, d, &mut report);
                }
            }
            // Hierarchy edges above the type.
            report.facts_removed +=
                m.db.remove_matching(m.cat.subtyp, &[(1, ty.constant())])
                    .unwrap_or(0);
            // Physical representation, if instance-free by now.
            if let Some(clid) = m.phrep_of(ty) {
                for (attr, _) in m.slots_of(clid) {
                    m.remove_slot(clid, &attr)?;
                    report.facts_removed += 1;
                }
                let t = Tuple::from(vec![clid.constant(), ty.constant()]);
                if m.db.remove(m.cat.phrep, &t).unwrap_or(false) {
                    report.facts_removed += 1;
                }
            }
            remove_own_definitions(m, ty, &mut report);
        }
        DeleteTypeSemantics::Orphan => {
            let m = &mut mgr.meta;
            report.facts_removed +=
                m.db.remove_matching(m.cat.ty, &[(0, ty.constant())])
                    .unwrap_or(0);
        }
    }
    Ok(report)
}

// ----- type copying (versioning support, §4.2 step 4) ---------------------------

/// Copy a type (attributes, declarations, argument lists, implementations)
/// into another schema under a new name — "defining a new type Car by using
/// the same textual definition as Car in schema CarSchema". Supertype edges
/// are *not* copied; the caller wires the new hierarchy. Implementations
/// are re-analyzed against the copy.
pub fn copy_type_into(
    mgr: &mut SchemaManager,
    src: TypeId,
    dst_schema: SchemaId,
    new_name: &str,
) -> EvolResult<TypeId> {
    let m = &mut mgr.meta;
    let new_ty = m.new_type(dst_schema, new_name)?;
    for (attr, domain) in m.attrs_of(src) {
        m.add_attr(new_ty, &attr, domain)?;
    }
    for (d, op, result) in m.decls_of(src) {
        let nd = m.new_decl(new_ty, &op, result)?;
        for (pos, t) in m.args_of(d) {
            m.add_argdecl(nd, pos, t)?;
        }
        if let Some((old_cid, text)) = m.code_of(d) {
            let ncid = m.new_code(nd, &text)?;
            // copy parameter names
            let params = code_params(m, old_cid);
            if let Some(cp) = m.db.pred_id("CodeParam") {
                for (pos, name) in &params {
                    let n = m.db.constant(name);
                    m.db.insert(cp, vec![ncid.constant(), Const::Int(*pos), n])?;
                }
            }
            // re-analyze against the copy
            let arg_types: Vec<TypeId> = m.args_of(nd).into_iter().map(|(_, t)| t).collect();
            let typed: Vec<(String, TypeId)> =
                params.into_iter().map(|(_, n)| n).zip(arg_types).collect();
            let block = parse_code_text(&text).map_err(|e| EvolError::Analyze(e.to_string()))?;
            let analysis = codereq::analyze(m, new_ty, nd, &typed, &block)
                .map_err(|e| EvolError::Analyze(e.to_string()))?;
            for (t, a) in analysis.attr_reqs {
                m.add_codereq_attr(ncid, t, &a)?;
            }
            for dd in analysis.decl_reqs {
                m.add_codereq_decl(ncid, dd)?;
            }
        }
    }
    Ok(new_ty)
}

/// Rename a type (same id, new user name).
pub fn rename_type(mgr: &mut SchemaManager, ty: TypeId, new_name: &str) -> EvolResult<()> {
    let m = &mut mgr.meta;
    let mut rows = m.db.relation(m.cat.ty).select(&[(0, ty.constant())]);
    let Some(row) = rows.next().cloned() else {
        return Err(EvolError::Blocked(vec!["type does not exist".into()]));
    };
    drop(rows);
    let schema = row.get(2);
    m.db.remove(m.cat.ty, &row)?;
    let n = m.db.constant(new_name);
    m.db.insert(m.cat.ty, vec![ty.constant(), n, schema])?;
    Ok(())
}

/// Pull an attribute common to all direct subtypes of `sup` up into `sup`
/// (a classic hierarchy-restructuring operation).
pub fn pull_up_attr(mgr: &mut SchemaManager, sup: TypeId, attr: &str) -> EvolResult<usize> {
    let m = &mut mgr.meta;
    let subs = m.subtypes(sup);
    if subs.is_empty() {
        return Err(EvolError::Blocked(vec!["type has no subtypes".into()]));
    }
    let mut domain = None;
    for &sub in &subs {
        match m.attrs_of(sub).into_iter().find(|(n, _)| n == attr) {
            Some((_, d)) => {
                if *domain.get_or_insert(d) != d {
                    return Err(EvolError::Blocked(vec![format!(
                        "`{attr}` has different domains across subtypes"
                    )]));
                }
            }
            None => {
                return Err(EvolError::Blocked(vec![format!(
                    "subtype `{}` lacks `{attr}`",
                    m.type_name(sub).unwrap_or_default()
                )]))
            }
        }
    }
    let domain = domain.expect("non-empty subs");
    for &sub in &subs {
        m.remove_attr(sub, attr)?;
    }
    m.add_attr(sup, attr, domain)?;
    Ok(subs.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gom_analyzer::car_schema::CAR_SCHEMA_SRC;
    use gom_core::EvolutionOutcome;

    fn mgr_with_cars() -> SchemaManager {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
        mgr
    }

    fn car_type(mgr: &SchemaManager, name: &str) -> TypeId {
        let s = mgr.meta.schema_by_name("CarSchema").unwrap();
        mgr.meta.type_by_name(s, name).unwrap()
    }

    #[test]
    fn add_argument_finds_call_sites_and_requires_patches() {
        let mut mgr = mgr_with_cars();
        let loc = car_type(&mgr, "Location");
        let (d_loc, _, _) = mgr.meta.decls_of(loc)[0];
        // distance is called by City.distance (super) and changeLocation.
        let plan = add_argument_plan(&mgr.meta, d_loc);
        assert_eq!(plan.len(), 1); // City's super call
        mgr.begin_evolution().unwrap();
        let int = mgr.meta.builtins.int;
        let err = add_argument(&mut mgr, d_loc, int, "precision", &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, EvolError::MissingPatches(_)));
        mgr.rollback_evolution().unwrap();
    }

    #[test]
    fn add_argument_with_patches_commits_consistently() {
        let mut mgr = mgr_with_cars();
        let loc = car_type(&mgr, "Location");
        let city = car_type(&mgr, "City");
        let car = car_type(&mgr, "Car");
        let (d_loc, _, _) = mgr.meta.decls_of(loc)[0];
        let (d_city, _, _) = mgr.meta.decls_of(city)[0];
        let (d_car, _, _) = mgr.meta.decls_of(car)[0];
        // All call sites across the refinement family:
        let mut affected = add_argument_plan(&mgr.meta, d_loc);
        affected.extend(add_argument_plan(&mgr.meta, d_city));
        affected.sort();
        affected.dedup();
        assert_eq!(affected.len(), 2); // City.distance (super) + changeLocation
        let mut patches = BTreeMap::new();
        // Patch City.distance to pass the new argument to super.
        let (cid2, _) = mgr.meta.code_of(d_city).unwrap();
        patches.insert(
            cid2,
            "begin
               if (self.name == \"nowhere\") return super.distance(other, precision);
               return (self.longi - other.longi) * (self.longi - other.longi)
                    + (self.lati  - other.lati)  * (self.lati  - other.lati);
             end"
            .to_string(),
        );
        // Patch changeLocation's call.
        let (cid3, _) = mgr.meta.code_of(d_car).unwrap();
        patches.insert(
            cid3,
            "begin
               if (self.owner == driver)
               begin
                 self.milage   := self.milage + self.location.distance(newLocation, 1);
                 self.location := newLocation;
                 return self.milage;
               end
               else return -1.0;
             end"
            .to_string(),
        );
        mgr.begin_evolution().unwrap();
        let int = mgr.meta.builtins.int;
        let report = add_argument(&mut mgr, d_loc, int, "precision", &patches).unwrap();
        assert_eq!(report.pos, 2);
        assert_eq!(report.refinements_updated, vec![d_city]);
        let out = mgr.end_evolution().unwrap();
        assert!(
            out.is_consistent(),
            "{:?}",
            out.violations()
                .iter()
                .map(|v| v.render(&mgr.meta.db))
                .collect::<Vec<_>>()
        );
        // Both declarations now have 2 arguments.
        assert_eq!(mgr.meta.args_of(d_loc).len(), 2);
        assert_eq!(mgr.meta.args_of(d_city).len(), 2);
    }

    #[test]
    fn delete_type_restrict_blocks_on_references() {
        let mut mgr = mgr_with_cars();
        let person = car_type(&mgr, "Person");
        mgr.begin_evolution().unwrap();
        let err = delete_type(&mut mgr, person, DeleteTypeSemantics::Restrict).unwrap_err();
        let EvolError::Blocked(reasons) = err else {
            panic!("expected Blocked");
        };
        assert!(reasons.iter().any(|r| r.contains("domain")), "{reasons:?}");
        mgr.rollback_evolution().unwrap();
    }

    #[test]
    fn delete_type_reconnect_rewires_hierarchy() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema(
            "schema S is
               type A is end type A;
               type B supertype A is end type B;
               type C supertype B is end type C;
             end schema S;",
        )
        .unwrap();
        let s = mgr.meta.schema_by_name("S").unwrap();
        let a = mgr.meta.type_by_name(s, "A").unwrap();
        let b = mgr.meta.type_by_name(s, "B").unwrap();
        let c = mgr.meta.type_by_name(s, "C").unwrap();
        mgr.begin_evolution().unwrap();
        let report = delete_type(&mut mgr, b, DeleteTypeSemantics::Reconnect).unwrap();
        assert_eq!(report.reconnected, 1);
        assert!(mgr.end_evolution().unwrap().is_consistent());
        assert_eq!(mgr.meta.supertypes(c), vec![a]);
    }

    #[test]
    fn delete_type_cascade_removes_referencing_definitions() {
        let mut mgr = mgr_with_cars();
        let city = car_type(&mgr, "City");
        let car = car_type(&mgr, "Car");
        mgr.begin_evolution().unwrap();
        let report = delete_type(&mut mgr, city, DeleteTypeSemantics::Cascade).unwrap();
        assert!(report.facts_removed > 0);
        // Car.location (domain City) removed; changeLocation (arg City)
        // removed with its code.
        assert!(mgr.meta.attrs_of(car).iter().all(|(n, _)| n != "location"));
        assert!(mgr.meta.decls_of(car).is_empty());
        let out = mgr.end_evolution().unwrap();
        assert!(
            out.is_consistent(),
            "{:?}",
            out.violations()
                .iter()
                .map(|v| v.render(&mgr.meta.db))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn delete_type_orphan_surfaces_violations_for_repair() {
        let mut mgr = mgr_with_cars();
        let person = car_type(&mgr, "Person");
        mgr.begin_evolution().unwrap();
        delete_type(&mut mgr, person, DeleteTypeSemantics::Orphan).unwrap();
        let out = mgr.end_evolution().unwrap();
        let EvolutionOutcome::Inconsistent(violations) = out else {
            panic!("expected violations");
        };
        // Car.owner dangles, Person's own attrs dangle, changeLocation's
        // first argument dangles, the subtype edge dangles…
        let names: Vec<&str> = violations.iter().map(|v| v.constraint.as_str()).collect();
        assert!(names.contains(&"attr_domain_ref"));
        assert!(names.contains(&"attr_type_ref"));
        assert!(names.contains(&"argdecl_type_ref"));
        assert!(names.contains(&"subtyp_sub_ref"));
        // …and every violation has generated repairs.
        let v0 = violations[0].clone();
        let repairs = mgr.repairs_for(&v0).unwrap();
        assert!(!repairs.is_empty());
        mgr.rollback_evolution().unwrap();
    }

    #[test]
    fn delete_type_cascade_instances_clears_object_base() {
        let mut mgr = mgr_with_cars();
        let person = car_type(&mgr, "Person");
        let p1 = mgr.create_object(person).unwrap();
        let _p2 = mgr.create_object(person).unwrap();
        mgr.begin_evolution().unwrap();
        // Cascade also removes Car (its owner attr references Person)… no:
        // cascade removes the *attribute*, not the Car type. Instances of
        // Person are deleted.
        let report = delete_type(&mut mgr, person, DeleteTypeSemantics::CascadeInstances).unwrap();
        assert_eq!(report.instances_deleted, 2);
        assert!(mgr.runtime.objects.get(p1).is_none());
        let out = mgr.end_evolution().unwrap();
        assert!(
            out.is_consistent(),
            "{:?}",
            out.violations()
                .iter()
                .map(|v| v.render(&mgr.meta.db))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn copy_type_preserves_structure_and_reanalyzes() {
        let mut mgr = mgr_with_cars();
        let loc = car_type(&mgr, "Location");
        mgr.begin_evolution().unwrap();
        let s2 = mgr.meta.new_schema("NewCarSchema").unwrap();
        let loc2 = copy_type_into(&mut mgr, loc, s2, "Location").unwrap();
        let any = mgr.meta.builtins.any;
        mgr.meta.add_subtype(loc2, any).unwrap();
        let out = mgr.end_evolution().unwrap();
        assert!(
            out.is_consistent(),
            "{:?}",
            out.violations()
                .iter()
                .map(|v| v.render(&mgr.meta.db))
                .collect::<Vec<_>>()
        );
        assert_eq!(mgr.meta.attrs_of(loc2).len(), 2);
        assert_eq!(mgr.meta.decls_of(loc2).len(), 1);
        let (d2, _, _) = mgr.meta.decls_of(loc2)[0];
        assert!(mgr.meta.code_of(d2).is_some());
        // `self.longi` in the copy resolves to the COPY's attribute;
        // `other.longi` still resolves to the original (the argument type
        // was copied verbatim and references Location@CarSchema).
        let (cid, _) = mgr.meta.code_of(d2).unwrap();
        let rows: Vec<Tuple> = mgr
            .meta
            .db
            .relation(mgr.meta.cat.codereq_attr)
            .select(&[(0, cid.constant())])
            .cloned()
            .collect();
        assert!(rows.iter().any(|t| t.get(1) == loc2.constant()), "{rows:?}");
        assert!(rows.iter().any(|t| t.get(1) == loc.constant()), "{rows:?}");
    }

    #[test]
    fn rename_and_pull_up() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema(
            "schema S is
               type Base is end type Base;
               type L supertype Base is [ color : string; ] end type L;
               type R supertype Base is [ color : string; ] end type R;
             end schema S;",
        )
        .unwrap();
        let s = mgr.meta.schema_by_name("S").unwrap();
        let base = mgr.meta.type_by_name(s, "Base").unwrap();
        mgr.begin_evolution().unwrap();
        let n = pull_up_attr(&mut mgr, base, "color").unwrap();
        assert_eq!(n, 2);
        rename_type(&mut mgr, base, "Colored").unwrap();
        assert!(mgr.end_evolution().unwrap().is_consistent());
        assert!(mgr.meta.type_by_name(s, "Colored").is_some());
        assert_eq!(mgr.meta.attrs_of(base).len(), 1);
    }
}
