//! User-defined complex evolution operations as *editing macros* (§4.2).
//!
//! > "beside the manual execution of these steps, the user also has the
//! > possibility to abstract from this concrete case and to program a new
//! > parameterized complex schema evolution operator which will be added
//! > to the implementation of the Analyzer. … such a program can be
//! > realized by an editing macro."
//!
//! A [`MacroRecorder`] captures the primitives of a session;
//! [`EvolutionMacro::replay`] re-executes them elsewhere. Two binding
//! mechanisms make macros *parameterized*:
//!
//! 1. identifiers **created by the macro itself** (fresh schema/type/decl/
//!    code ids) are rebound automatically — a replay creates fresh ids and
//!    threads them through the remaining steps;
//! 2. identifiers and names **referencing the environment** are substituted
//!    through an explicit parameter map (old symbol text → new symbol
//!    text), so a macro recorded against `Car@CarSchema` replays against
//!    `Truck@FleetSchema`.

use crate::primitive::{apply, Primitive, PrimitiveResult};
use gom_deductive::{Result as DbResult, Symbol};
use gom_model::{DeclId, MetaModel, SchemaId, TypeId};
use std::collections::BTreeMap;

/// A recorded, replayable complex evolution operation.
#[derive(Clone, Debug, PartialEq)]
pub struct EvolutionMacro {
    /// Macro name (for libraries of operators).
    pub name: String,
    /// The recorded primitive steps, in order.
    pub steps: Vec<Primitive>,
}

/// Records primitives as they are applied.
pub struct MacroRecorder {
    name: String,
    steps: Vec<Primitive>,
}

impl MacroRecorder {
    /// Start recording a macro.
    pub fn new(name: impl Into<String>) -> Self {
        MacroRecorder {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Apply a primitive to the model *and* record it.
    pub fn apply(&mut self, m: &mut MetaModel, p: Primitive) -> DbResult<PrimitiveResult> {
        let result = apply(m, &p)?;
        self.steps.push(p);
        Ok(result)
    }

    /// Finish recording.
    pub fn finish(self) -> EvolutionMacro {
        EvolutionMacro {
            name: self.name,
            steps: self.steps,
        }
    }
}

impl EvolutionMacro {
    /// Replay the macro with a parameter substitution: every identifier or
    /// name whose interned text appears as a key in `params` is replaced by
    /// the value (interned on demand); identifiers created by earlier steps
    /// of this very replay are rebound to the freshly created ones.
    ///
    /// Replays run inside the caller's evolution session — consistency is
    /// checked at EES like for any other complex operation.
    pub fn replay(
        &self,
        m: &mut MetaModel,
        params: &BTreeMap<String, String>,
    ) -> DbResult<Vec<PrimitiveResult>> {
        let mut rebind: BTreeMap<Symbol, Symbol> = BTreeMap::new();
        let mut results = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let concrete = self.rewrite(m, step, params, &rebind);
            let result = apply(m, &concrete)?;
            // Track fresh ids: the original step's produced id maps to the
            // replay's produced id.
            let original_produced = produced_sym(m, step);
            let new_produced = match result {
                PrimitiveResult::Schema(s) => Some(s.sym()),
                PrimitiveResult::Type(t) => Some(t.sym()),
                PrimitiveResult::Decl(d) => Some(d.sym()),
                PrimitiveResult::Code(c) => Some(c.sym()),
                PrimitiveResult::Unit => None,
            };
            if let (Some(old), Some(new)) = (original_produced, new_produced) {
                rebind.insert(old, new);
            }
            results.push(result);
        }
        Ok(results)
    }

    fn sub_sym(
        &self,
        m: &mut MetaModel,
        s: Symbol,
        params: &BTreeMap<String, String>,
        rebind: &BTreeMap<Symbol, Symbol>,
    ) -> Symbol {
        if let Some(&fresh) = rebind.get(&s) {
            return fresh;
        }
        let text = m.db.resolve(s).to_string();
        match params.get(&text) {
            Some(new_text) => m.db.intern(new_text),
            None => s,
        }
    }

    fn sub_string(&self, s: &str, params: &BTreeMap<String, String>) -> String {
        params.get(s).cloned().unwrap_or_else(|| s.to_string())
    }

    fn rewrite(
        &self,
        m: &mut MetaModel,
        p: &Primitive,
        params: &BTreeMap<String, String>,
        rebind: &BTreeMap<Symbol, Symbol>,
    ) -> Primitive {
        let ty = |m: &mut MetaModel, t: TypeId| TypeId(self.sub_sym(m, t.sym(), params, rebind));
        let decl = |m: &mut MetaModel, d: DeclId| DeclId(self.sub_sym(m, d.sym(), params, rebind));
        match p {
            Primitive::AddSchema { name } => Primitive::AddSchema {
                name: self.sub_string(name, params),
            },
            Primitive::AddType { schema, name } => Primitive::AddType {
                schema: SchemaId(self.sub_sym(m, schema.sym(), params, rebind)),
                name: self.sub_string(name, params),
            },
            Primitive::DeleteType { ty: t } => Primitive::DeleteType { ty: ty(m, *t) },
            Primitive::AddAttr {
                ty: t,
                name,
                domain,
            } => Primitive::AddAttr {
                ty: ty(m, *t),
                name: self.sub_string(name, params),
                domain: ty(m, *domain),
            },
            Primitive::DeleteAttr { ty: t, name } => Primitive::DeleteAttr {
                ty: ty(m, *t),
                name: self.sub_string(name, params),
            },
            Primitive::AddSubtype { sub, sup } => Primitive::AddSubtype {
                sub: ty(m, *sub),
                sup: ty(m, *sup),
            },
            Primitive::DeleteSubtype { sub, sup } => Primitive::DeleteSubtype {
                sub: ty(m, *sub),
                sup: ty(m, *sup),
            },
            Primitive::AddDecl {
                ty: t,
                op,
                result,
                args,
            } => Primitive::AddDecl {
                ty: ty(m, *t),
                op: self.sub_string(op, params),
                result: ty(m, *result),
                args: args.iter().map(|a| ty(m, *a)).collect(),
            },
            Primitive::DeleteDecl { decl: d } => Primitive::DeleteDecl { decl: decl(m, *d) },
            Primitive::AddArgDecl {
                decl: d,
                pos,
                ty: t,
            } => Primitive::AddArgDecl {
                decl: decl(m, *d),
                pos: *pos,
                ty: ty(m, *t),
            },
            Primitive::DeleteArgDecl { decl: d, pos } => Primitive::DeleteArgDecl {
                decl: decl(m, *d),
                pos: *pos,
            },
            Primitive::AddCode { decl: d, text } => Primitive::AddCode {
                decl: decl(m, *d),
                text: self.sub_string(text, params),
            },
            Primitive::DeleteCode { decl: d } => Primitive::DeleteCode { decl: decl(m, *d) },
            Primitive::AddRefinement { refining, refined } => Primitive::AddRefinement {
                refining: decl(m, *refining),
                refined: decl(m, *refined),
            },
            Primitive::DeleteRefinement { refining, refined } => Primitive::DeleteRefinement {
                refining: decl(m, *refining),
                refined: decl(m, *refined),
            },
        }
    }
}

/// The id a recorded step *produced* at recording time (for rebinding).
/// Creation primitives produce ids that later recorded steps may mention;
/// we recover them by position: the recorder stored them in order, but the
/// simplest robust way is to look at what the step would have produced —
/// which is not recoverable from the primitive alone. Instead we exploit
/// that creation primitives embed no produced id, and later steps mention
/// the *concrete* id; so we re-derive the produced id by looking the entity
/// up in the current model at replay time. For schemas and types that is
/// the (schema, name) key; declarations/codes are found via their owner.
fn produced_sym(m: &MetaModel, step: &Primitive) -> Option<Symbol> {
    match step {
        Primitive::AddSchema { name } => m.schema_by_name(name).map(|s| s.sym()),
        Primitive::AddType { schema, name } => m.type_by_name(*schema, name).map(|t| t.sym()),
        Primitive::AddDecl { ty, op, .. } => m
            .decls_of(*ty)
            .into_iter()
            .find(|(_, n, _)| n == op)
            .map(|(d, _, _)| d.sym()),
        Primitive::AddCode { decl, .. } => m.code_of(*decl).map(|(c, _)| c.sym()),
        _ => None,
    }
}

/// Convenience: record the id produced for creation steps at record time so
/// replay can rebind without lookups. (Public alias kept small; the
/// recorder path above suffices for the common cases.)
pub type MacroParams = BTreeMap<String, String>;

#[cfg(test)]
mod tests {
    use super::*;
    use gom_core::SchemaManager;

    /// Record a macro that adds a `serialNo : int` attribute and a
    /// `serial`-returning operation to a type; replay it on another type in
    /// another schema.
    #[test]
    fn record_and_replay_on_different_target() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema(
            "schema A is type Car is end type Car; end schema A;
             schema B is type Truck is end type Truck; end schema B;",
        )
        .unwrap();
        let sa = mgr.meta.schema_by_name("A").unwrap();
        let car = mgr.meta.type_by_name(sa, "Car").unwrap();
        let int = mgr.meta.builtins.int;

        // Record against Car@A.
        mgr.begin_evolution().unwrap();
        let mut rec = MacroRecorder::new("add_serial");
        rec.apply(
            &mut mgr.meta,
            Primitive::AddAttr {
                ty: car,
                name: "serialNo".into(),
                domain: int,
            },
        )
        .unwrap();
        let d = rec
            .apply(
                &mut mgr.meta,
                Primitive::AddDecl {
                    ty: car,
                    op: "serial".into(),
                    result: int,
                    args: vec![],
                },
            )
            .unwrap()
            .decl_id()
            .unwrap();
        rec.apply(
            &mut mgr.meta,
            Primitive::AddCode {
                decl: d,
                text: "return self.serialNo;".into(),
            },
        )
        .unwrap();
        let mac = rec.finish();
        assert!(mgr.end_evolution().unwrap().is_consistent());

        // Replay against Truck@B via a parameter map on the type id text.
        let sb = mgr.meta.schema_by_name("B").unwrap();
        let truck = mgr.meta.type_by_name(sb, "Truck").unwrap();
        let mut params = MacroParams::new();
        params.insert(
            mgr.meta.db.resolve(car.sym()).to_string(),
            mgr.meta.db.resolve(truck.sym()).to_string(),
        );
        mgr.begin_evolution().unwrap();
        mac.replay(&mut mgr.meta, &params).unwrap();
        let out = mgr.end_evolution().unwrap();
        assert!(out.is_consistent(), "{:?}", out.violations());
        assert!(mgr
            .meta
            .attrs_of(truck)
            .iter()
            .any(|(n, _)| n == "serialNo"));
        assert_eq!(mgr.meta.decls_of(truck).len(), 1);
        // …and the replayed operation actually runs.
        let t = mgr.create_object(truck).unwrap();
        mgr.set_attr(t, "serialNo", gom_runtime::Value::Int(7))
            .unwrap();
        assert_eq!(
            mgr.call(t, "serial", &[]).unwrap(),
            gom_runtime::Value::Int(7)
        );
    }

    /// A macro that CREATES a type rebinds the fresh id in later steps.
    #[test]
    fn created_ids_are_rebound_on_replay() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema("schema A is end schema A;").unwrap();
        mgr.define_schema("schema B is end schema B;").unwrap();
        let sa = mgr.meta.schema_by_name("A").unwrap();
        let any = mgr.meta.builtins.any;
        let int = mgr.meta.builtins.int;

        mgr.begin_evolution().unwrap();
        let mut rec = MacroRecorder::new("make_tagged_type");
        let t = rec
            .apply(
                &mut mgr.meta,
                Primitive::AddType {
                    schema: sa,
                    name: "Tagged".into(),
                },
            )
            .unwrap()
            .type_id()
            .unwrap();
        rec.apply(&mut mgr.meta, Primitive::AddSubtype { sub: t, sup: any })
            .unwrap();
        rec.apply(
            &mut mgr.meta,
            Primitive::AddAttr {
                ty: t,
                name: "tag".into(),
                domain: int,
            },
        )
        .unwrap();
        let mac = rec.finish();
        assert!(mgr.end_evolution().unwrap().is_consistent());

        // Replay into schema B: the AddType creates a FRESH id; the
        // subtype/attr steps must follow it, not touch Tagged@A.
        let sb = mgr.meta.schema_by_name("B").unwrap();
        let mut params = MacroParams::new();
        params.insert(
            mgr.meta.db.resolve(sa.sym()).to_string(),
            mgr.meta.db.resolve(sb.sym()).to_string(),
        );
        mgr.begin_evolution().unwrap();
        let results = mac.replay(&mut mgr.meta, &params).unwrap();
        assert!(mgr.end_evolution().unwrap().is_consistent());
        let t2 = results[0].type_id().unwrap();
        assert_ne!(t2, t);
        assert_eq!(mgr.meta.schema_of(t2), Some(sb));
        assert_eq!(mgr.meta.attrs_of(t2).len(), 1);
        // The original is untouched.
        assert_eq!(mgr.meta.attrs_of(t).len(), 1);
        assert_eq!(mgr.meta.type_by_name(sb, "Tagged"), Some(t2));
    }

    /// Replaying a macro whose effect is inconsistent in the new context is
    /// caught at EES like any other change.
    #[test]
    fn replay_is_checked_at_ees() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema("schema A is type T is end type T; end schema A;")
            .unwrap();
        let sa = mgr.meta.schema_by_name("A").unwrap();
        let t = mgr.meta.type_by_name(sa, "T").unwrap();
        let int = mgr.meta.builtins.int;
        mgr.begin_evolution().unwrap();
        let mut rec = MacroRecorder::new("declare_without_code");
        rec.apply(
            &mut mgr.meta,
            Primitive::AddDecl {
                ty: t,
                op: "ghost".into(),
                result: int,
                args: vec![],
            },
        )
        .unwrap();
        let mac = rec.finish();
        // recording session is inconsistent (no code) — roll it back
        assert!(!mgr.end_evolution().unwrap().is_consistent());
        mgr.rollback_evolution().unwrap();
        // replays hit the same wall
        mgr.begin_evolution().unwrap();
        mac.replay(&mut mgr.meta, &MacroParams::new()).unwrap();
        assert!(!mgr.end_evolution().unwrap().is_consistent());
        mgr.rollback_evolution().unwrap();
    }
}
