//! Baseline schema managers for comparison (paper §1's survey).
//!
//! * [`fixed_check`] — an **Orion-style fixed schema manager** (Banerjee et
//!   al. \[2\]): the invariants are hard-coded procedures over the meta
//!   model. It is faster than the deductive checker by a constant factor
//!   but *closed*: adding a new notion of consistency means editing and
//!   recompiling this module, which is precisely the inflexibility the
//!   paper argues against. The benchmark `declarative_vs_fixed` measures
//!   the price of flexibility.
//! * [`CurePolicy`] — the **O2 vs ENCORE** cure debate (Zicari \[25\] vs
//!   Skarra & Zdonik \[22\]): repair schema/object inconsistency by
//!   *immediate conversion* of all instances, or by *masking* every access.
//!   [`cure_add_attr`] performs the same logical change (`age` →
//!   `birthday`-style attribute replacement) under either policy so the
//!   crossover can be measured.

use gom_core::SchemaManager;
use gom_deductive::FxHashSet;
use gom_model::{MetaModel, TypeId};
use gom_runtime::{Value, ValueSource};

/// Procedural (hard-coded) consistency check implementing the same core
/// invariants as the declarative catalog. Returns violation descriptions.
pub fn fixed_check(m: &MetaModel) -> Vec<String> {
    let mut out = Vec::new();
    let db = &m.db;
    let cat = &m.cat;

    // --- collect extensions once -------------------------------------------------
    let types: Vec<(TypeId, String, gom_deductive::Const)> = db
        .relation(cat.ty)
        .iter()
        .map(|t| {
            (
                TypeId(t.get(0).as_sym().expect("tid")),
                db.resolve(t.get(1).as_sym().expect("name")).to_string(),
                t.get(2),
            )
        })
        .collect();
    let type_ids: FxHashSet<TypeId> = types.iter().map(|(t, _, _)| *t).collect();
    let schema_ids: FxHashSet<gom_deductive::Const> =
        db.relation(cat.schema).iter().map(|t| t.get(0)).collect();

    // --- uniqueness: type names per schema ----------------------------------------
    {
        let mut seen: std::collections::BTreeMap<(String, String), TypeId> = Default::default();
        for (tid, name, sid) in &types {
            let key = (name.clone(), format!("{:?}", sid));
            if let Some(prev) = seen.insert(key, *tid) {
                if prev != *tid {
                    out.push(format!("duplicate type name `{name}` within one schema"));
                }
            }
        }
    }

    // --- referential integrity ----------------------------------------------------
    for (_, name, sid) in &types {
        if !schema_ids.contains(sid) {
            out.push(format!("type `{name}` references a missing schema"));
        }
    }
    for t in db.relation(cat.attr).iter() {
        let ty = TypeId(t.get(0).as_sym().expect("tid"));
        let dom = TypeId(t.get(2).as_sym().expect("tid"));
        if !type_ids.contains(&ty) {
            out.push(format!(
                "attribute {} on missing type",
                t.display(db.interner())
            ));
        }
        if !type_ids.contains(&dom) {
            out.push(format!(
                "attribute {} has undefined domain",
                t.display(db.interner())
            ));
        }
    }
    let mut decl_ids: FxHashSet<gom_deductive::Const> = FxHashSet::default();
    for t in db.relation(cat.decl).iter() {
        decl_ids.insert(t.get(0));
        for (col, what) in [(1usize, "receiver"), (3, "result")] {
            let ty = TypeId(t.get(col).as_sym().expect("tid"));
            if !type_ids.contains(&ty) {
                out.push(format!(
                    "declaration {} has undefined {what}",
                    t.display(db.interner())
                ));
            }
        }
    }
    for t in db.relation(cat.argdecl).iter() {
        if !decl_ids.contains(&t.get(0)) {
            out.push(format!(
                "argument declaration {} on missing declaration",
                t.display(db.interner())
            ));
        }
        let ty = TypeId(t.get(2).as_sym().expect("tid"));
        if !type_ids.contains(&ty) {
            out.push(format!(
                "argument {} has undefined type",
                t.display(db.interner())
            ));
        }
    }
    // decl-has-code + code-decl-ref + 1:1
    let mut decls_with_code: FxHashSet<gom_deductive::Const> = FxHashSet::default();
    for t in db.relation(cat.code).iter() {
        let d = t.get(2);
        if !decl_ids.contains(&d) {
            out.push(format!(
                "code {} implements a missing declaration",
                t.display(db.interner())
            ));
        }
        if !decls_with_code.insert(d) {
            out.push(format!(
                "declaration {} has more than one implementation",
                d.display(db.interner())
            ));
        }
    }
    for d in &decl_ids {
        if !decls_with_code.contains(d) {
            out.push(format!(
                "declaration {} has no implementation",
                d.display(db.interner())
            ));
        }
    }

    // --- subtype graph: references, acyclicity, rootedness -------------------------
    let mut supers: std::collections::BTreeMap<TypeId, Vec<TypeId>> = Default::default();
    for t in db.relation(cat.subtyp).iter() {
        let sub = TypeId(t.get(0).as_sym().expect("tid"));
        let sup = TypeId(t.get(1).as_sym().expect("tid"));
        for side in [sub, sup] {
            if !type_ids.contains(&side) {
                out.push(format!(
                    "subtype edge {} references a missing type",
                    t.display(db.interner())
                ));
            }
        }
        supers.entry(sub).or_default().push(sup);
    }
    // DFS cycle check + reachability of ANY
    let any = m.builtins.any;
    for &start in &type_ids {
        let mut stack = vec![start];
        let mut seen: FxHashSet<TypeId> = FxHashSet::default();
        let mut reaches_any = start == any;
        while let Some(x) = stack.pop() {
            for &s in supers.get(&x).map_or(&[][..], Vec::as_slice) {
                if s == start {
                    out.push(format!(
                        "subtype cycle through `{}`",
                        m.type_name(start).unwrap_or_default()
                    ));
                    continue;
                }
                if s == any {
                    reaches_any = true;
                }
                if seen.insert(s) {
                    stack.push(s);
                }
            }
        }
        if !reaches_any {
            out.push(format!(
                "type `{}` is not rooted in ANY",
                m.type_name(start).unwrap_or_default()
            ));
        }
    }

    // --- inherited attribute uniqueness ----------------------------------------------
    for &t in &type_ids {
        let mut domains: std::collections::BTreeMap<String, TypeId> = Default::default();
        for (a, d) in m.attrs_inherited(t) {
            if let Some(prev) = domains.insert(a.clone(), d) {
                if prev != d {
                    out.push(format!(
                        "type `{}` inherits attribute `{a}` with two domains",
                        m.type_name(t).unwrap_or_default()
                    ));
                }
            }
        }
    }

    // --- contravariance -----------------------------------------------------------------
    for t in db.relation(cat.declref).iter() {
        let refining = gom_model::DeclId(t.get(0).as_sym().expect("did"));
        let refined = gom_model::DeclId(t.get(1).as_sym().expect("did"));
        let (Some((rc, rn, rr)), Some((oc, on, or_))) =
            (m.decl_info(refining), m.decl_info(refined))
        else {
            continue; // dangling edge already reported
        };
        if rn != on {
            out.push(format!("refinement renames `{on}` to `{rn}`"));
        }
        let subtype_of =
            |a: TypeId, b: TypeId| -> bool { a == b || m.supertypes_transitive(a).contains(&b) };
        if !subtype_of(rc, oc) {
            out.push(format!("refinement of `{on}` on a non-subtype receiver"));
        }
        if !subtype_of(rr, or_) {
            out.push(format!("refinement of `{on}` widens the result type"));
        }
        let a1 = m.args_of(refined);
        let a2 = m.args_of(refining);
        if a1.len() != a2.len() {
            out.push(format!("refinement of `{on}` changes the argument count"));
        }
        for ((_, t1), (_, t2)) in a1.iter().zip(a2.iter()) {
            if !subtype_of(*t1, *t2) {
                out.push(format!(
                    "refinement of `{on}` violates contravariance on a parameter"
                ));
            }
        }
    }

    // --- schema/object consistency -----------------------------------------------------
    let mut phrep_types: FxHashSet<TypeId> = FxHashSet::default();
    for t in db.relation(cat.phrep).iter() {
        let ty = TypeId(t.get(1).as_sym().expect("tid"));
        if !type_ids.contains(&ty) {
            out.push(format!(
                "physical representation {} of a missing type",
                t.display(db.interner())
            ));
        }
        if !phrep_types.insert(ty) {
            out.push(format!(
                "type `{}` has two physical representations",
                m.type_name(ty).unwrap_or_default()
            ));
        }
    }
    for t in db.relation(cat.phrep).iter() {
        let ty = TypeId(t.get(1).as_sym().expect("tid"));
        let clid = gom_model::PhRepId(t.get(0).as_sym().expect("clid"));
        let slots = m.slots_of(clid);
        for (a, ta) in m.attrs_inherited(ty) {
            match slots.iter().find(|(n, _)| *n == a) {
                None => out.push(format!(
                    "representation of `{}` lacks a slot for `{a}`",
                    m.type_name(ty).unwrap_or_default()
                )),
                Some((_, val)) => {
                    // slot value must be the representation of the domain
                    let dom_rep = m.phrep_of(ta);
                    if dom_rep != Some(*val) {
                        out.push(format!(
                            "slot `{a}` of `{}` refers to the wrong representation",
                            m.type_name(ty).unwrap_or_default()
                        ));
                    }
                }
            }
        }
        for (a, _) in &slots {
            if !m.attrs_inherited(ty).iter().any(|(n, _)| n == a) {
                out.push(format!(
                    "stray slot `{a}` on `{}`",
                    m.type_name(ty).unwrap_or_default()
                ));
            }
        }
    }

    out.sort();
    out
}

/// A schema manager that checks consistency **immediately after every
/// primitive operation** and refuses any operation leaving the schema
/// inconsistent — the behaviour of fixed-operation systems the paper
/// argues against in §2.1:
///
/// > "allowing only schema evolution operations which guarantee in all
/// > situations the consistency of the resulting modified schema results
/// > in an unacceptable restriction … no such schema evolution operation
/// > (for adding an argument to an existing and used operation) which
/// > preserves consistency in all cases can be defined."
///
/// The integration test `evolution_decoupling` demonstrates that argument
/// addition is *impossible* under this manager and routine under the
/// session-based one.
pub struct ImmediateCheckManager {
    /// The wrapped session-based manager (used only as a database holder).
    pub inner: SchemaManager,
}

impl ImmediateCheckManager {
    /// Wrap a consistent manager.
    pub fn new(inner: SchemaManager) -> Self {
        ImmediateCheckManager { inner }
    }

    /// Apply one primitive; if the result is inconsistent, revert it and
    /// refuse.
    pub fn apply(
        &mut self,
        p: &crate::primitive::Primitive,
    ) -> Result<crate::primitive::PrimitiveResult, String> {
        self.inner.begin_evolution().map_err(|e| e.to_string())?;
        let result = match crate::primitive::apply(&mut self.inner.meta, p) {
            Ok(r) => r,
            Err(e) => {
                self.inner.rollback_evolution().ok();
                return Err(e.to_string());
            }
        };
        match self.inner.end_evolution().map_err(|e| e.to_string())? {
            gom_core::EvolutionOutcome::Consistent(_) => Ok(result),
            gom_core::EvolutionOutcome::Inconsistent(violations) => {
                let msgs: Vec<String> = violations
                    .iter()
                    .map(|v| v.render(&self.inner.meta.db))
                    .collect();
                self.inner.rollback_evolution().map_err(|e| e.to_string())?;
                Err(format!("operation refused: {}", msgs.join("; ")))
            }
        }
    }
}

/// Inconsistency cures for the schema/object gap after an attribute change.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CurePolicy {
    /// O2-style: convert every instance immediately (pay once, up front).
    ImmediateConversion,
    /// ENCORE-style: leave instances untouched; mask accesses through
    /// version substitution (pay per access).
    Masking,
}

/// Perform "add attribute `attr` to `ty` with default `default`" under the
/// chosen cure. Under conversion the type itself is extended and all
/// instances converted; under masking a *new type version* carrying the
/// attribute is created in a new schema version and the old instances are
/// made substitutable via fashion. Returns the type whose instances should
/// now be accessed (the same type for conversion, the new version for
/// masking).
pub fn cure_add_attr(
    mgr: &mut SchemaManager,
    ty: TypeId,
    attr: &str,
    domain: TypeId,
    default: Value,
    policy: CurePolicy,
) -> Result<TypeId, Box<dyn std::error::Error>> {
    match policy {
        CurePolicy::ImmediateConversion => {
            mgr.begin_evolution()?;
            mgr.meta.add_attr(ty, attr, domain)?;
            mgr.runtime.convert_add_slot(
                &mut mgr.meta,
                ty,
                attr,
                domain,
                ValueSource::Default(default),
            )?;
            let out = mgr.end_evolution()?;
            if !out.is_consistent() {
                let msgs: Vec<String> = out
                    .violations()
                    .iter()
                    .map(|v| v.render(&mgr.meta.db))
                    .collect();
                mgr.rollback_evolution()?;
                return Err(msgs.join("; ").into());
            }
            Ok(ty)
        }
        CurePolicy::Masking => {
            crate::versioning::install(mgr)?;
            let old_schema = mgr.meta.schema_of(ty).ok_or("type has no schema")?;
            let old_name = mgr.meta.type_name(ty).ok_or("type has no name")?;
            let schema_name = {
                let rel = mgr
                    .meta
                    .db
                    .relation(mgr.meta.cat.schema)
                    .select(&[(0, old_schema.constant())]);
                let mut rel = rel;
                let sym = rel
                    .next()
                    .and_then(|t| t.get(1).as_sym())
                    .ok_or("schema has no name")?;
                mgr.meta.db.resolve(sym).to_string()
            };
            mgr.begin_evolution()?;
            let new_schema_name = format!("{schema_name}_v2_{attr}");
            let new_schema = mgr.meta.new_schema(&new_schema_name)?;
            let new_ty = crate::complex::copy_type_into(mgr, ty, new_schema, &old_name)
                .map_err(|e| e.to_string())?;
            let any = mgr.meta.builtins.any;
            mgr.meta.add_subtype(new_ty, any)?;
            mgr.meta.add_attr(new_ty, attr, domain)?;
            crate::versioning::record_schema_evolution(mgr, old_schema, new_schema)?;
            crate::versioning::record_type_evolution(mgr, ty, new_ty)?;
            // Fashion: old instances substitute for the new version. Every
            // attribute of the new version must be redirected; the new
            // attribute reads the default and is read-only on old objects.
            let default_src = match &default {
                Value::Int(n) => n.to_string(),
                Value::Float(x) => format!("{x:?}"),
                Value::Str(s) => format!("\"{s}\""),
                other => return Err(format!("unsupported default {other}").into()),
            };
            let mut fashion =
                format!("fashion {old_name}@{schema_name} as {old_name}@{new_schema_name} where\n");
            for (a, _) in mgr.meta.attrs_inherited(ty) {
                fashion.push_str(&format!("  {a} : -> ANY is self.{a};\n"));
                fashion.push_str(&format!(
                    "  {a} : <- ANY is begin self.{a} := value; end;\n"
                ));
            }
            fashion.push_str(&format!("  {attr} : -> ANY is {default_src};\n"));
            fashion.push_str("end fashion;\n");
            mgr.analyzer
                .lower_source(&mut mgr.meta, &fashion)
                .map_err(|e| e.to_string())?;
            let out = mgr.end_evolution()?;
            if !out.is_consistent() {
                let msgs: Vec<String> = out
                    .violations()
                    .iter()
                    .map(|v| v.render(&mgr.meta.db))
                    .collect();
                mgr.rollback_evolution()?;
                return Err(msgs.join("; ").into());
            }
            Ok(new_ty)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gom_analyzer::car_schema::CAR_SCHEMA_SRC;

    #[test]
    fn fixed_check_agrees_with_declarative_on_consistent_schema() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
        assert!(mgr.check().unwrap().is_empty());
        assert!(fixed_check(&mgr.meta).is_empty());
    }

    #[test]
    fn fixed_check_agrees_on_violations() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
        let s = mgr.meta.schema_by_name("CarSchema").unwrap();
        let car = mgr.meta.type_by_name(s, "Car").unwrap();
        // Same scenario as the paper's §3.5: add attribute, no slot.
        mgr.create_object(car).unwrap();
        mgr.begin_evolution().unwrap();
        let string = mgr.meta.builtins.string;
        mgr.meta.add_attr(car, "fuelType", string).unwrap();
        let declarative = mgr.meta.db.check().unwrap();
        let fixed = fixed_check(&mgr.meta);
        assert!(!declarative.is_empty());
        assert!(
            fixed.iter().any(|v| v.contains("lacks a slot")),
            "{fixed:?}"
        );
        mgr.rollback_evolution().unwrap();
    }

    #[test]
    fn fixed_check_cannot_express_new_policies() {
        // The point of the comparison: single-inheritance is one line for
        // the declarative manager and a code change for the fixed one.
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema(
            "schema S is
               type A is end type A;
               type B is end type B;
               type C supertype A, B is end type C;
             end schema S;",
        )
        .unwrap();
        mgr.add_consistency(gom_core::SINGLE_INHERITANCE_CONSTRAINT)
            .unwrap();
        let declarative = mgr.check().unwrap();
        assert!(declarative
            .iter()
            .any(|v| v.constraint == "single_inheritance"));
        // fixed_check has no such invariant and reports nothing.
        assert!(fixed_check(&mgr.meta).is_empty());
    }

    #[test]
    fn cures_produce_equivalent_observable_values() {
        for policy in [CurePolicy::ImmediateConversion, CurePolicy::Masking] {
            let mut mgr = SchemaManager::new().unwrap();
            mgr.define_schema(
                "schema S is type Car is [ milage : float; ] end type Car; end schema S;",
            )
            .unwrap();
            let s = mgr.meta.schema_by_name("S").unwrap();
            let car = mgr.meta.type_by_name(s, "Car").unwrap();
            let oid = mgr.create_object(car).unwrap();
            let string = mgr.meta.builtins.string;
            let _target = cure_add_attr(
                &mut mgr,
                car,
                "fuelType",
                string,
                Value::Str("unleaded".into()),
                policy,
            )
            .unwrap();
            // The old object answers the new attribute either way.
            assert_eq!(
                mgr.get_attr(oid, "fuelType").unwrap(),
                Value::Str("unleaded".into()),
                "policy {policy:?}"
            );
            assert!(mgr.check().unwrap().is_empty(), "policy {policy:?}");
        }
    }
}
