//! # gom-evolution — schema evolution operations, versioning, baselines
//!
//! Everything "around" the schema manager that the paper uses to
//! demonstrate flexibility:
//!
//! * [`primitive`] — the complete set of primitive evolution operations
//!   (§2.1: "allow any schema modification"), consistency-unchecked by
//!   design;
//! * [`complex`] — user-definable complex operations: argument addition
//!   with call-site discovery (§4.2), Bocionek's five type-deletion
//!   semantics (§1), type copying for versioning, renaming, hierarchy
//!   restructuring;
//! * [`versioning`] — the §4.1 GOM-V1.0 extension: schema/type version
//!   DAGs and `fashion` masking, installed purely as consistency-control
//!   definitions;
//! * [`baselines`] — comparison systems: an Orion-style fixed procedural
//!   checker and the O2-conversion vs ENCORE-masking cure policies.

#![warn(missing_docs)]

pub mod baselines;
pub mod complex;
pub mod diff;
pub mod macros;
pub mod primitive;
pub mod versioning;

pub use baselines::{cure_add_attr, fixed_check, CurePolicy};
pub use complex::{
    add_argument, add_argument_plan, copy_type_into, delete_type, pull_up_attr, rename_type,
    replace_code_text, AddArgumentReport, DeleteTypeReport, DeleteTypeSemantics, EvolError,
};
pub use diff::{apply_diff, diff_schemas, render_diff, DiffStep};
pub use macros::{EvolutionMacro, MacroParams, MacroRecorder};
pub use primitive::{apply, apply_all, Primitive, PrimitiveResult};
pub use versioning::{
    install as install_versioning, record_schema_evolution, record_type_evolution, VERSIONING_DEFS,
};
