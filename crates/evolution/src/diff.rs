//! Schema differencing: computing an evolution script between two schema
//! versions.
//!
//! One of the "advanced tools supporting the user during schema evolution"
//! the paper's introduction calls for: given two schemas (say, `CarSchema`
//! and its successor version), [`diff_schemas`] computes the structural
//! edit script — matched by names, the way a user thinks about the change —
//! and [`apply_diff`] executes it against the old schema inside the
//! caller's evolution session (so EES still decides consistency, and the
//! repair machinery handles what the script alone cannot, e.g. object
//! conversion).

use gom_core::SchemaManager;
use gom_model::{MetaModel, SchemaId, TypeId};
use std::collections::BTreeMap;
use std::fmt;

/// One step of a schema edit script (all references by name, as a user
/// would write them).
#[derive(Clone, Debug, PartialEq)]
pub enum DiffStep {
    /// Create a type.
    AddType {
        /// Type name.
        name: String,
    },
    /// Delete a type (with its own attributes/operations).
    DeleteType {
        /// Type name.
        name: String,
    },
    /// Add a direct supertype edge.
    AddSupertype {
        /// Subtype name.
        ty: String,
        /// Supertype name.
        sup: String,
    },
    /// Remove a direct supertype edge.
    DeleteSupertype {
        /// Subtype name.
        ty: String,
        /// Supertype name.
        sup: String,
    },
    /// Add an attribute.
    AddAttr {
        /// Owning type.
        ty: String,
        /// Attribute name.
        name: String,
        /// Domain type name.
        domain: String,
    },
    /// Remove an attribute.
    DeleteAttr {
        /// Owning type.
        ty: String,
        /// Attribute name.
        name: String,
    },
    /// Change an attribute's domain.
    ChangeAttrDomain {
        /// Owning type.
        ty: String,
        /// Attribute name.
        name: String,
        /// Old domain type name.
        from: String,
        /// New domain type name.
        to: String,
    },
    /// Add an operation (with implementation when the target has one).
    AddOp {
        /// Receiver type.
        ty: String,
        /// Operation name.
        op: String,
        /// Result type name.
        result: String,
        /// Argument type names.
        args: Vec<String>,
        /// Implementation text.
        code: Option<String>,
    },
    /// Remove an operation (with argument declarations and code).
    DeleteOp {
        /// Receiver type.
        ty: String,
        /// Operation name.
        op: String,
    },
    /// Replace an operation's implementation text.
    ChangeCode {
        /// Receiver type.
        ty: String,
        /// Operation name.
        op: String,
        /// New implementation text.
        code: String,
    },
}

impl fmt::Display for DiffStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffStep::AddType { name } => write!(f, "add type {name}"),
            DiffStep::DeleteType { name } => write!(f, "delete type {name}"),
            DiffStep::AddSupertype { ty, sup } => write!(f, "make {ty} a subtype of {sup}"),
            DiffStep::DeleteSupertype { ty, sup } => {
                write!(f, "remove subtype edge {ty} <: {sup}")
            }
            DiffStep::AddAttr { ty, name, domain } => {
                write!(f, "add attribute {ty}.{name} : {domain}")
            }
            DiffStep::DeleteAttr { ty, name } => write!(f, "remove attribute {ty}.{name}"),
            DiffStep::ChangeAttrDomain { ty, name, from, to } => {
                write!(f, "change domain of {ty}.{name}: {from} -> {to}")
            }
            DiffStep::AddOp {
                ty,
                op,
                result,
                args,
                ..
            } => {
                write!(f, "declare {ty}.{op} : {} -> {result}", args.join(", "))
            }
            DiffStep::DeleteOp { ty, op } => write!(f, "drop operation {ty}.{op}"),
            DiffStep::ChangeCode { ty, op, .. } => {
                write!(f, "replace implementation of {ty}.{op}")
            }
        }
    }
}

fn type_name_of(m: &MetaModel, t: TypeId) -> String {
    m.type_name(t).unwrap_or_else(|| "?".to_string())
}

/// Structural signature of one type, keyed by names.
struct TypeSig {
    supers: Vec<String>,
    attrs: BTreeMap<String, String>, // name -> domain name
    ops: BTreeMap<String, (String, Vec<String>, Option<String>)>, // op -> (result, args, code)
}

fn signature(m: &MetaModel, t: TypeId) -> TypeSig {
    let supers = m
        .supertypes(t)
        .into_iter()
        .filter(|&s| s != m.builtins.any)
        .map(|s| type_name_of(m, s))
        .collect();
    let attrs = m
        .attrs_of(t)
        .into_iter()
        .map(|(a, d)| (a, type_name_of(m, d)))
        .collect();
    let ops = m
        .decls_of(t)
        .into_iter()
        .map(|(d, op, r)| {
            let args = m
                .args_of(d)
                .into_iter()
                .map(|(_, at)| type_name_of(m, at))
                .collect();
            let code = m.code_of(d).map(|(_, text)| text);
            (op, (type_name_of(m, r), args, code))
        })
        .collect();
    TypeSig { supers, attrs, ops }
}

/// Compute the edit script transforming `from` into `to` (names matched).
pub fn diff_schemas(m: &MetaModel, from: SchemaId, to: SchemaId) -> Vec<DiffStep> {
    let mut steps = Vec::new();
    let names = |s: SchemaId| -> BTreeMap<String, TypeId> {
        m.types_of_schema(s)
            .into_iter()
            .map(|t| (type_name_of(m, t), t))
            .collect()
    };
    let from_types = names(from);
    let to_types = names(to);

    // New types first (so later steps can reference them).
    for name in to_types.keys() {
        if !from_types.contains_key(name) {
            steps.push(DiffStep::AddType { name: name.clone() });
        }
    }
    // Per-type structural diffs.
    for (name, &to_t) in &to_types {
        let to_sig = signature(m, to_t);
        let from_sig = from_types
            .get(name)
            .map(|&t| signature(m, t))
            .unwrap_or_else(|| TypeSig {
                supers: Vec::new(),
                attrs: BTreeMap::new(),
                ops: BTreeMap::new(),
            });
        for sup in &to_sig.supers {
            if !from_sig.supers.contains(sup) {
                steps.push(DiffStep::AddSupertype {
                    ty: name.clone(),
                    sup: sup.clone(),
                });
            }
        }
        for sup in &from_sig.supers {
            if !to_sig.supers.contains(sup) {
                steps.push(DiffStep::DeleteSupertype {
                    ty: name.clone(),
                    sup: sup.clone(),
                });
            }
        }
        for (a, dom) in &to_sig.attrs {
            match from_sig.attrs.get(a) {
                None => steps.push(DiffStep::AddAttr {
                    ty: name.clone(),
                    name: a.clone(),
                    domain: dom.clone(),
                }),
                Some(old) if old != dom => steps.push(DiffStep::ChangeAttrDomain {
                    ty: name.clone(),
                    name: a.clone(),
                    from: old.clone(),
                    to: dom.clone(),
                }),
                _ => {}
            }
        }
        for a in from_sig.attrs.keys() {
            if !to_sig.attrs.contains_key(a) {
                steps.push(DiffStep::DeleteAttr {
                    ty: name.clone(),
                    name: a.clone(),
                });
            }
        }
        for (op, (result, args, code)) in &to_sig.ops {
            match from_sig.ops.get(op) {
                None => steps.push(DiffStep::AddOp {
                    ty: name.clone(),
                    op: op.clone(),
                    result: result.clone(),
                    args: args.clone(),
                    code: code.clone(),
                }),
                Some((old_r, old_args, old_code)) => {
                    if old_r != result || old_args != args {
                        // signature change = drop + re-add
                        steps.push(DiffStep::DeleteOp {
                            ty: name.clone(),
                            op: op.clone(),
                        });
                        steps.push(DiffStep::AddOp {
                            ty: name.clone(),
                            op: op.clone(),
                            result: result.clone(),
                            args: args.clone(),
                            code: code.clone(),
                        });
                    } else if old_code != code {
                        if let Some(c) = code {
                            steps.push(DiffStep::ChangeCode {
                                ty: name.clone(),
                                op: op.clone(),
                                code: c.clone(),
                            });
                        }
                    }
                }
            }
        }
        for op in from_sig.ops.keys() {
            if !to_sig.ops.contains_key(op) {
                steps.push(DiffStep::DeleteOp {
                    ty: name.clone(),
                    op: op.clone(),
                });
            }
        }
    }
    // Dropped types last.
    for name in from_types.keys() {
        if !to_types.contains_key(name) {
            steps.push(DiffStep::DeleteType { name: name.clone() });
        }
    }
    steps
}

/// Apply an edit script to `schema` (types matched by name; domains resolve
/// against the schema being edited, then the built-ins). Runs inside the
/// caller's evolution session. Returns the number of applied steps.
pub fn apply_diff(
    mgr: &mut SchemaManager,
    schema: SchemaId,
    steps: &[DiffStep],
) -> Result<usize, crate::complex::EvolError> {
    use crate::complex::EvolError;
    let resolve = |mgr: &SchemaManager, name: &str| -> Result<TypeId, EvolError> {
        mgr.meta
            .type_by_name(schema, name)
            .or_else(|| mgr.meta.builtins.by_name(name))
            .ok_or_else(|| EvolError::Blocked(vec![format!("cannot resolve type `{name}`")]))
    };
    let mut applied = 0;
    for step in steps {
        match step {
            DiffStep::AddType { name } => {
                let t = mgr.meta.new_type(schema, name)?;
                mgr.meta.add_subtype(t, mgr.meta.builtins.any)?;
            }
            DiffStep::DeleteType { name } => {
                let t = resolve(mgr, name)?;
                crate::complex::delete_type(mgr, t, crate::complex::DeleteTypeSemantics::Cascade)?;
            }
            DiffStep::AddSupertype { ty, sup } => {
                let t = resolve(mgr, ty)?;
                let s = resolve(mgr, sup)?;
                mgr.meta.add_subtype(t, s)?;
                // A real supertype replaces the default ANY rooting.
                let any = mgr.meta.builtins.any;
                let edge = gom_deductive::Tuple::from(vec![t.constant(), any.constant()]);
                mgr.meta.db.remove(mgr.meta.cat.subtyp, &edge)?;
            }
            DiffStep::DeleteSupertype { ty, sup } => {
                let t = resolve(mgr, ty)?;
                let s = resolve(mgr, sup)?;
                let edge = gom_deductive::Tuple::from(vec![t.constant(), s.constant()]);
                mgr.meta.db.remove(mgr.meta.cat.subtyp, &edge)?;
                // keep rooted
                if mgr.meta.supertypes(t).is_empty() {
                    let any = mgr.meta.builtins.any;
                    mgr.meta.add_subtype(t, any)?;
                }
            }
            DiffStep::AddAttr { ty, name, domain } => {
                let t = resolve(mgr, ty)?;
                let d = resolve(mgr, domain)?;
                mgr.meta.add_attr(t, name, d)?;
            }
            DiffStep::DeleteAttr { ty, name } => {
                let t = resolve(mgr, ty)?;
                mgr.meta.remove_attr(t, name)?;
            }
            DiffStep::ChangeAttrDomain { ty, name, to, .. } => {
                let t = resolve(mgr, ty)?;
                let d = resolve(mgr, to)?;
                mgr.meta.remove_attr(t, name)?;
                mgr.meta.add_attr(t, name, d)?;
            }
            DiffStep::AddOp {
                ty,
                op,
                result,
                args,
                code,
            } => {
                let t = resolve(mgr, ty)?;
                let r = resolve(mgr, result)?;
                let d = mgr.meta.new_decl(t, op, r)?;
                for (i, a) in args.iter().enumerate() {
                    let at = resolve(mgr, a)?;
                    mgr.meta.add_argdecl(d, (i + 1) as i64, at)?;
                }
                if let Some(c) = code {
                    mgr.meta.new_code(d, c)?;
                }
            }
            DiffStep::DeleteOp { ty, op } => {
                let t = resolve(mgr, ty)?;
                if let Some((d, _, _)) = mgr.meta.decls_of(t).into_iter().find(|(_, n, _)| n == op)
                {
                    crate::complex::delete_decl_cascade_public(&mut mgr.meta, d);
                }
            }
            DiffStep::ChangeCode { ty, op, code } => {
                let t = resolve(mgr, ty)?;
                if let Some((d, _, _)) = mgr.meta.decls_of(t).into_iter().find(|(_, n, _)| n == op)
                {
                    if let Some((cid, _)) = mgr.meta.code_of(d) {
                        crate::complex::replace_code_text(&mut mgr.meta, cid, code)?;
                    } else {
                        mgr.meta.new_code(d, code)?;
                    }
                }
            }
        }
        applied += 1;
    }
    Ok(applied)
}

/// Convenience wrapper returning displayable lines.
pub fn render_diff(steps: &[DiffStep]) -> Vec<String> {
    steps.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_versions() -> (SchemaManager, SchemaId, SchemaId) {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema(
            "schema V1 is
               type Person is
                 [ name : string;
                   age  : int; ]
               end type Person;
               type Car is
                 [ owner : Person;
                   milage : float; ]
               end type Car;
             end schema V1;",
        )
        .unwrap();
        mgr.define_schema(
            "schema V2 is
               type Person is
                 [ name     : string;
                   birthday : date; ]
               end type Person;
               type Car is
                 [ owner : Person@V2;
                   milage : float;
                   fuelType : string; ]
               end type Car;
               type ElectricCar supertype Car is
                 [ range : float; ]
               end type ElectricCar;
             end schema V2;",
        )
        .unwrap();
        let v1 = mgr.meta.schema_by_name("V1").unwrap();
        let v2 = mgr.meta.schema_by_name("V2").unwrap();
        (mgr, v1, v2)
    }

    #[test]
    fn diff_detects_all_change_kinds() {
        let (mgr, v1, v2) = two_versions();
        let steps = diff_schemas(&mgr.meta, v1, v2);
        let rendered = render_diff(&steps);
        let has = |needle: &str| rendered.iter().any(|l| l.contains(needle));
        assert!(has("add type ElectricCar"), "{rendered:?}");
        assert!(has("add attribute Car.fuelType : string"), "{rendered:?}");
        assert!(has("add attribute Person.birthday : date"), "{rendered:?}");
        assert!(has("remove attribute Person.age"), "{rendered:?}");
        assert!(has("make ElectricCar a subtype of Car"), "{rendered:?}");
        assert!(
            has("add attribute ElectricCar.range : float"),
            "{rendered:?}"
        );
    }

    #[test]
    fn applying_the_diff_makes_the_schemas_structurally_equal() {
        let (mut mgr, v1, v2) = two_versions();
        let steps = diff_schemas(&mgr.meta, v1, v2);
        mgr.begin_evolution().unwrap();
        let n = apply_diff(&mut mgr, v1, &steps).unwrap();
        assert_eq!(n, steps.len());
        let out = mgr.end_evolution().unwrap();
        assert!(
            out.is_consistent(),
            "{:?}",
            out.violations()
                .iter()
                .map(|v| v.render(&mgr.meta.db))
                .collect::<Vec<_>>()
        );
        // Fixed point: re-diffing yields only the residual cross-schema
        // domain difference (Car.owner points at Person@V2 in V2 but at the
        // local Person in the edited V1 — names match, so nothing remains).
        let residual = diff_schemas(&mgr.meta, v1, v2);
        assert!(
            residual.is_empty(),
            "residual: {:?}",
            render_diff(&residual)
        );
    }

    #[test]
    fn diff_of_identical_schemas_is_empty() {
        let (mgr, v1, _) = two_versions();
        assert!(diff_schemas(&mgr.meta, v1, v1).is_empty());
    }

    #[test]
    fn diff_detects_code_changes() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema(
            "schema A is
               type T is
               operations
                 declare f : || -> int;
               implementation
                 define f is begin return 1; end define f;
               end type T;
             end schema A;
             schema B is
               type T is
               operations
                 declare f : || -> int;
               implementation
                 define f is begin return 2; end define f;
               end type T;
             end schema B;",
        )
        .unwrap();
        let a = mgr.meta.schema_by_name("A").unwrap();
        let b = mgr.meta.schema_by_name("B").unwrap();
        let steps = diff_schemas(&mgr.meta, a, b);
        assert_eq!(steps.len(), 1);
        assert!(matches!(steps[0], DiffStep::ChangeCode { .. }));
        // Apply and verify behaviour follows.
        mgr.begin_evolution().unwrap();
        apply_diff(&mut mgr, a, &steps).unwrap();
        assert!(mgr.end_evolution().unwrap().is_consistent());
        let t = mgr.meta.type_by_name(a, "T").unwrap();
        let o = mgr.create_object(t).unwrap();
        assert_eq!(mgr.call(o, "f", &[]).unwrap(), gom_runtime::Value::Int(2));
    }
}
