//! Epoch-based snapshot publication.
//!
//! The writer (the single evolution session) publishes an immutable
//! [`Snapshot`] at every commit point; readers never see a mid-session
//! state. Publication is an epoch bump: readers poll one atomic to learn
//! that a newer snapshot exists, and only then take the (brief) slot lock
//! to clone the `Arc`. A reader holding an old `Arc` keeps a fully
//! consistent view for as long as it likes — snapshots are immutable and
//! reference-counted, so an open session never blocks a reader and a
//! reader never blocks the writer.
//!
//! Capture cost is O(#relations) `Arc` bumps: the snapshot's meta model
//! shares the writer's tuple pages copy-on-write
//! (`Database::snapshot_clone`), and the state digest is computed lazily
//! on first request ([`Snapshot::digest`]) — a commit that no client ever
//! digests never pays for the sorted dump.
//!
//! Read-only verbs (digest/stats/metrics) are served straight from the
//! shared `Arc<Snapshot>`. Queries and checks need `&mut Database`
//! (interning, fixpoint caches), so each connection materialises a
//! *private* mutable clone via [`ReaderCache::view`] — itself a CoW share,
//! refreshed only when the epoch moves and only for connections that run
//! mutable verbs.

use gom_model::MetaModel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// An immutable, consistent view of the schema base at one epoch.
pub struct Snapshot {
    /// Monotonic publication counter (0 = the state at server start).
    pub epoch: u64,
    /// Index-free, cache-free CoW share of the meta model.
    pub meta: MetaModel,
    /// Lazily computed state digest (see [`Snapshot::digest`]).
    digest: OnceLock<String>,
}

impl Snapshot {
    /// Capture the current state of `meta` as the snapshot for `epoch`.
    /// O(#relations) page shares; no tuple copies, no digest computation.
    pub fn capture(epoch: u64, meta: &MetaModel) -> Snapshot {
        Snapshot {
            epoch,
            meta: meta.snapshot_clone(),
            digest: OnceLock::new(),
        }
    }

    /// The state digest, computed on first request and cached for the
    /// snapshot's lifetime. Interner-independent, so a recovered daemon
    /// publishing the same logical state produces a bit-identical digest
    /// — and lazy computation cannot change the bytes, because the
    /// snapshot is immutable from capture on.
    pub fn digest(&self) -> &str {
        self.digest
            .get_or_init(|| self.meta.db.debug_state_digest())
    }
}

/// The publication point: one atomic epoch plus the current snapshot.
pub struct SnapshotCell {
    epoch: AtomicU64,
    slot: Mutex<Arc<Snapshot>>,
}

impl SnapshotCell {
    /// Install the initial snapshot.
    pub fn new(initial: Snapshot) -> SnapshotCell {
        SnapshotCell {
            epoch: AtomicU64::new(initial.epoch),
            slot: Mutex::new(Arc::new(initial)),
        }
    }

    /// The currently published epoch (cheap, lock-free).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publish a new snapshot. The slot is swapped before the epoch is
    /// bumped, so a reader that observes the new epoch always loads the
    /// new snapshot (a reader racing the swap may load the new snapshot
    /// with the old epoch in hand — it simply refreshes once more later,
    /// which is harmless because snapshots are immutable).
    pub fn publish(&self, snapshot: Snapshot) {
        let epoch = snapshot.epoch;
        *self.slot.lock().unwrap_or_else(PoisonError::into_inner) = Arc::new(snapshot);
        self.epoch.store(epoch, Ordering::Release);
        gom_obs::counter_add("server.epoch.publishes", 1);
        gom_obs::event("epoch.publish", &[("epoch", gom_obs::Field::U64(epoch))]);
    }

    /// Clone the current snapshot handle (brief lock, never blocked by an
    /// open session).
    pub fn load(&self) -> Arc<Snapshot> {
        self.slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// A connection's cached view of the published snapshot: the shared
/// immutable `Arc` (all read-only verbs) plus, only for connections that
/// run query/check/lint, a private mutable materialisation.
#[derive(Default)]
pub struct ReaderCache {
    shared: Option<Arc<Snapshot>>,
    private: Option<(u64, MetaModel)>,
}

impl ReaderCache {
    /// Fresh, empty cache.
    pub fn new() -> ReaderCache {
        ReaderCache::default()
    }

    /// The shared immutable snapshot for the current epoch, refreshing
    /// the `Arc` handle if the cell has published since the last call.
    /// Serves digest/stats/metrics without ever building (or refreshing)
    /// the private clone.
    pub fn snapshot(&mut self, cell: &SnapshotCell) -> &Snapshot {
        let current = cell.epoch();
        if self.shared.as_ref().map(|s| s.epoch) != Some(current) {
            self.shared = Some(cell.load());
        }
        match &self.shared {
            Some(s) => s,
            // Unreachable: the branch above always fills the handle.
            None => unreachable!("shared handle refreshed above"),
        }
    }

    /// The private mutable view of the current epoch, refreshed (as a CoW
    /// share of the shared snapshot, then made probe-ready) only when the
    /// cell has published a newer snapshot since the last call. Returns
    /// `(epoch, meta)` with `meta` privately mutable; mutations stay
    /// connection-local until the next epoch refresh discards them.
    pub fn view(&mut self, cell: &SnapshotCell) -> (u64, &mut MetaModel) {
        let current = cell.epoch();
        let stale = !matches!(&self.private, Some((epoch, _)) if *epoch == current);
        if stale {
            self.snapshot(cell);
            let snap = match &self.shared {
                Some(s) => Arc::clone(s),
                // Unreachable: `snapshot` above fills the handle.
                None => unreachable!("shared handle refreshed above"),
            };
            gom_obs::counter_add("server.reader.refreshes", 1);
            let mut meta = snap.meta.snapshot_clone();
            meta.db.prepare_reader();
            self.private = Some((snap.epoch, meta));
        }
        match &mut self.private {
            Some((epoch, meta)) => (*epoch, meta),
            // Unreachable: the branch above always fills the cache.
            None => unreachable!("reader cache refreshed above"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn model_with(name: &str) -> MetaModel {
        let mut m = MetaModel::new().expect("meta");
        m.new_schema(name).expect("schema");
        m
    }

    #[test]
    fn publish_bumps_epoch_and_swaps_snapshot() {
        let m0 = model_with("S0");
        let cell = SnapshotCell::new(Snapshot::capture(0, &m0));
        assert_eq!(cell.epoch(), 0);
        let d0 = cell.load().digest().to_string();

        let m1 = model_with("S1");
        cell.publish(Snapshot::capture(1, &m1));
        assert_eq!(cell.epoch(), 1);
        assert_ne!(cell.load().digest(), d0);
    }

    #[test]
    fn reader_cache_refreshes_only_on_epoch_change() {
        let m0 = model_with("S0");
        let cell = SnapshotCell::new(Snapshot::capture(0, &m0));
        let mut cache = ReaderCache::new();
        let (e0, meta) = cache.view(&cell);
        assert_eq!(e0, 0);
        // The private clone is queryable and mutations stay private.
        meta.new_schema("ReaderLocal").expect("schema");
        let (_, meta_again) = cache.view(&cell);
        assert!(
            meta_again.schema_by_name("ReaderLocal").is_some(),
            "no republish, no refresh"
        );

        let m1 = model_with("S1");
        cell.publish(Snapshot::capture(1, &m1));
        let (e1, meta1) = cache.view(&cell);
        assert_eq!(e1, 1);
        // The refresh replaced the private clone (reader-local edits gone).
        assert!(meta1.schema_by_name("ReaderLocal").is_none());
        assert!(meta1.schema_by_name("S1").is_some());
    }

    #[test]
    fn read_only_verbs_never_build_the_private_clone() {
        let m0 = model_with("S0");
        let cell = SnapshotCell::new(Snapshot::capture(0, &m0));
        let mut cache = ReaderCache::new();
        let d = cache.snapshot(&cell).digest().to_string();
        assert!(!d.is_empty());
        assert!(
            cache.private.is_none(),
            "digest served from the shared Arc only"
        );
        // The same shared handle is reused while the epoch stands still.
        let first = Arc::as_ptr(cache.shared.as_ref().unwrap());
        cache.snapshot(&cell);
        assert_eq!(first, Arc::as_ptr(cache.shared.as_ref().unwrap()));
    }

    #[test]
    fn an_old_arc_stays_consistent_after_publication() {
        let m0 = model_with("S0");
        let cell = SnapshotCell::new(Snapshot::capture(0, &m0));
        let old = cell.load();
        let m1 = model_with("S1");
        cell.publish(Snapshot::capture(1, &m1));
        assert_eq!(old.epoch, 0);
        assert!(old.meta.schema_by_name("S0").is_some());
        assert!(old.meta.schema_by_name("S1").is_none());
    }

    #[test]
    fn digests_of_equal_states_are_bit_identical() {
        // Two independently built models with the same logical content —
        // e.g. a daemon and its post-recovery incarnation — must digest
        // identically even though interning history differs.
        let mut a = MetaModel::new().expect("meta");
        let mut b = MetaModel::new().expect("meta");
        // Different interning order in `b`.
        b.db.intern("zzz_unrelated");
        a.new_schema("S").expect("schema");
        b.new_schema("S").expect("schema");
        // IdGen draws the same fresh ids in both (deterministic), so the
        // logical states coincide.
        let sa = Snapshot::capture(0, &a);
        let sb = Snapshot::capture(0, &b);
        assert_eq!(sa.digest(), sb.digest());
    }

    #[test]
    fn digest_is_lazy_and_stable() {
        let m = model_with("S0");
        let snap = Snapshot::capture(3, &m);
        assert!(snap.digest.get().is_none(), "not computed at capture");
        let d1 = snap.digest().to_string();
        let d2 = snap.digest().to_string();
        assert_eq!(d1, d2);
        // Matches an eager deep-clone digest of the same state.
        assert_eq!(d1, m.snapshot_clone().db.debug_state_digest());
    }
}
