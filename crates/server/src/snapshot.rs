//! Epoch-based snapshot publication.
//!
//! The writer (the single evolution session) publishes an immutable
//! [`Snapshot`] at every commit point; readers never see a mid-session
//! state. Publication is an epoch bump: readers poll one atomic to learn
//! that a newer snapshot exists, and only then take the (brief) slot lock
//! to clone the `Arc`. A reader holding an old `Arc` keeps a fully
//! consistent view for as long as it likes — snapshots are immutable and
//! reference-counted, so an open session never blocks a reader and a
//! reader never blocks the writer.
//!
//! Queries and checks need `&mut Database` (interning, fixpoint caches),
//! so each connection materialises a *private* mutable clone of the shared
//! snapshot via [`ReaderCache`], refreshed only when the epoch moves. The
//! clone cost is paid once per epoch per connection, not per request.

use gom_model::MetaModel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// An immutable, consistent view of the schema base at one epoch.
pub struct Snapshot {
    /// Monotonic publication counter (0 = the state at server start).
    pub epoch: u64,
    /// Index-free, cache-free clone of the meta model.
    pub meta: MetaModel,
    /// State digest captured at publication — interner-independent, so a
    /// recovered daemon publishing the same logical state produces a
    /// bit-identical digest.
    pub digest: String,
}

impl Snapshot {
    /// Capture the current state of `meta` as the snapshot for `epoch`.
    pub fn capture(epoch: u64, meta: &MetaModel) -> Snapshot {
        let meta = meta.snapshot_clone();
        let digest = meta.db.debug_state_digest();
        Snapshot {
            epoch,
            meta,
            digest,
        }
    }
}

/// The publication point: one atomic epoch plus the current snapshot.
pub struct SnapshotCell {
    epoch: AtomicU64,
    slot: Mutex<Arc<Snapshot>>,
}

impl SnapshotCell {
    /// Install the initial snapshot.
    pub fn new(initial: Snapshot) -> SnapshotCell {
        SnapshotCell {
            epoch: AtomicU64::new(initial.epoch),
            slot: Mutex::new(Arc::new(initial)),
        }
    }

    /// The currently published epoch (cheap, lock-free).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publish a new snapshot. The slot is swapped before the epoch is
    /// bumped, so a reader that observes the new epoch always loads the
    /// new snapshot (a reader racing the swap may load the new snapshot
    /// with the old epoch in hand — it simply refreshes once more later,
    /// which is harmless because snapshots are immutable).
    pub fn publish(&self, snapshot: Snapshot) {
        let epoch = snapshot.epoch;
        *self.slot.lock().unwrap_or_else(PoisonError::into_inner) = Arc::new(snapshot);
        self.epoch.store(epoch, Ordering::Release);
        gom_obs::counter_add("server.epoch.publishes", 1);
        gom_obs::event("epoch.publish", &[("epoch", gom_obs::Field::U64(epoch))]);
    }

    /// Clone the current snapshot handle (brief lock, never blocked by an
    /// open session).
    pub fn load(&self) -> Arc<Snapshot> {
        self.slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// A connection-private mutable materialisation of the published snapshot.
#[derive(Default)]
pub struct ReaderCache {
    cached: Option<(u64, String, MetaModel)>,
}

impl ReaderCache {
    /// Fresh, empty cache.
    pub fn new() -> ReaderCache {
        ReaderCache::default()
    }

    /// The cached view of the current epoch, refreshing the private clone
    /// if the cell has published a newer snapshot since the last call.
    /// Returns `(epoch, digest, meta)` with `meta` privately mutable.
    pub fn view(&mut self, cell: &SnapshotCell) -> (u64, &str, &mut MetaModel) {
        let current = cell.epoch();
        let stale = match &self.cached {
            Some((epoch, _, _)) => *epoch != current,
            None => true,
        };
        if stale {
            let snap = cell.load();
            gom_obs::counter_add("server.reader.refreshes", 1);
            self.cached = Some((snap.epoch, snap.digest.clone(), snap.meta.snapshot_clone()));
        }
        match &mut self.cached {
            Some((epoch, digest, meta)) => (*epoch, digest.as_str(), meta),
            // Unreachable: the branch above always fills the cache.
            None => unreachable!("reader cache refreshed above"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn model_with(name: &str) -> MetaModel {
        let mut m = MetaModel::new().expect("meta");
        m.new_schema(name).expect("schema");
        m
    }

    #[test]
    fn publish_bumps_epoch_and_swaps_snapshot() {
        let m0 = model_with("S0");
        let cell = SnapshotCell::new(Snapshot::capture(0, &m0));
        assert_eq!(cell.epoch(), 0);
        let d0 = cell.load().digest.clone();

        let m1 = model_with("S1");
        cell.publish(Snapshot::capture(1, &m1));
        assert_eq!(cell.epoch(), 1);
        assert_ne!(cell.load().digest, d0);
    }

    #[test]
    fn reader_cache_refreshes_only_on_epoch_change() {
        let m0 = model_with("S0");
        let cell = SnapshotCell::new(Snapshot::capture(0, &m0));
        let mut cache = ReaderCache::new();
        let (e0, d0, meta) = cache.view(&cell);
        assert_eq!(e0, 0);
        let d0 = d0.to_string();
        // The private clone is queryable and mutations stay private.
        meta.new_schema("ReaderLocal").expect("schema");
        let (_, d_again, _) = cache.view(&cell);
        assert_eq!(d_again, d0, "no republish, no refresh");

        let m1 = model_with("S1");
        cell.publish(Snapshot::capture(1, &m1));
        let (e1, d1, meta1) = cache.view(&cell);
        assert_eq!(e1, 1);
        assert_ne!(d1, d0);
        // The refresh replaced the private clone (reader-local edits gone).
        assert!(meta1.schema_by_name("ReaderLocal").is_none());
    }

    #[test]
    fn an_old_arc_stays_consistent_after_publication() {
        let m0 = model_with("S0");
        let cell = SnapshotCell::new(Snapshot::capture(0, &m0));
        let old = cell.load();
        let m1 = model_with("S1");
        cell.publish(Snapshot::capture(1, &m1));
        assert_eq!(old.epoch, 0);
        assert!(old.meta.schema_by_name("S0").is_some());
        assert!(old.meta.schema_by_name("S1").is_none());
    }

    #[test]
    fn digests_of_equal_states_are_bit_identical() {
        // Two independently built models with the same logical content —
        // e.g. a daemon and its post-recovery incarnation — must digest
        // identically even though interning history differs.
        let mut a = MetaModel::new().expect("meta");
        let mut b = MetaModel::new().expect("meta");
        // Different interning order in `b`.
        b.db.intern("zzz_unrelated");
        a.new_schema("S").expect("schema");
        b.new_schema("S").expect("schema");
        // IdGen draws the same fresh ids in both (deterministic), so the
        // logical states coincide.
        let sa = Snapshot::capture(0, &a);
        let sb = Snapshot::capture(0, &b);
        assert_eq!(sa.digest, sb.digest);
    }
}
