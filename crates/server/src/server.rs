//! gomd: the schema service proper.
//!
//! One process owns the [`SchemaManager`]; clients speak gom-wire/v1 over
//! a Unix socket, one thread per connection. The concurrency contract:
//!
//! * **Reads are epoch-snapshot isolated.** `Query`/`Check`/`Lint`/
//!   `Digest` run against the last *published* snapshot (see
//!   [`crate::snapshot`]), never against the live manager — so an open
//!   evolution session, however long, is invisible to readers.
//! * **Writes are single-session.** `Bes` acquires the FIFO
//!   [`SessionLock`] (bounded wait → typed `Busy`); the lock is held
//!   across frames until `Ees` commits or `Rollback` abandons. A
//!   consistent `Ees` publishes epoch N+1 *after* the journal commit, so
//!   a recovered daemon republishes exactly the last committed epoch.
//! * **Ops outside a session autocommit** as a BES/op/EES micro-session,
//!   mirroring the `gomsh` convention.

use crate::session::{Acquire, SessionLock};
use crate::snapshot::{ReaderCache, Snapshot, SnapshotCell};
use crate::wire::{self, ErrorKind, EvolutionOp, Reply, Request};
use gom_core::{EvolutionOutcome, SchemaManager};
use gom_evolution::{delete_type, DeleteTypeSemantics};
use gom_store::SyncPolicy;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// How long a connection handler sleeps in `read` before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);
/// Accept-loop shutdown poll interval.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Server configuration.
pub struct Config {
    /// Path of the Unix socket to listen on (created; removed on stop).
    pub socket: PathBuf,
    /// Optional journal path; when set the daemon is durable and recovers
    /// to the last committed epoch on restart.
    pub store: Option<PathBuf>,
    /// Journal sync policy (ignored without `store`).
    pub sync: SyncPolicy,
    /// How long a `Bes` (or autocommit op) waits for the writer lock
    /// before returning `Busy`.
    pub session_timeout: Duration,
}

impl Config {
    /// In-memory server on `socket` with a 2-second session timeout.
    pub fn in_memory(socket: impl Into<PathBuf>) -> Config {
        Config {
            socket: socket.into(),
            store: None,
            sync: SyncPolicy::OnCommit,
            session_timeout: Duration::from_secs(2),
        }
    }
}

struct Shared {
    mgr: Mutex<SchemaManager>,
    cell: SnapshotCell,
    lock: SessionLock,
    shutdown: AtomicBool,
    session_timeout: Duration,
    /// Lint config captured at startup (carries the system-material
    /// baseline so server-side lint matches `gomsh lint` output).
    lint_cfg: gom_lint::LintConfig,
}

impl Shared {
    fn mgr(&self) -> std::sync::MutexGuard<'_, SchemaManager> {
        self.mgr.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Handle to a running server. Dropping it does *not* stop the daemon;
/// call [`ServerHandle::stop`] (or send a `Shutdown` frame).
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    socket: PathBuf,
}

impl ServerHandle {
    /// The socket path the server is listening on.
    pub fn socket(&self) -> &std::path::Path {
        &self.socket
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// Block until the server shuts down (via [`stop`](Self::stop) from
    /// another thread or a `Shutdown` frame from a client).
    pub fn join(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }

    /// Request shutdown and wait for the accept loop to exit.
    pub fn stop(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.join();
    }
}

/// Start a server for `config`: opens (and, with a store, recovers) the
/// schema base, publishes the initial snapshot, binds the socket, and
/// spawns the accept loop.
pub fn serve(config: Config) -> io::Result<ServerHandle> {
    let mgr = match &config.store {
        Some(path) => {
            let (mgr, report) = SchemaManager::open(path, config.sync)
                .map_err(|e| io::Error::other(format!("journal open failed: {e}")))?;
            gom_obs::event(
                "server.recovered",
                &[(
                    "sessions",
                    gom_obs::Field::U64(report.sessions_replayed as u64),
                )],
            );
            mgr
        }
        None => SchemaManager::new()
            .map_err(|e| io::Error::other(format!("schema base init failed: {e}")))?,
    };

    let initial = Snapshot::capture(0, &mgr.meta);
    let lint_cfg = mgr.lint_config();
    let shared = Arc::new(Shared {
        mgr: Mutex::new(mgr),
        cell: SnapshotCell::new(initial),
        lock: SessionLock::new(),
        shutdown: AtomicBool::new(false),
        session_timeout: config.session_timeout,
        lint_cfg,
    });

    // A previous unclean exit may have left the socket file behind.
    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket)?;
    listener.set_nonblocking(true)?;

    let accept_shared = shared.clone();
    let accept = std::thread::Builder::new()
        .name("gomd-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))?;

    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        socket: config.socket,
    })
}

fn accept_loop(listener: UnixListener, shared: Arc<Shared>) {
    let next_id = AtomicU64::new(1);
    let mut workers = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _sp = gom_obs::span("server.accept");
                gom_obs::counter_add("server.connections", 1);
                let id = next_id.fetch_add(1, Ordering::Relaxed);
                let conn_shared = shared.clone();
                let worker = std::thread::Builder::new()
                    .name(format!("gomd-conn-{id}"))
                    .spawn(move || {
                        Connection::new(id, conn_shared).run(stream);
                    });
                match worker {
                    Ok(h) => workers.push(h),
                    Err(e) => gom_obs::event(
                        "server.spawn_failed",
                        &[("error", gom_obs::Field::Str(&e.to_string()))],
                    ),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
    // Connections poll the same flag; give them a bounded grace period.
    for w in workers {
        let _ = w.join();
    }
}

struct Connection {
    id: u64,
    shared: Arc<Shared>,
    cache: ReaderCache,
}

impl Connection {
    fn new(id: u64, shared: Arc<Shared>) -> Connection {
        Connection {
            id,
            shared,
            cache: ReaderCache::new(),
        }
    }

    fn run(mut self, mut stream: UnixStream) {
        let _ = stream.set_read_timeout(Some(READ_POLL));
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let frame = match wire::read_frame(&mut stream) {
                Ok(Some(f)) => f,
                Ok(None) => break, // clean EOF at a frame boundary
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => break,
            };
            let reply = match Request::decode(&frame) {
                Ok(req) => {
                    let _sp = gom_obs::span_labeled("server.request", req.verb());
                    gom_obs::counter_add("server.requests", 1);
                    let start = std::time::Instant::now();
                    let reply = self.dispatch(&req);
                    if gom_obs::enabled() {
                        gom_obs::record(
                            &format!("server.request.ns:{}", req.verb()),
                            start.elapsed().as_nanos() as u64,
                        );
                    }
                    reply
                }
                Err(e) => Reply::err(ErrorKind::Protocol, e.to_string()),
            };
            let shutdown_after = matches!(reply, Reply::Ok(ref s) if s == "shutting down");
            if wire::write_frame(&mut stream, &reply.encode()).is_err() {
                break;
            }
            if shutdown_after {
                self.shared.shutdown.store(true, Ordering::SeqCst);
                break;
            }
        }
        self.hangup();
    }

    /// A dropped connection must not wedge the daemon: abandon any open
    /// session (rollback) and release the writer lock.
    fn hangup(&self) {
        if self.shared.lock.held_by(self.id) {
            gom_obs::counter_add("server.session.abandoned", 1);
            let mut mgr = self.shared.mgr();
            if mgr.in_evolution() {
                let _ = mgr.rollback_evolution();
            }
            drop(mgr);
            self.shared.lock.release(self.id);
        }
    }

    fn dispatch(&mut self, req: &Request) -> Reply {
        match req {
            Request::Bes => self.bes(),
            Request::Op(op) => self.op(op),
            Request::Ees => self.ees(),
            Request::Rollback => self.rollback(),
            Request::Query(body) => self.query(body),
            Request::Check => self.check(),
            Request::Lint => self.lint(),
            Request::Stats => Reply::Ok(gom_obs::render_table(&gom_obs::snapshot())),
            Request::Digest => self.digest(),
            Request::Shutdown => Reply::Ok("shutting down".into()),
            Request::Plan => self.plan(),
        }
    }

    /// Pre-EES commit plan for the open session. Requires the writer lock
    /// (like `ees`): the plan inspects the live manager's session delta,
    /// not the published snapshot.
    fn plan(&self) -> Reply {
        if !self.shared.lock.held_by(self.id) {
            return Reply::err(ErrorKind::BadRequest, "no open session (send bes first)");
        }
        let mut mgr = self.shared.mgr();
        match mgr.plan() {
            Ok(report) => Reply::Ok(report.render()),
            Err(e) => Reply::err(ErrorKind::Internal, e.to_string()),
        }
    }

    fn acquire_writer(&self) -> Result<(), Reply> {
        gom_obs::counter_add("server.session.acquires", 1);
        match self
            .shared
            .lock
            .acquire(self.id, self.shared.session_timeout)
        {
            Acquire::Granted => Ok(()),
            Acquire::Busy { holder, waiters } => Err(Reply::err(
                ErrorKind::Busy,
                format!(
                    "evolution session held by connection {holder} ({waiters} waiting); \
                     retry or raise --session-timeout"
                ),
            )),
        }
    }

    fn bes(&self) -> Reply {
        if let Err(busy) = self.acquire_writer() {
            return busy;
        }
        let mut mgr = self.shared.mgr();
        if mgr.in_evolution() {
            // Re-entrant BES from the lock holder: already open.
            return Reply::Ok(format!(
                "BES — session already open (epoch {})",
                self.shared.cell.epoch()
            ));
        }
        match mgr.begin_evolution() {
            Ok(()) => Reply::Ok(format!(
                "BES — evolution session open (epoch {})",
                self.shared.cell.epoch()
            )),
            Err(e) => {
                drop(mgr);
                self.shared.lock.release(self.id);
                Reply::err(ErrorKind::Internal, e.to_string())
            }
        }
    }

    fn op(&self, op: &EvolutionOp) -> Reply {
        if self.shared.lock.held_by(self.id) {
            let mut mgr = self.shared.mgr();
            match apply_op(&mut mgr, op) {
                Ok(msg) => Reply::Ok(msg),
                Err(e) => Reply::err(ErrorKind::BadRequest, e),
            }
        } else {
            // Autocommit micro-session: BES / op / EES, publishing on
            // success — same convention as gomsh outside a session.
            if let Err(busy) = self.acquire_writer() {
                return busy;
            }
            let mut mgr = self.shared.mgr();
            let reply = (|| {
                mgr.begin_evolution()
                    .map_err(|e| Reply::err(ErrorKind::Internal, e.to_string()))?;
                let msg = match apply_op(&mut mgr, op) {
                    Ok(m) => m,
                    Err(e) => {
                        let _ = mgr.rollback_evolution();
                        return Err(Reply::err(ErrorKind::BadRequest, e));
                    }
                };
                match mgr.end_evolution() {
                    Ok(EvolutionOutcome::Consistent(delta)) => {
                        let epoch = self.shared.cell.epoch() + 1;
                        self.shared
                            .cell
                            .publish(Snapshot::capture(epoch, &mgr.meta));
                        Ok(Reply::Committed {
                            epoch,
                            changes: delta.len() as u64,
                        })
                    }
                    Ok(EvolutionOutcome::Inconsistent(violations)) => {
                        let rendered: Vec<String> =
                            violations.iter().map(|v| v.render(&mgr.meta.db)).collect();
                        let _ = mgr.rollback_evolution();
                        let mut msg = format!("autocommit rejected ({msg}): ");
                        msg.push_str(&rendered.join("; "));
                        Err(Reply::err(ErrorKind::BadRequest, msg))
                    }
                    Err(e) => {
                        let _ = mgr.rollback_evolution();
                        Err(Reply::err(ErrorKind::Internal, e.to_string()))
                    }
                }
            })();
            drop(mgr);
            self.shared.lock.release(self.id);
            match reply {
                Ok(r) | Err(r) => r,
            }
        }
    }

    fn ees(&self) -> Reply {
        if !self.shared.lock.held_by(self.id) {
            return Reply::err(ErrorKind::BadRequest, "no open session (send bes first)");
        }
        let mut mgr = self.shared.mgr();
        match mgr.end_evolution() {
            Ok(EvolutionOutcome::Consistent(delta)) => {
                // Publish *after* the journal commit inside end_evolution:
                // every published epoch is durable.
                let epoch = self.shared.cell.epoch() + 1;
                self.shared
                    .cell
                    .publish(Snapshot::capture(epoch, &mgr.meta));
                drop(mgr);
                self.shared.lock.release(self.id);
                Reply::Committed {
                    epoch,
                    changes: delta.len() as u64,
                }
            }
            Ok(EvolutionOutcome::Inconsistent(violations)) => {
                // Paper §3.5: the session stays open for repairs; the
                // writer lock stays with this connection.
                let rendered = violations.iter().map(|v| v.render(&mgr.meta.db)).collect();
                Reply::Violations(rendered)
            }
            Err(e) => Reply::err(ErrorKind::Internal, e.to_string()),
        }
    }

    fn rollback(&self) -> Reply {
        if !self.shared.lock.held_by(self.id) {
            return Reply::err(ErrorKind::BadRequest, "no open session to roll back");
        }
        let mut mgr = self.shared.mgr();
        let res = mgr.rollback_evolution();
        drop(mgr);
        self.shared.lock.release(self.id);
        match res {
            Ok(()) => Reply::Ok("session rolled back".into()),
            Err(e) => Reply::err(ErrorKind::Internal, e.to_string()),
        }
    }

    fn query(&mut self, body: &str) -> Reply {
        let (_, _, meta) = self.cache.view(&self.shared.cell);
        match meta.db.query_text(body) {
            Ok((names, rows)) => {
                let interner = meta.db.interner();
                let rendered: Vec<Vec<String>> = rows
                    .iter()
                    .map(|row| {
                        row.iter()
                            .map(|c| c.display(interner).to_string())
                            .collect()
                    })
                    .collect();
                Reply::Rows {
                    names,
                    rows: rendered,
                }
            }
            Err(e) => Reply::err(ErrorKind::BadRequest, e.to_string()),
        }
    }

    fn check(&mut self) -> Reply {
        let (_, _, meta) = self.cache.view(&self.shared.cell);
        match meta.db.check() {
            Ok(violations) => {
                let rendered = violations.iter().map(|v| v.render(&meta.db)).collect();
                Reply::Violations(rendered)
            }
            Err(e) => Reply::err(ErrorKind::Internal, e.to_string()),
        }
    }

    fn lint(&mut self) -> Reply {
        let (_, _, meta) = self.cache.view(&self.shared.cell);
        let report = gom_lint::lint_database(&mut meta.db, &self.shared.lint_cfg);
        Reply::Ok(gom_lint::render_report(&report, None, "<schema base>"))
    }

    fn digest(&mut self) -> Reply {
        let (epoch, digest, _) = self.cache.view(&self.shared.cell);
        Reply::Ok(format!("epoch {epoch}\n{digest}"))
    }
}

/// Apply one evolution op inside an already-open session. Returns a
/// human-readable confirmation; errors are user-vocabulary strings.
fn apply_op(mgr: &mut SchemaManager, op: &EvolutionOp) -> Result<String, String> {
    match op {
        EvolutionOp::Define(src) => {
            let lowered = mgr
                .analyzer
                .lower_source(&mut mgr.meta, src)
                .map_err(|e| e.to_string())?;
            Ok(format!("lowered {} schema(s)", lowered.len()))
        }
        EvolutionOp::AddAttr { ty, name, domain } => {
            let t = mgr.meta.resolve_type_ref(ty).map_err(|e| e.to_string())?;
            let d = mgr
                .meta
                .resolve_type_ref(domain)
                .map_err(|e| e.to_string())?;
            mgr.meta.add_attr(t, name, d).map_err(|e| e.to_string())?;
            Ok(format!("+Attr({ty}, {name}, {domain})"))
        }
        EvolutionOp::DelAttr { ty, name } => {
            let t = mgr.meta.resolve_type_ref(ty).map_err(|e| e.to_string())?;
            let removed = mgr.meta.remove_attr(t, name).map_err(|e| e.to_string())?;
            Ok(if removed {
                format!("-Attr({ty}, {name})")
            } else {
                "no such attribute".into()
            })
        }
        EvolutionOp::DelType { ty, semantics } => {
            let t = mgr.meta.resolve_type_ref(ty).map_err(|e| e.to_string())?;
            let sem = parse_semantics(semantics)?;
            let report = delete_type(mgr, t, sem).map_err(|e| e.to_string())?;
            Ok(format!(
                "deleted: {} fact(s) removed, {} edge(s) reconnected, {} instance(s) deleted",
                report.facts_removed, report.reconnected, report.instances_deleted
            ))
        }
    }
}

fn parse_semantics(s: &str) -> Result<DeleteTypeSemantics, String> {
    match s {
        "restrict" => Ok(DeleteTypeSemantics::Restrict),
        "reconnect" => Ok(DeleteTypeSemantics::Reconnect),
        "cascade" => Ok(DeleteTypeSemantics::Cascade),
        "cascade-objects" => Ok(DeleteTypeSemantics::CascadeInstances),
        "orphan" => Ok(DeleteTypeSemantics::Orphan),
        other => Err(format!(
            "unknown delete semantics `{other}` \
             (restrict|reconnect|cascade|cascade-objects|orphan)"
        )),
    }
}
