//! gomd: the schema service proper.
//!
//! One process owns the [`SchemaManager`]; clients speak gom-wire/v1 over
//! a Unix socket, one thread per connection. The concurrency contract:
//!
//! * **Reads are epoch-snapshot isolated.** `Query`/`Check`/`Lint`/
//!   `Digest` run against the last *published* snapshot (see
//!   [`crate::snapshot`]), never against the live manager — so an open
//!   evolution session, however long, is invisible to readers.
//! * **Writes are single-session.** `Bes` acquires the FIFO
//!   [`SessionLock`] (bounded wait → typed `Busy`); the lock is held
//!   across frames until `Ees` commits or `Rollback` abandons. A
//!   consistent `Ees` publishes epoch N+1 *after* the journal commit, so
//!   a recovered daemon republishes exactly the last committed epoch.
//! * **Ops outside a session autocommit** as a BES/op/EES micro-session,
//!   mirroring the `gomsh` convention.
//!
//! The failure model (DESIGN.md §14) assumes hostile clients and
//! networks:
//!
//! * **Session leases.** The writer must be heard from within the lease
//!   interval (any frame renews; `Renew` for idle clients) or the reaper
//!   thread rolls the abandoned session back and releases the lock —
//!   `server.lease.expired` counts reaps, and the zombie's next session
//!   frame gets a typed `LeaseExpired`.
//! * **I/O deadlines.** A frame that starts arriving must complete
//!   within the per-connection I/O deadline; a slow-loris partial frame
//!   is answered with `Timeout` and a close (`server.timeouts`), never an
//!   indefinite read loop. Writes carry the same deadline.
//! * **Load shedding.** At the connection bound the accept loop sheds new
//!   connections with a structured `Overloaded{active,max}` frame
//!   (`server.shed`) instead of accepting-then-starving.
//! * **Idempotent commits.** `Ees` may carry a client-chosen token; the
//!   committed `(epoch, changes)` is remembered under it, so a retried
//!   commit whose ack was lost replays the answer
//!   (`server.commit.token_replays`) and is never applied twice.

use crate::session::{Acquire, SessionLock};
use crate::snapshot::{ReaderCache, Snapshot, SnapshotCell};
use crate::wire::{self, ErrorKind, EvolutionOp, ReadEvent, Reply, Request};
use gom_core::{EvolutionOutcome, SchemaManager};
use gom_evolution::{delete_type, DeleteTypeSemantics};
use gom_store::SyncPolicy;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Poll tick for blocked reads: how often a waiting connection re-checks
/// the shutdown flag and its frame deadline. Prompt shutdown does not
/// rely on this — `initiate_shutdown` shuts the registered streams down,
/// which wakes blocked reads immediately.
const READ_POLL: Duration = Duration::from_millis(50);

/// How many committed `(token → epoch, changes)` entries the idempotent-
/// commit cache retains (FIFO eviction).
const TOKEN_CACHE_CAP: usize = 1024;

/// Server configuration.
pub struct Config {
    /// Path of the Unix socket to listen on (created; removed on stop).
    pub socket: PathBuf,
    /// Optional journal path; when set the daemon is durable and recovers
    /// to the last committed epoch on restart.
    pub store: Option<PathBuf>,
    /// Journal sync policy (ignored without `store`).
    pub sync: SyncPolicy,
    /// How long a `Bes` (or autocommit op) waits for the writer lock
    /// before returning `Busy`.
    pub session_timeout: Duration,
    /// Session lease: the writer must send a frame (or `Renew`) at least
    /// this often or the reaper rolls its session back.
    pub lease: Duration,
    /// Per-connection I/O deadline: a frame that starts arriving must
    /// complete within this long (reads), and a reply write must finish
    /// within it too.
    pub io_deadline: Duration,
    /// Connection bound: further connections are shed with a typed
    /// `Overloaded` frame until an active one closes.
    pub max_connections: usize,
    /// Eval-thread override applied to the schema base (chaos testing
    /// runs the same sweep at 1 and 4 threads).
    pub eval_threads: Option<usize>,
    /// Slow-request threshold in milliseconds: requests that take at
    /// least this long land in the ring-buffer slow log (surfaced by
    /// `Metrics` and `stats`). 0 logs every request.
    pub slow_ms: u64,
}

impl Config {
    /// In-memory server on `socket` with a 2-second session timeout, a
    /// 30-second lease, a 10-second I/O deadline, and a 256-connection
    /// bound.
    pub fn in_memory(socket: impl Into<PathBuf>) -> Config {
        Config {
            socket: socket.into(),
            store: None,
            sync: SyncPolicy::OnCommit,
            session_timeout: Duration::from_secs(2),
            lease: Duration::from_secs(30),
            io_deadline: Duration::from_secs(10),
            max_connections: 256,
            eval_threads: None,
            slow_ms: 250,
        }
    }
}

/// Idempotent-commit memory: token → (epoch, changes), FIFO-bounded.
#[derive(Default)]
struct TokenCache {
    map: HashMap<u64, (u64, u64)>,
    order: VecDeque<u64>,
}

impl TokenCache {
    fn get(&self, token: u64) -> Option<(u64, u64)> {
        self.map.get(&token).copied()
    }

    fn insert(&mut self, token: u64, epoch: u64, changes: u64) {
        if self.map.insert(token, (epoch, changes)).is_none() {
            self.order.push_back(token);
            if self.order.len() > TOKEN_CACHE_CAP {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

/// Slow-log capacity: the newest `SLOW_LOG_CAP` over-threshold requests
/// are retained, oldest evicted first.
const SLOW_LOG_CAP: usize = 128;

/// One over-threshold request in the slow log.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// Client-assigned request id (0 when the client sent none).
    pub req_id: u64,
    /// Server connection id that served the request.
    pub conn: u64,
    /// The request verb.
    pub verb: &'static str,
    /// Wall-clock service time in microseconds.
    pub dur_us: u64,
    /// Reply disposition (`ok`, `committed`, `violations`, `rows`, or an
    /// error kind name).
    pub status: &'static str,
    /// Milliseconds since the server started.
    pub t_ms: u64,
}

/// Per-verb latency histogram names, pre-interned so the per-request
/// vitals path never formats a string. Unknown verbs (future dialects)
/// share one bucket.
fn verb_hist_name(verb: &str) -> &'static str {
    match verb {
        "bes" => "server.request.ns:bes",
        "op" => "server.request.ns:op",
        "ees" => "server.request.ns:ees",
        "rollback" => "server.request.ns:rollback",
        "query" => "server.request.ns:query",
        "check" => "server.request.ns:check",
        "lint" => "server.request.ns:lint",
        "stats" => "server.request.ns:stats",
        "digest" => "server.request.ns:digest",
        "shutdown" => "server.request.ns:shutdown",
        "plan" => "server.request.ns:plan",
        "renew" => "server.request.ns:renew",
        "metrics" => "server.request.ns:metrics",
        _ => "server.request.ns:other",
    }
}

/// Reply disposition for the slow log.
fn reply_status(reply: &Reply) -> &'static str {
    match reply {
        Reply::Ok(_) => "ok",
        Reply::Committed { .. } => "committed",
        Reply::Violations(_) => "violations",
        Reply::Rows { .. } => "rows",
        Reply::Overloaded { .. } => "overloaded",
        Reply::Error { kind, .. } => kind.name(),
    }
}

struct Shared {
    mgr: Mutex<SchemaManager>,
    cell: SnapshotCell,
    lock: SessionLock,
    shutdown: AtomicBool,
    session_timeout: Duration,
    lease: Duration,
    io_deadline: Duration,
    max_connections: usize,
    socket: PathBuf,
    /// Currently served connections (shed threshold).
    active: AtomicU64,
    /// Stream clones of live connections, shut down on stop so blocked
    /// reads wake immediately instead of waiting out a poll tick.
    conns: Mutex<Vec<(u64, UnixStream)>>,
    /// Idempotent EES commit tokens.
    tokens: Mutex<TokenCache>,
    /// Reaper parking lot: notified on shutdown for a prompt exit.
    wake_mx: Mutex<()>,
    wake_cv: Condvar,
    /// Ring buffer of over-threshold requests (see `Config::slow_ms`).
    slow: Mutex<VecDeque<SlowEntry>>,
    slow_ms: u64,
    started: std::time::Instant,
    /// Lint config captured at startup (carries the system-material
    /// baseline so server-side lint matches `gomsh lint` output).
    lint_cfg: gom_lint::LintConfig,
}

impl Shared {
    fn mgr(&self) -> std::sync::MutexGuard<'_, SchemaManager> {
        self.mgr.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flip the shutdown flag and wake every parked thread: the reaper
    /// (condvar), blocked connection reads (stream shutdown), and the
    /// blocking accept loop (a self-connection). Idempotent.
    fn initiate_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.wake_cv.notify_all();
        {
            let conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
            for (_, stream) in conns.iter() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        // Wake the accept loop: the dummy connection is dropped by the
        // accept loop once it observes the flag.
        let _ = UnixStream::connect(&self.socket);
    }

    fn register_conn(&self, id: u64, stream: &UnixStream) {
        if let Ok(clone) = stream.try_clone() {
            self.conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push((id, clone));
        }
    }

    fn deregister_conn(&self, id: u64) {
        self.conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|(cid, _)| *cid != id);
    }

    fn note_slow(&self, entry: SlowEntry) {
        let mut slow = self.slow.lock().unwrap_or_else(PoisonError::into_inner);
        if slow.len() >= SLOW_LOG_CAP {
            slow.pop_front();
        }
        slow.push_back(entry);
    }

    fn slow_entries(&self) -> Vec<SlowEntry> {
        self.slow
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }
}

/// Handle to a running server. Dropping it does *not* stop the daemon;
/// call [`ServerHandle::stop`] (or send a `Shutdown` frame).
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    reaper: Option<std::thread::JoinHandle<()>>,
    socket: PathBuf,
}

impl ServerHandle {
    /// The socket path the server is listening on.
    pub fn socket(&self) -> &std::path::Path {
        &self.socket
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// Block until the server shuts down (via [`stop`](Self::stop) from
    /// another thread or a `Shutdown` frame from a client).
    pub fn join(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.reaper.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }

    /// Request shutdown and wait for the accept loop to exit. Prompt:
    /// every parked thread is woken explicitly rather than polled out.
    pub fn stop(self) {
        self.shared.initiate_shutdown();
        self.join();
    }
}

/// Pre-register the vitals counters so `stats`, `Metrics`, and traces
/// always carry them, even at zero. These are the always-on failure-model
/// counters: they aggregate through `gom_obs::vital_add` regardless of
/// the obs switch, so a production daemon that never turned profiling on
/// still answers `stats` with real numbers — one source of truth instead
/// of a parallel atomics struct.
fn register_counters() {
    for name in [
        "server.connections",
        "server.requests",
        "server.timeouts",
        "server.shed",
        "server.lease.expired",
        "server.lease.renews",
        "server.session.abandoned",
        "server.commit.token_replays",
    ] {
        gom_obs::vital_add(name, 0);
    }
}

/// Start a server for `config`: opens (and, with a store, recovers) the
/// schema base, publishes the initial snapshot, binds the socket, and
/// spawns the accept and reaper loops.
pub fn serve(config: Config) -> io::Result<ServerHandle> {
    let mut mgr = match &config.store {
        Some(path) => {
            let (mgr, report) = SchemaManager::open(path, config.sync)
                .map_err(|e| io::Error::other(format!("journal open failed: {e}")))?;
            gom_obs::event(
                "server.recovered",
                &[(
                    "sessions",
                    gom_obs::Field::U64(report.sessions_replayed as u64),
                )],
            );
            mgr
        }
        None => SchemaManager::new()
            .map_err(|e| io::Error::other(format!("schema base init failed: {e}")))?,
    };
    if let Some(threads) = config.eval_threads {
        mgr.meta.db.set_eval_threads(threads);
    }
    register_counters();

    let initial = Snapshot::capture(0, &mgr.meta);
    let lint_cfg = mgr.lint_config();
    let shared = Arc::new(Shared {
        mgr: Mutex::new(mgr),
        cell: SnapshotCell::new(initial),
        lock: SessionLock::new(),
        shutdown: AtomicBool::new(false),
        session_timeout: config.session_timeout,
        lease: config.lease,
        io_deadline: config.io_deadline,
        max_connections: config.max_connections.max(1),
        socket: config.socket.clone(),
        active: AtomicU64::new(0),
        conns: Mutex::new(Vec::new()),
        tokens: Mutex::new(TokenCache::default()),
        wake_mx: Mutex::new(()),
        wake_cv: Condvar::new(),
        slow: Mutex::new(VecDeque::new()),
        slow_ms: config.slow_ms,
        started: std::time::Instant::now(),
        lint_cfg,
    });

    // A previous unclean exit may have left the socket file behind.
    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket)?;

    let accept_shared = shared.clone();
    let accept = std::thread::Builder::new()
        .name("gomd-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))?;
    let reaper_shared = shared.clone();
    let reaper = std::thread::Builder::new()
        .name("gomd-reaper".into())
        .spawn(move || reaper_loop(reaper_shared))?;

    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        reaper: Some(reaper),
        socket: config.socket,
    })
}

/// The lease reaper: wakes every lease/4 (clamped), rolls back the
/// session of a holder whose lease lapsed, and releases the lock so the
/// FIFO queue advances. The manager mutex is held across the reap *and*
/// the rollback, so the next writer — granted the lock the instant the
/// reap lands — blocks on the manager until the abandoned session is
/// fully rolled back.
fn reaper_loop(shared: Arc<Shared>) {
    let tick = (shared.lease / 4)
        .max(Duration::from_millis(5))
        .min(Duration::from_secs(1));
    loop {
        {
            let guard = shared
                .wake_mx
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let _ = shared
                .wake_cv
                .wait_timeout(guard, tick)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if shared.stopping() {
            break;
        }
        let Some(victim) = shared.lock.expired_holder(shared.lease) else {
            continue;
        };
        // Order matters: manager mutex first (serialises with an in-flight
        // request from the victim — its completion renews the lease and
        // the re-check below backs off), then the atomic re-check + reap,
        // then the rollback under the still-held manager mutex.
        let mut mgr = shared.mgr();
        if !shared.lock.reap_if_expired(victim, shared.lease) {
            continue;
        }
        gom_obs::vital_add("server.lease.expired", 1);
        gom_obs::vital_add("server.session.abandoned", 1);
        gom_obs::event(
            "server.lease.expired",
            &[("conn", gom_obs::Field::U64(victim))],
        );
        if mgr.in_evolution() {
            let _ = mgr.rollback_evolution();
        }
    }
}

fn accept_loop(listener: UnixListener, shared: Arc<Shared>) {
    let next_id = AtomicU64::new(1);
    let mut workers = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopping() {
                    // The wake-up connection from initiate_shutdown (or a
                    // straggler racing it): drop and exit.
                    break;
                }
                let _sp = gom_obs::span("server.accept");
                let active = shared.active.load(Ordering::SeqCst);
                if active >= shared.max_connections as u64 {
                    shed(stream, active, shared.max_connections as u64);
                    continue;
                }
                gom_obs::vital_add("server.connections", 1);
                let id = next_id.fetch_add(1, Ordering::Relaxed);
                shared.active.fetch_add(1, Ordering::SeqCst);
                shared.register_conn(id, &stream);
                let conn_shared = shared.clone();
                let worker = std::thread::Builder::new()
                    .name(format!("gomd-conn-{id}"))
                    .spawn(move || {
                        Connection::new(id, conn_shared).run(stream);
                    });
                match worker {
                    Ok(h) => workers.push(h),
                    Err(e) => {
                        shared.active.fetch_sub(1, Ordering::SeqCst);
                        shared.deregister_conn(id);
                        gom_obs::event(
                            "server.spawn_failed",
                            &[("error", gom_obs::Field::Str(&e.to_string()))],
                        );
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                if shared.stopping() {
                    break;
                }
            }
        }
    }
    // Connections were woken by initiate_shutdown (stream shutdown) or
    // notice the flag within one poll tick; join them all.
    for w in workers {
        let _ = w.join();
    }
}

/// Shed a connection at the bound: one structured `Overloaded` frame,
/// written under a short deadline, then close.
fn shed(stream: UnixStream, active: u64, max: u64) {
    gom_obs::vital_add("server.shed", 1);
    gom_obs::event(
        "server.shed",
        &[
            ("active", gom_obs::Field::U64(active)),
            ("max", gom_obs::Field::U64(max)),
        ],
    );
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut stream = stream;
    let _ = wire::write_frame(&mut stream, &Reply::Overloaded { active, max }.encode());
}

struct Connection {
    id: u64,
    shared: Arc<Shared>,
    cache: ReaderCache,
}

impl Connection {
    fn new(id: u64, shared: Arc<Shared>) -> Connection {
        Connection {
            id,
            shared,
            cache: ReaderCache::new(),
        }
    }

    fn run(mut self, mut stream: UnixStream) {
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let _ = stream.set_write_timeout(Some(self.shared.io_deadline));
        loop {
            if self.shared.stopping() {
                break;
            }
            let shared = self.shared.clone();
            let frame = match wire::read_frame_deadline(&mut stream, shared.io_deadline, || {
                !shared.stopping()
            }) {
                Ok(ReadEvent::Frame(f)) => f,
                Ok(ReadEvent::Closed) | Ok(ReadEvent::Aborted) => break,
                Ok(ReadEvent::Stalled) => {
                    // Slow-loris partial frame: typed Timeout, then close
                    // (the stream is desynchronised mid-frame).
                    gom_obs::vital_add("server.timeouts", 1);
                    let reply = Reply::err(
                        ErrorKind::Timeout,
                        format!(
                            "partial frame stalled past the {}ms I/O deadline",
                            self.shared.io_deadline.as_millis()
                        ),
                    );
                    let _ = wire::write_frame(&mut stream, &reply.encode());
                    break;
                }
                Err(e) => {
                    // Corruption (CRC, oversized length, torn header) or a
                    // real I/O error: best-effort typed reply, then close.
                    let reply = Reply::err(ErrorKind::Protocol, e.to_string());
                    let _ = wire::write_frame(&mut stream, &reply.encode());
                    break;
                }
            };
            // Any frame from the lock holder renews its lease.
            if self.shared.lock.touch(self.id) {
                gom_obs::vital_add("server.lease.renews", 1);
            }
            let reply = match Request::decode_with_id(&frame) {
                Ok((req_id, req)) => {
                    let _sp = gom_obs::span_labeled("server.request", req.verb());
                    gom_obs::vital_add("server.requests", 1);
                    let start = std::time::Instant::now();
                    let reply = self.dispatch(&req);
                    let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    // Per-verb latency is a vital: always on, static name.
                    gom_obs::vital_record(verb_hist_name(req.verb()), ns);
                    if ns / 1_000_000 >= self.shared.slow_ms {
                        self.shared.note_slow(SlowEntry {
                            req_id,
                            conn: self.id,
                            verb: req.verb(),
                            dur_us: ns / 1_000,
                            status: reply_status(&reply),
                            t_ms: self.shared.started.elapsed().as_millis() as u64,
                        });
                    }
                    if req_id != 0 {
                        // The client-assigned id lands in the trace next to
                        // the span, tying server-side latency to the
                        // client's own records.
                        gom_obs::event(
                            "server.request",
                            &[
                                ("req_id", gom_obs::Field::U64(req_id)),
                                ("verb", gom_obs::Field::Str(req.verb())),
                                ("conn", gom_obs::Field::U64(self.id)),
                            ],
                        );
                    }
                    reply
                }
                Err(e) => Reply::err(ErrorKind::Protocol, e.to_string()),
            };
            let shutdown_after = matches!(reply, Reply::Ok(ref s) if s == "shutting down");
            if let Err(e) = wire::write_frame(&mut stream, &reply.encode()) {
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) {
                    // The peer stopped draining its socket: a write-side
                    // slow loris. Count it and drop the connection.
                    gom_obs::vital_add("server.timeouts", 1);
                }
                break;
            }
            if shutdown_after {
                self.shared.initiate_shutdown();
                break;
            }
        }
        self.hangup();
    }

    /// A dropped connection must not wedge the daemon: abandon any open
    /// session (rollback) and release the writer lock. Also clears any
    /// undelivered lease-expiry notice and the connection registry entry.
    fn hangup(&self) {
        if self.shared.lock.held_by(self.id) {
            gom_obs::vital_add("server.session.abandoned", 1);
            let mut mgr = self.shared.mgr();
            if mgr.in_evolution() {
                let _ = mgr.rollback_evolution();
            }
            drop(mgr);
            self.shared.lock.release(self.id);
        }
        self.shared.lock.take_expired(self.id);
        self.shared.deregister_conn(self.id);
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
    }

    /// The one-shot `LeaseExpired` notice for session verbs: if this
    /// connection's session was reaped since its last session frame,
    /// answer with the typed error (and clear the notice).
    fn expired_notice(&self) -> Option<Reply> {
        if self.shared.lock.take_expired(self.id) {
            Some(Reply::err(
                ErrorKind::LeaseExpired,
                format!(
                    "session lease ({}ms) expired: the session was rolled back and the \
                     writer lock released; begin again with bes",
                    self.shared.lease.as_millis()
                ),
            ))
        } else {
            None
        }
    }

    fn dispatch(&mut self, req: &Request) -> Reply {
        match req {
            Request::Bes => self.bes(),
            Request::Op(op) => self.op(op),
            Request::Ees { token } => self.ees(*token),
            Request::Rollback => self.rollback(),
            Request::Renew => self.renew(),
            Request::Query(body) => self.query(body),
            Request::Check => self.check(),
            Request::Lint => self.lint(),
            Request::Stats => self.stats(),
            Request::Digest => self.digest(),
            Request::Shutdown => Reply::Ok("shutting down".into()),
            Request::Plan => self.plan(),
            Request::Metrics => self.metrics(),
        }
    }

    /// Service statistics: a service header (epoch, connections, queue
    /// depth, lease), the vitals counters (read from the same obs
    /// aggregator the traces use), the slow log, and the obs table.
    fn stats(&self) -> Reply {
        let snap = gom_obs::snapshot();
        let header = format!(
            "epoch {} | conns {}/{} | writer waiters {} | lease {}ms io-deadline {}ms\n\
             server.timeouts={} server.shed={} server.lease.expired={} \
             server.lease.renews={} server.commit.token_replays={}\n",
            self.shared.cell.epoch(),
            self.shared.active.load(Ordering::SeqCst),
            self.shared.max_connections,
            self.shared.lock.waiters(),
            self.shared.lease.as_millis(),
            self.shared.io_deadline.as_millis(),
            snap.counter("server.timeouts"),
            snap.counter("server.shed"),
            snap.counter("server.lease.expired"),
            snap.counter("server.lease.renews"),
            snap.counter("server.commit.token_replays"),
        );
        let slow = self.shared.slow_entries();
        let mut slow_text = format!(
            "slow requests (>= {}ms, newest {} of cap {}):\n",
            self.shared.slow_ms,
            slow.len(),
            SLOW_LOG_CAP
        );
        for e in slow.iter().rev() {
            slow_text.push_str(&format!(
                "  t+{}ms conn {} req {} {} {}us -> {}\n",
                e.t_ms, e.conn, e.req_id, e.verb, e.dur_us, e.status
            ));
        }
        Reply::Ok(format!(
            "{header}{slow_text}{}",
            gom_obs::render_table(&snap)
        ))
    }

    /// Machine-readable telemetry: one `gomd/metrics/v1` JSON object with
    /// the service header, the full obs snapshot (vitals counters and
    /// per-verb latency histograms with percentiles), and the slow log.
    fn metrics(&self) -> Reply {
        let snap = gom_obs::snapshot();
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"schema\":\"gomd/metrics/v1\",\"epoch\":{},\"conns\":{},\"max_conns\":{},\
             \"writer_waiters\":{},\"lease_ms\":{},\"io_deadline_ms\":{},\"slow_ms\":{},\
             \"uptime_ms\":{},\"slow_log\":[",
            self.shared.cell.epoch(),
            self.shared.active.load(Ordering::SeqCst),
            self.shared.max_connections,
            self.shared.lock.waiters(),
            self.shared.lease.as_millis(),
            self.shared.io_deadline.as_millis(),
            self.shared.slow_ms,
            self.shared.started.elapsed().as_millis(),
        ));
        for (i, e) in self.shared.slow_entries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // verb/status are static identifiers: safe without escaping.
            out.push_str(&format!(
                "{{\"req_id\":{},\"conn\":{},\"verb\":\"{}\",\"dur_us\":{},\
                 \"status\":\"{}\",\"t_ms\":{}}}",
                e.req_id, e.conn, e.verb, e.dur_us, e.status, e.t_ms
            ));
        }
        out.push_str("],\"stats\":");
        out.push_str(&gom_obs::snapshot_json(&snap));
        out.push('}');
        Reply::Ok(out)
    }

    /// Explicit lease renewal for an idle session holder.
    fn renew(&self) -> Reply {
        if self.shared.lock.held_by(self.id) {
            // The run loop already touched the lease on frame receipt.
            return Reply::Ok(format!(
                "lease renewed ({}ms)",
                self.shared.lease.as_millis()
            ));
        }
        if let Some(expired) = self.expired_notice() {
            return expired;
        }
        Reply::err(ErrorKind::BadRequest, "no open session to renew")
    }

    /// Pre-EES commit plan for the open session. Requires the writer lock
    /// (like `ees`): the plan inspects the live manager's session delta,
    /// not the published snapshot.
    fn plan(&self) -> Reply {
        if !self.shared.lock.held_by(self.id) {
            if let Some(expired) = self.expired_notice() {
                return expired;
            }
            return Reply::err(ErrorKind::BadRequest, "no open session (send bes first)");
        }
        let mut mgr = self.shared.mgr();
        let reply = match mgr.plan() {
            Ok(report) => Reply::Ok(report.render()),
            Err(e) => Reply::err(ErrorKind::Internal, e.to_string()),
        };
        // A long plan still counts as liveness (the manager mutex is held,
        // so the reaper's re-check is ordered after this touch).
        self.shared.lock.touch(self.id);
        reply
    }

    fn acquire_writer(&self) -> Result<(), Reply> {
        gom_obs::counter_add("server.session.acquires", 1);
        match self
            .shared
            .lock
            .acquire(self.id, self.shared.session_timeout)
        {
            Acquire::Granted => Ok(()),
            Acquire::Busy { holder, waiters } => Err(Reply::err(
                ErrorKind::Busy,
                format!(
                    "evolution session held by connection {holder} ({waiters} waiting); \
                     retry or raise --session-timeout"
                ),
            )),
        }
    }

    fn bes(&self) -> Reply {
        if let Some(expired) = self.expired_notice() {
            return expired;
        }
        if let Err(busy) = self.acquire_writer() {
            return busy;
        }
        let mut mgr = self.shared.mgr();
        if mgr.in_evolution() {
            // Re-entrant BES from the lock holder: already open.
            return Reply::Ok(format!(
                "BES — session already open (epoch {})",
                self.shared.cell.epoch()
            ));
        }
        match mgr.begin_evolution() {
            Ok(()) => Reply::Ok(format!(
                "BES — evolution session open (epoch {})",
                self.shared.cell.epoch()
            )),
            Err(e) => {
                drop(mgr);
                self.shared.lock.release(self.id);
                Reply::err(ErrorKind::Internal, e.to_string())
            }
        }
    }

    fn op(&self, op: &EvolutionOp) -> Reply {
        if self.shared.lock.held_by(self.id) {
            let mut mgr = self.shared.mgr();
            let reply = match apply_op(&mut mgr, op) {
                Ok(msg) => Reply::Ok(msg),
                Err(e) => Reply::err(ErrorKind::BadRequest, e),
            };
            // Touch under the manager mutex: a single op longer than the
            // lease interval must not lose the session to the reaper.
            self.shared.lock.touch(self.id);
            return reply;
        }
        // A reaped holder must learn its session is gone before an op is
        // silently autocommitted out of the context it assumed.
        if let Some(expired) = self.expired_notice() {
            return expired;
        }
        // Autocommit micro-session: BES / op / EES, publishing on
        // success — same convention as gomsh outside a session.
        if let Err(busy) = self.acquire_writer() {
            return busy;
        }
        let mut mgr = self.shared.mgr();
        let reply = (|| {
            mgr.begin_evolution()
                .map_err(|e| Reply::err(ErrorKind::Internal, e.to_string()))?;
            let msg = match apply_op(&mut mgr, op) {
                Ok(m) => m,
                Err(e) => {
                    let _ = mgr.rollback_evolution();
                    return Err(Reply::err(ErrorKind::BadRequest, e));
                }
            };
            match mgr.end_evolution() {
                Ok(EvolutionOutcome::Consistent(delta)) => {
                    let epoch = self.shared.cell.epoch() + 1;
                    self.shared
                        .cell
                        .publish(Snapshot::capture(epoch, &mgr.meta));
                    Ok(Reply::Committed {
                        epoch,
                        changes: delta.len() as u64,
                        token: 0,
                    })
                }
                Ok(EvolutionOutcome::Inconsistent(violations)) => {
                    let rendered: Vec<String> =
                        violations.iter().map(|v| v.render(&mgr.meta.db)).collect();
                    let _ = mgr.rollback_evolution();
                    let mut msg = format!("autocommit rejected ({msg}): ");
                    msg.push_str(&rendered.join("; "));
                    Err(Reply::err(ErrorKind::BadRequest, msg))
                }
                Err(e) => {
                    let _ = mgr.rollback_evolution();
                    Err(Reply::err(ErrorKind::Internal, e.to_string()))
                }
            }
        })();
        drop(mgr);
        self.shared.lock.release(self.id);
        match reply {
            Ok(r) | Err(r) => r,
        }
    }

    fn ees(&self, token: Option<u64>) -> Reply {
        // Idempotent replay first: a retried commit whose ack was lost is
        // answered from the cache — never applied twice — regardless of
        // session or lease state.
        if let Some(t) = token {
            let cached = self
                .shared
                .tokens
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .get(t);
            if let Some((epoch, changes)) = cached {
                gom_obs::vital_add("server.commit.token_replays", 1);
                return Reply::Committed {
                    epoch,
                    changes,
                    token: t,
                };
            }
        }
        if !self.shared.lock.held_by(self.id) {
            if let Some(expired) = self.expired_notice() {
                return expired;
            }
            return Reply::err(ErrorKind::BadRequest, "no open session (send bes first)");
        }
        let mut mgr = self.shared.mgr();
        match mgr.end_evolution() {
            Ok(EvolutionOutcome::Consistent(delta)) => {
                // Publish *after* the journal commit inside end_evolution:
                // every published epoch is durable.
                let epoch = self.shared.cell.epoch() + 1;
                self.shared
                    .cell
                    .publish(Snapshot::capture(epoch, &mgr.meta));
                let changes = delta.len() as u64;
                // Record the token before releasing the lock: any retry is
                // ordered behind the release (it must reconnect or re-queue)
                // and therefore sees the cache entry.
                if let Some(t) = token {
                    self.shared
                        .tokens
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .insert(t, epoch, changes);
                }
                drop(mgr);
                self.shared.lock.release(self.id);
                Reply::Committed {
                    epoch,
                    changes,
                    token: token.unwrap_or(0),
                }
            }
            Ok(EvolutionOutcome::Inconsistent(violations)) => {
                // Paper §3.5: the session stays open for repairs; the
                // writer lock stays with this connection.
                let rendered = violations.iter().map(|v| v.render(&mgr.meta.db)).collect();
                self.shared.lock.touch(self.id);
                Reply::Violations(rendered)
            }
            Err(e) => {
                self.shared.lock.touch(self.id);
                Reply::err(ErrorKind::Internal, e.to_string())
            }
        }
    }

    fn rollback(&self) -> Reply {
        if !self.shared.lock.held_by(self.id) {
            if let Some(expired) = self.expired_notice() {
                return expired;
            }
            return Reply::err(ErrorKind::BadRequest, "no open session to roll back");
        }
        let mut mgr = self.shared.mgr();
        let res = mgr.rollback_evolution();
        drop(mgr);
        self.shared.lock.release(self.id);
        match res {
            Ok(()) => Reply::Ok("session rolled back".into()),
            Err(e) => Reply::err(ErrorKind::Internal, e.to_string()),
        }
    }

    fn query(&mut self, body: &str) -> Reply {
        let (_, meta) = self.cache.view(&self.shared.cell);
        match meta.db.query_text(body) {
            Ok((names, rows)) => {
                let interner = meta.db.interner();
                let rendered: Vec<Vec<String>> = rows
                    .iter()
                    .map(|row| {
                        row.iter()
                            .map(|c| c.display(interner).to_string())
                            .collect()
                    })
                    .collect();
                Reply::Rows {
                    names,
                    rows: rendered,
                }
            }
            Err(e) => Reply::err(ErrorKind::BadRequest, e.to_string()),
        }
    }

    fn check(&mut self) -> Reply {
        let (_, meta) = self.cache.view(&self.shared.cell);
        match meta.db.check() {
            Ok(violations) => {
                let rendered = violations.iter().map(|v| v.render(&meta.db)).collect();
                Reply::Violations(rendered)
            }
            Err(e) => Reply::err(ErrorKind::Internal, e.to_string()),
        }
    }

    fn lint(&mut self) -> Reply {
        let (_, meta) = self.cache.view(&self.shared.cell);
        let report = gom_lint::lint_database(&mut meta.db, &self.shared.lint_cfg);
        Reply::Ok(gom_lint::render_report(&report, None, "<schema base>"))
    }

    fn digest(&mut self) -> Reply {
        // Served straight from the shared Arc: no private clone is built
        // (or refreshed) for digest-only connections.
        let snap = self.cache.snapshot(&self.shared.cell);
        Reply::Ok(format!("epoch {}\n{}", snap.epoch, snap.digest()))
    }
}

/// Apply one evolution op inside an already-open session. Returns a
/// human-readable confirmation; errors are user-vocabulary strings.
fn apply_op(mgr: &mut SchemaManager, op: &EvolutionOp) -> Result<String, String> {
    match op {
        EvolutionOp::Define(src) => {
            let lowered = mgr
                .analyzer
                .lower_source(&mut mgr.meta, src)
                .map_err(|e| e.to_string())?;
            Ok(format!("lowered {} schema(s)", lowered.len()))
        }
        EvolutionOp::AddAttr { ty, name, domain } => {
            let t = mgr.meta.resolve_type_ref(ty).map_err(|e| e.to_string())?;
            let d = mgr
                .meta
                .resolve_type_ref(domain)
                .map_err(|e| e.to_string())?;
            mgr.meta.add_attr(t, name, d).map_err(|e| e.to_string())?;
            Ok(format!("+Attr({ty}, {name}, {domain})"))
        }
        EvolutionOp::DelAttr { ty, name } => {
            let t = mgr.meta.resolve_type_ref(ty).map_err(|e| e.to_string())?;
            let removed = mgr.meta.remove_attr(t, name).map_err(|e| e.to_string())?;
            Ok(if removed {
                format!("-Attr({ty}, {name})")
            } else {
                "no such attribute".into()
            })
        }
        EvolutionOp::DelType { ty, semantics } => {
            let t = mgr.meta.resolve_type_ref(ty).map_err(|e| e.to_string())?;
            let sem = parse_semantics(semantics)?;
            let report = delete_type(mgr, t, sem).map_err(|e| e.to_string())?;
            Ok(format!(
                "deleted: {} fact(s) removed, {} edge(s) reconnected, {} instance(s) deleted",
                report.facts_removed, report.reconnected, report.instances_deleted
            ))
        }
    }
}

fn parse_semantics(s: &str) -> Result<DeleteTypeSemantics, String> {
    match s {
        "restrict" => Ok(DeleteTypeSemantics::Restrict),
        "reconnect" => Ok(DeleteTypeSemantics::Reconnect),
        "cascade" => Ok(DeleteTypeSemantics::Cascade),
        "cascade-objects" => Ok(DeleteTypeSemantics::CascadeInstances),
        "orphan" => Ok(DeleteTypeSemantics::Orphan),
        other => Err(format!(
            "unknown delete semantics `{other}` \
             (restrict|reconnect|cascade|cascade-objects|orphan)"
        )),
    }
}
