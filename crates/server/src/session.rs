//! Single-writer evolution-session lock with FIFO admission.
//!
//! The paper's evolution protocol (§3.5) is single-writer: one open
//! BES…EES session at a time. gomd enforces that with a lock that is held
//! *across requests* (BES acquires, EES-commit/rollback releases), so the
//! usual `MutexGuard` shape doesn't fit — the lock is owned by a
//! connection id, not a stack frame.
//!
//! Waiters queue FIFO: a connection that asks first gets the lock first,
//! and a bounded [`SessionLock::acquire`] timeout converts starvation into
//! a typed `Busy` error the client can retry, instead of an indefinite
//! hang.
//!
//! The lock also carries the session **lease**: the holder must be heard
//! from (any frame, or an explicit `Renew`) within the lease interval, or
//! the server's reaper thread rolls the abandoned session back and takes
//! the lock away ([`SessionLock::reap_if_expired`]). A SIGSTOP'd or
//! silently-vanished client therefore can no longer wedge the daemon in a
//! way only a TCP hangup could previously undo. The reaped connection id
//! is remembered in an `expired` set so the zombie's next session frame
//! gets a clean typed `LeaseExpired` instead of a protocol desync
//! ([`SessionLock::take_expired`]).

use std::collections::{HashSet, VecDeque};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

#[derive(Default)]
struct State {
    /// Connection currently holding the writer lock, if any.
    holder: Option<u64>,
    /// When the holder was last heard from (set on grant and on every
    /// [`SessionLock::touch`]). `None` iff `holder` is `None`.
    renewed_at: Option<Instant>,
    /// Connections waiting, in arrival order.
    queue: VecDeque<u64>,
    /// Connections whose session the reaper rolled back, pending their
    /// one-shot `LeaseExpired` notification.
    expired: HashSet<u64>,
}

/// Outcome of an acquisition attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Acquire {
    /// The caller now holds the writer lock.
    Granted,
    /// The timeout elapsed; `holder` is the connection that held the lock
    /// when we gave up and `waiters` the queue depth left behind.
    Busy { holder: u64, waiters: usize },
}

/// FIFO single-writer lock held by connection id across requests.
#[derive(Default)]
pub struct SessionLock {
    state: Mutex<State>,
    cv: Condvar,
}

impl SessionLock {
    /// A fresh, unheld lock.
    pub fn new() -> SessionLock {
        SessionLock::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// True if `owner` currently holds the lock.
    pub fn held_by(&self, owner: u64) -> bool {
        self.lock().holder == Some(owner)
    }

    /// Current queue depth (waiters, excluding the holder).
    pub fn waiters(&self) -> usize {
        self.lock().queue.len()
    }

    /// Try to acquire the lock for `owner`, waiting at most `timeout`.
    ///
    /// Re-acquisition by the current holder is a no-op grant. FIFO order
    /// is strict: a waiter is granted only when it reaches the queue head
    /// and the lock is free.
    pub fn acquire(&self, owner: u64, timeout: Duration) -> Acquire {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        if st.holder == Some(owner) {
            st.renewed_at = Some(Instant::now());
            return Acquire::Granted;
        }
        if st.holder.is_none() && st.queue.is_empty() {
            st.holder = Some(owner);
            st.renewed_at = Some(Instant::now());
            return Acquire::Granted;
        }
        st.queue.push_back(owner);
        gom_obs::counter_add("server.session.queued", 1);
        loop {
            let granted = st.holder.is_none() && st.queue.front() == Some(&owner);
            if granted {
                st.queue.pop_front();
                st.holder = Some(owner);
                st.renewed_at = Some(Instant::now());
                return Acquire::Granted;
            }
            let now = Instant::now();
            if now >= deadline {
                st.queue.retain(|&w| w != owner);
                let holder = st.holder.unwrap_or(0);
                let waiters = st.queue.len();
                // Our departure may unblock the new queue head (the lock
                // could be free while we, mid-queue, timed out).
                self.cv.notify_all();
                gom_obs::counter_add("server.session.busy_timeouts", 1);
                return Acquire::Busy { holder, waiters };
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Release the lock if `owner` holds it; wakes the queue head.
    /// Returns whether a release actually happened.
    pub fn release(&self, owner: u64) -> bool {
        let mut st = self.lock();
        if st.holder != Some(owner) {
            return false;
        }
        st.holder = None;
        st.renewed_at = None;
        drop(st);
        self.cv.notify_all();
        true
    }

    /// Renew the lease if `owner` holds the lock. Called on every frame
    /// received from a connection (any frame renews) and again after a
    /// session verb completes, so a single op that legitimately runs
    /// longer than the lease interval still counts as liveness.
    /// Returns whether a renewal happened.
    pub fn touch(&self, owner: u64) -> bool {
        let mut st = self.lock();
        if st.holder == Some(owner) {
            st.renewed_at = Some(Instant::now());
            true
        } else {
            false
        }
    }

    /// The holder whose lease has lapsed (no frame for longer than
    /// `lease`), if any. A cheap peek for the reaper; the authoritative
    /// re-check is [`reap_if_expired`](Self::reap_if_expired).
    pub fn expired_holder(&self, lease: Duration) -> Option<u64> {
        let st = self.lock();
        match (st.holder, st.renewed_at) {
            (Some(h), Some(t)) if t.elapsed() > lease => Some(h),
            _ => None,
        }
    }

    /// Atomically re-verify that `owner` still holds the lock with a
    /// lapsed lease, and if so take the lock away: the holder slot is
    /// cleared, `owner` joins the expired set (its next session frame
    /// gets `LeaseExpired`), and the queue head is woken.
    ///
    /// The caller (the reaper) must hold the manager mutex across this
    /// call *and* the session rollback that follows, so the next writer —
    /// who may win the lock the moment this returns — blocks on the
    /// manager until the abandoned session is fully rolled back.
    pub fn reap_if_expired(&self, owner: u64, lease: Duration) -> bool {
        let mut st = self.lock();
        let lapsed = matches!(
            (st.holder, st.renewed_at),
            (Some(h), Some(t)) if h == owner && t.elapsed() > lease
        );
        if !lapsed {
            return false;
        }
        st.holder = None;
        st.renewed_at = None;
        st.expired.insert(owner);
        drop(st);
        self.cv.notify_all();
        true
    }

    /// Consume `owner`'s pending lease-expiry notification, if present.
    /// The first session frame after a reap sees `true` (→ typed
    /// `LeaseExpired`); later frames see a normal no-session state.
    pub fn take_expired(&self, owner: u64) -> bool {
        self.lock().expired.remove(&owner)
    }

    /// Lease age of the current holder (diagnostics).
    pub fn lease_age(&self) -> Option<Duration> {
        self.lock().renewed_at.map(|t| t.elapsed())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const LONG: Duration = Duration::from_secs(5);
    const SHORT: Duration = Duration::from_millis(30);

    #[test]
    fn grant_reacquire_release() {
        let l = SessionLock::new();
        assert_eq!(l.acquire(1, SHORT), Acquire::Granted);
        assert!(l.held_by(1));
        assert_eq!(l.acquire(1, SHORT), Acquire::Granted, "re-entrant grant");
        assert!(l.release(1));
        assert!(!l.release(1), "double release is a no-op");
        assert!(!l.held_by(1));
    }

    #[test]
    fn timeout_reports_holder_and_queue_depth() {
        let l = SessionLock::new();
        assert_eq!(l.acquire(7, LONG), Acquire::Granted);
        match l.acquire(8, SHORT) {
            Acquire::Busy { holder, waiters } => {
                assert_eq!(holder, 7);
                assert_eq!(waiters, 0);
            }
            Acquire::Granted => panic!("lock was held"),
        }
        // The timed-out waiter left no queue residue.
        assert_eq!(l.waiters(), 0);
    }

    #[test]
    fn fifo_order_is_respected() {
        let l = Arc::new(SessionLock::new());
        assert_eq!(l.acquire(0, LONG), Acquire::Granted);

        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for id in 1..=3u64 {
            let l = l.clone();
            let order = order.clone();
            handles.push(std::thread::spawn(move || {
                // Stagger arrivals so queue order is deterministic.
                std::thread::sleep(Duration::from_millis(20 * id));
                assert_eq!(l.acquire(id, LONG), Acquire::Granted);
                order.lock().unwrap().push(id);
                std::thread::sleep(Duration::from_millis(5));
                l.release(id);
            }));
        }
        // Let all three enqueue, then start the chain.
        std::thread::sleep(Duration::from_millis(120));
        l.release(0);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn lease_touch_reap_and_expiry_notification() {
        let l = SessionLock::new();
        let lease = Duration::from_millis(40);
        assert_eq!(l.acquire(1, SHORT), Acquire::Granted);
        assert_eq!(l.expired_holder(lease), None, "fresh lease");

        // Touching within the lease keeps the holder alive.
        std::thread::sleep(Duration::from_millis(25));
        assert!(l.touch(1));
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(l.expired_holder(lease), None, "renewed at lease/2 cadence");

        // Silence past the lease: peek sees it, reap takes the lock.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(l.expired_holder(lease), Some(1));
        assert!(l.reap_if_expired(1, lease));
        assert!(!l.held_by(1));
        // One-shot notification: first take is true, second false.
        assert!(l.take_expired(1));
        assert!(!l.take_expired(1));
        // The lock is free for the next writer.
        assert_eq!(l.acquire(2, SHORT), Acquire::Granted);
        // Reaping a non-holder (or a renewed holder) is refused.
        assert!(!l.reap_if_expired(1, lease));
        assert!(!l.reap_if_expired(2, lease), "fresh lease must not reap");
        // A non-holder cannot renew.
        assert!(!l.touch(1));
    }

    #[test]
    fn reap_wakes_a_fifo_waiter() {
        let l = Arc::new(SessionLock::new());
        let lease = Duration::from_millis(30);
        assert_eq!(l.acquire(1, SHORT), Acquire::Granted);
        let waiter = {
            let l = l.clone();
            std::thread::spawn(move || l.acquire(2, LONG))
        };
        std::thread::sleep(Duration::from_millis(60));
        assert!(l.reap_if_expired(1, lease));
        assert_eq!(waiter.join().unwrap(), Acquire::Granted);
        assert!(l.held_by(2));
    }

    #[test]
    fn mid_queue_timeout_unblocks_head() {
        let l = Arc::new(SessionLock::new());
        assert_eq!(l.acquire(0, LONG), Acquire::Granted);
        let head = {
            let l = l.clone();
            std::thread::spawn(move || l.acquire(1, LONG))
        };
        std::thread::sleep(Duration::from_millis(30));
        // Second waiter with a short fuse behind the head.
        let tail = {
            let l = l.clone();
            std::thread::spawn(move || l.acquire(2, SHORT))
        };
        let busy = tail.join().unwrap();
        assert!(matches!(busy, Acquire::Busy { holder: 0, .. }));
        l.release(0);
        assert_eq!(head.join().unwrap(), Acquire::Granted);
        assert!(l.held_by(1));
    }
}
