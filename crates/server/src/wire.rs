//! `gom-wire/v1` — the request/response protocol of the schema service.
//!
//! Every message travels as one frame:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! where `crc` is the CRC-32 of the payload and the payload starts with a
//! one-byte tag. The framing is deliberately the same shape as the journal's
//! (`gom-store`), but the two formats are independent: the wire carries
//! *requests* in user vocabulary (type references as text, GOM source as
//! text), never interner indexes or journal records, so client and server
//! processes with different interning histories interoperate.
//!
//! The verb set mirrors the paper's session protocol plus the read-only
//! service verbs: `Bes` / `Op` / `Ees` / `Rollback` drive an evolution
//! session (single writer, FIFO queue), while `Query` / `Check` / `Lint` /
//! `Digest` run lock-free against the published epoch snapshot. Every
//! failure is a typed [`Reply::Error`]; a malformed or unlucky request can
//! never take the daemon down.
//!
//! The failure model adds three hostile-world verbs and replies:
//! `Renew` keeps an otherwise idle session's lease alive (any frame from
//! the holder renews implicitly), `Ees` carries an optional client-chosen
//! idempotency token echoed back in `Committed` (a retried commit whose
//! ack was lost is answered from the server's dedup cache, never applied
//! twice), and the server sheds excess connections with a structured
//! [`Reply::Overloaded`] instead of accepting-then-starving. A partial
//! frame that stalls past the per-connection I/O deadline is answered
//! with a typed `Timeout` error; a session whose lease the reaper expired
//! answers the zombie's next session frame with `LeaseExpired`.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Protocol version, exchanged implicitly by the frame format tag space.
pub const WIRE_VERSION: u32 = 1;

/// Upper bound on one frame payload (defensive: a corrupt length field
/// must not trigger a huge allocation).
pub const MAX_FRAME: u32 = 1 << 24; // 16 MiB

/// One evolution primitive carried by a [`Request::Op`] frame, in user
/// vocabulary (`Name@Schema` type references, GOM source text).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvolutionOp {
    /// Parse and lower GOM source into the session (or autocommit).
    Define(String),
    /// Add attribute `name : domain` to `ty`.
    AddAttr {
        /// Type reference (`Name@Schema`, builtin, or unique bare name).
        ty: String,
        /// Attribute name.
        name: String,
        /// Domain type reference.
        domain: String,
    },
    /// Delete attribute `name` from `ty`.
    DelAttr {
        /// Type reference.
        ty: String,
        /// Attribute name.
        name: String,
    },
    /// Delete a type with the given semantics
    /// (`restrict|reconnect|cascade|cascade-objects|orphan`).
    DelType {
        /// Type reference.
        ty: String,
        /// Deletion semantics keyword.
        semantics: String,
    },
}

/// A client request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Begin an evolution session (acquires the writer lock, FIFO).
    Bes,
    /// One evolution primitive — inside the session when the connection
    /// holds the writer lock, as a durable autocommit micro-session
    /// otherwise.
    Op(EvolutionOp),
    /// End the session: check; commit and publish a new epoch, or report
    /// violations (session stays open). `token`, when set, is a
    /// client-chosen idempotency token: the server remembers the committed
    /// `(epoch, changes)` under it, so a retried `Ees` whose ack was lost
    /// is answered from the cache instead of being applied twice.
    Ees {
        /// Optional idempotent-commit token (echoed in `Committed`).
        token: Option<u64>,
    },
    /// Roll the open session back and release the writer lock.
    Rollback,
    /// Datalog query against the published snapshot (lock-free).
    Query(String),
    /// Full consistency check against the published snapshot (lock-free).
    Check,
    /// Lint the published snapshot's schema base (lock-free).
    Lint,
    /// Service statistics: epoch, queue depth, obs table.
    Stats,
    /// The published snapshot's state digest (bit-identity testing).
    Digest,
    /// Ask the daemon to shut down gracefully.
    Shutdown,
    /// Pre-EES commit plan for the open session: impact footprint,
    /// breaking/non-breaking classification, `L06xx` diagnostics. Requires
    /// the writer lock (inspects the live session delta).
    Plan,
    /// Renew the session lease without doing any work. Any frame from the
    /// lock holder renews implicitly; `Renew` exists so an idle client
    /// (e.g. one waiting on user input mid-session) can keep its lease
    /// alive explicitly.
    Renew,
    /// Telemetry snapshot: vitals counters, per-verb latency histograms
    /// and the slow-request log, as one `gomd/metrics/v1` JSON payload
    /// (machine-readable counterpart of `Stats`). Lock-free.
    Metrics,
}

impl Request {
    /// The verb name, as used for per-verb latency histograms.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Bes => "bes",
            Request::Op(_) => "op",
            Request::Ees { .. } => "ees",
            Request::Rollback => "rollback",
            Request::Query(_) => "query",
            Request::Check => "check",
            Request::Lint => "lint",
            Request::Stats => "stats",
            Request::Digest => "digest",
            Request::Shutdown => "shutdown",
            Request::Plan => "plan",
            Request::Renew => "renew",
            Request::Metrics => "metrics",
        }
    }
}

/// Why a request failed, as a machine-readable class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The writer lock could not be acquired before the timeout.
    Busy,
    /// The request violates the session protocol (e.g. `Ees` without a
    /// session).
    Protocol,
    /// The request itself is invalid (unknown type, bad query syntax…).
    BadRequest,
    /// The server failed internally; the session (if any) is still open.
    Internal,
    /// A partial frame stalled past the per-connection I/O deadline; the
    /// server closed the connection after this reply.
    Timeout,
    /// The session lease expired and the reaper rolled the session back;
    /// the lock was released. Start over with a fresh `Bes`.
    LeaseExpired,
}

impl ErrorKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Busy => "busy",
            ErrorKind::Protocol => "protocol",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Internal => "internal",
            ErrorKind::Timeout => "timeout",
            ErrorKind::LeaseExpired => "lease-expired",
        }
    }

    /// Is a retry (with backoff) a sensible client reaction? `Busy` means
    /// the writer lock is contended; `Timeout` and `LeaseExpired` mean the
    /// client was too slow but the server state is clean again.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorKind::Busy | ErrorKind::Timeout | ErrorKind::LeaseExpired
        )
    }
}

/// A server reply frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Success, with a human-readable confirmation.
    Ok(String),
    /// The session committed and a new epoch was published.
    Committed {
        /// The epoch the commit published.
        epoch: u64,
        /// Number of changes in the session's net delta.
        changes: u64,
        /// The idempotency token of the `Ees` that committed (0 when the
        /// client sent none). A replayed duplicate-token commit echoes
        /// the original epoch/changes under the same token.
        token: u64,
    },
    /// The check found violations; the session stays open.
    Violations(Vec<String>),
    /// Tabular query output.
    Rows {
        /// Column names.
        names: Vec<String>,
        /// Rows, rendered.
        rows: Vec<Vec<String>>,
    },
    /// A typed failure. The connection stays usable (except after
    /// `Timeout`, which the server follows with a close).
    Error {
        /// Failure class.
        kind: ErrorKind,
        /// Human-readable description.
        message: String,
    },
    /// The server is at its connection bound and shed this connection
    /// before reading any request; it closes the connection right after
    /// this frame. Retry with backoff.
    Overloaded {
        /// Connections being served when this one was shed.
        active: u64,
        /// The configured connection bound.
        max: u64,
    },
}

impl Reply {
    /// Convenience constructor for error replies.
    pub fn err(kind: ErrorKind, message: impl Into<String>) -> Reply {
        Reply::Error {
            kind,
            message: message.into(),
        }
    }
}

/// A frame that could not be decoded.
#[derive(Debug)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gom-wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for std::io::Error {
    fn from(e: WireError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

type WireResult<T> = Result<T, WireError>;

fn corrupt(what: &str) -> WireError {
    WireError(what.to_string())
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE), bit-reflected — the same polynomial as the journal.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let mut head = [0u8; 8];
    head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut head = [0u8; 8];
    let mut got = 0;
    while got < head.len() {
        match r.read(&mut head[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "torn frame header",
                ));
            }
            Ok(n) => got += n,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
    let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if len > MAX_FRAME {
        return Err(WireError(format!("frame length {len} out of bounds")).into());
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(corrupt("frame CRC mismatch").into());
    }
    Ok(Some(payload))
}

/// Outcome of a deadline-aware frame read (see [`read_frame_deadline`]).
#[derive(Debug)]
pub enum ReadEvent {
    /// A complete, CRC-verified frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// A frame started arriving but did not complete within the deadline
    /// (a slow-loris partial frame). The stream is desynchronised; the
    /// caller should reply `Timeout` and close.
    Stalled,
    /// No frame had started and `keep_waiting` returned false (shutdown).
    Aborted,
}

/// Read one frame with a per-frame completion deadline.
///
/// The stream must have a short read timeout set (the poll tick): idle
/// waiting for the *first* byte of a frame is unbounded — an interactive
/// client may sit idle as long as it likes — but once any byte of a frame
/// has arrived, the rest must arrive within `frame_deadline` or the read
/// resolves to [`ReadEvent::Stalled`]. `keep_waiting` is consulted on
/// every idle poll tick; returning false aborts the wait (shutdown).
///
/// Errors are protocol failures (torn header mid-stream, CRC mismatch,
/// oversized length) or real I/O errors — never `WouldBlock`/`TimedOut`,
/// which this loop absorbs.
pub fn read_frame_deadline(
    r: &mut impl Read,
    frame_deadline: Duration,
    mut keep_waiting: impl FnMut() -> bool,
) -> std::io::Result<ReadEvent> {
    let mut head = [0u8; 8];
    let mut got = 0usize;
    let mut payload: Vec<u8> = Vec::new();
    let mut payload_len: Option<usize> = None;
    let mut filled = 0usize;
    let mut started: Option<Instant> = None;

    loop {
        let mut wait_outcome = |started: &Option<Instant>| -> Option<ReadEvent> {
            match started {
                Some(t0) if t0.elapsed() >= frame_deadline => Some(ReadEvent::Stalled),
                Some(_) => None,
                None if !keep_waiting() => Some(ReadEvent::Aborted),
                None => None,
            }
        };
        if payload_len.is_none() {
            // Header phase.
            match r.read(&mut head[got..]) {
                Ok(0) => {
                    if got == 0 {
                        return Ok(ReadEvent::Closed);
                    }
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "torn frame header",
                    ));
                }
                Ok(n) => {
                    if started.is_none() {
                        started = Some(Instant::now());
                    }
                    got += n;
                    if got == head.len() {
                        let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
                        if len > MAX_FRAME {
                            return Err(
                                WireError(format!("frame length {len} out of bounds")).into()
                            );
                        }
                        payload = vec![0u8; len as usize];
                        payload_len = Some(len as usize);
                        filled = 0;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if let Some(ev) = wait_outcome(&started) {
                        return Ok(ev);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            continue;
        }
        // Payload phase (len may be 0: fall through to the CRC check).
        let len = payload.len();
        if filled < len {
            match r.read(&mut payload[filled..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "torn frame payload",
                    ));
                }
                Ok(n) => {
                    filled += n;
                    continue;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if let Some(ev) = wait_outcome(&started) {
                        return Ok(ev);
                    }
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
        if crc32(&payload) != crc {
            return Err(corrupt("frame CRC mismatch").into());
        }
        return Ok(ReadEvent::Frame(payload));
    }
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

const REQ_BES: u8 = 1;
const REQ_OP: u8 = 2;
const REQ_EES: u8 = 3;
const REQ_ROLLBACK: u8 = 4;
const REQ_QUERY: u8 = 5;
const REQ_CHECK: u8 = 6;
const REQ_LINT: u8 = 7;
const REQ_STATS: u8 = 8;
const REQ_DIGEST: u8 = 9;
const REQ_SHUTDOWN: u8 = 10;
const REQ_PLAN: u8 = 11;
const REQ_RENEW: u8 = 12;
const REQ_METRICS: u8 = 13;

/// Tag opening a request-id envelope: `[0xE1][req_id: u64 LE][request]`.
/// Far outside the verb tag space so a bare request can never be mistaken
/// for an envelope (and vice versa).
const REQ_ENVELOPE: u8 = 0xE1;

const OP_DEFINE: u8 = 1;
const OP_ADD_ATTR: u8 = 2;
const OP_DEL_ATTR: u8 = 3;
const OP_DEL_TYPE: u8 = 4;

const REP_OK: u8 = 1;
const REP_COMMITTED: u8 = 2;
const REP_VIOLATIONS: u8 = 3;
const REP_ROWS: u8 = 4;
const REP_ERROR: u8 = 5;
const REP_OVERLOADED: u8 = 6;

const ERR_BUSY: u8 = 1;
const ERR_PROTOCOL: u8 = 2;
const ERR_BAD_REQUEST: u8 = 3;
const ERR_INTERNAL: u8 = 4;
const ERR_TIMEOUT: u8 = 5;
const ERR_LEASE_EXPIRED: u8 = 6;

fn put_u32(out: &mut Vec<u8>, n: u32) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, n: u64) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_str_list(out: &mut Vec<u8>, items: &[String]) {
    put_u32(out, items.len() as u32);
    for s in items {
        put_str(out, s);
    }
}

/// Cursor over a payload with bounds-checked reads.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt("payload truncated"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> WireResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> WireResult<u64> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    fn string(&mut self) -> WireResult<String> {
        let len = self.u32()?;
        if len > MAX_FRAME {
            return Err(corrupt("string length out of bounds"));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string is not valid UTF-8"))
    }

    fn str_list(&mut self) -> WireResult<Vec<String>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(self.string()?);
        }
        Ok(out)
    }

    fn done(&self) -> WireResult<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(corrupt("trailing bytes in payload"))
        }
    }
}

impl Request {
    /// Encode the request payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Bes => out.push(REQ_BES),
            Request::Ees { token } => {
                out.push(REQ_EES);
                match token {
                    Some(t) => {
                        out.push(1);
                        put_u64(&mut out, *t);
                    }
                    None => out.push(0),
                }
            }
            Request::Rollback => out.push(REQ_ROLLBACK),
            Request::Check => out.push(REQ_CHECK),
            Request::Lint => out.push(REQ_LINT),
            Request::Stats => out.push(REQ_STATS),
            Request::Digest => out.push(REQ_DIGEST),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
            Request::Plan => out.push(REQ_PLAN),
            Request::Renew => out.push(REQ_RENEW),
            Request::Metrics => out.push(REQ_METRICS),
            Request::Query(q) => {
                out.push(REQ_QUERY);
                put_str(&mut out, q);
            }
            Request::Op(op) => {
                out.push(REQ_OP);
                match op {
                    EvolutionOp::Define(src) => {
                        out.push(OP_DEFINE);
                        put_str(&mut out, src);
                    }
                    EvolutionOp::AddAttr { ty, name, domain } => {
                        out.push(OP_ADD_ATTR);
                        put_str(&mut out, ty);
                        put_str(&mut out, name);
                        put_str(&mut out, domain);
                    }
                    EvolutionOp::DelAttr { ty, name } => {
                        out.push(OP_DEL_ATTR);
                        put_str(&mut out, ty);
                        put_str(&mut out, name);
                    }
                    EvolutionOp::DelType { ty, semantics } => {
                        out.push(OP_DEL_TYPE);
                        put_str(&mut out, ty);
                        put_str(&mut out, semantics);
                    }
                }
            }
        }
        out
    }

    /// Decode a request payload.
    pub fn decode(payload: &[u8]) -> WireResult<Request> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            REQ_BES => Request::Bes,
            REQ_EES => {
                let token = match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    _ => return Err(corrupt("bad ees token flag")),
                };
                Request::Ees { token }
            }
            REQ_ROLLBACK => Request::Rollback,
            REQ_CHECK => Request::Check,
            REQ_LINT => Request::Lint,
            REQ_STATS => Request::Stats,
            REQ_DIGEST => Request::Digest,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_PLAN => Request::Plan,
            REQ_RENEW => Request::Renew,
            REQ_METRICS => Request::Metrics,
            REQ_QUERY => Request::Query(r.string()?),
            REQ_OP => {
                let op = match r.u8()? {
                    OP_DEFINE => EvolutionOp::Define(r.string()?),
                    OP_ADD_ATTR => EvolutionOp::AddAttr {
                        ty: r.string()?,
                        name: r.string()?,
                        domain: r.string()?,
                    },
                    OP_DEL_ATTR => EvolutionOp::DelAttr {
                        ty: r.string()?,
                        name: r.string()?,
                    },
                    OP_DEL_TYPE => EvolutionOp::DelType {
                        ty: r.string()?,
                        semantics: r.string()?,
                    },
                    _ => return Err(corrupt("unknown op tag")),
                };
                Request::Op(op)
            }
            _ => return Err(corrupt("unknown request tag")),
        };
        r.done()?;
        Ok(req)
    }

    /// Encode the request wrapped in a request-id envelope
    /// (`[0xE1][req_id u64][request payload]`). Id 0 means "unassigned"
    /// and encodes as the bare request, so an id-less client and an
    /// id-aware client emit byte-identical frames for id 0.
    pub fn encode_with_id(&self, req_id: u64) -> Vec<u8> {
        if req_id == 0 {
            return self.encode();
        }
        let mut out = Vec::new();
        out.push(REQ_ENVELOPE);
        put_u64(&mut out, req_id);
        out.extend_from_slice(&self.encode());
        out
    }

    /// Decode a request payload that may or may not carry a request-id
    /// envelope. Bare requests (old clients, id-less tools) decode with
    /// id 0; enveloped requests yield the client-assigned id. The server
    /// always decodes through this so both wire dialects interoperate.
    pub fn decode_with_id(payload: &[u8]) -> WireResult<(u64, Request)> {
        if payload.first() == Some(&REQ_ENVELOPE) {
            let mut r = Reader::new(&payload[1..]);
            let req_id = r.u64()?;
            let req = Request::decode(&payload[1 + 8..])?;
            Ok((req_id, req))
        } else {
            Ok((0, Request::decode(payload)?))
        }
    }
}

impl Reply {
    /// Encode the reply payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Reply::Ok(msg) => {
                out.push(REP_OK);
                put_str(&mut out, msg);
            }
            Reply::Committed {
                epoch,
                changes,
                token,
            } => {
                out.push(REP_COMMITTED);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *changes);
                put_u64(&mut out, *token);
            }
            Reply::Overloaded { active, max } => {
                out.push(REP_OVERLOADED);
                put_u64(&mut out, *active);
                put_u64(&mut out, *max);
            }
            Reply::Violations(v) => {
                out.push(REP_VIOLATIONS);
                put_str_list(&mut out, v);
            }
            Reply::Rows { names, rows } => {
                out.push(REP_ROWS);
                put_str_list(&mut out, names);
                put_u32(&mut out, rows.len() as u32);
                for row in rows {
                    put_str_list(&mut out, row);
                }
            }
            Reply::Error { kind, message } => {
                out.push(REP_ERROR);
                out.push(match kind {
                    ErrorKind::Busy => ERR_BUSY,
                    ErrorKind::Protocol => ERR_PROTOCOL,
                    ErrorKind::BadRequest => ERR_BAD_REQUEST,
                    ErrorKind::Internal => ERR_INTERNAL,
                    ErrorKind::Timeout => ERR_TIMEOUT,
                    ErrorKind::LeaseExpired => ERR_LEASE_EXPIRED,
                });
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Decode a reply payload.
    pub fn decode(payload: &[u8]) -> WireResult<Reply> {
        let mut r = Reader::new(payload);
        let rep = match r.u8()? {
            REP_OK => Reply::Ok(r.string()?),
            REP_COMMITTED => Reply::Committed {
                epoch: r.u64()?,
                changes: r.u64()?,
                token: r.u64()?,
            },
            REP_OVERLOADED => Reply::Overloaded {
                active: r.u64()?,
                max: r.u64()?,
            },
            REP_VIOLATIONS => Reply::Violations(r.str_list()?),
            REP_ROWS => {
                let names = r.str_list()?;
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    rows.push(r.str_list()?);
                }
                Reply::Rows { names, rows }
            }
            REP_ERROR => {
                let kind = match r.u8()? {
                    ERR_BUSY => ErrorKind::Busy,
                    ERR_PROTOCOL => ErrorKind::Protocol,
                    ERR_BAD_REQUEST => ErrorKind::BadRequest,
                    ERR_INTERNAL => ErrorKind::Internal,
                    ERR_TIMEOUT => ErrorKind::Timeout,
                    ERR_LEASE_EXPIRED => ErrorKind::LeaseExpired,
                    _ => return Err(corrupt("unknown error kind")),
                };
                Reply::Error {
                    kind,
                    message: r.string()?,
                }
            }
            _ => return Err(corrupt("unknown reply tag")),
        };
        r.done()?;
        Ok(rep)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    fn roundtrip_rep(rep: Reply) {
        assert_eq!(Reply::decode(&rep.encode()).unwrap(), rep);
    }

    /// Every request variant, including the failure-model verbs — the
    /// exemplar set shared by the roundtrip, truncation, and mutation
    /// sweeps.
    fn all_requests() -> Vec<Request> {
        vec![
            Request::Bes,
            Request::Ees { token: None },
            Request::Ees {
                token: Some(0xDEAD_BEEF_0BAD_F00D),
            },
            Request::Rollback,
            Request::Check,
            Request::Lint,
            Request::Stats,
            Request::Digest,
            Request::Shutdown,
            Request::Plan,
            Request::Renew,
            Request::Metrics,
            Request::Query("Type(T, N, S)".into()),
            Request::Op(EvolutionOp::Define("schema S is end schema S;".into())),
            Request::Op(EvolutionOp::AddAttr {
                ty: "Car@CarSchema".into(),
                name: "fuelType".into(),
                domain: "string".into(),
            }),
            Request::Op(EvolutionOp::DelAttr {
                ty: "Car@CarSchema".into(),
                name: "λ-unicode".into(),
            }),
            Request::Op(EvolutionOp::DelType {
                ty: "Truck".into(),
                semantics: "cascade".into(),
            }),
        ]
    }

    /// Every reply variant, including `Overloaded` and the new error kinds.
    fn all_replies() -> Vec<Reply> {
        let mut reps = vec![
            Reply::Ok("BES".into()),
            Reply::Committed {
                epoch: 42,
                changes: 7,
                token: 0,
            },
            Reply::Committed {
                epoch: 43,
                changes: 1,
                token: u64::MAX,
            },
            Reply::Overloaded {
                active: 256,
                max: 256,
            },
            Reply::Violations(vec!["v1".into(), "v2".into()]),
            Reply::Rows {
                names: vec!["T".into(), "N".into()],
                rows: vec![
                    vec!["tid1".into(), "Car".into()],
                    vec![String::new(), "λ".into()],
                ],
            },
        ];
        for kind in [
            ErrorKind::Busy,
            ErrorKind::Protocol,
            ErrorKind::BadRequest,
            ErrorKind::Internal,
            ErrorKind::Timeout,
            ErrorKind::LeaseExpired,
        ] {
            reps.push(Reply::err(kind, "boom"));
        }
        reps
    }

    #[test]
    fn all_requests_roundtrip() {
        for req in all_requests() {
            roundtrip_req(req);
        }
    }

    #[test]
    fn all_replies_roundtrip() {
        for rep in all_replies() {
            roundtrip_rep(rep);
        }
    }

    /// Deterministic xorshift-style generator for the mutation sweep.
    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Decoder never-panic property sweep: for every variant, (a) every
    /// strict truncation is a typed error, never a panic, and (b) ≥64
    /// seeded random single- and multi-byte mutations decode to either a
    /// typed error or some other valid value — the decoder must survive
    /// arbitrary bytes without panicking or over-allocating.
    #[test]
    fn decoder_survives_truncation_and_mutation() {
        let mut rng = SplitMix64(0x0C0F_FEE0_5EED);
        let mut sweep = |payload: Vec<u8>, decode: &dyn Fn(&[u8]) -> bool| {
            // Truncation at every byte offset: strictly shorter payloads
            // must be rejected (every variant encodes its exact length).
            for cut in 0..payload.len() {
                assert!(
                    !decode(&payload[..cut]),
                    "truncation at {cut}/{} decoded",
                    payload.len()
                );
            }
            // ≥64 random mutations: flip 1–4 bytes anywhere. The result
            // may decode (a flipped byte inside string content is still a
            // valid string) — the property is "returns, never panics".
            for _ in 0..64 {
                let mut bad = payload.clone();
                if bad.is_empty() {
                    continue;
                }
                let flips = 1 + (rng.next() as usize % 4);
                for _ in 0..flips {
                    let pos = rng.next() as usize % bad.len();
                    bad[pos] ^= (rng.next() % 255 + 1) as u8;
                }
                let _ = decode(&bad);
                // Random suffix extension must also never panic.
                let extra = rng.next() as usize % 16;
                for _ in 0..extra {
                    bad.push(rng.next() as u8);
                }
                let _ = decode(&bad);
            }
        };
        for req in all_requests() {
            sweep(req.encode(), &|b| Request::decode(b).is_ok());
            // The enveloped form must satisfy the same property.
            sweep(req.encode_with_id(0x1D_2D3D), &|b| {
                Request::decode_with_id(b).is_ok()
            });
        }
        for rep in all_replies() {
            sweep(rep.encode(), &|b| Reply::decode(b).is_ok());
        }
        // Pure noise payloads of every small length.
        for len in 0..128usize {
            let noise: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            let _ = Request::decode(&noise);
            let _ = Reply::decode(&noise);
        }
    }

    #[test]
    fn request_id_envelope_roundtrips_and_interoperates() {
        for req in all_requests() {
            // Enveloped form carries the id through.
            let (id, back) = Request::decode_with_id(&req.encode_with_id(77)).unwrap();
            assert_eq!(id, 77);
            assert_eq!(back, req);
            // A bare request decodes with id 0 — old clients keep working.
            let (id, back) = Request::decode_with_id(&req.encode()).unwrap();
            assert_eq!(id, 0);
            assert_eq!(back, req);
            // Id 0 encodes as the bare form (no envelope overhead).
            assert_eq!(req.encode_with_id(0), req.encode());
            // And u64::MAX survives.
            let (id, _) = Request::decode_with_id(&req.encode_with_id(u64::MAX)).unwrap();
            assert_eq!(id, u64::MAX);
        }
        // An envelope with nothing inside is a typed error.
        let mut bad = vec![0xE1u8];
        bad.extend_from_slice(&7u64.to_le_bytes());
        assert!(Request::decode_with_id(&bad).is_err());
        // The plain decoder rejects the envelope tag (it is not a verb).
        assert!(Request::decode(&Request::Bes.encode_with_id(9)).is_err());
    }

    #[test]
    fn frames_roundtrip_and_reject_corruption() {
        let payload = Request::Query("Attr(T, N, D)".into()).encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf.clone());
        let got = read_frame(&mut cursor).unwrap().expect("frame");
        assert_eq!(got, payload);
        // Clean EOF at a boundary.
        assert!(read_frame(&mut cursor).unwrap().is_none());
        // A flipped payload byte fails the CRC.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        let mut cursor = std::io::Cursor::new(bad);
        assert!(read_frame(&mut cursor).is_err());
        // A torn header is an error, not a hang or a panic.
        let mut cursor = std::io::Cursor::new(buf[..5].to_vec());
        assert!(read_frame(&mut cursor).is_err());
        // An oversized length field is rejected before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = std::io::Cursor::new(huge);
        assert!(read_frame(&mut cursor).is_err());
    }

    /// A reader that yields its script of results one at a time, then
    /// `WouldBlock` forever — models a socket with a read timeout.
    struct ScriptedReader {
        chunks: Vec<Vec<u8>>,
        next: usize,
    }

    impl std::io::Read for ScriptedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.next >= self.chunks.len() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "no more scripted bytes",
                ));
            }
            let chunk = &self.chunks[self.next];
            let n = chunk.len().min(buf.len());
            buf[..n].copy_from_slice(&chunk[..n]);
            if n == chunk.len() {
                self.next += 1;
            } else {
                self.chunks[self.next] = chunk[n..].to_vec();
            }
            Ok(n)
        }
    }

    #[test]
    fn deadline_reader_reassembles_dribbled_frames() {
        let payload = Request::Query("Attr(T, N, D)".into()).encode();
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        // Dribble one byte per read with WouldBlock ticks in between.
        let mut r = ScriptedReader {
            chunks: framed.iter().map(|b| vec![*b]).collect(),
            next: 0,
        };
        match read_frame_deadline(&mut r, Duration::from_secs(5), || true).unwrap() {
            ReadEvent::Frame(got) => assert_eq!(got, payload),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn deadline_reader_stalls_a_slow_loris_partial_frame() {
        let payload = Request::Bes.encode();
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        // Only the first 5 bytes ever arrive: a partial header, then
        // silence. The read must resolve to Stalled, not loop forever.
        let mut r = ScriptedReader {
            chunks: vec![framed[..5].to_vec()],
            next: 0,
        };
        match read_frame_deadline(&mut r, Duration::from_millis(20), || true).unwrap() {
            ReadEvent::Stalled => {}
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn deadline_reader_idles_then_aborts_on_shutdown() {
        // No bytes at all: keep_waiting=false resolves to Aborted without
        // any deadline involvement (idle connections may wait forever).
        let mut r = ScriptedReader {
            chunks: vec![],
            next: 0,
        };
        let mut polls = 0;
        let ev = read_frame_deadline(&mut r, Duration::from_secs(600), || {
            polls += 1;
            polls < 3
        })
        .unwrap();
        assert!(matches!(ev, ReadEvent::Aborted), "got {ev:?}");
    }

    #[test]
    fn deadline_reader_rejects_corruption_and_eof() {
        let payload = Request::Check.encode();
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        // CRC flip.
        let mut bad = framed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        let mut r = ScriptedReader {
            chunks: vec![bad],
            next: 0,
        };
        assert!(read_frame_deadline(&mut r, Duration::from_secs(1), || true).is_err());
        // Clean close at a boundary.
        let mut r = std::io::Cursor::new(Vec::<u8>::new());
        match read_frame_deadline(&mut r, Duration::from_secs(1), || true).unwrap() {
            ReadEvent::Closed => {}
            other => panic!("expected closed, got {other:?}"),
        }
    }

    #[test]
    fn verbs_are_stable() {
        assert_eq!(Request::Bes.verb(), "bes");
        assert_eq!(Request::Query(String::new()).verb(), "query");
        assert_eq!(Request::Plan.verb(), "plan");
        assert_eq!(Request::Renew.verb(), "renew");
        assert_eq!(Request::Metrics.verb(), "metrics");
        assert_eq!(Request::Ees { token: Some(1) }.verb(), "ees");
        assert_eq!(ErrorKind::Busy.name(), "busy");
        assert_eq!(ErrorKind::Timeout.name(), "timeout");
        assert_eq!(ErrorKind::LeaseExpired.name(), "lease-expired");
        assert!(ErrorKind::Busy.retryable());
        assert!(!ErrorKind::BadRequest.retryable());
    }
}
