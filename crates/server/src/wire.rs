//! `gom-wire/v1` — the request/response protocol of the schema service.
//!
//! Every message travels as one frame:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! where `crc` is the CRC-32 of the payload and the payload starts with a
//! one-byte tag. The framing is deliberately the same shape as the journal's
//! (`gom-store`), but the two formats are independent: the wire carries
//! *requests* in user vocabulary (type references as text, GOM source as
//! text), never interner indexes or journal records, so client and server
//! processes with different interning histories interoperate.
//!
//! The verb set mirrors the paper's session protocol plus the read-only
//! service verbs: `Bes` / `Op` / `Ees` / `Rollback` drive an evolution
//! session (single writer, FIFO queue), while `Query` / `Check` / `Lint` /
//! `Digest` run lock-free against the published epoch snapshot. Every
//! failure is a typed [`Reply::Error`]; a malformed or unlucky request can
//! never take the daemon down.

use std::io::{Read, Write};

/// Protocol version, exchanged implicitly by the frame format tag space.
pub const WIRE_VERSION: u32 = 1;

/// Upper bound on one frame payload (defensive: a corrupt length field
/// must not trigger a huge allocation).
pub const MAX_FRAME: u32 = 1 << 24; // 16 MiB

/// One evolution primitive carried by a [`Request::Op`] frame, in user
/// vocabulary (`Name@Schema` type references, GOM source text).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvolutionOp {
    /// Parse and lower GOM source into the session (or autocommit).
    Define(String),
    /// Add attribute `name : domain` to `ty`.
    AddAttr {
        /// Type reference (`Name@Schema`, builtin, or unique bare name).
        ty: String,
        /// Attribute name.
        name: String,
        /// Domain type reference.
        domain: String,
    },
    /// Delete attribute `name` from `ty`.
    DelAttr {
        /// Type reference.
        ty: String,
        /// Attribute name.
        name: String,
    },
    /// Delete a type with the given semantics
    /// (`restrict|reconnect|cascade|cascade-objects|orphan`).
    DelType {
        /// Type reference.
        ty: String,
        /// Deletion semantics keyword.
        semantics: String,
    },
}

/// A client request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Begin an evolution session (acquires the writer lock, FIFO).
    Bes,
    /// One evolution primitive — inside the session when the connection
    /// holds the writer lock, as a durable autocommit micro-session
    /// otherwise.
    Op(EvolutionOp),
    /// End the session: check; commit and publish a new epoch, or report
    /// violations (session stays open).
    Ees,
    /// Roll the open session back and release the writer lock.
    Rollback,
    /// Datalog query against the published snapshot (lock-free).
    Query(String),
    /// Full consistency check against the published snapshot (lock-free).
    Check,
    /// Lint the published snapshot's schema base (lock-free).
    Lint,
    /// Service statistics: epoch, queue depth, obs table.
    Stats,
    /// The published snapshot's state digest (bit-identity testing).
    Digest,
    /// Ask the daemon to shut down gracefully.
    Shutdown,
    /// Pre-EES commit plan for the open session: impact footprint,
    /// breaking/non-breaking classification, `L06xx` diagnostics. Requires
    /// the writer lock (inspects the live session delta).
    Plan,
}

impl Request {
    /// The verb name, as used for per-verb latency histograms.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Bes => "bes",
            Request::Op(_) => "op",
            Request::Ees => "ees",
            Request::Rollback => "rollback",
            Request::Query(_) => "query",
            Request::Check => "check",
            Request::Lint => "lint",
            Request::Stats => "stats",
            Request::Digest => "digest",
            Request::Shutdown => "shutdown",
            Request::Plan => "plan",
        }
    }
}

/// Why a request failed, as a machine-readable class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The writer lock could not be acquired before the timeout.
    Busy,
    /// The request violates the session protocol (e.g. `Ees` without a
    /// session).
    Protocol,
    /// The request itself is invalid (unknown type, bad query syntax…).
    BadRequest,
    /// The server failed internally; the session (if any) is still open.
    Internal,
}

impl ErrorKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Busy => "busy",
            ErrorKind::Protocol => "protocol",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A server reply frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Success, with a human-readable confirmation.
    Ok(String),
    /// The session committed and a new epoch was published.
    Committed {
        /// The epoch the commit published.
        epoch: u64,
        /// Number of changes in the session's net delta.
        changes: u64,
    },
    /// The check found violations; the session stays open.
    Violations(Vec<String>),
    /// Tabular query output.
    Rows {
        /// Column names.
        names: Vec<String>,
        /// Rows, rendered.
        rows: Vec<Vec<String>>,
    },
    /// A typed failure. The connection stays usable.
    Error {
        /// Failure class.
        kind: ErrorKind,
        /// Human-readable description.
        message: String,
    },
}

impl Reply {
    /// Convenience constructor for error replies.
    pub fn err(kind: ErrorKind, message: impl Into<String>) -> Reply {
        Reply::Error {
            kind,
            message: message.into(),
        }
    }
}

/// A frame that could not be decoded.
#[derive(Debug)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gom-wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for std::io::Error {
    fn from(e: WireError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

type WireResult<T> = Result<T, WireError>;

fn corrupt(what: &str) -> WireError {
    WireError(what.to_string())
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE), bit-reflected — the same polynomial as the journal.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let mut head = [0u8; 8];
    head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut head = [0u8; 8];
    let mut got = 0;
    while got < head.len() {
        match r.read(&mut head[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "torn frame header",
                ));
            }
            Ok(n) => got += n,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
    let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if len > MAX_FRAME {
        return Err(WireError(format!("frame length {len} out of bounds")).into());
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(corrupt("frame CRC mismatch").into());
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

const REQ_BES: u8 = 1;
const REQ_OP: u8 = 2;
const REQ_EES: u8 = 3;
const REQ_ROLLBACK: u8 = 4;
const REQ_QUERY: u8 = 5;
const REQ_CHECK: u8 = 6;
const REQ_LINT: u8 = 7;
const REQ_STATS: u8 = 8;
const REQ_DIGEST: u8 = 9;
const REQ_SHUTDOWN: u8 = 10;
const REQ_PLAN: u8 = 11;

const OP_DEFINE: u8 = 1;
const OP_ADD_ATTR: u8 = 2;
const OP_DEL_ATTR: u8 = 3;
const OP_DEL_TYPE: u8 = 4;

const REP_OK: u8 = 1;
const REP_COMMITTED: u8 = 2;
const REP_VIOLATIONS: u8 = 3;
const REP_ROWS: u8 = 4;
const REP_ERROR: u8 = 5;

const ERR_BUSY: u8 = 1;
const ERR_PROTOCOL: u8 = 2;
const ERR_BAD_REQUEST: u8 = 3;
const ERR_INTERNAL: u8 = 4;

fn put_u32(out: &mut Vec<u8>, n: u32) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, n: u64) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_str_list(out: &mut Vec<u8>, items: &[String]) {
    put_u32(out, items.len() as u32);
    for s in items {
        put_str(out, s);
    }
}

/// Cursor over a payload with bounds-checked reads.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt("payload truncated"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> WireResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> WireResult<u64> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    fn string(&mut self) -> WireResult<String> {
        let len = self.u32()?;
        if len > MAX_FRAME {
            return Err(corrupt("string length out of bounds"));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string is not valid UTF-8"))
    }

    fn str_list(&mut self) -> WireResult<Vec<String>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(self.string()?);
        }
        Ok(out)
    }

    fn done(&self) -> WireResult<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(corrupt("trailing bytes in payload"))
        }
    }
}

impl Request {
    /// Encode the request payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Bes => out.push(REQ_BES),
            Request::Ees => out.push(REQ_EES),
            Request::Rollback => out.push(REQ_ROLLBACK),
            Request::Check => out.push(REQ_CHECK),
            Request::Lint => out.push(REQ_LINT),
            Request::Stats => out.push(REQ_STATS),
            Request::Digest => out.push(REQ_DIGEST),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
            Request::Plan => out.push(REQ_PLAN),
            Request::Query(q) => {
                out.push(REQ_QUERY);
                put_str(&mut out, q);
            }
            Request::Op(op) => {
                out.push(REQ_OP);
                match op {
                    EvolutionOp::Define(src) => {
                        out.push(OP_DEFINE);
                        put_str(&mut out, src);
                    }
                    EvolutionOp::AddAttr { ty, name, domain } => {
                        out.push(OP_ADD_ATTR);
                        put_str(&mut out, ty);
                        put_str(&mut out, name);
                        put_str(&mut out, domain);
                    }
                    EvolutionOp::DelAttr { ty, name } => {
                        out.push(OP_DEL_ATTR);
                        put_str(&mut out, ty);
                        put_str(&mut out, name);
                    }
                    EvolutionOp::DelType { ty, semantics } => {
                        out.push(OP_DEL_TYPE);
                        put_str(&mut out, ty);
                        put_str(&mut out, semantics);
                    }
                }
            }
        }
        out
    }

    /// Decode a request payload.
    pub fn decode(payload: &[u8]) -> WireResult<Request> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            REQ_BES => Request::Bes,
            REQ_EES => Request::Ees,
            REQ_ROLLBACK => Request::Rollback,
            REQ_CHECK => Request::Check,
            REQ_LINT => Request::Lint,
            REQ_STATS => Request::Stats,
            REQ_DIGEST => Request::Digest,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_PLAN => Request::Plan,
            REQ_QUERY => Request::Query(r.string()?),
            REQ_OP => {
                let op = match r.u8()? {
                    OP_DEFINE => EvolutionOp::Define(r.string()?),
                    OP_ADD_ATTR => EvolutionOp::AddAttr {
                        ty: r.string()?,
                        name: r.string()?,
                        domain: r.string()?,
                    },
                    OP_DEL_ATTR => EvolutionOp::DelAttr {
                        ty: r.string()?,
                        name: r.string()?,
                    },
                    OP_DEL_TYPE => EvolutionOp::DelType {
                        ty: r.string()?,
                        semantics: r.string()?,
                    },
                    _ => return Err(corrupt("unknown op tag")),
                };
                Request::Op(op)
            }
            _ => return Err(corrupt("unknown request tag")),
        };
        r.done()?;
        Ok(req)
    }
}

impl Reply {
    /// Encode the reply payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Reply::Ok(msg) => {
                out.push(REP_OK);
                put_str(&mut out, msg);
            }
            Reply::Committed { epoch, changes } => {
                out.push(REP_COMMITTED);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *changes);
            }
            Reply::Violations(v) => {
                out.push(REP_VIOLATIONS);
                put_str_list(&mut out, v);
            }
            Reply::Rows { names, rows } => {
                out.push(REP_ROWS);
                put_str_list(&mut out, names);
                put_u32(&mut out, rows.len() as u32);
                for row in rows {
                    put_str_list(&mut out, row);
                }
            }
            Reply::Error { kind, message } => {
                out.push(REP_ERROR);
                out.push(match kind {
                    ErrorKind::Busy => ERR_BUSY,
                    ErrorKind::Protocol => ERR_PROTOCOL,
                    ErrorKind::BadRequest => ERR_BAD_REQUEST,
                    ErrorKind::Internal => ERR_INTERNAL,
                });
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Decode a reply payload.
    pub fn decode(payload: &[u8]) -> WireResult<Reply> {
        let mut r = Reader::new(payload);
        let rep = match r.u8()? {
            REP_OK => Reply::Ok(r.string()?),
            REP_COMMITTED => Reply::Committed {
                epoch: r.u64()?,
                changes: r.u64()?,
            },
            REP_VIOLATIONS => Reply::Violations(r.str_list()?),
            REP_ROWS => {
                let names = r.str_list()?;
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    rows.push(r.str_list()?);
                }
                Reply::Rows { names, rows }
            }
            REP_ERROR => {
                let kind = match r.u8()? {
                    ERR_BUSY => ErrorKind::Busy,
                    ERR_PROTOCOL => ErrorKind::Protocol,
                    ERR_BAD_REQUEST => ErrorKind::BadRequest,
                    ERR_INTERNAL => ErrorKind::Internal,
                    _ => return Err(corrupt("unknown error kind")),
                };
                Reply::Error {
                    kind,
                    message: r.string()?,
                }
            }
            _ => return Err(corrupt("unknown reply tag")),
        };
        r.done()?;
        Ok(rep)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    fn roundtrip_rep(rep: Reply) {
        assert_eq!(Reply::decode(&rep.encode()).unwrap(), rep);
    }

    #[test]
    fn all_requests_roundtrip() {
        roundtrip_req(Request::Bes);
        roundtrip_req(Request::Ees);
        roundtrip_req(Request::Rollback);
        roundtrip_req(Request::Check);
        roundtrip_req(Request::Lint);
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Digest);
        roundtrip_req(Request::Shutdown);
        roundtrip_req(Request::Plan);
        roundtrip_req(Request::Query("Type(T, N, S)".into()));
        roundtrip_req(Request::Op(EvolutionOp::Define(
            "schema S is end schema S;".into(),
        )));
        roundtrip_req(Request::Op(EvolutionOp::AddAttr {
            ty: "Car@CarSchema".into(),
            name: "fuelType".into(),
            domain: "string".into(),
        }));
        roundtrip_req(Request::Op(EvolutionOp::DelAttr {
            ty: "Car@CarSchema".into(),
            name: "λ-unicode".into(),
        }));
        roundtrip_req(Request::Op(EvolutionOp::DelType {
            ty: "Truck".into(),
            semantics: "cascade".into(),
        }));
    }

    #[test]
    fn all_replies_roundtrip() {
        roundtrip_rep(Reply::Ok("BES".into()));
        roundtrip_rep(Reply::Committed {
            epoch: 42,
            changes: 7,
        });
        roundtrip_rep(Reply::Violations(vec!["v1".into(), "v2".into()]));
        roundtrip_rep(Reply::Rows {
            names: vec!["T".into(), "N".into()],
            rows: vec![
                vec!["tid1".into(), "Car".into()],
                vec![String::new(), "λ".into()],
            ],
        });
        for kind in [
            ErrorKind::Busy,
            ErrorKind::Protocol,
            ErrorKind::BadRequest,
            ErrorKind::Internal,
        ] {
            roundtrip_rep(Reply::err(kind, "boom"));
        }
    }

    #[test]
    fn truncated_payloads_error_not_panic() {
        let full = Request::Op(EvolutionOp::AddAttr {
            ty: "Car@S".into(),
            name: "a".into(),
            domain: "int".into(),
        })
        .encode();
        for cut in 0..full.len() {
            assert!(Request::decode(&full[..cut]).is_err(), "cut={cut}");
        }
        // Plan is a bare tag: the only strict prefix is the empty payload.
        let full = Request::Plan.encode();
        assert_eq!(full.len(), 1);
        assert!(Request::decode(&full[..0]).is_err());
        let full = Reply::Rows {
            names: vec!["X".into()],
            rows: vec![vec!["1".into()]],
        }
        .encode();
        for cut in 0..full.len() {
            assert!(Reply::decode(&full[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn frames_roundtrip_and_reject_corruption() {
        let payload = Request::Query("Attr(T, N, D)".into()).encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf.clone());
        let got = read_frame(&mut cursor).unwrap().expect("frame");
        assert_eq!(got, payload);
        // Clean EOF at a boundary.
        assert!(read_frame(&mut cursor).unwrap().is_none());
        // A flipped payload byte fails the CRC.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        let mut cursor = std::io::Cursor::new(bad);
        assert!(read_frame(&mut cursor).is_err());
        // A torn header is an error, not a hang or a panic.
        let mut cursor = std::io::Cursor::new(buf[..5].to_vec());
        assert!(read_frame(&mut cursor).is_err());
        // An oversized length field is rejected before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = std::io::Cursor::new(huge);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn verbs_are_stable() {
        assert_eq!(Request::Bes.verb(), "bes");
        assert_eq!(Request::Query(String::new()).verb(), "query");
        assert_eq!(Request::Plan.verb(), "plan");
        assert_eq!(ErrorKind::Busy.name(), "busy");
    }
}
