//! Deterministic fault-injecting proxy for gom-wire connections.
//!
//! [`FaultProxy`] sits between a client and a gomd socket and injects the
//! network's greatest hits into the byte stream, in the spirit of
//! gom-store's `FailpointWriter` but at the transport layer:
//!
//! * **delays** — a pump pauses before forwarding a chunk;
//! * **partial writes** — a chunk is forwarded in two pieces with a pause
//!   between them (exercises frame reassembly);
//! * **stalls** — a prefix is forwarded, the connection goes silent past
//!   the server's I/O deadline, then drops (exercises the slow-loris
//!   `Timeout` path);
//! * **mid-frame drops** — both directions are torn down wherever the
//!   stream happens to be (exercises hangup rollback and commit-ack loss);
//! * **byte corruption** — one byte is flipped (exercises the CRC gate
//!   and the typed `Protocol` close).
//!
//! Faults fire on both directions, so a commit can be *applied* while its
//! ack is lost — exactly the case idempotent EES tokens exist for.
//!
//! The schedule is derived from a seed ([`SplitMix64`]), per connection
//! and direction, so a sweep is reproducible run-to-run: the *decisions*
//! are a pure function of the seed and chunk index. (Chunk boundaries
//! depend on kernel buffering, so byte-exact fault positions may shift;
//! the harness asserts outcomes, not positions.)

use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// SplitMix64: tiny, seedable, no dependencies — the workspace's standard
/// offline PRNG (also used by the store fault-injection sweeps).
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits. (Named like the PRNG literature, not
    /// `Iterator::next` — an infinite generator has no `None`.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (`bound` ≥ 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// What the proxy may inject, and how often.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Master seed; every per-connection schedule derives from it.
    pub seed: u64,
    /// Percent chance (0–100) that a forwarded chunk draws a fault.
    pub fault_chance_pct: u64,
    /// Faults injected per connection direction before it goes clean —
    /// bounds each connection's misbehaviour so runs terminate.
    pub max_faults_per_conn: u64,
    /// Silent period of a stall fault; pick it longer than the server's
    /// I/O deadline to force the `Timeout` path.
    pub stall: Duration,
    /// Upper bound on an injected delay.
    pub delay_max: Duration,
}

impl FaultPlan {
    /// A moderately hostile plan for `seed`: 25% chunk fault chance,
    /// at most 2 faults per direction, 150 ms stalls, ≤20 ms delays.
    pub fn hostile(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fault_chance_pct: 25,
            max_faults_per_conn: 2,
            stall: Duration::from_millis(150),
            delay_max: Duration::from_millis(20),
        }
    }
}

/// Counts of injected faults, for coverage assertions.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Proxied connections accepted.
    pub connections: u64,
    /// Delay faults injected.
    pub delays: u64,
    /// Partial-write (split chunk) faults injected.
    pub partials: u64,
    /// Stall-then-drop faults injected.
    pub stalls: u64,
    /// Mid-stream drops injected.
    pub drops: u64,
    /// Byte corruptions injected.
    pub corruptions: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    delays: AtomicU64,
    partials: AtomicU64,
    stalls: AtomicU64,
    drops: AtomicU64,
    corruptions: AtomicU64,
}

/// A running fault proxy. Dropping the handle leaves threads running;
/// call [`FaultProxy::stop`].
pub struct FaultProxy {
    socket: PathBuf,
    stopping: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Listen on `socket` and forward every connection to `upstream`,
    /// injecting faults per `plan`.
    pub fn spawn(
        socket: impl Into<PathBuf>,
        upstream: impl Into<PathBuf>,
        plan: FaultPlan,
    ) -> std::io::Result<FaultProxy> {
        let socket = socket.into();
        let upstream = upstream.into();
        let _ = std::fs::remove_file(&socket);
        let listener = UnixListener::bind(&socket)?;
        let stopping = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept = {
            let stopping = stopping.clone();
            let counters = counters.clone();
            std::thread::Builder::new()
                .name("fault-proxy".into())
                .spawn(move || accept_loop(listener, upstream, plan, stopping, counters))?
        };
        Ok(FaultProxy {
            socket,
            stopping,
            counters,
            accept: Some(accept),
        })
    }

    /// The socket clients should dial.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Injected-fault counts so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            connections: self.counters.connections.load(Ordering::SeqCst),
            delays: self.counters.delays.load(Ordering::SeqCst),
            partials: self.counters.partials.load(Ordering::SeqCst),
            stalls: self.counters.stalls.load(Ordering::SeqCst),
            drops: self.counters.drops.load(Ordering::SeqCst),
            corruptions: self.counters.corruptions.load(Ordering::SeqCst),
        }
    }

    /// Stop accepting and tear the proxy down. Live proxied connections
    /// are severed.
    pub fn stop(mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Wake the blocking accept.
        let _ = UnixStream::connect(&self.socket);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn accept_loop(
    listener: UnixListener,
    upstream: PathBuf,
    plan: FaultPlan,
    stopping: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    let mut conn_idx: u64 = 0;
    let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let client = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => break,
        };
        if stopping.load(Ordering::SeqCst) {
            break;
        }
        let server = match UnixStream::connect(&upstream) {
            Ok(s) => s,
            // Upstream gone (shut down mid-sweep): sever the client too.
            Err(_) => continue,
        };
        counters.connections.fetch_add(1, Ordering::SeqCst);
        conn_idx += 1;
        // Both directions share a drop latch so a mid-frame drop severs
        // the whole proxied connection, like a real network partition.
        // The proxy-wide stopping flag feeds the same latch so stop()
        // can join pumps whose endpoints are both still alive.
        let dropped = Arc::new(AtomicBool::new(false));
        for (dir, from, to) in [
            (0u64, client.try_clone(), server.try_clone()),
            (1u64, server.try_clone(), client.try_clone()),
        ] {
            let (Ok(from), Ok(to)) = (from, to) else {
                continue;
            };
            let seed = SplitMix64::new(plan.seed ^ conn_idx.rotate_left(17) ^ dir).next();
            let plan = plan.clone();
            let counters = counters.clone();
            let dropped = dropped.clone();
            let stopping = stopping.clone();
            if let Ok(h) = std::thread::Builder::new()
                .name(format!("fault-pump-{conn_idx}-{dir}"))
                .spawn(move || pump(from, to, seed, plan, counters, dropped, stopping))
            {
                pumps.push(h);
            }
        }
    }
    // Severing is enough; pumps exit on their next read/write error.
    for p in pumps {
        let _ = p.join();
    }
}

/// Forward bytes `from` → `to`, injecting planned faults. Exits on EOF,
/// error, or after injecting a drop.
#[allow(clippy::too_many_arguments)]
fn pump(
    mut from: UnixStream,
    mut to: UnixStream,
    seed: u64,
    plan: FaultPlan,
    counters: Arc<Counters>,
    dropped: Arc<AtomicBool>,
    stopping: Arc<AtomicBool>,
) {
    let mut rng = SplitMix64::new(seed);
    let mut faults_left = plan.max_faults_per_conn;
    let mut buf = [0u8; 4096];
    // A short read timeout so the pump notices the shared drop latch and
    // the proxy-wide stop flag.
    let _ = from.set_read_timeout(Some(Duration::from_millis(25)));
    loop {
        if dropped.load(Ordering::SeqCst) || stopping.load(Ordering::SeqCst) {
            sever(&from, &to);
            return;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => {
                sever(&from, &to);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => {
                sever(&from, &to);
                return;
            }
        };
        let chunk = &mut buf[..n];
        let fault = faults_left > 0 && rng.below(100) < plan.fault_chance_pct;
        if !fault {
            if to.write_all(chunk).is_err() {
                sever(&from, &to);
                return;
            }
            continue;
        }
        faults_left -= 1;
        match rng.below(100) {
            // Delay: pause, then forward intact.
            0..=39 => {
                counters.delays.fetch_add(1, Ordering::SeqCst);
                let nanos = plan.delay_max.as_nanos().max(1) as u64;
                std::thread::sleep(Duration::from_nanos(1 + rng.below(nanos)));
                if to.write_all(chunk).is_err() {
                    sever(&from, &to);
                    return;
                }
            }
            // Partial write: split the chunk, breathe, send the rest.
            40..=64 => {
                counters.partials.fetch_add(1, Ordering::SeqCst);
                let cut = 1 + rng.below(n.max(2) as u64 - 1) as usize;
                let ok = to.write_all(&chunk[..cut]).is_ok() && {
                    std::thread::sleep(Duration::from_millis(1 + rng.below(10)));
                    to.write_all(&chunk[cut..]).is_ok()
                };
                if !ok {
                    sever(&from, &to);
                    return;
                }
            }
            // Corruption: flip one byte, let CRC catch it downstream.
            65..=84 => {
                counters.corruptions.fetch_add(1, Ordering::SeqCst);
                let at = rng.below(n as u64) as usize;
                chunk[at] ^= 1 << rng.below(8);
                if to.write_all(chunk).is_err() {
                    sever(&from, &to);
                    return;
                }
            }
            // Stall: forward a prefix, go silent past the I/O deadline,
            // then drop the whole proxied connection.
            85..=92 => {
                counters.stalls.fetch_add(1, Ordering::SeqCst);
                let cut = 1 + rng.below(n.max(2) as u64 - 1) as usize;
                let _ = to.write_all(&chunk[..cut]);
                std::thread::sleep(plan.stall);
                dropped.store(true, Ordering::SeqCst);
                sever(&from, &to);
                return;
            }
            // Mid-frame drop: sever immediately, chunk unsent.
            _ => {
                counters.drops.fetch_add(1, Ordering::SeqCst);
                dropped.store(true, Ordering::SeqCst);
                sever(&from, &to);
                return;
            }
        }
    }
}

fn sever(a: &UnixStream, b: &UnixStream) {
    let _ = a.shutdown(std::net::Shutdown::Both);
    let _ = b.shutdown(std::net::Shutdown::Both);
}

/// Convenience for tests that need many proxies: a process-unique socket
/// path in the system temp directory.
pub fn scratch_socket(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    static LOCK: Mutex<()> = Mutex::new(());
    let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let n = NEXT.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("gom-{tag}-{}-{n}.sock", std::process::id()))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next()).collect()
        };
        assert_eq!(a, b);
        let mut r = SplitMix64::new(43);
        let c: Vec<u64> = (0..8).map(|_| r.next()).collect();
        assert_ne!(a, c);
        // below() respects its bound.
        let mut r = SplitMix64::new(7);
        for bound in [1u64, 2, 10, 255] {
            for _ in 0..32 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn clean_plan_forwards_bytes_unchanged() {
        // fault_chance 0: the proxy must be a transparent pipe.
        let upstream_sock = scratch_socket("fp-upstream");
        let listener = UnixListener::bind(&upstream_sock).unwrap();
        let echo = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 64];
            let n = s.read(&mut buf).unwrap();
            s.write_all(&buf[..n]).unwrap();
        });
        let plan = FaultPlan {
            fault_chance_pct: 0,
            ..FaultPlan::hostile(1)
        };
        let proxy_sock = scratch_socket("fp-proxy");
        let proxy = FaultProxy::spawn(&proxy_sock, &upstream_sock, plan).unwrap();
        let mut c = UnixStream::connect(&proxy_sock).unwrap();
        c.write_all(b"ping-through-proxy").unwrap();
        let mut back = [0u8; 64];
        let n = c.read(&mut back).unwrap();
        assert_eq!(&back[..n], b"ping-through-proxy");
        echo.join().unwrap();
        let stats = proxy.stats();
        assert_eq!(stats.connections, 1);
        assert_eq!(
            stats.delays + stats.partials + stats.stalls + stats.drops + stats.corruptions,
            0
        );
        proxy.stop();
        let _ = std::fs::remove_file(&upstream_sock);
    }
}
