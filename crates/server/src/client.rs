//! Minimal blocking gom-wire/v1 client, with typed-error retry.
//!
//! The server's failure vocabulary is structured (`Busy`,
//! `Overloaded{active,max}`, `Timeout`, `LeaseExpired`), so the client can
//! make a principled retry decision instead of pattern-matching message
//! strings: [`Client::request_retry`] retries `Busy` in place and
//! `Overloaded` after a reconnect (the server closes a shed connection),
//! with deterministic jittered exponential backoff so a thundering herd of
//! rejected writers de-synchronises itself.

use crate::fault::SplitMix64;
use crate::wire::{self, ErrorKind, Reply, Request};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Jittered exponential backoff schedule for retryable replies.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retry.
    pub attempts: u32,
    /// Backoff before retry k (1-based) is drawn uniformly from
    /// `[base·2^(k-1) / 2, base·2^(k-1)]`, capped at `cap`.
    pub base: Duration,
    /// Upper bound on a single backoff sleep.
    pub cap: Duration,
    /// Seed for the jitter PRNG — fixed seeds make retry schedules
    /// reproducible under the chaos harness.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry `attempt` (1-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(self.cap);
        let nanos = exp.as_nanos().max(1) as u64;
        let mut rng = SplitMix64::new(self.seed ^ u64::from(attempt));
        // Uniform in [nanos/2, nanos]: full-range jitter de-synchronises
        // herds while keeping the schedule roughly exponential.
        let jittered = nanos / 2 + rng.next() % (nanos / 2 + 1);
        Duration::from_nanos(jittered)
    }
}

/// Cumulative retry accounting for [`Client::request_retry_stats`] — the
/// SLO harness folds these into its shed/busy columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// `Busy` replies retried in place.
    pub busy_retries: u64,
    /// `Overloaded` sheds retried after a reconnect.
    pub overloaded_retries: u64,
    /// `LeaseExpired` replies observed (not retried here — the caller
    /// must re-`Bes` — but counted for the report).
    pub lease_expired: u64,
}

/// A connected gomd client. One request in flight at a time.
///
/// Every frame carries a client-assigned request id (monotonically
/// increasing per client, starting at 1) in the gom-wire request-id
/// envelope; the server propagates it into its spans, trace events, and
/// slow-request log, so a slow server-side request can be tied back to
/// the exact client call that issued it.
pub struct Client {
    stream: UnixStream,
    socket: PathBuf,
    io_timeout: Option<Duration>,
    next_req_id: u64,
}

impl Client {
    /// Connect to a listening daemon.
    pub fn connect(socket: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(socket)?;
        Ok(Client {
            stream,
            socket: socket.to_path_buf(),
            io_timeout: None,
            next_req_id: 1,
        })
    }

    /// Connect, retrying until the socket accepts or `timeout` elapses —
    /// for racing a freshly spawned daemon. Failed attempts back off
    /// (1 ms doubling to 50 ms) instead of hammering `connect(2)` in a
    /// hot loop.
    pub fn connect_within(socket: &Path, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Duration::from_millis(1);
        loop {
            match UnixStream::connect(socket) {
                Ok(stream) => {
                    return Ok(Client {
                        stream,
                        socket: socket.to_path_buf(),
                        io_timeout: None,
                        next_req_id: 1,
                    })
                }
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => {
                    std::thread::sleep(
                        backoff.min(deadline.saturating_duration_since(Instant::now())),
                    );
                    backoff = (backoff * 2).min(Duration::from_millis(50));
                }
            }
        }
    }

    /// The socket path this client connected to.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Bound every read and write on this connection (and on future
    /// reconnects) by `timeout`. Without one, a reply whose length header
    /// was mangled in flight leaves [`Client::request`] blocked forever
    /// waiting for payload bytes that will never arrive — the client-side
    /// mirror of the server's I/O deadline. A timed-out stream is
    /// desynchronised mid-frame; callers must [`Client::reconnect`], not
    /// retry on it.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.io_timeout = timeout;
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Drop the current stream and dial the socket again.
    pub fn reconnect(&mut self) -> io::Result<()> {
        self.stream = UnixStream::connect(&self.socket)?;
        self.stream.set_read_timeout(self.io_timeout)?;
        self.stream.set_write_timeout(self.io_timeout)?;
        Ok(())
    }

    /// The request id the next frame will carry.
    pub fn next_req_id(&self) -> u64 {
        self.next_req_id
    }

    /// Send one request and block for its reply. The frame carries this
    /// client's next request id (ids keep increasing across retries and
    /// reconnects, so every attempt is distinguishable server-side).
    pub fn request(&mut self, req: &Request) -> io::Result<Reply> {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        wire::write_frame(&mut self.stream, &req.encode_with_id(req_id))?;
        match wire::read_frame(&mut self.stream)? {
            Some(frame) => Reply::decode(&frame).map_err(io::Error::from),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )),
        }
    }

    /// Send one request, retrying load-oriented rejections under
    /// `policy`: `Busy` is retried on the live connection (the server
    /// keeps it open), `Overloaded` after a reconnect (a shed connection
    /// is closed). Any other reply — including `Timeout` and
    /// `LeaseExpired`, which need a session-aware response — is returned
    /// to the caller as-is, as are I/O errors.
    pub fn request_retry(&mut self, req: &Request, policy: &RetryPolicy) -> io::Result<Reply> {
        let mut stats = RetryStats::default();
        self.request_retry_stats(req, policy, &mut stats)
    }

    /// [`Client::request_retry`] with retry accounting: every `Busy`
    /// retry, `Overloaded` reconnect-retry, and observed `LeaseExpired`
    /// is tallied into `stats` (cumulative across calls), so a load
    /// driver can report contention alongside latency.
    pub fn request_retry_stats(
        &mut self,
        req: &Request,
        policy: &RetryPolicy,
        stats: &mut RetryStats,
    ) -> io::Result<Reply> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let reply = self.request(req)?;
            let out_of_attempts = attempt >= policy.attempts.max(1);
            match &reply {
                Reply::Error { kind, .. } if *kind == ErrorKind::Busy && !out_of_attempts => {
                    stats.busy_retries += 1;
                    std::thread::sleep(policy.delay(attempt));
                }
                Reply::Overloaded { .. } if !out_of_attempts => {
                    stats.overloaded_retries += 1;
                    std::thread::sleep(policy.delay(attempt));
                    self.reconnect()?;
                }
                _ => {
                    if matches!(
                        &reply,
                        Reply::Error {
                            kind: ErrorKind::LeaseExpired,
                            ..
                        }
                    ) {
                        stats.lease_expired += 1;
                    }
                    return Ok(reply);
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_jittered_bounded_and_deterministic() {
        let p = RetryPolicy {
            attempts: 6,
            base: Duration::from_millis(4),
            cap: Duration::from_millis(40),
            seed: 7,
        };
        for attempt in 1..=6 {
            let exp = p.base.saturating_mul(1 << (attempt - 1)).min(p.cap);
            let d = p.delay(attempt);
            assert!(d >= exp / 2, "jitter floor: {d:?} < {:?}", exp / 2);
            assert!(d <= exp, "jitter ceiling: {d:?} > {exp:?}");
            assert_eq!(d, p.delay(attempt), "same seed, same schedule");
        }
        // Different seeds de-synchronise.
        let q = RetryPolicy { seed: 8, ..p };
        assert!((1..=6).any(|a| p.delay(a) != q.delay(a)));
    }
}
