//! Minimal blocking gom-wire/v1 client.

use crate::wire::{self, Reply, Request};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// A connected gomd client. One request in flight at a time.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connect to a listening daemon.
    pub fn connect(socket: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(socket)?;
        Ok(Client { stream })
    }

    /// Connect, retrying until the socket accepts or `timeout` elapses —
    /// for racing a freshly spawned daemon.
    pub fn connect_within(socket: &Path, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match UnixStream::connect(socket) {
                Ok(stream) => return Ok(Client { stream }),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Send one request and block for its reply.
    pub fn request(&mut self, req: &Request) -> io::Result<Reply> {
        wire::write_frame(&mut self.stream, &req.encode())?;
        match wire::read_frame(&mut self.stream)? {
            Some(frame) => Reply::decode(&frame).map_err(io::Error::from),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )),
        }
    }
}
