//! gomd — a concurrent schema service over the gomflex schema manager.
//!
//! The paper's evolution protocol (BES … EES, §3.5) is inherently
//! single-writer: a session may hold the schema base inconsistent for as
//! long as repairs take. gomd makes that safe to share: readers run
//! against epoch-published immutable snapshots ([`snapshot`]), writers
//! serialise through a FIFO lock with bounded waiting ([`session`]), and
//! everything travels over a small length-prefixed protocol
//! ([`wire`], gom-wire/v1) on a Unix socket ([`server`]).
//!
//! The service assumes hostile clients and networks (DESIGN.md §14):
//! session leases with a reaper, per-connection I/O deadlines, load
//! shedding at a connection bound, idempotent EES commit tokens, and a
//! typed retry vocabulary the client backs off on ([`client`]). The
//! deterministic chaos proxy used to validate all of it lives in
//! [`fault`].
//!
//! `gomsh --serve <sock>` hosts a daemon; `gomsh --connect <sock>` speaks
//! to one with the familiar shell verbs.

pub mod client;
pub mod fault;
pub mod server;
pub mod session;
pub mod snapshot;
pub mod wire;

pub use client::{Client, RetryPolicy, RetryStats};
pub use fault::{FaultPlan, FaultProxy, FaultStats, SplitMix64};
pub use server::{serve, Config, ServerHandle, SlowEntry};
pub use session::{Acquire, SessionLock};
pub use snapshot::{ReaderCache, Snapshot, SnapshotCell};
pub use wire::{ErrorKind, EvolutionOp, ReadEvent, Reply, Request};
