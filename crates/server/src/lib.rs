//! gomd — a concurrent schema service over the gomflex schema manager.
//!
//! The paper's evolution protocol (BES … EES, §3.5) is inherently
//! single-writer: a session may hold the schema base inconsistent for as
//! long as repairs take. gomd makes that safe to share: readers run
//! against epoch-published immutable snapshots ([`snapshot`]), writers
//! serialise through a FIFO lock with bounded waiting ([`session`]), and
//! everything travels over a small length-prefixed protocol
//! ([`wire`], gom-wire/v1) on a Unix socket ([`server`]).
//!
//! `gomsh --serve <sock>` hosts a daemon; `gomsh --connect <sock>` speaks
//! to one with the familiar shell verbs.

pub mod client;
pub mod server;
pub mod session;
pub mod snapshot;
pub mod wire;

pub use client::Client;
pub use server::{serve, Config, ServerHandle};
pub use session::{Acquire, SessionLock};
pub use snapshot::{ReaderCache, Snapshot, SnapshotCell};
pub use wire::{ErrorKind, EvolutionOp, Reply, Request};
