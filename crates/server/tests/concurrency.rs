//! Deterministic concurrency suite for gomd.
//!
//! Four properties, each proven at 1 and 4 reader threads:
//!
//! 1. Readers during an open evolution session see the pre-session epoch.
//! 2. Readers after a committed EES see the new epoch.
//! 3. A second writer times out with a typed `Busy` error.
//! 4. A killed, journal-backed daemon recovers with a state digest
//!    bit-identical to the last committed epoch.
//!
//! Determinism comes from *happens-before edges*, not sleeps: every
//! assertion runs after an explicit reply from the server, so the tests
//! are ordering-forced rather than timing-lucky.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use gom_server::server::{serve, Config, ServerHandle};
use gom_server::wire::{ErrorKind, EvolutionOp, Reply, Request};
use gom_server::Client;
use std::path::PathBuf;
use std::time::Duration;

const CAR_SCHEMA: &str = "\
schema CarSchema is
  type Car is
    [ maxspeed : float;
      milage   : float; ]
  end type Car;
end schema CarSchema;
";

struct TestDirs {
    root: PathBuf,
}

impl TestDirs {
    fn new(tag: &str) -> TestDirs {
        let root = std::env::temp_dir().join(format!("gomd_{}_{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        TestDirs { root }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Drop for TestDirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn start_in_memory(socket: &std::path::Path) -> ServerHandle {
    serve(Config::in_memory(socket)).expect("server start")
}

fn connect(socket: &std::path::Path) -> Client {
    Client::connect_within(socket, Duration::from_secs(5)).expect("connect")
}

fn ok_text(reply: Reply) -> String {
    match reply {
        Reply::Ok(s) => s,
        other => panic!("expected Ok, got {other:?}"),
    }
}

fn committed_epoch(reply: Reply) -> u64 {
    match reply {
        Reply::Committed { epoch, .. } => epoch,
        other => panic!("expected Committed, got {other:?}"),
    }
}

/// `Digest` → (epoch, digest-body).
fn digest(client: &mut Client) -> (u64, String) {
    let text = ok_text(client.request(&Request::Digest).unwrap());
    let (header, body) = text.split_once('\n').expect("digest header");
    let epoch = header
        .strip_prefix("epoch ")
        .expect("epoch prefix")
        .parse()
        .expect("epoch number");
    (epoch, body.to_string())
}

fn reader_isolation_with(n_readers: usize) {
    let dirs = TestDirs::new(&format!("iso{n_readers}"));
    let sock = dirs.path("gomd.sock");
    let server = start_in_memory(&sock);

    // Baseline state at epoch 1: CarSchema committed.
    let mut writer = connect(&sock);
    let e1 = committed_epoch(
        writer
            .request(&Request::Op(EvolutionOp::Define(CAR_SCHEMA.into())))
            .unwrap(),
    );
    assert_eq!(e1, 1);
    let pre: Vec<(u64, String)> = (0..n_readers)
        .map(|_| digest(&mut connect(&sock)))
        .collect();

    // Open a session and mutate — do NOT commit yet.
    ok_text(writer.request(&Request::Bes).unwrap());
    ok_text(
        writer
            .request(&Request::Op(EvolutionOp::AddAttr {
                ty: "Car@CarSchema".into(),
                name: "fuelType".into(),
                domain: "string".into(),
            }))
            .unwrap(),
    );

    // Property 1: N concurrent readers, each a fresh connection, all see
    // the pre-session epoch and digest. The writer's reply to the op is
    // the happens-before edge: the mutation is definitely applied in the
    // live manager when these readers run.
    let handles: Vec<_> = (0..n_readers)
        .map(|_| {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let mut r = connect(&sock);
                let d = digest(&mut r);
                // Snapshot queries also see pre-session state: no
                // fuelType attribute fact yet.
                let rows = match r.request(&Request::Query("Attr(T, N, D)".into())).unwrap() {
                    Reply::Rows { rows, .. } => rows,
                    other => panic!("expected rows, got {other:?}"),
                };
                let has_fuel = rows.iter().any(|row| row.iter().any(|c| c == "fuelType"));
                (d, has_fuel)
            })
        })
        .collect();
    for (h, expected) in handles.into_iter().zip(&pre) {
        let ((epoch, dig), has_fuel) = h.join().unwrap();
        assert_eq!((epoch, &dig), (expected.0, &expected.1));
        assert_eq!(epoch, 1, "mid-session reader pinned to pre-session epoch");
        assert!(!has_fuel, "open session must be invisible to snapshots");
    }

    // Property 2: commit, then the same count of fresh readers see epoch 2
    // and the new attribute.
    let e2 = committed_epoch(writer.request(&Request::Ees { token: None }).unwrap());
    assert_eq!(e2, 2);
    let handles: Vec<_> = (0..n_readers)
        .map(|_| {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let mut r = connect(&sock);
                let d = digest(&mut r);
                let rows = match r.request(&Request::Query("Attr(T, N, D)".into())).unwrap() {
                    Reply::Rows { rows, .. } => rows,
                    other => panic!("expected rows, got {other:?}"),
                };
                let has_fuel = rows.iter().any(|row| row.iter().any(|c| c == "fuelType"));
                (d, has_fuel)
            })
        })
        .collect();
    for h in handles {
        let ((epoch, dig), has_fuel) = h.join().unwrap();
        assert_eq!(epoch, 2, "post-EES reader sees the committed epoch");
        assert_ne!(dig, pre[0].1, "digest moved with the commit");
        assert!(has_fuel, "committed change visible to snapshots");
    }

    server.stop();
}

#[test]
fn readers_isolated_one_thread() {
    reader_isolation_with(1);
}

#[test]
fn readers_isolated_four_threads() {
    reader_isolation_with(4);
}

fn writer_timeout_with(n_contenders: usize) {
    let dirs = TestDirs::new(&format!("busy{n_contenders}"));
    let sock = dirs.path("gomd.sock");
    // Short timeout so the Busy path is fast and deterministic.
    let mut cfg = Config::in_memory(&sock);
    cfg.session_timeout = Duration::from_millis(50);
    let server = serve(cfg).expect("server start");

    let mut holder = connect(&sock);
    ok_text(holder.request(&Request::Bes).unwrap());

    // Property 3: every contender gets a typed Busy, not a hang and not a
    // protocol error; the holder's session survives the contention.
    let handles: Vec<_> = (0..n_contenders)
        .map(|_| {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let mut c = connect(&sock);
                c.request(&Request::Bes).unwrap()
            })
        })
        .collect();
    for h in handles {
        match h.join().unwrap() {
            Reply::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::Busy);
                assert!(message.contains("session held"), "message: {message}");
            }
            other => panic!("expected Busy error, got {other:?}"),
        }
    }

    // The holder still owns the session: an op and a rollback both work.
    ok_text(
        holder
            .request(&Request::Op(EvolutionOp::Define(CAR_SCHEMA.into())))
            .unwrap(),
    );
    ok_text(holder.request(&Request::Rollback).unwrap());

    // After release, a former contender can begin at once.
    let mut late = connect(&sock);
    ok_text(late.request(&Request::Bes).unwrap());
    ok_text(late.request(&Request::Rollback).unwrap());

    server.stop();
}

#[test]
fn writer_timeout_one_contender() {
    writer_timeout_with(1);
}

#[test]
fn writer_timeout_four_contenders() {
    writer_timeout_with(4);
}

fn kill_recover_with(n_readers: usize) {
    let dirs = TestDirs::new(&format!("recover{n_readers}"));
    let sock = dirs.path("gomd.sock");
    let journal = dirs.path("schema.journal");

    let mut cfg = Config::in_memory(&sock);
    cfg.store = Some(journal.clone());
    let server = serve(cfg).expect("server start");

    let mut writer = connect(&sock);
    committed_epoch(
        writer
            .request(&Request::Op(EvolutionOp::Define(CAR_SCHEMA.into())))
            .unwrap(),
    );
    committed_epoch(
        writer
            .request(&Request::Op(EvolutionOp::AddAttr {
                ty: "Car@CarSchema".into(),
                name: "fuelType".into(),
                domain: "string".into(),
            }))
            .unwrap(),
    );
    // An uncommitted session on top: must NOT survive the kill.
    ok_text(writer.request(&Request::Bes).unwrap());
    ok_text(
        writer
            .request(&Request::Op(EvolutionOp::AddAttr {
                ty: "Car@CarSchema".into(),
                name: "doomed".into(),
                domain: "int".into(),
            }))
            .unwrap(),
    );

    let committed_digest = digest(&mut connect(&sock));

    // "Kill": tear the daemon down with the session still open. The
    // journal's write-ahead property makes this equivalent to a crash at
    // this point — the open session is a dangling Bes in the log.
    drop(writer);
    server.stop();

    // Property 4: the recovered daemon republishes the last committed
    // state; N readers all observe a digest bit-identical to the one
    // captured before the kill.
    let mut cfg = Config::in_memory(&sock);
    cfg.store = Some(journal);
    let server = serve(cfg).expect("server restart");
    let handles: Vec<_> = (0..n_readers)
        .map(|_| {
            let sock = sock.clone();
            std::thread::spawn(move || digest(&mut connect(&sock)))
        })
        .collect();
    for h in handles {
        let (epoch, dig) = h.join().unwrap();
        assert_eq!(epoch, 0, "recovered daemon restarts its epoch counter");
        assert_eq!(
            dig, committed_digest.1,
            "recovered digest must be bit-identical to the last committed epoch"
        );
    }

    // The doomed session is gone: a fresh session sees no `doomed` attr
    // and can commit cleanly.
    let mut c = connect(&sock);
    let rows = match c.request(&Request::Query("Attr(T, N, D)".into())).unwrap() {
        Reply::Rows { rows, .. } => rows,
        other => panic!("expected rows, got {other:?}"),
    };
    assert!(rows.iter().any(|r| r.iter().any(|cell| cell == "fuelType")));
    assert!(!rows.iter().any(|r| r.iter().any(|cell| cell == "doomed")));

    server.stop();
}

#[test]
fn kill_recover_one_reader() {
    kill_recover_with(1);
}

#[test]
fn kill_recover_four_readers() {
    kill_recover_with(4);
}

/// Session abandonment: a connection that drops mid-session must not
/// wedge the daemon — the lock is released and the session rolled back.
#[test]
fn dropped_connection_releases_the_session() {
    let dirs = TestDirs::new("hangup");
    let sock = dirs.path("gomd.sock");
    let server = start_in_memory(&sock);

    {
        let mut doomed = connect(&sock);
        ok_text(doomed.request(&Request::Bes).unwrap());
        ok_text(
            doomed
                .request(&Request::Op(EvolutionOp::Define(CAR_SCHEMA.into())))
                .unwrap(),
        );
        // Dropped here without Ees or Rollback.
    }

    // A new writer can begin (the server noticed the hangup); the
    // abandoned session's work is gone.
    let mut w = connect(&sock);
    ok_text(w.request(&Request::Bes).unwrap());
    let rows = match w.request(&Request::Query("Schema(S, N)".into())).unwrap() {
        Reply::Rows { rows, .. } => rows,
        other => panic!("expected rows, got {other:?}"),
    };
    assert!(
        !rows
            .iter()
            .any(|r| r.iter().any(|cell| cell == "CarSchema")),
        "abandoned session must be rolled back"
    );
    ok_text(w.request(&Request::Rollback).unwrap());
    server.stop();
}

/// EES with violations keeps the session (and lock) open for repairs,
/// while readers stay on the pre-session epoch throughout.
#[test]
fn inconsistent_ees_keeps_session_open() {
    let dirs = TestDirs::new("violations");
    let sock = dirs.path("gomd.sock");
    let server = start_in_memory(&sock);

    let mut w = connect(&sock);
    committed_epoch(
        w.request(&Request::Op(EvolutionOp::Define(CAR_SCHEMA.into())))
            .unwrap(),
    );

    ok_text(w.request(&Request::Bes).unwrap());
    // Deleting Car under `restrict` semantics fails inside the op (the
    // key constraint references it), so force an inconsistency instead:
    // add an attribute whose domain is then deleted is complex — simplest
    // deterministic violation: delete the type under `orphan`, leaving
    // the key constraint's subject dangling.
    let del = w
        .request(&Request::Op(EvolutionOp::DelType {
            ty: "Car@CarSchema".into(),
            semantics: "orphan".into(),
        }))
        .unwrap();
    assert!(matches!(del, Reply::Ok(_)), "got {del:?}");

    match w.request(&Request::Ees { token: None }).unwrap() {
        Reply::Violations(v) => assert!(!v.is_empty(), "orphaned references must violate"),
        other => panic!("expected Violations, got {other:?}"),
    }

    // Session is still open: a competing Bes is Busy, readers still at
    // epoch 1.
    let mut other = connect(&sock);
    match other.request(&Request::Bes).unwrap() {
        Reply::Error { kind, .. } => assert_eq!(kind, ErrorKind::Busy),
        other => panic!("expected Busy, got {other:?}"),
    }
    let (epoch, _) = digest(&mut connect(&sock));
    assert_eq!(epoch, 1);

    // Rollback clears it; the schema is intact.
    ok_text(w.request(&Request::Rollback).unwrap());
    let rows = match connect(&sock)
        .request(&Request::Query("Type(T, N, S)".into()))
        .unwrap()
    {
        Reply::Rows { rows, .. } => rows,
        other => panic!("expected rows, got {other:?}"),
    };
    assert!(rows.iter().any(|r| r.iter().any(|c| c == "Car")));

    server.stop();
}
