//! Lease-expiry semantics for gomd evolution sessions.
//!
//! Three contracts from the failure model (DESIGN.md §14):
//!
//! 1. A reaped session's rollback is *bit-identical* to an explicit
//!    `rollback` — proven by committing an identical follow-up session on
//!    a reaped server and a rolled-back twin and comparing state digests.
//! 2. A holder that renews at lease/2 cadence (idle `Renew` frames) is
//!    never reaped, and its eventual commit succeeds.
//! 3. A silent holder is reaped within two lease intervals: a waiting
//!    writer gets the lock and commits, and the zombie's next session
//!    frame gets a clean typed `LeaseExpired` — not a protocol desync.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use gom_server::server::{serve, Config, ServerHandle};
use gom_server::wire::{ErrorKind, EvolutionOp, Reply, Request};
use gom_server::Client;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const CAR_SCHEMA: &str = "\
schema CarSchema is
  type Car is
    [ maxspeed : float;
      milage   : float; ]
  end type Car;
end schema CarSchema;
";

struct TestDirs {
    root: PathBuf,
}

impl TestDirs {
    fn new(tag: &str) -> TestDirs {
        let root = std::env::temp_dir().join(format!("gomd_lease_{}_{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        TestDirs { root }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Drop for TestDirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn start_with_lease(socket: &std::path::Path, lease: Duration) -> ServerHandle {
    let mut config = Config::in_memory(socket);
    config.lease = lease;
    serve(config).expect("server start")
}

fn connect(socket: &std::path::Path) -> Client {
    Client::connect_within(socket, Duration::from_secs(5)).expect("connect")
}

fn ok_text(reply: Reply) -> String {
    match reply {
        Reply::Ok(s) => s,
        other => panic!("expected Ok, got {other:?}"),
    }
}

fn committed_epoch(reply: Reply) -> u64 {
    match reply {
        Reply::Committed { epoch, .. } => epoch,
        other => panic!("expected Committed, got {other:?}"),
    }
}

fn err_kind(reply: Reply) -> ErrorKind {
    match reply {
        Reply::Error { kind, .. } => kind,
        other => panic!("expected Error, got {other:?}"),
    }
}

fn add_attr(name: &str) -> Request {
    Request::Op(EvolutionOp::AddAttr {
        ty: "Car@CarSchema".into(),
        name: name.into(),
        domain: "string".into(),
    })
}

fn digest(client: &mut Client) -> String {
    ok_text(client.request(&Request::Digest).unwrap())
}

/// Reaped-session rollback must leave the live manager in exactly the
/// state an explicit rollback leaves it in. The published snapshot alone
/// can't prove that (rollback publishes nothing), so both servers commit
/// an identical follow-up session afterwards: the follow-up digest
/// captures the live state, residue and all.
#[test]
fn reaped_rollback_is_bit_identical_to_explicit_rollback() {
    let lease = Duration::from_millis(80);
    let dirs = TestDirs::new("bitident");
    let sock_a = dirs.path("reaped.sock");
    let sock_b = dirs.path("rolled.sock");
    let server_a = start_with_lease(&sock_a, lease);
    let server_b = start_with_lease(&sock_b, lease);

    // Server A: open the session, then go silent past the lease; the
    // reaper takes it.
    let mut a = connect(&sock_a);
    assert_eq!(
        committed_epoch(
            a.request(&Request::Op(EvolutionOp::Define(CAR_SCHEMA.into())))
                .unwrap()
        ),
        1
    );
    ok_text(a.request(&Request::Bes).unwrap());
    ok_text(a.request(&add_attr("doomedAttr")).unwrap());
    std::thread::sleep(lease * 5 / 2);
    assert_eq!(
        err_kind(a.request(&Request::Ees { token: None }).unwrap()),
        ErrorKind::LeaseExpired,
        "zombie's next session frame gets the typed notice"
    );
    // The notice is one-shot: the frame after it sees plain no-session.
    assert_eq!(
        err_kind(a.request(&Request::Ees { token: None }).unwrap()),
        ErrorKind::BadRequest
    );

    // Server B: the identical session, abandoned by explicit rollback
    // (no idle gap, so B's lease never lapses).
    let mut b = connect(&sock_b);
    assert_eq!(
        committed_epoch(
            b.request(&Request::Op(EvolutionOp::Define(CAR_SCHEMA.into())))
                .unwrap()
        ),
        1
    );
    ok_text(b.request(&Request::Bes).unwrap());
    ok_text(b.request(&add_attr("doomedAttr")).unwrap());
    ok_text(b.request(&Request::Rollback).unwrap());

    // Identical follow-up commit on both; digests must match bit-for-bit.
    for c in [&mut a, &mut b] {
        ok_text(c.request(&Request::Bes).unwrap());
        ok_text(c.request(&add_attr("probeAttr")).unwrap());
        assert_eq!(
            committed_epoch(c.request(&Request::Ees { token: None }).unwrap()),
            2
        );
    }
    assert_eq!(
        digest(&mut a),
        digest(&mut b),
        "reaped rollback diverged from explicit rollback"
    );
    server_a.stop();
    server_b.stop();
}

/// A lease/2-cadence renewer is never reaped, even across many intervals,
/// and `Renew` works for an idle holder with no op to send.
#[test]
fn renewing_at_half_lease_cadence_is_never_reaped() {
    let lease = Duration::from_millis(100);
    let dirs = TestDirs::new("renew");
    let sock = dirs.path("gomd.sock");
    let server = start_with_lease(&sock, lease);

    let mut w = connect(&sock);
    committed_epoch(
        w.request(&Request::Op(EvolutionOp::Define(CAR_SCHEMA.into())))
            .unwrap(),
    );
    ok_text(w.request(&Request::Bes).unwrap());
    ok_text(w.request(&add_attr("patientAttr")).unwrap());
    // Six half-lease beats: 3× the lease in wall time, kept alive purely
    // by Renew frames.
    for _ in 0..6 {
        std::thread::sleep(lease / 2);
        let text = ok_text(w.request(&Request::Renew).unwrap());
        assert!(text.contains("lease renewed"), "got {text}");
    }
    assert_eq!(
        committed_epoch(w.request(&Request::Ees { token: None }).unwrap()),
        2,
        "renewed session must still commit"
    );
    // Renew outside a session is a typed BadRequest.
    assert_eq!(
        err_kind(w.request(&Request::Renew).unwrap()),
        ErrorKind::BadRequest
    );
    server.stop();
}

/// Acceptance: a silent holder is reaped within two lease intervals and a
/// waiting writer then commits successfully.
#[test]
fn silent_holder_is_reaped_and_waiting_writer_commits() {
    let lease = Duration::from_millis(250);
    let dirs = TestDirs::new("waiter");
    let sock = dirs.path("gomd.sock");
    let server = start_with_lease(&sock, lease);

    let mut zombie = connect(&sock);
    committed_epoch(
        zombie
            .request(&Request::Op(EvolutionOp::Define(CAR_SCHEMA.into())))
            .unwrap(),
    );
    ok_text(zombie.request(&Request::Bes).unwrap());
    ok_text(zombie.request(&add_attr("zombieAttr")).unwrap());
    // zombie now goes silent (SIGSTOP-equivalent), still connected.

    let start = Instant::now();
    let mut writer = connect(&sock);
    // Bes queues FIFO behind the zombie; the in_memory session timeout
    // (2 s) comfortably covers the reap window.
    ok_text(writer.request(&Request::Bes).unwrap());
    let waited = start.elapsed();
    assert!(
        waited < lease * 2,
        "waiter admitted in {waited:?}, over the 2-lease bound ({:?})",
        lease * 2
    );
    ok_text(writer.request(&add_attr("winnerAttr")).unwrap());
    assert_eq!(
        committed_epoch(writer.request(&Request::Ees { token: None }).unwrap()),
        2
    );

    // The zombie wakes up: clean typed LeaseExpired, then normal service.
    assert_eq!(
        err_kind(zombie.request(&Request::Ees { token: None }).unwrap()),
        ErrorKind::LeaseExpired
    );
    let text = ok_text(zombie.request(&Request::Digest).unwrap());
    assert!(
        text.starts_with("epoch 2"),
        "zombie connection still usable: {text}"
    );
    server.stop();
}
