//! Chaos-proxy sweep for gomd: hostile networks, exactly-once commits.
//!
//! Every seeded run drives the same logical workload (a schema definition
//! plus two attribute sessions, each committed with an idempotent token)
//! through a [`FaultProxy`] that injects delays, partial writes, stalls
//! past the I/O deadline, mid-frame drops, and byte corruption — on both
//! directions, so commit acks get lost too. The driver recovers the way a
//! real client must: probe by commit token, reacquire the session, check
//! the published snapshot for the session's sentinel, and only then redo.
//!
//! After each run the faulted server must be **bit-identical** to an
//! unfaulted twin that ran the workload cleanly — same epoch (exactly one
//! commit per session: no duplicates, no empty commits) and same state
//! digest — with no leaked session, a free writer lock, and (for the
//! journal-backed variant) a recovery replay landing on the same digest.
//!
//! Sweep size: `GOM_CHAOS_SEEDS` seeds per eval-thread configuration
//! (default 25; `scripts/check.sh` runs 100 → 200 runs across the 1- and
//! 4-thread sweeps). Deterministic targeted tests cover the slow-loris
//! timeout, load shedding, duplicate-token commits, and CRC rejection.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use gom_server::client::RetryPolicy;
use gom_server::fault::{FaultPlan, FaultProxy, FaultStats};
use gom_server::server::{serve, Config};
use gom_server::wire::{self, ErrorKind, EvolutionOp, Reply, Request};
use gom_server::Client;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

const CAR_SCHEMA: &str = "\
schema CarSchema is
  type Car is
    [ maxspeed : float;
      milage   : float; ]
  end type Car;
end schema CarSchema;
";

const LEASE: Duration = Duration::from_millis(400);
const IO_DEADLINE: Duration = Duration::from_millis(100);

struct TestDirs {
    root: PathBuf,
}

impl TestDirs {
    fn new(tag: &str) -> TestDirs {
        let root = std::env::temp_dir().join(format!("gomd_chaos_{}_{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        TestDirs { root }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Drop for TestDirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn hardened_config(socket: &Path, threads: usize) -> Config {
    let mut config = Config::in_memory(socket);
    config.lease = LEASE;
    config.io_deadline = IO_DEADLINE;
    config.eval_threads = Some(threads);
    config
}

fn connect(socket: &Path) -> Client {
    Client::connect_within(socket, Duration::from_secs(5)).expect("connect")
}

fn ok_text(reply: Reply) -> String {
    match reply {
        Reply::Ok(s) => s,
        other => panic!("expected Ok, got {other:?}"),
    }
}

fn committed_epoch(reply: Reply) -> u64 {
    match reply {
        Reply::Committed { epoch, .. } => epoch,
        other => panic!("expected Committed, got {other:?}"),
    }
}

fn digest(client: &mut Client) -> String {
    ok_text(client.request(&Request::Digest).unwrap())
}

/// One logical evolution session of the chaos workload.
struct WorkSession {
    ops: Vec<Request>,
    /// Query + needle proving (against the published snapshot) that this
    /// session has committed — the driver's at-most-once guard.
    sentinel_query: &'static str,
    sentinel: String,
    token: u64,
}

fn workload(seed: u64) -> Vec<WorkSession> {
    let mut sessions = vec![WorkSession {
        ops: vec![Request::Op(EvolutionOp::Define(CAR_SCHEMA.into()))],
        sentinel_query: "Schema(S, N)",
        sentinel: "CarSchema".into(),
        token: seed * 8 + 1,
    }];
    for si in 1..=2u64 {
        let ops = (0..2)
            .map(|k| {
                Request::Op(EvolutionOp::AddAttr {
                    ty: "Car@CarSchema".into(),
                    name: format!("chaosAttr{si}_{k}"),
                    domain: "string".into(),
                })
            })
            .collect();
        sessions.push(WorkSession {
            ops,
            sentinel_query: "Attr(T, N, D)",
            sentinel: format!("chaosAttr{si}_0"),
            token: seed * 8 + 1 + si,
        });
    }
    sessions
}

/// The chaos driver: a client that survives every fault the proxy can
/// inject, committing each session **exactly once**.
struct Driver {
    sock: PathBuf,
    client: Client,
    policy: RetryPolicy,
}

/// Client-side liveness bound for the driver. A corruption fault can
/// mangle a reply's *length header* without tripping the CRC (the CRC is
/// only checked once the full payload arrives), leaving a plain blocking
/// read waiting forever for bytes the proxy will never send. The timeout
/// turns that wedge into an I/O error, which the recovery protocol
/// already treats as a connection loss. Far above any legitimate wait
/// (lock waits are bounded by the 2 s session timeout).
const CLIENT_IO_TIMEOUT: Duration = Duration::from_secs(5);

impl Driver {
    fn new(sock: PathBuf, seed: u64) -> Driver {
        let mut client = connect(&sock);
        client
            .set_io_timeout(Some(CLIENT_IO_TIMEOUT))
            .expect("set client io timeout");
        let policy = RetryPolicy {
            attempts: 12,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(100),
            seed,
        };
        Driver {
            sock,
            client,
            policy,
        }
    }

    fn reconnect(&mut self) {
        self.client = connect(&self.sock);
        self.client
            .set_io_timeout(Some(CLIENT_IO_TIMEOUT))
            .expect("set client io timeout");
    }

    fn snapshot_contains(&mut self, query: &str, needle: &str) -> std::io::Result<bool> {
        match self.client.request(&Request::Query(query.into()))? {
            Reply::Rows { rows, .. } => Ok(rows
                .iter()
                .any(|row| row.iter().any(|cell| cell.contains(needle)))),
            other => Err(std::io::Error::other(format!(
                "unexpected query reply {other:?}"
            ))),
        }
    }

    /// Commit `session` exactly once, whatever the network does.
    ///
    /// Recovery protocol, re-entered from the top after any connection
    /// loss:
    /// 1. **Token probe** — `Ees{token}` with no session open either
    ///    replays the cached `Committed` (ack was lost: done) or is a
    ///    typed `BadRequest` (not committed).
    /// 2. **Re-open** — `Bes` with backoff; the grant is an ordering
    ///    barrier: any previous incarnation of this session has by then
    ///    either committed (token recorded, snapshot published) or been
    ///    rolled back by hangup/lease-reap.
    /// 3. **Sentinel check** — the published snapshot is queried for this
    ///    session's first schema element. Present ⇒ the commit already
    ///    landed; roll the (empty) probe session back and finish. A
    ///    blind `Ees{token}` here would commit an *empty* delta and
    ///    poison the token — the sentinel read is what makes the redo
    ///    safe.
    /// 4. **Redo + tokened commit.**
    fn commit_session(&mut self, session: &WorkSession) {
        'attempt: for _ in 0..300 {
            match self.client.request(&Request::Ees {
                token: Some(session.token),
            }) {
                Ok(Reply::Committed { token, .. }) => {
                    assert_eq!(token, session.token);
                    return;
                }
                Ok(Reply::Error { kind, .. })
                    if kind == ErrorKind::BadRequest || kind == ErrorKind::LeaseExpired => {}
                Ok(_) | Err(_) => {
                    self.reconnect();
                    continue;
                }
            }
            match self.client.request_retry(&Request::Bes, &self.policy) {
                Ok(Reply::Ok(_)) => {}
                Ok(Reply::Error {
                    kind: ErrorKind::LeaseExpired,
                    ..
                }) => continue,
                Ok(_) | Err(_) => {
                    self.reconnect();
                    continue;
                }
            }
            match self.snapshot_contains(session.sentinel_query, &session.sentinel) {
                Ok(true) => {
                    let _ = self.client.request(&Request::Rollback);
                    return;
                }
                Ok(false) => {}
                Err(_) => {
                    self.reconnect();
                    continue;
                }
            }
            for op in &session.ops {
                match self.client.request(op) {
                    Ok(Reply::Ok(_)) => {}
                    Ok(Reply::Error { .. }) | Err(_) => {
                        // Session lost (reap, hangup, protocol close):
                        // start over from the probe.
                        self.reconnect();
                        continue 'attempt;
                    }
                    Ok(other) => panic!("unexpected op reply {other:?}"),
                }
            }
            match self.client.request(&Request::Ees {
                token: Some(session.token),
            }) {
                Ok(Reply::Committed { token, .. }) => {
                    assert_eq!(token, session.token);
                    return;
                }
                Ok(Reply::Violations(v)) => panic!("attr-only session cannot violate: {v:?}"),
                Ok(Reply::Error { .. }) | Ok(_) | Err(_) => {
                    self.reconnect();
                    continue;
                }
            }
        }
        panic!("chaos driver did not converge on token {}", session.token);
    }
}

/// One seeded chaos run: returns the proxy's fault counts so sweeps can
/// assert injection coverage.
fn run_chaos(seed: u64, threads: usize, store: Option<PathBuf>) -> FaultStats {
    let dirs = TestDirs::new(&format!("run{seed}_{threads}"));
    let sock = dirs.path("gomd.sock");
    let proxy_sock = dirs.path("proxy.sock");
    let twin_sock = dirs.path("twin.sock");

    let mut config = hardened_config(&sock, threads);
    config.store = store.clone();
    let server = serve(config).expect("faulted server start");
    let twin = serve(hardened_config(&twin_sock, threads)).expect("twin server start");
    let proxy = FaultProxy::spawn(&proxy_sock, &sock, FaultPlan::hostile(seed)).expect("proxy");

    // Hostile path: the driver talks through the proxy.
    let mut driver = Driver::new(proxy_sock.clone(), seed);
    let sessions = workload(seed);
    for session in &sessions {
        driver.commit_session(session);
    }

    // Clean path: the twin runs the identical workload, no faults.
    let mut clean = connect(&twin_sock);
    for (i, session) in sessions.iter().enumerate() {
        ok_text(clean.request(&Request::Bes).unwrap());
        for op in &session.ops {
            ok_text(clean.request(op).unwrap());
        }
        assert_eq!(
            committed_epoch(clean.request(&Request::Ees { token: None }).unwrap()),
            i as u64 + 1
        );
    }

    // Bit-identity, including the epoch: every session committed exactly
    // once on the faulted server — no duplicates, no empty commits.
    let mut direct = connect(&sock);
    let faulted_digest = digest(&mut direct);
    assert_eq!(
        canonical(&faulted_digest),
        canonical(&digest(&mut clean)),
        "seed {seed}: faulted server diverged from unfaulted twin"
    );

    // No leaked session or stuck lock: a fresh writer is admitted within
    // the session timeout, immediately.
    ok_text(direct.request(&Request::Bes).unwrap());
    ok_text(direct.request(&Request::Rollback).unwrap());

    let stats = proxy.stats();
    proxy.stop();
    server.stop();
    twin.stop();

    // Journal-backed runs must recover to the same digest from a cold
    // start.
    if let Some(store_path) = store {
        let recovery_sock = dirs.path("recovered.sock");
        let mut config = hardened_config(&recovery_sock, threads);
        config.store = Some(store_path);
        let recovered = serve(config).expect("recovery start");
        let mut c = connect(&recovery_sock);
        let (_, faulted_body) = faulted_digest.split_once('\n').unwrap();
        let recovered_digest = digest(&mut c);
        let (_, recovered_body) = recovered_digest.split_once('\n').unwrap();
        assert_eq!(
            canonical(recovered_body),
            canonical(faulted_body),
            "seed {seed}: recovery replay diverged"
        );
        recovered.stop();
    }
    stats
}

/// Renumber interner-assigned ids (`tid7`, `sid3`, `clid2`, `oid9`) by
/// order of first appearance. Rolled-back sessions — lease reaps,
/// hangups — consume symbol ids without leaving facts behind, so the
/// faulted server's `tid7` can be the twin's `tid1` for the *same*
/// schema. Comparing canonicalised digests still catches every real
/// divergence (missing, extra, or reordered facts), because first
/// appearance order is a function of the fact content alone.
fn canonical(digest: &str) -> String {
    let mut map: std::collections::HashMap<&str, String> = std::collections::HashMap::new();
    let mut out = String::with_capacity(digest.len());
    let bytes = digest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &digest[start..i];
            let numbered = ["tid", "sid", "clid", "oid"].iter().find_map(|prefix| {
                let rest = word.strip_prefix(prefix)?;
                (!rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit())).then_some(*prefix)
            });
            match numbered {
                Some(prefix) => {
                    let next = map.len();
                    let canon = map
                        .entry(word)
                        .or_insert_with(|| format!("{prefix}#{next}"));
                    out.push_str(canon);
                }
                None => out.push_str(word),
            }
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

fn sweep_seeds() -> u64 {
    std::env::var("GOM_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(25)
}

fn accumulate(total: &mut FaultStats, run: FaultStats) {
    total.connections += run.connections;
    total.delays += run.delays;
    total.partials += run.partials;
    total.stalls += run.stalls;
    total.drops += run.drops;
    total.corruptions += run.corruptions;
}

/// With enough seeds, every fault kind must actually have fired — a
/// sweep that injects nothing proves nothing.
fn assert_coverage(total: &FaultStats, seeds: u64) {
    if seeds < 20 {
        return;
    }
    assert!(total.delays > 0, "no delays injected: {total:?}");
    assert!(total.partials > 0, "no partial writes injected: {total:?}");
    assert!(total.corruptions > 0, "no corruption injected: {total:?}");
    assert!(
        total.drops + total.stalls > 0,
        "no drops/stalls injected: {total:?}"
    );
}

#[test]
fn chaos_sweep_single_thread_eval() {
    let seeds = sweep_seeds();
    let mut total = FaultStats::default();
    for seed in 0..seeds {
        accumulate(&mut total, run_chaos(seed, 1, None));
    }
    assert_coverage(&total, seeds);
}

#[test]
fn chaos_sweep_parallel_eval() {
    let seeds = sweep_seeds();
    let mut total = FaultStats::default();
    for seed in 0..seeds {
        accumulate(&mut total, run_chaos(1_000 + seed, 4, None));
    }
    assert_coverage(&total, seeds);
}

#[test]
fn chaos_with_store_recovers_cleanly() {
    for seed in 0..6u64 {
        let dirs = TestDirs::new(&format!("store{seed}"));
        let store = dirs.path("db.gomj");
        run_chaos(2_000 + seed, 1, Some(store));
    }
}

/// A duplicate tokened EES is applied exactly once: the replay returns
/// the original `(epoch, changes)` and the state does not move.
#[test]
fn duplicate_token_commit_is_applied_once() {
    let dirs = TestDirs::new("dup_token");
    let sock = dirs.path("gomd.sock");
    let server = serve(hardened_config(&sock, 1)).expect("server");
    let mut c = connect(&sock);

    committed_epoch(
        c.request(&Request::Op(EvolutionOp::Define(CAR_SCHEMA.into())))
            .unwrap(),
    );
    ok_text(c.request(&Request::Bes).unwrap());
    ok_text(
        c.request(&Request::Op(EvolutionOp::AddAttr {
            ty: "Car@CarSchema".into(),
            name: "dupAttr".into(),
            domain: "string".into(),
        }))
        .unwrap(),
    );
    let (first_epoch, first_changes) = match c.request(&Request::Ees { token: Some(99) }).unwrap() {
        Reply::Committed {
            epoch,
            changes,
            token,
        } => {
            assert_eq!(token, 99);
            (epoch, changes)
        }
        other => panic!("expected Committed, got {other:?}"),
    };
    assert_eq!(first_epoch, 2);
    let before = digest(&mut c);

    // Retry of the same commit, no session open: replayed, not reapplied.
    match c.request(&Request::Ees { token: Some(99) }).unwrap() {
        Reply::Committed {
            epoch,
            changes,
            token,
        } => {
            assert_eq!((epoch, changes, token), (first_epoch, first_changes, 99));
        }
        other => panic!("expected replayed Committed, got {other:?}"),
    }
    assert_eq!(digest(&mut c), before, "replay must not move the state");

    // An unknown token without a session is a plain BadRequest...
    match c.request(&Request::Ees { token: Some(77) }).unwrap() {
        Reply::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // ...and fresh commits still advance the epoch past replays.
    ok_text(c.request(&Request::Bes).unwrap());
    ok_text(
        c.request(&Request::Op(EvolutionOp::AddAttr {
            ty: "Car@CarSchema".into(),
            name: "afterDup".into(),
            domain: "string".into(),
        }))
        .unwrap(),
    );
    assert_eq!(
        committed_epoch(c.request(&Request::Ees { token: Some(100) }).unwrap()),
        3
    );
    server.stop();
}

/// A slow-loris client — a frame begun but never finished — gets a typed
/// `Timeout` at the I/O deadline and a close, and does not affect other
/// clients.
#[test]
fn slow_loris_partial_frame_times_out() {
    let dirs = TestDirs::new("loris");
    let sock = dirs.path("gomd.sock");
    let server = serve(hardened_config(&sock, 1)).expect("server");

    let mut loris = UnixStream::connect(&sock).unwrap();
    // First half of a legitimate frame: a 12-byte header+payload cut at
    // byte 5. The server must not wait forever for the rest.
    let mut frame = Vec::new();
    wire::write_frame(&mut frame, &Request::Stats.encode()).unwrap();
    loris.write_all(&frame[..5]).unwrap();

    match wire::read_frame(&mut loris).unwrap() {
        Some(reply) => match Reply::decode(&reply).unwrap() {
            Reply::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::Timeout, "{message}");
                assert!(message.contains("deadline"), "{message}");
            }
            other => panic!("expected Timeout, got {other:?}"),
        },
        None => panic!("expected a Timeout reply before the close"),
    }
    // The connection is closed after the timeout reply.
    let mut rest = Vec::new();
    assert_eq!(loris.read_to_end(&mut rest).unwrap_or(0), 0);

    // Other clients are unaffected.
    let mut c = connect(&sock);
    assert!(digest(&mut c).starts_with("epoch 0"));
    server.stop();
}

/// At the connection bound the accept loop sheds with a structured
/// `Overloaded{active,max}` frame; capacity returns once a connection
/// closes, and the client retry policy surfaces the final rejection.
#[test]
fn overload_sheds_with_typed_reply_and_recovers() {
    let dirs = TestDirs::new("shed");
    let sock = dirs.path("gomd.sock");
    let mut config = hardened_config(&sock, 1);
    config.max_connections = 2;
    let server = serve(config).expect("server");

    // Fill both slots, with a request each so admission is ordered.
    let mut c1 = connect(&sock);
    digest(&mut c1);
    let mut c2 = connect(&sock);
    digest(&mut c2);

    // The third connection is shed before any request is read.
    let mut shed = UnixStream::connect(&sock).unwrap();
    match wire::read_frame(&mut shed).unwrap() {
        Some(frame) => match Reply::decode(&frame).unwrap() {
            Reply::Overloaded { active, max } => {
                assert_eq!((active, max), (2, 2));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        },
        None => panic!("expected an Overloaded frame before the close"),
    }

    // request_retry reconnects per attempt and returns the typed final
    // rejection once attempts are exhausted — not a panic, not a hang.
    let mut c3 = Client::connect(&sock).unwrap();
    let policy = RetryPolicy {
        attempts: 3,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(5),
        seed: 1,
    };
    match c3.request_retry(&Request::Digest, &policy) {
        Ok(Reply::Overloaded { .. }) | Err(_) => {}
        other => panic!("expected Overloaded after retries, got {other:?}"),
    }

    // Freeing a slot restores admission.
    drop(c1);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = Client::connect_within(&sock, Duration::from_secs(5)).unwrap();
        if let Ok(Reply::Ok(text)) = retry.request(&Request::Digest) {
            assert!(text.starts_with("epoch 0"));
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "shed capacity never recovered"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.stop();
}

/// A CRC-corrupt frame gets a typed `Protocol` error and a close — the
/// server never resynchronises a corrupt stream by guessing.
#[test]
fn corrupt_frame_gets_typed_protocol_error() {
    let dirs = TestDirs::new("crc");
    let sock = dirs.path("gomd.sock");
    let server = serve(hardened_config(&sock, 1)).expect("server");

    let mut evil = UnixStream::connect(&sock).unwrap();
    let mut frame = Vec::new();
    wire::write_frame(&mut frame, &Request::Stats.encode()).unwrap();
    let last = frame.len() - 1;
    frame[last] ^= 0x40;
    evil.write_all(&frame).unwrap();

    match wire::read_frame(&mut evil).unwrap() {
        Some(reply) => match Reply::decode(&reply).unwrap() {
            Reply::Error { kind, .. } => assert_eq!(kind, ErrorKind::Protocol),
            other => panic!("expected Protocol error, got {other:?}"),
        },
        None => panic!("expected a Protocol error before the close"),
    }
    let mut rest = Vec::new();
    assert_eq!(evil.read_to_end(&mut rest).unwrap_or(0), 0);

    let mut fine = connect(&sock);
    assert!(digest(&mut fine).starts_with("epoch 0"));
    server.stop();
}
