//! Wire-level telemetry suite for gomd.
//!
//! Proves the observability contract end to end over a real socket:
//!
//! 1. The `Metrics` verb returns a well-formed `gomd/metrics/v1` JSON
//!    payload whose per-verb latency histograms grow with traffic.
//! 2. Vitals (request counts, shed/lease counters, per-verb latency) are
//!    recorded even when gom-obs profiling is switched off — the
//!    always-on guarantee.
//! 3. With `--slow-ms 0` every request lands in the slow-request ring
//!    buffer, carrying the client-assigned request id, so a slow server
//!    request can be tied back to the exact client call.
//! 4. `Stats` (the human verb) surfaces the slow log too.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use gom_server::server::{serve, Config, ServerHandle};
use gom_server::wire::{Reply, Request};
use gom_server::Client;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

/// The tests share the process-global gom-obs aggregation tables (the
/// in-process server records into them); serialize so counts don't bleed.
static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct TestDirs {
    root: PathBuf,
}

impl TestDirs {
    fn new(tag: &str) -> TestDirs {
        let root = std::env::temp_dir().join(format!("gomd_{}_{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        TestDirs { root }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Drop for TestDirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// An in-memory daemon that logs every request as slow (`slow_ms: 0`).
fn start_logging_everything(socket: &std::path::Path) -> ServerHandle {
    serve(Config {
        slow_ms: 0,
        ..Config::in_memory(socket)
    })
    .expect("server start")
}

fn connect(socket: &std::path::Path) -> Client {
    Client::connect_within(socket, Duration::from_secs(5)).expect("connect")
}

fn metrics_json(client: &mut Client) -> String {
    match client.request(&Request::Metrics).unwrap() {
        Reply::Ok(json) => json,
        other => panic!("expected Ok(json), got {other:?}"),
    }
}

/// `"key":<u64>` extractor for the flat metrics payload.
fn json_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)?;
    json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .ok()
}

#[test]
fn metrics_verb_reports_schema_vitals_and_growing_histograms() {
    let _g = lock();
    let dirs = TestDirs::new("telemetry_metrics");
    let socket = dirs.path("gomd.sock");
    let handle = start_logging_everything(&socket);
    let mut client = connect(&socket);

    // Profiling must be off: vitals are an always-on guarantee.
    gom_obs::set_enabled(false);

    let first = metrics_json(&mut client);
    assert!(
        first.starts_with("{\"schema\":\"gomd/metrics/v1\""),
        "payload must self-identify: {first}"
    );
    assert!(first.contains("\"stats\":{\"schema\":\"gom-obs/stats/v1\""));
    assert!(first.contains("\"slow_log\":["));
    assert!(json_u64(&first, "max_conns").unwrap() > 0);
    let requests_before = json_u64(&first, "server.requests").expect("server.requests vital");
    let digest_count = |json: &str| {
        let hist = json
            .find("\"server.request.ns:digest\"")
            .map(|at| &json[at..])
            .unwrap_or("");
        json_u64(hist, "count").unwrap_or(0)
    };
    let digests_before = digest_count(&first);

    for _ in 0..5 {
        let _ = client.request(&Request::Digest).unwrap();
    }
    let second = metrics_json(&mut client);
    let requests_after = json_u64(&second, "server.requests").unwrap();
    assert!(
        requests_after >= requests_before + 5,
        "request vital must grow with profiling off: {requests_before} -> {requests_after}"
    );
    assert!(
        digest_count(&second) >= digests_before + 5,
        "per-verb digest histogram must grow: {first}"
    );
    // Percentile fields come straight from the histogram export.
    let hist_at = second.find("\"server.request.ns:digest\"").unwrap();
    let hist = &second[hist_at..];
    for field in ["\"p50\":", "\"p95\":", "\"p99\":", "\"buckets\":[["] {
        assert!(hist.contains(field), "missing {field} in {hist}");
    }

    let _ = client.request(&Request::Shutdown);
    handle.join();
}

#[test]
fn slow_log_carries_client_request_ids() {
    let _g = lock();
    let dirs = TestDirs::new("telemetry_slowlog");
    let socket = dirs.path("gomd.sock");
    let handle = start_logging_everything(&socket);
    let mut client = connect(&socket);

    // Note the id the next request will carry, then issue it: with
    // slow_ms = 0 the digest must land in the ring buffer under that id.
    let digest_req_id = client.next_req_id();
    let _ = client.request(&Request::Digest).unwrap();
    let json = metrics_json(&mut client);

    let slow_at = json.find("\"slow_log\":[").expect("slow_log section");
    let slow = &json[slow_at..];
    assert!(
        slow.contains("\"verb\":\"digest\""),
        "digest entry missing from slow log: {json}"
    );
    assert!(
        slow.contains(&format!("\"req_id\":{digest_req_id},")),
        "slow entry must carry the client-assigned id {digest_req_id}: {json}"
    );
    assert!(slow.contains("\"status\":\"ok\""));
    assert!(slow.contains("\"dur_us\":"));

    // The human-readable verb shows the same ring buffer.
    let stats = match client.request(&Request::Stats).unwrap() {
        Reply::Ok(text) => text,
        other => panic!("expected Ok, got {other:?}"),
    };
    assert!(
        stats.contains("slow requests"),
        "stats must surface the slow log: {stats}"
    );
    assert!(stats.contains("digest"), "{stats}");

    let _ = client.request(&Request::Shutdown);
    handle.join();
}

#[test]
fn default_threshold_keeps_fast_requests_out_of_the_slow_log() {
    let _g = lock();
    let dirs = TestDirs::new("telemetry_threshold");
    let socket = dirs.path("gomd.sock");
    // Default Config::in_memory threshold (250 ms): a digest is orders of
    // magnitude faster, so the slow log must stay empty.
    let handle = serve(Config::in_memory(&socket)).expect("server start");
    let mut client = connect(&socket);
    let _ = client.request(&Request::Digest).unwrap();
    let json = metrics_json(&mut client);
    assert!(
        json.contains("\"slow_log\":[]"),
        "sub-threshold requests must not be logged: {json}"
    );
    assert_eq!(json_u64(&json, "slow_ms"), Some(250));
    let _ = client.request(&Request::Shutdown);
    handle.join();
}
