//! Plain-text table rendering of a [`Snapshot`](crate::Snapshot) for the
//! `gomsh stats` command and `ees --timing` reports.

use crate::Snapshot;

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn pad(s: &str, w: usize) -> String {
    if s.len() >= w {
        s.to_string()
    } else {
        format!("{s}{}", " ".repeat(w - s.len()))
    }
}

/// Render a snapshot as an aligned plain-text table: spans first (count,
/// total, mean, max), then counters, then histograms (count, mean, p50,
/// p95, max). Returns an empty string when nothing has been recorded.
pub fn render_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        let w = snap.spans.keys().map(|k| k.len()).max().unwrap_or(4).max(4);
        out.push_str(&format!(
            "{}  {:>8}  {:>10}  {:>10}  {:>10}\n",
            pad("span", w),
            "count",
            "total",
            "mean",
            "max"
        ));
        for (name, s) in &snap.spans {
            let mean = s.total_ns.checked_div(s.count).unwrap_or(0);
            out.push_str(&format!(
                "{}  {:>8}  {:>10}  {:>10}  {:>10}\n",
                pad(name, w),
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(mean),
                fmt_ns(s.max_ns)
            ));
        }
    }
    if !snap.counters.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let w = snap
            .counters
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(7)
            .max(7);
        out.push_str(&format!("{}  {:>12}\n", pad("counter", w), "value"));
        for (name, v) in &snap.counters {
            out.push_str(&format!("{}  {:>12}\n", pad(name, w), v));
        }
    }
    if !snap.hists.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let w = snap.hists.keys().map(|k| k.len()).max().unwrap_or(9).max(9);
        out.push_str(&format!(
            "{}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            pad("histogram", w),
            "count",
            "mean",
            "p50",
            "p95",
            "max"
        ));
        for (name, h) in &snap.hists {
            out.push_str(&format!(
                "{}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                pad(name, w),
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.max()
            ));
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::SpanStat;

    #[test]
    fn renders_all_sections() {
        let mut snap = Snapshot::default();
        snap.counters.insert("eval.tuples.derived".into(), 42);
        snap.spans.insert(
            "eval.stratum:0".into(),
            SpanStat {
                count: 3,
                total_ns: 3_000_000,
                max_ns: 2_000_000,
            },
        );
        let mut h = crate::Hist::default();
        h.record(1000);
        snap.hists.insert("eval.worker.busy_ns".into(), h);
        let t = render_table(&snap);
        assert!(t.contains("eval.tuples.derived"), "{t}");
        assert!(t.contains("eval.stratum:0"), "{t}");
        assert!(t.contains("eval.worker.busy_ns"), "{t}");
        assert!(t.contains("1.00ms"), "{t}");
        assert!(t.contains("42"), "{t}");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_table(&Snapshot::default()), "");
    }
}
