//! `gom-obs` — structured observability for the GOM engine.
//!
//! The paper's thesis is that consistency control should *explain itself*
//! (derivation trees for repairs, §3); this crate applies the same
//! philosophy to the runtime: every evaluation can account for its own
//! cost. It provides three primitives behind one global switch:
//!
//! * **spans** — RAII wall-clock timers with parent/child nesting
//!   (per-thread stack), e.g. `eval.stratum`, `session.ees`;
//! * **counters** — monotonic `u64` sums, e.g. `eval.tuples.derived`,
//!   `journal.fsyncs`;
//! * **histograms** — fixed power-of-two buckets (no allocation after
//!   creation), e.g. `eval.worker.busy_ns`.
//!
//! Two sinks consume them:
//!
//! * an **in-memory aggregator** ([`snapshot`]) for end-of-run summaries
//!   (`gomsh stats`, `ees --timing`, microbench rows), and
//! * a **JSONL trace writer** ([`set_trace_path`]) emitting one hand-rolled
//!   JSON object per span/event plus a counters snapshot at every flush,
//!   for offline analysis (same serde-free style as `gom-lint`'s JSON).
//!
//! **Disabled fast path.** Observability is off by default. Every probe
//! starts with a relaxed atomic load ([`enabled`]); when it returns
//! `false` no clock is read, no lock is taken, and no allocation happens —
//! the instrumented hot paths stay within noise of the uninstrumented
//! build (enforced by the ≤2% microbench gate in `scripts/check.sh`).
//!
//! The crate is dependency-free and fully offline, like the rest of the
//! workspace.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

mod hist;
mod table;

pub use hist::{bucket_index, bucket_lower_bound, Hist, BUCKETS};
pub use table::render_table;

// ---------------------------------------------------------------------------
// Global switch
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is observability collection on? One relaxed atomic load — the whole
/// cost of an instrumentation point in the disabled configuration. Hot
/// loops may hoist this into a local.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Process epoch for trace timestamps (first use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

// ---------------------------------------------------------------------------
// Aggregator
// ---------------------------------------------------------------------------

/// Aggregate statistics of one span name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed spans.
    pub count: u64,
    /// Sum of durations.
    pub total_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

#[derive(Default)]
struct Agg {
    counters: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStat>,
    hists: BTreeMap<String, Hist>,
}

fn agg() -> &'static Mutex<Agg> {
    static AGG: OnceLock<Mutex<Agg>> = OnceLock::new();
    AGG.get_or_init(|| Mutex::new(Agg::default()))
}

fn with_agg<R>(f: impl FnOnce(&mut Agg) -> R) -> R {
    f(&mut agg().lock().unwrap_or_else(PoisonError::into_inner))
}

/// Clear all aggregated statistics (the trace sink is left attached).
pub fn reset() {
    with_agg(|a| {
        a.counters.clear();
        a.spans.clear();
        a.hists.clear();
    });
}

/// Add `n` to counter `name`. No-op (one relaxed load) when disabled.
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    counter_add_always(name, n);
}

fn counter_add_always(name: &str, n: u64) {
    with_agg(|a| match a.counters.get_mut(name) {
        Some(c) => *c += n,
        None => {
            a.counters.insert(name.to_string(), n);
        }
    });
}

/// Record `v` into histogram `name`. No-op when disabled.
#[inline]
pub fn record(name: &str, v: u64) {
    if !enabled() {
        return;
    }
    record_always(name, v);
}

fn record_always(name: &str, v: u64) {
    with_agg(|a| a.hists.entry(name.to_string()).or_default().record(v));
}

// ---------------------------------------------------------------------------
// Vitals — always-on probes
// ---------------------------------------------------------------------------

/// Add `n` to counter `name` **regardless of [`enabled`]** — the vitals
/// path. The server's liveness counters (requests served, frames shed,
/// leases expired) must be reportable from a production daemon that never
/// turned profiling on; routing them through the same aggregator as the
/// profiled counters means `gomsh stats`, the `Metrics` verb, and JSONL
/// traces all read one source of truth instead of a parallel atomics
/// struct. Keep vitals to rare events (per-request at most): each call
/// takes the aggregator lock.
#[inline]
pub fn vital_add(name: &str, n: u64) {
    counter_add_always(name, n);
}

/// Record `v` into histogram `name` regardless of [`enabled`] — the
/// histogram counterpart of [`vital_add`], used for the server's per-verb
/// latency vitals. Callers on a hot path should pass a pre-interned
/// `&'static str` name so no per-call formatting happens.
#[inline]
pub fn vital_record(name: &str, v: u64) {
    record_always(name, v);
}

/// Credit an externally measured duration to span `name` (aggregation
/// only; no trace line, no nesting). Used where the span boundary does not
/// map to a scope, e.g. per-constraint timing inside a parallel scan.
#[inline]
pub fn record_span_dur(name: &str, dur: Duration) {
    if !enabled() {
        return;
    }
    let ns = dur.as_nanos().min(u128::from(u64::MAX)) as u64;
    with_agg(|a| {
        let s = a.spans.entry(name.to_string()).or_default();
        s.count += 1;
        s.total_ns += ns;
        s.max_ns = s.max_ns.max(ns);
    });
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

static SPAN_SEQ: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
    static THREAD_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Stable small integer id for the current thread (assigned on first use;
/// `ThreadId` itself has no stable integer form on stable Rust).
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    THREAD_ID.with(|c| {
        let mut id = c.get();
        if id == 0 {
            id = NEXT.fetch_add(1, Ordering::Relaxed);
            c.set(id);
        }
        id
    })
}

struct ActiveSpan {
    name: String,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    start_us: u64,
    thread: u64,
}

/// RAII span guard: measures from construction to drop. Inert (no clock
/// read) when collection was disabled at construction.
pub struct SpanGuard(Option<ActiveSpan>);

/// Open a span. When collection is off this costs one relaxed load and
/// returns an inert guard.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    span_always(name.to_string())
}

/// Open a span with a dynamic label appended as `name:label` — the
/// aggregation key and trace name both carry the label (per-stratum,
/// per-constraint, per-rule breakdowns).
#[inline]
pub fn span_labeled(name: &str, label: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    span_always(format!("{name}:{label}"))
}

fn span_always(name: String) -> SpanGuard {
    let id = SPAN_SEQ.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    let start = Instant::now();
    let start_us = start.duration_since(epoch()).as_micros() as u64;
    SpanGuard(Some(ActiveSpan {
        name,
        id,
        parent,
        start,
        start_us,
        thread: thread_ordinal(),
    }))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(sp) = self.0.take() else {
            return;
        };
        let dur = sp.start.elapsed();
        let ns = dur.as_nanos().min(u128::from(u64::MAX)) as u64;
        SPAN_STACK.with(|s| {
            let mut st = s.borrow_mut();
            if st.last() == Some(&sp.id) {
                st.pop();
            } else {
                // Out-of-order drop (guards held across scopes): remove
                // wherever it is, keeping the stack usable.
                st.retain(|&x| x != sp.id);
            }
        });
        with_agg(|a| {
            let s = a.spans.entry(sp.name.clone()).or_default();
            s.count += 1;
            s.total_ns += ns;
            s.max_ns = s.max_ns.max(ns);
        });
        trace_span_line(&sp, ns);
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// A field value of an [`event`].
#[derive(Clone, Copy, Debug)]
pub enum Field<'a> {
    /// String value.
    Str(&'a str),
    /// Unsigned value.
    U64(u64),
    /// Boolean value.
    Bool(bool),
}

/// Emit a point-in-time event: counted in the aggregator (counter
/// `event.<name>`) and written to the trace when one is attached.
pub fn event(name: &str, fields: &[(&str, Field)]) {
    if !enabled() {
        return;
    }
    counter_add_always(&format!("event.{name}"), 1);
    let mut line = String::with_capacity(96);
    line.push_str("{\"ev\":\"event\",\"name\":");
    push_json_str(&mut line, name);
    line.push_str(&format!(
        ",\"t_us\":{},\"thread\":{}",
        Instant::now().duration_since(epoch()).as_micros(),
        thread_ordinal()
    ));
    for (k, v) in fields {
        line.push(',');
        push_json_str(&mut line, k);
        line.push(':');
        match v {
            Field::Str(s) => push_json_str(&mut line, s),
            Field::U64(n) => line.push_str(&n.to_string()),
            Field::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push('}');
    trace_write_line(&line);
}

// ---------------------------------------------------------------------------
// Trace sink (JSONL)
// ---------------------------------------------------------------------------

fn trace() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    static TRACE: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();
    TRACE.get_or_init(|| Mutex::new(None))
}

/// Attach a JSONL trace sink writing to `path` (truncates). Implies
/// nothing about [`enabled`] — callers usually also call
/// `set_enabled(true)`.
pub fn set_trace_path(path: &std::path::Path) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    set_trace_writer(Box::new(std::io::BufWriter::new(f)));
    Ok(())
}

/// Attach an arbitrary trace sink (tests use in-memory buffers).
pub fn set_trace_writer(w: Box<dyn Write + Send>) {
    let mut t = trace().lock().unwrap_or_else(PoisonError::into_inner);
    *t = Some(w);
    drop(t);
    let mut head = String::from("{\"ev\":\"trace_start\",\"schema\":\"gom-obs/trace/v1\"}");
    head.push('\n');
    trace_write_raw(&head);
}

/// Detach the trace sink (flushing it first).
pub fn clear_trace() {
    flush_trace();
    let mut t = trace().lock().unwrap_or_else(PoisonError::into_inner);
    *t = None;
}

/// Is a trace sink attached?
pub fn trace_attached() -> bool {
    trace()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .is_some()
}

fn trace_write_line(line: &str) {
    let mut s = String::with_capacity(line.len() + 1);
    s.push_str(line);
    s.push('\n');
    trace_write_raw(&s);
}

fn trace_write_raw(s: &str) {
    let mut t = trace().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(w) = t.as_mut() {
        // A failing trace sink must never take the engine down; drop the
        // line and keep going.
        let _ = w.write_all(s.as_bytes());
    }
}

fn trace_span_line(sp: &ActiveSpan, dur_ns: u64) {
    if !trace_attached() {
        return;
    }
    let mut line = String::with_capacity(128);
    line.push_str("{\"ev\":\"span\",\"name\":");
    push_json_str(&mut line, &sp.name);
    line.push_str(&format!(",\"id\":{}", sp.id));
    match sp.parent {
        Some(p) => line.push_str(&format!(",\"parent\":{p}")),
        None => line.push_str(",\"parent\":null"),
    }
    line.push_str(&format!(
        ",\"thread\":{},\"start_us\":{},\"dur_ns\":{}}}",
        sp.thread, sp.start_us, dur_ns
    ));
    trace_write_line(&line);
}

/// Write an aggregator snapshot (`counters` + `hists` lines) to the trace
/// and flush the sink. Called at session boundaries and on shell exit so
/// offline traces always end with totals.
pub fn flush_trace() {
    let mut t = trace().lock().unwrap_or_else(PoisonError::into_inner);
    let Some(w) = t.as_mut() else {
        return;
    };
    let snap = snapshot();
    let mut line = String::from("{\"ev\":\"counters\",\"counters\":{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        push_json_str(&mut line, k);
        line.push_str(&format!(":{v}"));
    }
    line.push_str("}}\n");
    let _ = w.write_all(line.as_bytes());
    let mut line = String::from("{\"ev\":\"spans\",\"spans\":{");
    for (i, (k, s)) in snap.spans.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        push_json_str(&mut line, k);
        line.push_str(&format!(
            ":{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
            s.count, s.total_ns, s.max_ns
        ));
    }
    line.push_str("}}\n");
    let _ = w.write_all(line.as_bytes());
    let _ = w.flush();
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// A point-in-time copy of the aggregator, for rendering and diffing.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Span statistics by name.
    pub spans: BTreeMap<String, SpanStat>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Hist>,
}

impl Snapshot {
    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The statistics accumulated *since* `earlier` (counters and span
    /// stats subtract; histograms subtract bucket-wise). `earlier` must be
    /// an actual earlier snapshot of the same process.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (k, v) in &self.counters {
            let d = v.saturating_sub(earlier.counter(k));
            if d > 0 {
                out.counters.insert(k.clone(), d);
            }
        }
        for (k, s) in &self.spans {
            let e = earlier.spans.get(k).cloned().unwrap_or_default();
            let count = s.count.saturating_sub(e.count);
            if count > 0 {
                out.spans.insert(
                    k.clone(),
                    SpanStat {
                        count,
                        total_ns: s.total_ns.saturating_sub(e.total_ns),
                        // max over the window is not recoverable from two
                        // cumulative snapshots; keep the cumulative max.
                        max_ns: s.max_ns,
                    },
                );
            }
        }
        for (k, h) in &self.hists {
            match earlier.hists.get(k) {
                Some(e) => {
                    let d = h.since(e);
                    if d.count() > 0 {
                        out.hists.insert(k.clone(), d);
                    }
                }
                None => {
                    if h.count() > 0 {
                        out.hists.insert(k.clone(), h.clone());
                    }
                }
            }
        }
        out
    }
}

/// Copy the aggregator.
pub fn snapshot() -> Snapshot {
    with_agg(|a| Snapshot {
        counters: a.counters.clone(),
        spans: a.spans.clone(),
        hists: a.hists.clone(),
    })
}

/// Render a snapshot as one hand-rolled JSON object (schema
/// `gom-obs/stats/v1`): counters as a flat map, span stats, and histograms
/// with derived percentiles plus the sparse bucket export — enough to
/// reconstruct and [`Hist::merge`] histograms across processes. Single
/// line, serde-free, same style as the JSONL trace sink.
pub fn snapshot_json(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"schema\":\"gom-obs/stats/v1\",\"counters\":{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, k);
        out.push_str(&format!(":{v}"));
    }
    out.push_str("},\"spans\":{");
    for (i, (k, s)) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, k);
        out.push_str(&format!(
            ":{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
            s.count, s.total_ns, s.max_ns
        ));
    }
    out.push_str("},\"hists\":{");
    for (i, (k, h)) in snap.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, k);
        out.push_str(&format!(
            ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.mean(),
            h.p50(),
            h.p95(),
            h.p99(),
        ));
        for (j, (b, c)) in h.sparse_buckets().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{b},{c}]"));
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// Global-state tests must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_fast_path_records_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        counter_add("t.counter", 7);
        record("t.hist", 42);
        record_span_dur("t.span", Duration::from_millis(5));
        {
            let _sp = span("t.scope");
        }
        event("t.event", &[("k", Field::U64(1))]);
        let snap = snapshot();
        assert!(snap.counters.is_empty(), "{:?}", snap.counters);
        assert!(snap.spans.is_empty(), "{:?}", snap.spans);
        assert!(snap.hists.is_empty(), "{:?}", snap.hists);
    }

    #[test]
    fn enabled_counters_spans_hists_aggregate() {
        let _g = lock();
        set_enabled(true);
        reset();
        counter_add("t.counter", 7);
        counter_add("t.counter", 3);
        record("t.hist", 8);
        {
            let _sp = span("t.scope");
        }
        record_span_dur("t.labeled", Duration::from_micros(10));
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counter("t.counter"), 10);
        assert_eq!(snap.hists["t.hist"].count(), 1);
        assert_eq!(snap.spans["t.scope"].count, 1);
        assert_eq!(snap.spans["t.labeled"].total_ns, 10_000);
    }

    #[test]
    fn snapshot_since_subtracts() {
        let _g = lock();
        set_enabled(true);
        reset();
        counter_add("t.c", 5);
        record("t.h", 100);
        let s0 = snapshot();
        counter_add("t.c", 2);
        counter_add("t.new", 1);
        record("t.h", 100);
        let s1 = snapshot();
        set_enabled(false);
        let d = s1.since(&s0);
        assert_eq!(d.counter("t.c"), 2);
        assert_eq!(d.counter("t.new"), 1);
        assert_eq!(d.hists["t.h"].count(), 1);
        assert!(!d.counters.contains_key("t.unchanged"));
    }

    #[test]
    fn vitals_bypass_the_enabled_switch() {
        let _g = lock();
        set_enabled(false);
        reset();
        // Regular probes no-op while disabled…
        counter_add("t.off", 1);
        record("t.off.h", 9);
        // …but vitals always land.
        vital_add("t.vital", 2);
        vital_add("t.vital", 3);
        vital_record("t.vital.h", 40);
        let snap = snapshot();
        assert_eq!(snap.counter("t.off"), 0);
        assert!(!snap.hists.contains_key("t.off.h"));
        assert_eq!(snap.counter("t.vital"), 5);
        assert_eq!(snap.hists["t.vital.h"].count(), 1);
    }

    #[test]
    fn snapshot_json_is_well_formed_and_complete() {
        let _g = lock();
        set_enabled(true);
        reset();
        counter_add("t.\"quoted\"", 3);
        record("t.lat", 100);
        record("t.lat", 100);
        record("t.lat", 5000);
        record_span_dur("t.sp", Duration::from_micros(7));
        let snap = snapshot();
        set_enabled(false);
        let json = snapshot_json(&snap);
        assert!(
            json.starts_with("{\"schema\":\"gom-obs/stats/v1\""),
            "{json}"
        );
        assert!(json.contains("\"t.\\\"quoted\\\"\":3"), "{json}");
        assert!(
            json.contains("\"t.sp\":{\"count\":1,\"total_ns\":7000"),
            "{json}"
        );
        // Histogram block carries percentiles and the sparse buckets.
        let h = &snap.hists["t.lat"];
        assert!(
            json.contains(&format!(
                "\"p50\":{},\"p95\":{},\"p99\":{}",
                h.p50(),
                h.p95(),
                h.p99()
            )),
            "{json}"
        );
        assert!(
            json.contains(&format!("[{},2]", bucket_index(100))),
            "{json}"
        );
        // One line, balanced braces/brackets, no raw control chars.
        assert!(!json.contains('\n'));
        let bal = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(bal('{', '}') && bal('[', ']'), "{json}");
    }

    #[test]
    fn span_nesting_tracks_parents() {
        let _g = lock();
        set_enabled(true);
        reset();
        let buf: std::sync::Arc<Mutex<Vec<u8>>> = std::sync::Arc::default();
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        set_trace_writer(Box::new(Shared(buf.clone())));
        {
            let _outer = span("t.outer");
            let _inner = span("t.inner");
        }
        clear_trace();
        set_enabled(false);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        // Inner drops first and must reference the outer span as parent.
        let inner = text
            .lines()
            .find(|l| l.contains("\"t.inner\""))
            .expect("inner span line");
        let outer = text
            .lines()
            .find(|l| l.contains("\"t.outer\""))
            .expect("outer span line");
        assert!(outer.contains("\"parent\":null"), "{outer}");
        let outer_id: u64 = outer
            .split("\"id\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .expect("outer id");
        assert!(
            inner.contains(&format!("\"parent\":{outer_id}")),
            "{inner} vs outer id {outer_id}"
        );
    }
}
