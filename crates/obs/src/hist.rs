//! Fixed power-of-two bucket histogram.
//!
//! 65 buckets: bucket 0 holds exactly the value 0; bucket `i` (1..=64)
//! holds values in `[2^(i-1), 2^i - 1]` (bucket 64 tops out at
//! `u64::MAX`). No allocation after creation, O(1) record, and bucket
//! subtraction supports windowed snapshots.

/// Number of buckets (value 0 + one per bit position).
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i` (0 → 0, i ≥ 1 → `2^(i-1)`).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A power-of-two bucket histogram with count/sum/min/max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Hist {
    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Approximate quantile `q` in [0, 1]: the inclusive lower bound of
    /// the first bucket at which the cumulative count reaches
    /// `ceil(q * count)`. Exact for the distribution's bucket, within a
    /// factor of 2 of the true value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return bucket_lower_bound(i);
            }
        }
        bucket_lower_bound(BUCKETS - 1)
    }

    /// Median: the inclusive lower bound of the bucket holding the 50th
    /// percentile (see [`Hist::quantile`] for the error bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket lower bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket lower bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The non-empty buckets as `(index, count)` pairs — the mergeable
    /// export format: two histograms recorded on different threads (or
    /// machines) can be reconstructed and [`merge`](Hist::merge)d from
    /// this sparse form alone, plus min/max.
    pub fn sparse_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Add `count` observations into bucket `i` directly (reconstructing
    /// a histogram from its sparse export). `sum` is credited with the
    /// bucket's lower bound per observation — the same fidelity the
    /// bucketing itself guarantees.
    pub fn record_bucket(&mut self, i: usize, count: u64) {
        if count == 0 {
            return;
        }
        self.buckets[i] += count;
        self.count += count;
        let lo = bucket_lower_bound(i);
        self.sum = self.sum.saturating_add(lo.saturating_mul(count));
        self.min = self.min.min(lo);
        self.max = self.max.max(lo);
    }

    /// Merge another histogram into this one: bucket-wise addition,
    /// count/sum accumulate, min/max combine. Merging is commutative and
    /// associative (up to `sum` saturation), so per-thread histograms can
    /// be folded in any order.
    pub fn merge(&mut self, other: &Hist) {
        if other.count == 0 {
            return;
        }
        for i in 0..BUCKETS {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise difference `self - earlier` for windowed snapshots.
    /// min/max are kept from `self` (not recoverable for the window).
    pub fn since(&self, earlier: &Hist) -> Hist {
        let mut out = Hist {
            buckets: [0; BUCKETS],
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
        };
        for i in 0..BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        // Every bucket's lower bound must map back into that bucket, and
        // lower_bound - 1 must map into the previous one.
        for i in 1..BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(lo - 1), i - 1, "below bucket {i}");
        }
    }

    #[test]
    fn record_zero_and_max() {
        let mut h = Hist::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(64), 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        // Sum saturates rather than wrapping.
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn empty_hist_reports_zeroes() {
        let h = Hist::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn quantiles_land_in_right_bucket() {
        let mut h = Hist::default();
        for _ in 0..90 {
            h.record(10); // bucket 4, lower bound 8
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10, lower bound 512
        }
        assert_eq!(h.quantile(0.5), 8);
        assert_eq!(h.quantile(0.9), 8);
        assert_eq!(h.quantile(0.95), 512);
        assert_eq!(h.quantile(1.0), 512);
    }

    /// The promised error bound: a quantile is the inclusive lower bound
    /// of the bucket holding the target observation, so for any recorded
    /// value `v` the reported quantile `q` satisfies `q ≤ v ≤ 2q` (with
    /// `q == v` exactly at 0, 1, and every power of two) — the error is
    /// bounded by the bucket width.
    #[test]
    fn percentiles_are_bounded_by_bucket_width() {
        for v in [
            0u64,
            1,
            2,
            3,
            7,
            8,
            1023,
            1024,
            (1u64 << 63) - 1,
            1u64 << 63,
            u64::MAX,
        ] {
            let mut h = Hist::default();
            h.record(v);
            for q in [h.p50(), h.p95(), h.p99(), h.quantile(1.0)] {
                assert!(q <= v, "quantile {q} above recorded {v}");
                // q is the lower bound of v's bucket: v < 2q+2 covers the
                // bucket-width bound including the v=0/v=1 edge buckets.
                assert!(v <= q.saturating_mul(2).saturating_add(1), "{v} vs {q}");
            }
            // Exact at bucket boundaries (powers of two, 0, 1).
            if v == 0 || v.is_power_of_two() {
                assert_eq!(h.p99(), v, "boundary value must be exact");
            }
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut h = Hist::default();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[0, 3, 900]);
        let b = mk(&[17, 17, u64::MAX]);
        let c = mk(&[1, 1 << 40]);
        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        // a ∪ b == b ∪ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // The merge equals recording everything into one histogram.
        let all = mk(&[0, 3, 900, 17, 17, u64::MAX, 1, 1 << 40]);
        assert_eq!(ab_c, all);
        // Merging an empty histogram is the identity (incl. min/max).
        let mut a2 = a.clone();
        a2.merge(&Hist::default());
        assert_eq!(a2, a);
    }

    #[test]
    fn sparse_export_reconstructs_and_merges() {
        let mut h = Hist::default();
        for v in [5u64, 5, 300, 0] {
            h.record(v);
        }
        let mut rebuilt = Hist::default();
        for (i, c) in h.sparse_buckets() {
            rebuilt.record_bucket(i, c);
        }
        assert_eq!(rebuilt.count(), h.count());
        for i in 0..BUCKETS {
            assert_eq!(rebuilt.bucket(i), h.bucket(i), "bucket {i}");
        }
        // Quantiles agree exactly: they only depend on bucket counts.
        for q in [0.5, 0.95, 0.99, 1.0] {
            assert_eq!(rebuilt.quantile(q), h.quantile(q));
        }
    }

    #[test]
    fn since_subtracts_bucketwise() {
        let mut a = Hist::default();
        a.record(5);
        let snap = a.clone();
        a.record(5);
        a.record(100);
        let d = a.since(&snap);
        assert_eq!(d.count(), 2);
        assert_eq!(d.bucket(bucket_index(5)), 1);
        assert_eq!(d.bucket(bucket_index(100)), 1);
    }
}
