//! Offline micro-benchmark harness for the deductive hot paths.
//!
//! Unlike the criterion benches (gated behind `bench-deps`, unavailable in
//! offline builds), this binary has zero external dependencies and emits a
//! machine-readable JSON report so the perf trajectory can be tracked in the
//! repo (`BENCH_<date>.json`, see `scripts/bench.sh`).
//!
//! ```text
//! cargo run --release -p gom-bench --bin microbench -- --out BENCH.json
//! cargo run --release -p gom-bench --bin microbench -- --iters 21 fixpoint
//! ```
//!
//! Covered paths (the engine's three hot loops):
//! * `fixpoint_*`   — bottom-up semi-naive fixpoint (transitive closure),
//! * `ees_check_*`  — full EES consistency check over the GOM catalog,
//! * `dred_*`       — DRed incremental maintenance of a materialised IDB,
//! * `query_*`      — ad-hoc conjunctive query against a materialised IDB,
//! * `snapshot_*`   — epoch snapshot publication (CoW page sharing).

use gom_bench::{populate_objects, synth_manager, SplitMix64, SynthParams};
use gom_deductive::{ChangeSet, Database, Tuple};
use gom_server::Snapshot;
use gomflex::core::SchemaManager;
use gomflex::impact::{ImpactIndex, PlanConfig};
use std::hint::black_box;
use std::time::Instant;

/// One measured benchmark: name, per-iteration closure returning the number
/// of "work units" processed (derived facts, violations scanned, …).
struct Bench<'a> {
    name: &'static str,
    run: Box<dyn FnMut() -> u64 + 'a>,
    /// Work units per iteration (filled by the first run).
    units: u64,
}

struct Report {
    name: &'static str,
    median_ns: u128,
    min_ns: u128,
    units: u64,
    /// Tuples derived per iteration (obs counter, from an instrumented
    /// warmup run; timed runs are uninstrumented).
    derived: u64,
    /// Index/scan probes per iteration (eval + dred + repair probes).
    probes: u64,
}

fn measure(b: &mut Bench, iters: usize) -> Report {
    // Warmup: populate caches/indexes and record the unit count.
    b.units = (b.run)();
    // Second warmup runs under gom-obs so the row can carry the engine's
    // own derived-tuple and probe counts; the collector is switched off
    // again before anything is timed.
    gom_obs::set_enabled(true);
    let before = gom_obs::snapshot();
    (b.run)();
    let work = gom_obs::snapshot().since(&before);
    gom_obs::set_enabled(false);
    let derived = work.counter("eval.tuples.derived");
    let probes =
        work.counter("eval.probes") + work.counter("dred.probes") + work.counter("repair.probes");
    let mut samples: Vec<u128> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box((b.run)());
        samples.push(t0.elapsed().as_nanos());
    }
    samples.sort_unstable();
    Report {
        name: b.name,
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
        units: b.units,
        derived,
        probes,
    }
}

fn chain_db(depth: usize) -> Database {
    let mut db = Database::new();
    db.load(
        "base Edge(a, b).
         derived Path(a, b).
         Path(X, Y) :- Edge(X, Y).
         Path(X, Z) :- Edge(X, Y), Path(Y, Z).",
    )
    .unwrap();
    let e = db.pred_id("Edge").unwrap();
    for i in 0..depth {
        let a = db.constant(&format!("n{i}"));
        let b = db.constant(&format!("n{}", i + 1));
        db.insert(e, vec![a, b]).unwrap();
    }
    db
}

/// Sparse random digraph: `nodes` vertices, `edges` random edges.
fn graph_db(nodes: usize, edges: usize, seed: u64) -> Database {
    let mut db = Database::new();
    db.load(
        "base Edge(a, b).
         derived Path(a, b).
         Path(X, Y) :- Edge(X, Y).
         Path(X, Z) :- Edge(X, Y), Path(Y, Z).",
    )
    .unwrap();
    let e = db.pred_id("Edge").unwrap();
    let mut rng = SplitMix64::new(seed);
    for _ in 0..edges {
        let a = gom_deductive::Const::Int(rng.below(nodes) as i64);
        let b = gom_deductive::Const::Int(rng.below(nodes) as i64);
        db.insert(e, vec![a, b]).unwrap();
    }
    db
}

/// A 500-type synthetic schema with an open evolution session holding a
/// five-primitive migration delta (new slots on a live representation).
/// Slot *inserts* provably cannot violate `slot_for_every_attr` — its Slot
/// dependency is negative — so the polarity-aware footprint lets EES skip
/// the inherited-attribute join that plain dependency selection reruns.
fn synth500_session() -> (SchemaManager, ChangeSet) {
    let (mut mgr, ts) = synth_manager(SynthParams {
        types: 500,
        ..Default::default()
    });
    populate_objects(&mut mgr, &ts, 1);
    mgr.begin_evolution().expect("begin session");
    let clid = mgr
        .meta
        .phrep_of(ts[0])
        .expect("populated type has a PhRep");
    let val = mgr
        .meta
        .builtins
        .phrep_of(mgr.meta.builtins.int)
        .expect("builtin PhRep");
    for i in 0..5 {
        mgr.meta
            .add_slot(clid, &format!("mig{i}"), val)
            .expect("add slot");
    }
    let delta = mgr.meta.db.session_delta().expect("session delta");
    (mgr, delta)
}

/// A manager for the maintained-commit rows: an `n`-type schema with a
/// *constant* object population (instances on the first 50 types plus the
/// session's target type), so the only thing that grows with `n` is catalog
/// size. The session mutates the *last* type — a leaf of the synthetic
/// hierarchy (later types only subtype earlier ones) — so its derived delta
/// (inherited attributes, violation tuples) is constant-size too; mutating
/// a near-root type would legitimately derive O(#descendants) facts, which
/// is session-size, not schema-size. Each bench iteration opens a session,
/// applies a fixed net-zero six-primitive delta (three attributes added and
/// removed again) and commits through the maintained EES read — if that
/// path is O(Δ), the row's median stays flat from synth500 to synth5000.
fn maintained_commit_setup(n: usize) -> (SchemaManager, gom_model::TypeId) {
    let (mut mgr, ts) = synth_manager(SynthParams {
        types: n,
        ..Default::default()
    });
    let leaf = *ts.last().expect("nonempty schema");
    populate_objects(&mut mgr, &ts[..50], 1);
    populate_objects(&mut mgr, &[leaf], 1);
    (mgr, leaf)
}

/// One maintained-commit session: 3× add_attr + 3× remove_attr (net zero),
/// committed via `end_evolution` (the maintained EES read). Panics on an
/// inconsistent outcome — a net-zero session must always commit.
fn maintained_commit_iter(mgr: &mut SchemaManager, t0: gom_model::TypeId) -> u64 {
    mgr.begin_evolution().expect("begin session");
    let int_ty = mgr.meta.builtins.int;
    for i in 0..3 {
        mgr.meta
            .add_attr(t0, &format!("bm{i}"), int_ty)
            .expect("add attr");
    }
    for i in 0..3 {
        mgr.meta
            .remove_attr(t0, &format!("bm{i}"))
            .expect("remove attr");
    }
    match mgr.end_evolution().expect("ees") {
        gomflex::core::EvolutionOutcome::Consistent(delta) => delta.len() as u64,
        gomflex::core::EvolutionOutcome::Inconsistent(vs) => {
            panic!(
                "net-zero session must commit, got {} violation(s)",
                vs.len()
            )
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut iters = 15usize;
    let mut filters: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--iters" => {
                iters = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--iters N");
                i += 2;
            }
            f => {
                filters.push(f.to_string());
                i += 1;
            }
        }
    }

    let threads: usize = std::env::var("GOM_EVAL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    // ---- fixpoint: transitive closure --------------------------------------
    let mut chain = chain_db(128);
    let chain_path = chain.pred_id("Path").unwrap();
    let mut graph = graph_db(200, 420, 0xB0B);
    let graph_path = graph.pred_id("Path").unwrap();

    // ---- EES consistency check over the GOM catalog ------------------------
    let (mut mgr, ts) = synth_manager(SynthParams {
        types: 50,
        ..Default::default()
    });

    // ---- DRed incremental maintenance --------------------------------------
    let (mut dred_mgr, dred_ts) = synth_manager(SynthParams {
        types: 50,
        ..Default::default()
    });
    let mut mat = dred_mgr.meta.db.materialize().unwrap();
    let t0 = dred_ts[0];
    let int_ty = dred_mgr.meta.builtins.int;
    let attr_name = dred_mgr.meta.db.constant("bench_new_attr");
    let mut forward = ChangeSet::new();
    forward.insert(
        dred_mgr.meta.cat.attr,
        Tuple::from(vec![t0.constant(), attr_name, int_ty.constant()]),
    );
    let mut backward = ChangeSet::new();
    for op in forward.ops.iter().rev() {
        backward.ops.push(op.inverse());
    }

    // ---- ad-hoc query ------------------------------------------------------
    let mut qdb = chain_db(96);
    let q_edge = qdb.pred_id("Edge").unwrap();
    let q_path = qdb.pred_id("Path").unwrap();

    // ---- impact planner + footprint-gated EES over synth500 ----------------
    let (mut pmgr, pdelta) = synth500_session();
    let (mut fmgr, fdelta) = synth500_session();
    let findex = ImpactIndex::build(&mut fmgr.meta.db).unwrap();
    let ffp = findex.footprint(&fmgr.meta.db, &fdelta).constraints;
    let (mut gmgr, gdelta) = synth500_session();

    // ---- maintained EES commit, flat-in-schema-size rows -------------------
    let (mut m500, m500_t0) = maintained_commit_setup(500);
    let (mut m5000, m5000_t0) = maintained_commit_setup(5000);

    // ---- epoch snapshot publication over synth5000 -------------------------
    let (snap_mgr, _snap_ts) = maintained_commit_setup(5000);
    let (deep_mgr, _deep_ts) = maintained_commit_setup(5000);
    let mut snap_epoch = 0u64;

    let _ = ts;
    let mut benches: Vec<Bench> = vec![
        Bench {
            name: "fixpoint_tc_chain128",
            run: Box::new(move || {
                chain.invalidate_caches();
                chain.derived_facts(chain_path).unwrap().len() as u64
            }),
            units: 0,
        },
        Bench {
            name: "fixpoint_tc_graph200x420",
            run: Box::new(move || {
                graph.invalidate_caches();
                graph.derived_facts(graph_path).unwrap().len() as u64
            }),
            units: 0,
        },
        Bench {
            name: "ees_check_synth50",
            run: Box::new(move || {
                mgr.meta.db.invalidate_caches();
                let v = mgr.meta.db.check().unwrap();
                black_box(v.len());
                mgr.meta.db.fact_count() as u64
            }),
            units: 0,
        },
        Bench {
            name: "dred_attr_toggle_synth50",
            run: Box::new(move || {
                dred_mgr
                    .meta
                    .db
                    .apply_incremental(&mut mat, &forward)
                    .unwrap();
                let v1 = dred_mgr.meta.db.violations_from(&mat).unwrap().len();
                dred_mgr
                    .meta
                    .db
                    .apply_incremental(&mut mat, &backward)
                    .unwrap();
                let v2 = dred_mgr.meta.db.violations_from(&mat).unwrap().len();
                (v1 + v2) as u64 + 2
            }),
            units: 0,
        },
        Bench {
            name: "impact_plan_synth500",
            run: Box::new(move || {
                // Cold plan: rebuild the whole impact index (reflect the
                // program into the meta-EDB, run the meta-fixpoint) and
                // produce the full plan report for the open session.
                let index = ImpactIndex::build(&mut pmgr.meta.db).unwrap();
                let plan =
                    gomflex::impact::plan(&pmgr.meta.db, &index, &pdelta, &PlanConfig::default());
                black_box(plan.footprint.len() as u64 + plan.total_constraints as u64)
            }),
            units: 0,
        },
        Bench {
            name: "ees_footprint_synth500",
            run: Box::new(move || {
                fmgr.meta.db.invalidate_caches();
                fmgr.meta
                    .db
                    .check_delta_filtered(&fdelta, &ffp)
                    .unwrap()
                    .len() as u64
                    + 1
            }),
            units: 0,
        },
        Bench {
            name: "ees_full_synth500",
            run: Box::new(move || {
                gmgr.meta.db.invalidate_caches();
                gmgr.meta.db.check_delta(&gdelta).unwrap().len() as u64 + 1
            }),
            units: 0,
        },
        Bench {
            name: "ees_check_synth500",
            run: Box::new(move || maintained_commit_iter(&mut m500, m500_t0)),
            units: 0,
        },
        Bench {
            name: "ees_check_synth5000",
            run: Box::new(move || maintained_commit_iter(&mut m5000, m5000_t0)),
            units: 0,
        },
        Bench {
            name: "snapshot_publish_synth5000",
            run: Box::new(move || {
                // What every EES commit pays to publish a reader epoch:
                // with CoW page sharing this is O(#relations + #chunks)
                // Arc bumps, independent of the tuple count (units = facts
                // made visible per publication).
                snap_epoch += 1;
                let snap = Snapshot::capture(snap_epoch, &snap_mgr.meta);
                black_box(&snap);
                snap_mgr.meta.db.fact_count() as u64
            }),
            units: 0,
        },
        Bench {
            name: "snapshot_publish_deep_synth5000",
            run: Box::new(move || {
                // The pre-CoW publication path (deep per-tuple clone plus
                // the eager digest it always computed), kept as a
                // permanent contrast row for the CoW one above.
                let deep = deep_mgr.meta.db.deep_snapshot_clone();
                black_box(deep.debug_state_digest().len());
                deep_mgr.meta.db.fact_count() as u64
            }),
            units: 0,
        },
        Bench {
            name: "query_path_join96",
            run: Box::new(move || {
                use gom_deductive::ast::{Atom, Literal, Term, Var};
                let v = |n: u32| Term::Var(Var(n));
                let body = vec![
                    Literal::Pos(Atom::new(q_path, vec![v(0), v(1)])),
                    Literal::Pos(Atom::new(q_edge, vec![v(1), v(2)])),
                ];
                qdb.query(&body, &[Var(0), Var(2)]).unwrap().len() as u64
            }),
            units: 0,
        },
    ];

    let mut reports: Vec<Report> = Vec::new();
    for b in &mut benches {
        if !filters.is_empty() && !filters.iter().any(|f| b.name.contains(f.as_str())) {
            continue;
        }
        let r = measure(b, iters);
        eprintln!(
            "{:<28} median {:>12} ns   min {:>12} ns   {:>8} units   {:>10} derived   {:>10} probes",
            r.name, r.median_ns, r.min_ns, r.units, r.derived, r.probes,
        );
        reports.push(r);
    }

    // Machine-readable JSON (serde-free, like gom-lint's renderer).
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"gom-bench/microbench/v1\",\n");
    json.push_str(&format!("  \"unix_secs\": {unix_secs},\n"));
    json.push_str(&format!("  \"eval_threads\": {threads},\n"));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str("  \"benches\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let thr = r.units as f64 / (r.median_ns as f64 / 1e9);
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \
             \"units_per_iter\": {}, \"throughput_per_s\": {:.1}, \
             \"derived_per_iter\": {}, \"probes_per_iter\": {}}}{}\n",
            json_escape(r.name),
            r.median_ns,
            r.min_ns,
            r.units,
            thr,
            r.derived,
            r.probes,
            if i + 1 < reports.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("write report");
            eprintln!("wrote {p}");
        }
        None => print!("{json}"),
    }
}
