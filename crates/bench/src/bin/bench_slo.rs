//! Multi-client SLO load harness for gomd.
//!
//! Replays a deterministic, seeded evolution trace (`gom-trace`, Piccioni
//! op mix) against a live daemon from K concurrent writer clients while R
//! reader clients hammer the published snapshot, and reports client-side
//! per-verb latency percentiles plus contention counters as one
//! `gom-bench/slo/v1` JSON record:
//!
//! ```text
//! cargo run --release -p gom-bench --bin bench_slo -- \
//!     --seed 7 --sessions 200 --writers 4 --readers 8 --out BENCH_slo.json
//! cargo run --release -p gom-bench --bin bench_slo -- --socket /tmp/gomd.sock
//! ```
//!
//! Without `--socket` the harness hosts an in-memory gomd in-process and
//! shuts it down at the end; with it, it drives an external daemon.
//!
//! Determinism: each writer replays its own seeded sub-trace (disjoint
//! name ranges via `TraceConfig::name_offset`, so sessions commute under
//! any commit interleaving), which makes the *op sequence* byte-stable
//! for a given `(seed, sessions, writers)` — the report embeds the
//! trace's CRC-32 so two runs can prove they measured the same workload.
//! Latencies, of course, are the machine's.
//!
//! Latency rows use the gom-obs power-of-two histograms, so percentiles
//! are bucket lower bounds (within 2x of the true value); comparisons in
//! `scripts/bench.sh --compare` use a lenient 1.5x gate accordingly.

use gom_obs::Hist;
use gom_server::{serve, Client, Config, EvolutionOp, Reply, Request, RetryPolicy, RetryStats};
use gom_trace::{generate, ReadOp, TraceConfig, TraceOp};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The client-observed verbs, in report order.
const VERBS: [&str; 6] = ["bes", "op", "ees", "query", "check", "digest"];
const BES: usize = 0;
const OP: usize = 1;
const EES: usize = 2;
const QUERY: usize = 3;
const CHECK: usize = 4;
const DIGEST: usize = 5;

/// Per-thread measurement state: one histogram per verb (nanoseconds,
/// wall-clock around the retry loop — the latency a client *experiences*,
/// backoff included), merged across threads at the end.
#[derive(Default)]
struct Meter {
    hists: [Hist; 6],
    stats: RetryStats,
    commits: u64,
    violations: u64,
    errors: u64,
}

impl Meter {
    fn rec(&mut self, verb: usize, start: Instant) {
        let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.hists[verb].record(ns);
    }
}

/// Lower one trace op to the wire vocabulary. Rename and retype have no
/// wire primitive — the paper treats them as delete+add with impact
/// analysis on both halves — so they fan out into two requests.
fn lower(op: &TraceOp) -> Vec<EvolutionOp> {
    match op {
        TraceOp::DefineType { .. } => {
            // gom_source is Some for every DefineType.
            match op.gom_source() {
                Some(src) => vec![EvolutionOp::Define(src)],
                None => vec![],
            }
        }
        TraceOp::AddAttr { ty, name, domain } => vec![EvolutionOp::AddAttr {
            ty: ty.clone(),
            name: name.clone(),
            domain: domain.clone(),
        }],
        TraceOp::DelAttr { ty, name } => vec![EvolutionOp::DelAttr {
            ty: ty.clone(),
            name: name.clone(),
        }],
        TraceOp::DelType { ty } => vec![EvolutionOp::DelType {
            ty: ty.clone(),
            semantics: "restrict".to_string(),
        }],
        TraceOp::RenameAttr {
            ty,
            from,
            to,
            domain,
        } => vec![
            EvolutionOp::DelAttr {
                ty: ty.clone(),
                name: from.clone(),
            },
            EvolutionOp::AddAttr {
                ty: ty.clone(),
                name: to.clone(),
                domain: domain.clone(),
            },
        ],
        TraceOp::RetypeAttr {
            ty,
            name,
            to_domain,
            ..
        } => vec![
            EvolutionOp::DelAttr {
                ty: ty.clone(),
                name: name.clone(),
            },
            EvolutionOp::AddAttr {
                ty: ty.clone(),
                name: name.clone(),
                domain: to_domain.clone(),
            },
        ],
    }
}

/// Replay one writer's sub-trace: BES, the session's ops, tokened EES,
/// with typed-error retry throughout.
fn run_writer(
    socket: &std::path::Path,
    trace: &gom_trace::Trace,
    writer: u64,
    seed: u64,
) -> std::io::Result<Meter> {
    let mut m = Meter::default();
    let mut client = Client::connect_within(socket, Duration::from_secs(10))?;
    client.set_io_timeout(Some(Duration::from_secs(30)))?;
    let policy = RetryPolicy {
        attempts: 12,
        seed: seed ^ (writer << 8),
        ..RetryPolicy::default()
    };
    for (si, session) in trace.sessions.iter().enumerate() {
        let t0 = Instant::now();
        let reply = client.request_retry_stats(&Request::Bes, &policy, &mut m.stats)?;
        m.rec(BES, t0);
        if !matches!(reply, Reply::Ok(_)) {
            m.errors += 1;
            continue;
        }
        let mut healthy = true;
        'ops: for op in &session.ops {
            for wire_op in lower(op) {
                let t0 = Instant::now();
                let reply =
                    client.request_retry_stats(&Request::Op(wire_op), &policy, &mut m.stats)?;
                m.rec(OP, t0);
                match reply {
                    Reply::Ok(_) | Reply::Committed { .. } => {}
                    _ => {
                        m.errors += 1;
                        healthy = false;
                        break 'ops;
                    }
                }
            }
        }
        if !healthy {
            let _ = client.request(&Request::Rollback);
            continue;
        }
        // Unique idempotency token per (writer, session): a retried EES
        // whose ack was lost is answered from the server's token cache.
        let token = (writer << 32) | (si as u64 + 1);
        let t0 = Instant::now();
        let reply = client.request_retry_stats(
            &Request::Ees { token: Some(token) },
            &policy,
            &mut m.stats,
        )?;
        m.rec(EES, t0);
        match reply {
            Reply::Committed { .. } => m.commits += 1,
            Reply::Violations(_) => {
                m.violations += 1;
                let _ = client.request(&Request::Rollback);
            }
            _ => {
                m.errors += 1;
                let _ = client.request(&Request::Rollback);
            }
        }
    }
    Ok(m)
}

/// Cycle read ops against the published snapshot until the writers stop.
fn run_reader(
    socket: &std::path::Path,
    reads: &[ReadOp],
    reader: usize,
    stop: &AtomicBool,
) -> std::io::Result<Meter> {
    let mut m = Meter::default();
    let mut client = Client::connect_within(socket, Duration::from_secs(10))?;
    client.set_io_timeout(Some(Duration::from_secs(30)))?;
    let policy = RetryPolicy::default();
    let mut i = reader.wrapping_mul(7) % reads.len().max(1);
    while !stop.load(Ordering::Relaxed) {
        let (req, verb) = match reads.get(i % reads.len().max(1)) {
            Some(ReadOp::Query(q)) => (Request::Query(q.clone()), QUERY),
            Some(ReadOp::Check) => (Request::Check, CHECK),
            Some(ReadOp::Digest) | None => (Request::Digest, DIGEST),
        };
        i += 1;
        let t0 = Instant::now();
        let reply = client.request_retry_stats(&req, &policy, &mut m.stats)?;
        m.rec(verb, t0);
        match reply {
            Reply::Ok(_) | Reply::Rows { .. } | Reply::Violations(_) => {}
            _ => m.errors += 1,
        }
    }
    Ok(m)
}

/// Pull `"key":<number>` out of a flat JSON string (the `gomd/metrics/v1`
/// payload) without a JSON parser — keys are known literals.
fn json_u64(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    json.find(&needle)
        .map(|at| {
            json[at + needle.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap_or(0)
        })
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 7;
    let mut sessions: usize = 200;
    let mut writers: usize = 4;
    let mut readers: usize = 8;
    let mut socket_arg: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let val = |j: usize| -> String {
            args.get(j).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", args[j - 1]);
                std::process::exit(2)
            })
        };
        match args[i].as_str() {
            "--seed" => seed = val(i + 1).parse().expect("--seed N"),
            "--sessions" => sessions = val(i + 1).parse().expect("--sessions N"),
            "--writers" => writers = val(i + 1).parse().expect("--writers K"),
            "--readers" => readers = val(i + 1).parse().expect("--readers K"),
            "--socket" => socket_arg = Some(val(i + 1)),
            "--out" => out_path = Some(val(i + 1)),
            other => {
                eprintln!("unknown arg {other}; see the module docs");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let writers = writers.max(1);

    // One seeded sub-trace per writer, disjoint name ranges. The whole
    // workload is identified by the CRC over the concatenated renders.
    let traces: Vec<gom_trace::Trace> = (0..writers)
        .map(|w| {
            let share = sessions / writers + usize::from(w < sessions % writers);
            generate(&TraceConfig {
                seed: seed.wrapping_add(w as u64),
                sessions: share,
                name_offset: w as u64 * 1_000_000,
                ..TraceConfig::default()
            })
        })
        .collect();
    let trace_crc = {
        let mut all = String::new();
        for t in &traces {
            all.push_str(&t.render());
        }
        let mut crc: u32 = !0;
        for &b in all.as_bytes() {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        !crc
    };
    let total_ops: usize = traces.iter().map(|t| t.op_count()).sum();
    let reads: Vec<ReadOp> = traces
        .iter()
        .flat_map(|t| t.sessions.iter())
        .flat_map(|s| s.reads.iter().cloned())
        .collect();

    // Host an in-memory daemon unless pointed at a live socket.
    let tmp_dir = std::env::temp_dir().join(format!("gom-slo-{}", std::process::id()));
    let (socket, handle) = match &socket_arg {
        Some(s) => (std::path::PathBuf::from(s), None),
        None => {
            std::fs::create_dir_all(&tmp_dir).expect("create temp dir");
            let sock = tmp_dir.join("gomd.sock");
            let config = Config {
                max_connections: writers + readers + 4,
                ..Config::in_memory(&sock)
            };
            let handle = serve(config).expect("start in-process gomd");
            (sock, Some(handle))
        }
    };

    eprintln!(
        "slo: {sessions} sessions ({total_ops} ops, crc {trace_crc:08x}) \
         across {writers} writer(s) + {readers} reader(s) on {}",
        socket.display()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let bench_start = Instant::now();
    let meters: Vec<Meter> = std::thread::scope(|scope| {
        let mut whandles = Vec::new();
        for (w, trace) in traces.iter().enumerate() {
            let socket = socket.clone();
            whandles.push(scope.spawn(move || run_writer(&socket, trace, w as u64, seed)));
        }
        let mut rhandles = Vec::new();
        for r in 0..readers {
            let socket = socket.clone();
            let reads = &reads;
            let stop = Arc::clone(&stop);
            rhandles.push(scope.spawn(move || run_reader(&socket, reads, r, &stop)));
        }
        let mut out: Vec<Meter> = Vec::new();
        for h in whandles {
            match h.join() {
                Ok(Ok(m)) => out.push(m),
                Ok(Err(e)) => {
                    eprintln!("writer failed: {e}");
                    std::process::exit(1);
                }
                Err(_) => {
                    eprintln!("writer panicked");
                    std::process::exit(1);
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        for h in rhandles {
            match h.join() {
                Ok(Ok(m)) => out.push(m),
                Ok(Err(e)) => {
                    eprintln!("reader failed: {e}");
                    std::process::exit(1);
                }
                Err(_) => {
                    eprintln!("reader panicked");
                    std::process::exit(1);
                }
            }
        }
        out
    });
    let elapsed = bench_start.elapsed();

    // Server-side view, for the shed/lease columns the clients can't see
    // directly (a shed connection is closed before its request is read).
    let server_metrics = Client::connect_within(&socket, Duration::from_secs(5))
        .and_then(|mut c| c.request(&Request::Metrics))
        .ok()
        .and_then(|r| match r {
            Reply::Ok(json) => Some(json),
            _ => None,
        })
        .unwrap_or_default();
    if let Some(handle) = handle {
        if let Ok(mut c) = Client::connect_within(&socket, Duration::from_secs(5)) {
            let _ = c.request(&Request::Shutdown);
        }
        handle.join();
        let _ = std::fs::remove_dir_all(&tmp_dir);
    }

    // Merge the per-thread meters.
    let mut hists: [Hist; 6] = Default::default();
    let mut stats = RetryStats::default();
    let (mut commits, mut violations, mut errors) = (0u64, 0u64, 0u64);
    for m in &meters {
        for (i, h) in m.hists.iter().enumerate() {
            hists[i].merge(h);
        }
        stats.busy_retries += m.stats.busy_retries;
        stats.overloaded_retries += m.stats.overloaded_retries;
        stats.lease_expired += m.stats.lease_expired;
        commits += m.commits;
        violations += m.violations;
        errors += m.errors;
    }

    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let elapsed_ms = elapsed.as_millis() as u64;
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"gom-bench/slo/v1\",\n");
    json.push_str(&format!("  \"unix_secs\": {unix_secs},\n"));
    json.push_str(&format!(
        "  \"seed\": {seed}, \"sessions\": {sessions}, \"writers\": {writers}, \
         \"readers\": {readers},\n"
    ));
    json.push_str(&format!(
        "  \"trace_crc32\": {trace_crc}, \"total_ops\": {total_ops}, \
         \"elapsed_ms\": {elapsed_ms},\n"
    ));
    json.push_str(&format!(
        "  \"commits\": {commits}, \"violations\": {violations}, \"errors\": {errors},\n"
    ));
    json.push_str(&format!(
        "  \"busy_retries\": {}, \"overloaded_retries\": {}, \"lease_expired\": {},\n",
        stats.busy_retries, stats.overloaded_retries, stats.lease_expired
    ));
    json.push_str(&format!(
        "  \"server_shed\": {}, \"server_lease_expired\": {}, \"server_requests\": {},\n",
        json_u64(&server_metrics, "server.shed"),
        json_u64(&server_metrics, "server.lease.expired"),
        json_u64(&server_metrics, "server.requests"),
    ));
    json.push_str("  \"rows\": [\n");
    let live: Vec<usize> = (0..VERBS.len()).filter(|&i| hists[i].count() > 0).collect();
    for (k, &i) in live.iter().enumerate() {
        let h = &hists[i];
        let thr = h.count() as f64 / (elapsed_ms.max(1) as f64 / 1e3);
        json.push_str(&format!(
            "    {{\"verb\": \"{}\", \"count\": {}, \"p50_us\": {}, \"p95_us\": {}, \
             \"p99_us\": {}, \"max_us\": {}, \"throughput_per_s\": {:.1}}}{}\n",
            VERBS[i],
            h.count(),
            h.p50() / 1_000,
            h.p95() / 1_000,
            h.p99() / 1_000,
            h.max() / 1_000,
            thr,
            if k + 1 < live.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    for &i in &live {
        let h = &hists[i];
        eprintln!(
            "{:<8} {:>8} reqs   p50 {:>9} us   p95 {:>9} us   p99 {:>9} us   max {:>9} us",
            VERBS[i],
            h.count(),
            h.p50() / 1_000,
            h.p95() / 1_000,
            h.p99() / 1_000,
            h.max() / 1_000,
        );
    }
    eprintln!(
        "commits {commits}  violations {violations}  errors {errors}  \
         busy {busy}  shed {shed}  lease {lease}  in {elapsed_ms} ms",
        busy = stats.busy_retries,
        shed = stats.overloaded_retries,
        lease = stats.lease_expired,
    );

    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("write report");
            eprintln!("wrote {p}");
        }
        None => print!("{json}"),
    }
}
