//! Regenerates every table and figure of the paper (see `DESIGN.md` §5 and
//! `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run -p gom-bench --bin experiments            # all experiments
//! cargo run -p gom-bench --bin experiments -- f2 t3   # a subset
//! ```

use gomflex::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |id: &str| all || args.iter().any(|a| a == id);

    if want("f1") {
        f1_architecture()?;
    }
    if want("f2") {
        f2_extensions()?;
    }
    if want("t1") {
        t1_relationship_extensions()?;
    }
    if want("t2") {
        t2_object_base_model()?;
    }
    if want("t3") {
        t3_fueltype_repairs()?;
    }
    if want("t4") {
        t4_versioning_fashion()?;
    }
    if want("t5") {
        t5_extension_effort()?;
    }
    if want("t6") {
        t6_new_car_schema()?;
    }
    if want("f3") {
        f3_schema_hierarchy()?;
    }
    Ok(())
}

fn header(id: &str, what: &str) {
    println!("\n================================================================");
    println!("{id} — {what}");
    println!("================================================================");
}

/// F1 — Figure 1: the generic system architecture, demonstrated as the
/// module-interaction trace of one evolution session.
fn f1_architecture() -> Result<(), Box<dyn std::error::Error>> {
    header("F1", "generic architecture: one session's component trace");
    let mut mgr = SchemaManager::new()?;
    println!(
        "[Consistency Control] consistency definition loaded: {} rule(s), {} constraint(s)",
        mgr.meta.db.rules().len(),
        mgr.meta.db.constraints().len()
    );
    println!("[User]               BES — begin evolution session");
    mgr.begin_evolution()?;
    println!("[Analyzer]           parse + lower `schema CarSchema is …`");
    mgr.analyzer
        .lower_source(&mut mgr.meta, CAR_SCHEMA_SRC)
        .map_err(|e| e.to_string())?;
    println!(
        "[Analyzer → CC]      modify(+Schema, +Type×4, +Attr×10, +Decl×3, +ArgDecl×4, +Code×3, …)"
    );
    println!("[User]               EES — end evolution session");
    let out = mgr.end_evolution()?;
    println!(
        "[Consistency Control] check: {} violation(s) → commit",
        out.violations().len()
    );
    let sid = mgr.meta.schema_by_name("CarSchema").unwrap();
    let car = mgr.meta.type_by_name(sid, "Car").unwrap();
    println!("[Runtime System]     create instance of Car");
    mgr.create_object(car)?;
    println!("[Runtime → CC]       modify(+PhRep, +Slot×4, …)  (physical representation reported)");
    println!(
        "[Consistency Control] full check: {} violation(s)",
        mgr.check()?.len()
    );
    Ok(())
}

/// F2 — Figure 2: the Schema/Type/Attr/Decl/ArgDecl/Code extensions derived
/// by the Analyzer from the CarSchema source.
fn f2_extensions() -> Result<(), Box<dyn std::error::Error>> {
    header(
        "F2",
        "Figure 2: extensions for the example (Analyzer output)",
    );
    let mut mgr = SchemaManager::new()?;
    mgr.define_schema(CAR_SCHEMA_SRC)
        .map_err(|e| e.to_string())?;
    for pred in ["Schema", "Type", "Attr", "Decl", "ArgDecl", "Code"] {
        let p = mgr.meta.db.pred_id(pred).unwrap();
        print!("{}", mgr.meta.render_relation(p));
    }
    println!("(built-in sorts in schema `__builtin` included; the paper assumes them implicitly)");
    Ok(())
}

/// T1 — §3.2 second extension table: SubTypRel, DeclRefinement,
/// CodeReqDecl, CodeReqAttr.
fn t1_relationship_extensions() -> Result<(), Box<dyn std::error::Error>> {
    header("T1", "§3.2 relationship/code-dependency extensions");
    let mut mgr = SchemaManager::new()?;
    mgr.define_schema(CAR_SCHEMA_SRC)
        .map_err(|e| e.to_string())?;
    for pred in ["SubTypRel", "DeclRefinement", "CodeReqDecl", "CodeReqAttr"] {
        let p = mgr.meta.db.pred_id(pred).unwrap();
        print!("{}", mgr.meta.render_relation(p));
    }
    println!("(extra CodeReqDecl row vs the paper: changeLocation's call of the refined");
    println!(" distance is recorded; the paper's table omits it — see EXPERIMENTS.md)");
    Ok(())
}

/// T2 — §3.4: consistent PhRep/Slot extensions with one object per type.
fn t2_object_base_model() -> Result<(), Box<dyn std::error::Error>> {
    header(
        "T2",
        "§3.4 Object Base Model extensions (one instance per type)",
    );
    let mut mgr = SchemaManager::new()?;
    mgr.define_schema(CAR_SCHEMA_SRC)
        .map_err(|e| e.to_string())?;
    let sid = mgr.meta.schema_by_name("CarSchema").unwrap();
    for tname in ["Person", "Location", "City", "Car"] {
        let t = mgr.meta.type_by_name(sid, tname).unwrap();
        mgr.create_object(t)?;
    }
    for pred in ["PhRep", "Slot"] {
        let p = mgr.meta.db.pred_id(pred).unwrap();
        print!("{}", mgr.meta.render_relation(p));
    }
    println!(
        "schema/object consistency: {} violation(s)",
        mgr.check()?.len()
    );
    Ok(())
}

/// T3 — §3.5: the fuelType repair enumeration (exactly three repairs).
fn t3_fueltype_repairs() -> Result<(), Box<dyn std::error::Error>> {
    header("T3", "§3.5 repairs for adding fuelType to Car");
    let mut mgr = SchemaManager::new()?;
    mgr.define_schema(CAR_SCHEMA_SRC)
        .map_err(|e| e.to_string())?;
    let sid = mgr.meta.schema_by_name("CarSchema").unwrap();
    let car = mgr.meta.type_by_name(sid, "Car").unwrap();
    mgr.create_object(car)?;
    mgr.begin_evolution()?;
    let string = mgr.meta.builtins.string;
    mgr.meta.add_attr(car, "fuelType", string)?;
    let out = mgr.end_evolution()?;
    for v in out.violations() {
        println!("violation: {}", v.render(&mgr.meta.db));
    }
    let repairs = mgr.repairs_for(&out.violations()[0])?;
    println!("\npaper's expected repairs:");
    println!("  1. -Attr^i(tid4, fuelType, tid_string)   [traced to the base Attr fact]");
    println!("  2. -PhRep(clid4, tid4)");
    println!("  3. +Slot(clid4, fuelType, clid_string)");
    println!("\ngenerated repairs ({}):", repairs.len());
    for (i, r) in repairs.iter().enumerate() {
        println!("  {}. {}", i + 1, r.render(&mgr.meta));
    }
    mgr.rollback_evolution()?;
    Ok(())
}

/// T4 — §4.1: versioning + fashion accepted/rejected by the constraint set.
fn t4_versioning_fashion() -> Result<(), Box<dyn std::error::Error>> {
    header("T4", "§4.1 versioning + fashion: constraint verdicts");
    let mut mgr = SchemaManager::new()?;
    mgr.define_schema(CAR_SCHEMA_SRC)
        .map_err(|e| e.to_string())?;
    install_versioning(&mut mgr)?;
    mgr.define_schema(
        "schema NewCarSchema is
           type Person is [ name : string; birthday : date; ] end type Person;
         end schema NewCarSchema;",
    )
    .map_err(|e| e.to_string())?;
    let s1 = mgr.meta.schema_by_name("CarSchema").unwrap();
    let s2 = mgr.meta.schema_by_name("NewCarSchema").unwrap();
    let p1 = mgr.meta.type_by_name(s1, "Person").unwrap();
    let p2 = mgr.meta.type_by_name(s2, "Person").unwrap();

    // (a) fashion without evolution edges → rejected.
    mgr.begin_evolution()?;
    let ft = mgr.meta.db.pred_id("FashionType").unwrap();
    mgr.meta.db.insert(ft, vec![p1.constant(), p2.constant()])?;
    let out = mgr.end_evolution()?;
    println!("(a) FashionType alone:");
    for v in out.violations() {
        println!("    REJECT {}", v.render(&mgr.meta.db));
    }
    mgr.rollback_evolution()?;

    // (b) the complete §4.1 declaration → accepted.
    mgr.begin_evolution()?;
    record_schema_evolution(&mut mgr, s1, s2)?;
    record_type_evolution(&mut mgr, p1, p2)?;
    mgr.analyzer
        .lower_source(
            &mut mgr.meta,
            "fashion Person@CarSchema as Person@NewCarSchema where
               birthday : -> date is self.age * 365;
               birthday : <- date is begin self.age := value / 365; end;
               name : string is self.name;
             end fashion;",
        )
        .map_err(|e| e.to_string())?;
    let out = mgr.end_evolution()?;
    println!("(b) evolves_to_S + evolves_to_T + complete fashion:");
    println!(
        "    {}",
        if out.is_consistent() {
            "ACCEPT (session committed)"
        } else {
            "REJECT"
        }
    );
    // (c) masking at work
    let alice = mgr.create_object(p1)?;
    mgr.set_attr(alice, "age", Value::Int(30))?;
    println!(
        "(c) old Person instance under the new signature: birthday = {}",
        mgr.get_attr(alice, "birthday")?
    );
    Ok(())
}

/// T5 — §4.1 implementation-effort report, measured as definition counts.
fn t5_extension_effort() -> Result<(), Box<dyn std::error::Error>> {
    header("T5", "§4.1 'implementation effort' — measured proxies");
    let mut base = SchemaManager::new()?;
    let (p0, r0, c0) = (
        base.meta.db.pred_count(),
        base.meta.db.rules().len(),
        base.meta.db.constraints().len(),
    );
    install_versioning(&mut base)?;
    let (p1, r1, c1) = (
        base.meta.db.pred_count(),
        base.meta.db.rules().len(),
        base.meta.db.constraints().len(),
    );
    println!("paper: consistency-control feed ≈ 1 hour; Analyzer (Lex/Yacc) ≈ 1 day;");
    println!("       Runtime System ≈ 1 week (dynamic binding already present)\n");
    println!("measured (this reproduction):");
    println!(
        "  consistency control : +{} base predicate(s), +{} rule(s), +{} constraint(s) — one text document ({} lines)",
        p1 - p0,
        r1 - r0,
        c1 - c0,
        gomflex::evolution::VERSIONING_DEFS.lines().count()
    );
    println!("  analyzer            : `fashion` grammar + lowering (parser already handles it; 0 new modules)");
    println!("  runtime system      : masking redirection in get_attr/set_attr/call (one module, `runtime::runtime`)");
    println!("  base-manager modules edited for the extension: 0");
    Ok(())
}

/// T6 — §4.2: the seven-step complex evolution, executed and verified.
fn t6_new_car_schema() -> Result<(), Box<dyn std::error::Error>> {
    header("T6", "§4.2 NewCarSchema: seven-step complex evolution");
    let mut mgr = SchemaManager::new()?;
    mgr.define_schema(CAR_SCHEMA_SRC)
        .map_err(|e| e.to_string())?;
    install_versioning(&mut mgr)?;
    let old_schema = mgr.meta.schema_by_name("CarSchema").unwrap();
    let old_car = mgr.meta.type_by_name(old_schema, "Car").unwrap();
    let trabi = mgr.create_object(old_car)?;

    mgr.begin_evolution()?;
    let new_schema = mgr.meta.new_schema("NewCarSchema")?;
    record_schema_evolution(&mut mgr, old_schema, new_schema)?;
    let polluter = mgr.meta.new_type(new_schema, "PolluterCar")?;
    record_type_evolution(&mut mgr, old_car, polluter)?;
    let new_car =
        copy_type_into(&mut mgr, old_car, new_schema, "Car").map_err(|e| e.to_string())?;
    let any = mgr.meta.builtins.any;
    mgr.meta.add_subtype(new_car, any)?;
    let catalyst = mgr.meta.new_type(new_schema, "CatalystCar")?;
    mgr.meta.add_subtype(polluter, new_car)?;
    mgr.meta.add_subtype(catalyst, new_car)?;
    let fuel_sort = mgr.meta.new_type(new_schema, "Fuel")?;
    mgr.meta.add_subtype(fuel_sort, any)?;
    let sv = mgr.meta.db.pred_id("SortVariant").unwrap();
    for variant in ["leaded", "unleaded"] {
        let v = mgr.meta.db.constant(variant);
        mgr.meta.db.insert(sv, vec![fuel_sort.constant(), v])?;
    }
    let d_pol = mgr.meta.new_decl(polluter, "fuel", fuel_sort)?;
    mgr.meta.new_code(d_pol, "return leaded;")?;
    let d_cat = mgr.meta.new_decl(catalyst, "fuel", fuel_sort)?;
    mgr.meta.new_code(d_cat, "return unleaded;")?;
    mgr.analyzer
        .lower_source(
            &mut mgr.meta,
            "fashion Car@CarSchema as PolluterCar@NewCarSchema where
               owner    : Person is self.owner;
               maxspeed : float  is self.maxspeed;
               milage   : float  is self.milage;
               location : City   is self.location;
               operation changeLocation is begin return self.changeLocation(arg1, arg2); end;
               operation fuel is begin return leaded; end;
             end fashion;",
        )
        .map_err(|e| e.to_string())?;
    let out = mgr.end_evolution()?;
    println!(
        "seven steps executed in one session → {}",
        if out.is_consistent() {
            "CONSISTENT (committed)"
        } else {
            "INCONSISTENT"
        }
    );
    println!("resulting NewCarSchema types:");
    for t in mgr.meta.types_of_schema(new_schema) {
        println!(
            "  {} (attrs: {}, ops: {})",
            mgr.meta.type_name(t).unwrap(),
            mgr.meta.attrs_inherited(t).len(),
            mgr.meta.decls_of(t).len()
        );
    }
    println!(
        "old Car instance reused as PolluterCar: fuel = {}",
        mgr.call(trabi, "fuel", &[])?
    );
    Ok(())
}

/// F3 — Figure 3 / appendix A: the sample schema hierarchy.
fn f3_schema_hierarchy() -> Result<(), Box<dyn std::error::Error>> {
    header("F3", "Figure 3: sample schema hierarchy (appendix A)");
    let mut mgr = SchemaManager::new()?;
    mgr.define_schema(COMPANY_SCHEMA_SRC)
        .map_err(|e| e.to_string())?;
    let h = mgr.analyzer.hierarchy().map_err(|e| e.to_string())?;
    fn tree(h: &gomflex::analyzer::paths::Hierarchy, n: &str, d: usize) {
        println!("{}{n}", "    ".repeat(d));
        for c in h.children(n) {
            tree(h, c, d + 1);
        }
    }
    for r in h.roots() {
        tree(&h, r, 0);
    }
    println!("\nname-space demonstration:");
    println!(
        "  Geometry sees CSGCuboid  -> {:?}",
        h.lookup_type("Geometry", "CSGCuboid")
            .map_err(|e| e.to_string())?
    );
    println!(
        "  Geometry sees BRepCuboid -> {:?}",
        h.lookup_type("Geometry", "BRepCuboid")
            .map_err(|e| e.to_string())?
    );
    println!(
        "  Geometry sees Surface    -> {:?} (hidden by the public clause)",
        h.lookup_type("Geometry", "Surface")
            .map_err(|e| e.to_string())?
    );
    println!("consistency: {} violation(s)", mgr.check()?.len());
    Ok(())
}
