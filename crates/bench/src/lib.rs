//! Workload generation for the experiment harness.
//!
//! The paper evaluates on hand-written example schemas; for the
//! quantitative benchmarks (B1–B7 in `DESIGN.md`) we generate synthetic
//! schemas with controlled size and shape, exercising the same code paths
//! (types, attributes, hierarchies, declarations with implementations,
//! objects with slots).

use gom_core::SchemaManager;
use gom_model::TypeId;

/// Minimal deterministic PRNG (splitmix64) so workload generation needs no
/// external crates; benchmark workloads only need reproducible shuffling,
/// not statistical quality.
pub struct SplitMix64(u64);

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-enough value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Parameters of a synthetic schema.
#[derive(Clone, Copy, Debug)]
pub struct SynthParams {
    /// Number of types.
    pub types: usize,
    /// Attributes per type.
    pub attrs_per_type: usize,
    /// Operations (with code) per type.
    pub decls_per_type: usize,
    /// Percentage (0–100) of types that subtype a previous type instead of
    /// rooting directly at `ANY` — controls hierarchy depth.
    pub subtype_pct: u8,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            types: 50,
            attrs_per_type: 3,
            decls_per_type: 1,
            subtype_pct: 60,
            seed: 42,
        }
    }
}

/// Build a synthetic, consistent schema directly in the meta model (no
/// parsing). Returns the created type ids.
pub fn build_synth_schema(mgr: &mut SchemaManager, p: SynthParams) -> Vec<TypeId> {
    let mut rng = SplitMix64::new(p.seed);
    let schema = mgr
        .meta
        .new_schema(&format!("Synth{}_{}", p.types, p.seed))
        .expect("schema");
    let any = mgr.meta.builtins.any;
    let builtin_domains = [
        mgr.meta.builtins.int,
        mgr.meta.builtins.float,
        mgr.meta.builtins.string,
        mgr.meta.builtins.bool_,
    ];
    let mut types: Vec<TypeId> = Vec::with_capacity(p.types);
    for i in 0..p.types {
        let t = mgr.meta.new_type(schema, &format!("T{i}")).expect("type");
        // hierarchy: subtype a previous type or root at ANY
        if !types.is_empty() && rng.below(100) < p.subtype_pct as usize {
            let sup = types[rng.below(types.len())];
            mgr.meta.add_subtype(t, sup).expect("subtype");
        } else {
            mgr.meta.add_subtype(t, any).expect("subtype");
        }
        for a in 0..p.attrs_per_type {
            let dom = builtin_domains[rng.below(builtin_domains.len())];
            mgr.meta
                .add_attr(t, &format!("a{i}_{a}"), dom)
                .expect("attr");
        }
        for d in 0..p.decls_per_type {
            let result = builtin_domains[rng.below(builtin_domains.len())];
            let decl = mgr
                .meta
                .new_decl(t, &format!("op{i}_{d}"), result)
                .expect("decl");
            mgr.meta.new_code(decl, "return 0;").expect("code");
        }
        types.push(t);
    }
    types
}

/// Populate the object base with `objects_per_type` instances of each given
/// type.
pub fn populate_objects(mgr: &mut SchemaManager, types: &[TypeId], objects_per_type: usize) {
    for &t in types {
        for _ in 0..objects_per_type {
            mgr.create_object(t).expect("object");
        }
    }
}

/// A manager pre-loaded with a consistent synthetic schema.
pub fn synth_manager(p: SynthParams) -> (SchemaManager, Vec<TypeId>) {
    let mut mgr = SchemaManager::new().expect("manager");
    let types = build_synth_schema(&mut mgr, p);
    (mgr, types)
}

/// Generate GOM source text for the analyzer-throughput benchmark: `types`
/// type frames with attributes and one implemented operation each.
pub fn synth_source(types: usize) -> String {
    let mut s = String::from("schema Generated is\n");
    for i in 0..types {
        s.push_str(&format!(
            "  type G{i} is\n    [ x{i} : int;\n      y{i} : float; ]\n\
             \x20 operations\n    declare total{i} : || -> float;\n\
             \x20 implementation\n    define total{i} is\n    begin\n      \
             return self.x{i} + self.y{i};\n    end define total{i};\n  end type G{i};\n",
        ));
    }
    s.push_str("end schema Generated;\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_schema_is_consistent() {
        let (mut mgr, types) = synth_manager(SynthParams {
            types: 30,
            ..Default::default()
        });
        assert_eq!(types.len(), 30);
        assert!(mgr.check().unwrap().is_empty());
    }

    #[test]
    fn synth_schema_is_deterministic() {
        let (mut a, _) = synth_manager(SynthParams::default());
        let (mut b, _) = synth_manager(SynthParams::default());
        assert_eq!(a.meta.db.fact_count(), b.meta.db.fact_count());
        assert_eq!(a.check().unwrap().len(), b.check().unwrap().len());
    }

    #[test]
    fn populated_objects_keep_consistency() {
        let (mut mgr, types) = synth_manager(SynthParams {
            types: 10,
            ..Default::default()
        });
        let subset: Vec<_> = types[..5].to_vec();
        populate_objects(&mut mgr, &subset, 3);
        assert!(mgr.check().unwrap().is_empty());
    }

    #[test]
    fn synth_source_parses_and_lowers() {
        let mut mgr = SchemaManager::new().unwrap();
        mgr.define_schema(&synth_source(5)).unwrap();
        assert!(mgr.check().unwrap().is_empty());
    }
}
