//! B4 — the cure crossover: immediate conversion (O2/Zicari) vs masking
//! (ENCORE/Skarra-Zdonik).
//!
//! Conversion pays once — proportional to the number of instances; masking
//! pays per access — each redirected read re-enters the interpreter.
//! Expected shape: masking wins when accesses are few relative to
//! instances; conversion wins past a crossover. `crossover_total_cost`
//! measures the end-to-end cost (cure + k accesses) for both policies so
//! the crossover is visible directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gom_core::SchemaManager;
use gom_evolution::{cure_add_attr, CurePolicy};
use gom_model::{Oid, TypeId};
use gom_runtime::Value;
use std::hint::black_box;

fn fresh_world(objects: usize) -> (SchemaManager, TypeId, Vec<Oid>) {
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema("schema S is type Car is [ milage : float; ] end type Car; end schema S;")
        .unwrap();
    let s = mgr.meta.schema_by_name("S").unwrap();
    let car = mgr.meta.type_by_name(s, "Car").unwrap();
    let oids: Vec<Oid> = (0..objects)
        .map(|_| mgr.create_object(car).unwrap())
        .collect();
    (mgr, car, oids)
}

fn b4_cure_once(c: &mut Criterion) {
    let mut group = c.benchmark_group("B4_cure_once");
    group.sample_size(10);
    for &objects in &[10usize, 1000, 20000] {
        group.bench_with_input(
            BenchmarkId::new("immediate_conversion", objects),
            &objects,
            |b, &n| {
                b.iter_with_setup(
                    || fresh_world(n),
                    |(mut mgr, car, _)| {
                        let string = mgr.meta.builtins.string;
                        let t = cure_add_attr(
                            &mut mgr,
                            car,
                            "fuelType",
                            string,
                            Value::Str("unleaded".into()),
                            CurePolicy::ImmediateConversion,
                        )
                        .unwrap();
                        black_box(t)
                    },
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("masking_setup", objects),
            &objects,
            |b, &n| {
                b.iter_with_setup(
                    || fresh_world(n),
                    |(mut mgr, car, _)| {
                        let string = mgr.meta.builtins.string;
                        let t = cure_add_attr(
                            &mut mgr,
                            car,
                            "fuelType",
                            string,
                            Value::Str("unleaded".into()),
                            CurePolicy::Masking,
                        )
                        .unwrap();
                        black_box(t)
                    },
                )
            },
        );
    }
    group.finish();
}

fn b4_access_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("B4_access_overhead");
    group.sample_size(10);
    // One world per policy, 100 objects, then measure attribute reads.
    for policy in [CurePolicy::ImmediateConversion, CurePolicy::Masking] {
        let (mut mgr, car, oids) = fresh_world(100);
        let string = mgr.meta.builtins.string;
        cure_add_attr(
            &mut mgr,
            car,
            "fuelType",
            string,
            Value::Str("unleaded".into()),
            policy,
        )
        .unwrap();
        let name = match policy {
            CurePolicy::ImmediateConversion => "converted_slot_read",
            CurePolicy::Masking => "masked_read",
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut n = 0;
                for &oid in &oids {
                    let v = mgr.get_attr(oid, "fuelType").unwrap();
                    if matches!(v, Value::Str(_)) {
                        n += 1;
                    }
                }
                black_box(n)
            })
        });
    }
    group.finish();
}

fn b4_crossover_total_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("B4_crossover_total_cost");
    group.sample_size(10);
    const OBJECTS: usize = 200;
    for &accesses in &[1usize, 50, 2000] {
        for policy in [CurePolicy::ImmediateConversion, CurePolicy::Masking] {
            let name = match policy {
                CurePolicy::ImmediateConversion => "conversion",
                CurePolicy::Masking => "masking",
            };
            group.bench_with_input(BenchmarkId::new(name, accesses), &accesses, |b, &k| {
                b.iter_with_setup(
                    || fresh_world(OBJECTS),
                    |(mut mgr, car, oids)| {
                        let string = mgr.meta.builtins.string;
                        cure_add_attr(
                            &mut mgr,
                            car,
                            "fuelType",
                            string,
                            Value::Str("unleaded".into()),
                            policy,
                        )
                        .unwrap();
                        let mut n = 0usize;
                        for i in 0..k {
                            let oid = oids[i % oids.len()];
                            let v = mgr.get_attr(oid, "fuelType").unwrap();
                            if matches!(v, Value::Str(_)) {
                                n += 1;
                            }
                        }
                        black_box(n)
                    },
                )
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    b4_cure_once,
    b4_access_overhead,
    b4_crossover_total_cost
);
criterion_main!(benches);
