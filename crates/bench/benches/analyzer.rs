//! B6 — Analyzer throughput: parse + lower cost vs source size, and the
//! parser alone. Expected shape: linear in source length; lowering
//! dominates parsing because of code analysis and fact insertion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gom_analyzer::parse_source;
use gom_bench::synth_source;
use gom_core::SchemaManager;
use std::hint::black_box;

fn b6_analyzer_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("B6_analyzer_throughput");
    group.sample_size(10);
    for &types in &[10usize, 50, 200] {
        let src = synth_source(types);
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_with_input(BenchmarkId::new("parse_only", types), &src, |b, src| {
            b.iter(|| black_box(parse_source(src).unwrap().len()))
        });
        group.bench_with_input(
            BenchmarkId::new("parse_and_lower", types),
            &src,
            |b, src| {
                b.iter_with_setup(
                    || SchemaManager::new().unwrap(),
                    |mut mgr| {
                        mgr.begin_evolution().unwrap();
                        let lowered = mgr.analyzer.lower_source(&mut mgr.meta, src).unwrap();
                        mgr.rollback_evolution().unwrap();
                        black_box(lowered.len())
                    },
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_define_with_check", types),
            &src,
            |b, src| {
                b.iter_with_setup(
                    || SchemaManager::new().unwrap(),
                    |mut mgr| black_box(mgr.define_schema(src).unwrap().len()),
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, b6_analyzer_throughput);
criterion_main!(benches);
