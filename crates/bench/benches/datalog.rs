//! B7 — deductive-engine internals: semi-naive vs naive fixpoint on deep
//! hierarchies, and the cost of the compiled constraint machinery.
//!
//! Expected shapes: semi-naive ≪ naive, with the gap widening as the chain
//! deepens (naive re-derives the full closure every round); constraint
//! compilation is a one-time cost proportional to the constraint count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gom_deductive::Database;
use std::hint::black_box;

fn chain_db(depth: usize) -> Database {
    let mut db = Database::new();
    db.load(
        "base Edge(a, b).
         derived Path(a, b).
         Path(X, Y) :- Edge(X, Y).
         Path(X, Z) :- Edge(X, Y), Path(Y, Z).",
    )
    .unwrap();
    let e = db.pred_id("Edge").unwrap();
    for i in 0..depth {
        let a = db.constant(&format!("n{i}"));
        let b = db.constant(&format!("n{}", i + 1));
        db.insert(e, vec![a, b]).unwrap();
    }
    db
}

fn b7_seminaive_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("B7_seminaive_vs_naive");
    group.sample_size(10);
    for &depth in &[16usize, 64, 128] {
        let mut db = chain_db(depth);
        let path = db.pred_id("Path").unwrap();
        group.bench_with_input(BenchmarkId::new("seminaive", depth), &depth, |b, _| {
            b.iter(|| {
                db.invalidate_caches();
                black_box(db.derived_facts(path).unwrap().len())
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", depth), &depth, |b, _| {
            b.iter(|| black_box(db.evaluate_naive_for_bench().unwrap()))
        });
    }
    group.finish();
}

fn b7_constraint_compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("B7_constraint_compilation");
    group.sample_size(10);
    // Compilation cost of the full GOM catalog (guarded Lloyd–Topor).
    group.bench_function("compile_gom_catalog", |b| {
        b.iter_with_setup(
            || {
                let mut m = gom_model::MetaModel::new().unwrap();
                gom_core::install(&mut m).unwrap();
                m
            },
            |mut m| {
                // `check` forces compilation + evaluation of the empty base.
                black_box(m.db.check().unwrap().len())
            },
        )
    });
    group.finish();
}

criterion_group!(benches, b7_seminaive_vs_naive, b7_constraint_compilation);
criterion_main!(benches);
