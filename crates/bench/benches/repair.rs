//! B3 — repair-generation cost.
//!
//! Violations are induced by adding `k` attributes to instantiated types
//! without slots (the §3.5 situation, k-fold). We measure (a) generating
//! repairs for a single violation and (b) for all violations, as violation
//! count grows. Expected shape: near-linear in the number of violations;
//! per-violation cost bounded by the derivation-tree depth and the
//! conclusion-completion search (both capped).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gom_bench::{populate_objects, synth_manager, SynthParams};
use gom_core::SchemaManager;
use std::hint::black_box;

/// A manager with `k` slot_for_every_attr violations.
fn violated_manager(k: usize) -> SchemaManager {
    let (mut mgr, types) = synth_manager(SynthParams {
        types: k.max(8) * 2,
        subtype_pct: 0, // flat hierarchy: one violation per added attr
        ..Default::default()
    });
    let with_objects: Vec<_> = types[..k].to_vec();
    populate_objects(&mut mgr, &with_objects, 1);
    assert!(mgr.check().unwrap().is_empty());
    mgr.begin_evolution().unwrap();
    let string = mgr.meta.builtins.string;
    for (i, &t) in with_objects.iter().enumerate() {
        mgr.meta.add_attr(t, &format!("gap{i}"), string).unwrap();
    }
    mgr
}

fn b3_repair_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("B3_repair_generation");
    group.sample_size(10);
    for &k in &[1usize, 4, 16] {
        let mut mgr = violated_manager(k);
        let violations = mgr.meta.db.check().unwrap();
        assert_eq!(violations.len(), k, "expected {k} violations");
        group.bench_with_input(BenchmarkId::new("single_violation", k), &k, |b, _| {
            b.iter(|| {
                let r = mgr.meta.db.repairs(&violations[0]).unwrap();
                black_box(r.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("all_violations", k), &k, |b, _| {
            b.iter(|| {
                let mut n = 0;
                for v in &violations {
                    n += mgr.meta.db.repairs(v).unwrap().len();
                }
                black_box(n)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, b3_repair_generation);
criterion_main!(benches);
