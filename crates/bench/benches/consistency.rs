//! B1 — consistency-check cost vs schema size.
//! B2 — full recheck vs dependency-pruned incremental recheck.
//! B5 — declarative (deductive) checking vs Orion-style fixed procedural
//!      checking: the price of flexibility.
//!
//! Expected shapes: B1 grows roughly linearly in the number of facts
//! (semi-naive evaluation, hash joins); B2's incremental check is far below
//! the full check because only the affected constraint cones are
//! evaluated; B5's fixed checker wins by a constant factor but cannot
//! express new constraints (see `gom-evolution::baselines`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gom_bench::{synth_manager, SynthParams};
use gom_deductive::ChangeSet;
use gom_evolution::fixed_check;
use std::hint::black_box;

fn b1_consistency_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("B1_consistency_scaling");
    group.sample_size(10);
    for &types in &[25usize, 50, 100, 200] {
        let (mut mgr, _) = synth_manager(SynthParams {
            types,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(types), &types, |b, _| {
            b.iter(|| {
                mgr.meta.db.invalidate_caches();
                let v = mgr.meta.db.check().unwrap();
                black_box(v.len())
            })
        });
    }
    group.finish();
}

fn b2_incremental_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("B2_incremental_check");
    group.sample_size(10);
    for &types in &[50usize, 200] {
        // One attribute insertion on a consistent schema.
        let (mut mgr, ts) = synth_manager(SynthParams {
            types,
            ..Default::default()
        });
        let t0 = ts[0];
        let int = mgr.meta.builtins.int;
        mgr.begin_evolution().unwrap();
        mgr.meta.add_attr(t0, "bench_new_attr", int).unwrap();
        let delta: ChangeSet = mgr.meta.db.session_delta().unwrap();

        group.bench_with_input(BenchmarkId::new("full", types), &types, |b, _| {
            b.iter(|| {
                mgr.meta.db.invalidate_caches();
                black_box(mgr.meta.db.check().unwrap().len())
            })
        });
        group.bench_with_input(BenchmarkId::new("pruned", types), &types, |b, _| {
            b.iter(|| {
                mgr.meta.db.invalidate_caches();
                black_box(mgr.meta.db.check_delta(&delta).unwrap().len())
            })
        });
        mgr.rollback_evolution().unwrap();

        // DRed: maintain a materialised IDB; each iteration applies the
        // change and its inverse incrementally (two updates + two scans).
        let mut mat = mgr.meta.db.materialize().unwrap();
        let mut forward = ChangeSet::new();
        let int = mgr.meta.builtins.int;
        let name = mgr.meta.db.constant("bench_new_attr");
        forward.insert(
            mgr.meta.cat.attr,
            gom_deductive::Tuple::from(vec![t0.constant(), name, int.constant()]),
        );
        let mut backward = ChangeSet::new();
        for op in forward.ops.iter().rev() {
            backward.ops.push(op.inverse());
        }
        group.bench_with_input(BenchmarkId::new("dred", types), &types, |b, _| {
            b.iter(|| {
                mgr.meta.db.apply_incremental(&mut mat, &forward).unwrap();
                let v1 = mgr.meta.db.violations_from(&mat).unwrap().len();
                mgr.meta.db.apply_incremental(&mut mat, &backward).unwrap();
                let v2 = mgr.meta.db.violations_from(&mat).unwrap().len();
                black_box(v1 + v2)
            })
        });
    }
    group.finish();
}

fn b5_declarative_vs_fixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5_declarative_vs_fixed");
    group.sample_size(10);
    for &types in &[50usize, 200] {
        let (mut mgr, _) = synth_manager(SynthParams {
            types,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("declarative", types), &types, |b, _| {
            b.iter(|| {
                mgr.meta.db.invalidate_caches();
                black_box(mgr.meta.db.check().unwrap().len())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("fixed_procedural", types),
            &types,
            |b, _| b.iter(|| black_box(fixed_check(&mgr.meta).len())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    b1_consistency_scaling,
    b2_incremental_check,
    b5_declarative_vs_fixed
);
criterion_main!(benches);
