//! The Runtime System: attribute access, dynamic binding, the interpreting
//! method executor, and fashion-based masking.
//!
//! The paper assumes "that the Runtime System interprets the schema,
//! especially the method's source code" (§2.2). Method bodies are stored in
//! the `Code` predicate as text; the interpreter re-parses them on call
//! (with a small cache) and executes them against the object base.
//!
//! Masking (§4.1): when an object's own (inherited) attributes and
//! operations do not cover an access, the `FashionAttr`/`FashionDecl`
//! extensions are consulted — "read and write accesses to the (not
//! existing) attribute are redirected to the specified code".

use crate::object::ObjectBase;
use crate::value::Value;
use gom_analyzer::ast::{BinOp, Block, Expr, Stmt};
use gom_analyzer::parse_code_text;
use gom_deductive::{Const, FxHashMap};
use gom_model::{DeclId, MetaModel, Oid, TypeId};
use std::sync::Arc;

/// Errors raised by the Runtime System.
#[derive(Debug)]
pub enum RtError {
    /// Unknown object id.
    NoSuchObject(Oid),
    /// The object (after masking) has no such attribute.
    NoSuchAttr {
        /// Type of the object.
        ty: String,
        /// Attribute name.
        attr: String,
    },
    /// The object (after masking) has no such operation.
    NoSuchOp {
        /// Type of the object.
        ty: String,
        /// Operation name.
        op: String,
    },
    /// A declaration has no code (schema/behaviour inconsistency at run
    /// time — the consistency control would have flagged it).
    NoCode(String),
    /// Type error during interpretation.
    Type(String),
    /// Call-depth limit exceeded.
    DepthLimit,
    /// Stored code fragment failed to re-parse.
    BadCode(String),
    /// Database error while reporting representation changes.
    Db(gom_deductive::Error),
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::NoSuchObject(o) => write!(f, "no such object {:?}", o.0),
            RtError::NoSuchAttr { ty, attr } => {
                write!(f, "object of type `{ty}` has no attribute `{attr}`")
            }
            RtError::NoSuchOp { ty, op } => {
                write!(f, "object of type `{ty}` has no operation `{op}`")
            }
            RtError::NoCode(op) => write!(f, "operation `{op}` has no implementation"),
            RtError::Type(m) => write!(f, "type error: {m}"),
            RtError::DepthLimit => write!(f, "call depth limit exceeded"),
            RtError::BadCode(m) => write!(f, "stored code does not parse: {m}"),
            RtError::Db(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RtError {}

impl From<gom_deductive::Error> for RtError {
    fn from(e: gom_deductive::Error) -> Self {
        RtError::Db(e)
    }
}

/// Result alias.
pub type RtResult<T> = Result<T, RtError>;

const MAX_DEPTH: usize = 64;

/// The Runtime System.
#[derive(Default)]
pub struct Runtime {
    /// The object base.
    pub objects: ObjectBase,
    /// Parsed-code cache keyed by the code text symbol.
    code_cache: FxHashMap<gom_deductive::Symbol, Arc<Block>>,
}

enum Flow {
    Normal,
    Returned(Value),
}

struct Env {
    self_oid: Oid,
    decl: Option<DeclId>,
    vars: FxHashMap<String, Value>,
    depth: usize,
}

impl Runtime {
    /// Fresh runtime with an empty object base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an object of type `t`.
    pub fn create(&mut self, m: &mut MetaModel, t: TypeId) -> RtResult<Oid> {
        Ok(self.objects.create(m, t)?)
    }

    /// Delete an object.
    pub fn delete(&mut self, m: &mut MetaModel, oid: Oid) -> RtResult<bool> {
        Ok(self.objects.delete(m, oid)?)
    }

    fn type_of(&self, oid: Oid) -> RtResult<TypeId> {
        self.objects
            .get(oid)
            .map(|o| o.ty)
            .ok_or(RtError::NoSuchObject(oid))
    }

    fn parse_code(&mut self, m: &MetaModel, text: &str) -> RtResult<Arc<Block>> {
        if let Some(sym) = m.db.sym(text) {
            if let Some(b) = self.code_cache.get(&sym) {
                return Ok(Arc::clone(b));
            }
            let block =
                Arc::new(parse_code_text(text).map_err(|e| RtError::BadCode(e.to_string()))?);
            self.code_cache.insert(sym, Arc::clone(&block));
            return Ok(block);
        }
        Ok(Arc::new(
            parse_code_text(text).map_err(|e| RtError::BadCode(e.to_string()))?,
        ))
    }

    // ----- attribute access (with masking) ---------------------------------------

    /// Read an attribute, redirecting through fashion masking when the
    /// object's type does not itself carry the attribute.
    pub fn get_attr(&mut self, m: &mut MetaModel, oid: Oid, attr: &str) -> RtResult<Value> {
        self.get_attr_depth(m, oid, attr, 0)
    }

    fn get_attr_depth(
        &mut self,
        m: &mut MetaModel,
        oid: Oid,
        attr: &str,
        depth: usize,
    ) -> RtResult<Value> {
        if depth > MAX_DEPTH {
            return Err(RtError::DepthLimit);
        }
        let obj = self.objects.get(oid).ok_or(RtError::NoSuchObject(oid))?;
        if let Some(v) = obj.slots.get(attr) {
            return Ok(v.clone());
        }
        let ty = obj.ty;
        if let Some(read_code) = self.fashion_attr_code(m, ty, attr, true) {
            let block = self.parse_code(m, &read_code)?;
            let mut env = Env {
                self_oid: oid,
                decl: None,
                vars: FxHashMap::default(),
                depth: depth + 1,
            };
            return match self.exec_block(m, &mut env, &block)? {
                Flow::Returned(v) => Ok(v),
                Flow::Normal => Ok(Value::Null),
            };
        }
        Err(RtError::NoSuchAttr {
            ty: m.type_name(ty).unwrap_or_default(),
            attr: attr.to_string(),
        })
    }

    /// Write an attribute, redirecting through fashion masking when needed.
    pub fn set_attr(&mut self, m: &mut MetaModel, oid: Oid, attr: &str, v: Value) -> RtResult<()> {
        self.set_attr_depth(m, oid, attr, v, 0)
    }

    fn set_attr_depth(
        &mut self,
        m: &mut MetaModel,
        oid: Oid,
        attr: &str,
        v: Value,
        depth: usize,
    ) -> RtResult<()> {
        if depth > MAX_DEPTH {
            return Err(RtError::DepthLimit);
        }
        let obj = self
            .objects
            .get_mut(oid)
            .ok_or(RtError::NoSuchObject(oid))?;
        if let Some(slot) = obj.slots.get_mut(attr) {
            *slot = v;
            return Ok(());
        }
        let ty = obj.ty;
        if let Some(write_code) = self.fashion_attr_code(m, ty, attr, false) {
            if write_code.is_empty() {
                return Err(RtError::Type(format!(
                    "attribute `{attr}` is read-only under masking"
                )));
            }
            let block = self.parse_code(m, &write_code)?;
            let mut env = Env {
                self_oid: oid,
                decl: None,
                vars: FxHashMap::default(),
                depth: depth + 1,
            };
            env.vars.insert("value".to_string(), v);
            self.exec_block(m, &mut env, &block)?;
            return Ok(());
        }
        Err(RtError::NoSuchAttr {
            ty: m.type_name(ty).unwrap_or_default(),
            attr: attr.to_string(),
        })
    }

    /// Look up the masking code for `attr` on an object of type `from_ty`:
    /// a `FashionAttr(To, attr, From, Read, Write)` fact with `From =
    /// from_ty`.
    fn fashion_attr_code(
        &self,
        m: &MetaModel,
        from_ty: TypeId,
        attr: &str,
        read: bool,
    ) -> Option<String> {
        let p = m.db.pred_id("FashionAttr")?;
        let a = m.db.sym(attr)?;
        let mut rows =
            m.db.relation(p)
                .select(&[(1, Const::Sym(a)), (2, from_ty.constant())]);
        let row = rows.next()?;
        let col = if read { 3 } else { 4 };
        let sym = row.get(col).as_sym()?;
        Some(m.db.resolve(sym).to_string())
    }

    // ----- operation dispatch ------------------------------------------------------

    /// Resolve the most specific declaration of `op` for runtime type `t`
    /// (dynamic binding through the subtype hierarchy).
    pub fn resolve_dynamic(&self, m: &MetaModel, t: TypeId, op: &str) -> Option<DeclId> {
        gom_analyzer::codereq::resolve_op(m, t, op)
    }

    /// Call operation `op` on object `oid` with `args`.
    pub fn call(
        &mut self,
        m: &mut MetaModel,
        oid: Oid,
        op: &str,
        args: &[Value],
    ) -> RtResult<Value> {
        self.call_depth(m, oid, op, args, 0)
    }

    fn call_depth(
        &mut self,
        m: &mut MetaModel,
        oid: Oid,
        op: &str,
        args: &[Value],
        depth: usize,
    ) -> RtResult<Value> {
        if depth > MAX_DEPTH {
            return Err(RtError::DepthLimit);
        }
        let t = self.type_of(oid)?;
        if let Some(decl) = self.resolve_dynamic(m, t, op) {
            return self.invoke_decl(m, oid, decl, args, depth);
        }
        // Masking: FashionDecl(did, from, code) with a matching op name.
        if let Some(code) = self.fashion_op_code(m, t, op) {
            let block = self.parse_code(m, &code)?;
            let mut env = Env {
                self_oid: oid,
                decl: None,
                vars: FxHashMap::default(),
                depth: depth + 1,
            };
            for (i, a) in args.iter().enumerate() {
                env.vars.insert(format!("arg{}", i + 1), a.clone());
            }
            return match self.exec_block(m, &mut env, &block)? {
                Flow::Returned(v) => Ok(v),
                Flow::Normal => Ok(Value::Null),
            };
        }
        Err(RtError::NoSuchOp {
            ty: m.type_name(t).unwrap_or_default(),
            op: op.to_string(),
        })
    }

    fn fashion_op_code(&self, m: &MetaModel, from_ty: TypeId, op: &str) -> Option<String> {
        let p = m.db.pred_id("FashionDecl")?;
        let rows = m.db.relation(p).select(&[(1, from_ty.constant())]);
        for row in rows {
            let did = DeclId(row.get(0).as_sym()?);
            if m.decl_info(did).is_some_and(|(_, n, _)| n == op) {
                let sym = row.get(2).as_sym()?;
                return Some(m.db.resolve(sym).to_string());
            }
        }
        None
    }

    /// Execute a specific declaration's code on `oid` (used for dispatch and
    /// for `super` calls).
    fn invoke_decl(
        &mut self,
        m: &mut MetaModel,
        oid: Oid,
        decl: DeclId,
        args: &[Value],
        depth: usize,
    ) -> RtResult<Value> {
        let (_, op_name, _) = m
            .decl_info(decl)
            .ok_or_else(|| RtError::NoCode("<unknown decl>".into()))?;
        let Some((cid, text)) = m.code_of(decl) else {
            return Err(RtError::NoCode(op_name));
        };
        let block = self.parse_code(m, &text)?;
        let mut env = Env {
            self_oid: oid,
            decl: Some(decl),
            vars: FxHashMap::default(),
            depth: depth + 1,
        };
        // Bind parameters by their recorded names (CodeParam facts).
        if let Some(cp) = m.db.pred_id("CodeParam") {
            let mut rows: Vec<&gom_deductive::Tuple> =
                m.db.relation(cp).select(&[(0, cid.constant())]).collect();
            rows.sort_by_key(|r| r.get(1).as_int().unwrap_or(0));
            for (i, row) in rows.iter().enumerate() {
                if let (Some(sym), Some(v)) = (row.get(2).as_sym(), args.get(i)) {
                    env.vars.insert(m.db.resolve(sym).to_string(), v.clone());
                }
            }
        }
        match self.exec_block(m, &mut env, &block)? {
            Flow::Returned(v) => Ok(v),
            Flow::Normal => Ok(Value::Null),
        }
    }

    // ----- interpreter ---------------------------------------------------------------

    fn exec_block(&mut self, m: &mut MetaModel, env: &mut Env, b: &Block) -> RtResult<Flow> {
        for s in &b.0 {
            match self.exec_stmt(m, env, s)? {
                Flow::Normal => {}
                ret => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, m: &mut MetaModel, env: &mut Env, s: &Stmt) -> RtResult<Flow> {
        match s {
            Stmt::Return(e) => {
                let v = self.eval(m, env, e)?;
                Ok(Flow::Returned(v))
            }
            Stmt::Expr(e) => {
                self.eval(m, env, e)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then, els } => {
                let c = self.eval(m, env, cond)?;
                if c.truthy() {
                    self.exec_block(m, env, then)
                } else {
                    self.exec_block(m, env, els)
                }
            }
            Stmt::Assign { target, value } => {
                let v = self.eval(m, env, value)?;
                match target {
                    Expr::Ident(name) => {
                        env.vars.insert(name.clone(), v);
                    }
                    Expr::Attr { recv, name } => {
                        let r = self.eval(m, env, recv)?;
                        let Value::Obj(oid) = r else {
                            return Err(RtError::Type(format!(
                                "assignment receiver `{name}` is not an object"
                            )));
                        };
                        self.set_attr_depth(m, oid, name, v, env.depth)?;
                    }
                    _ => {
                        return Err(RtError::Type(
                            "assignment target must be a variable or attribute".into(),
                        ))
                    }
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn eval(&mut self, m: &mut MetaModel, env: &mut Env, e: &Expr) -> RtResult<Value> {
        Ok(match e {
            Expr::Int(n) => Value::Int(*n),
            Expr::Float(x) => Value::Float(*x),
            Expr::Str(s) => Value::Str(s.clone()),
            Expr::SelfRef => Value::Obj(env.self_oid),
            Expr::Super => {
                return Err(RtError::Type(
                    "`super` may only be used as a call receiver".into(),
                ))
            }
            Expr::Ident(name) => {
                if let Some(v) = env.vars.get(name) {
                    v.clone()
                } else if let Some(v) = self.enum_literal(m, name) {
                    v
                } else {
                    return Err(RtError::Type(format!("unbound identifier `{name}`")));
                }
            }
            Expr::Attr { recv, name } => {
                let r = self.eval(m, env, recv)?;
                let Value::Obj(oid) = r else {
                    return Err(RtError::Type(format!(
                        "attribute access `.{name}` on non-object value {r}"
                    )));
                };
                self.get_attr_depth(m, oid, name, env.depth)?
            }
            Expr::Call { recv, name, args } => {
                let argv: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval(m, env, a))
                    .collect::<RtResult<_>>()?;
                if matches!(recv.as_ref(), Expr::Super) {
                    let Some(current) = env.decl else {
                        return Err(RtError::Type("`super` outside a method body".into()));
                    };
                    let target = m
                        .refined_by(current)
                        .into_iter()
                        .find(|d| m.decl_info(*d).is_some_and(|(_, n, _)| n == *name))
                        .ok_or_else(|| RtError::NoSuchOp {
                            ty: "super".into(),
                            op: name.clone(),
                        })?;
                    self.invoke_decl(m, env.self_oid, target, &argv, env.depth)?
                } else {
                    let r = self.eval(m, env, recv)?;
                    let Value::Obj(oid) = r else {
                        return Err(RtError::Type(format!(
                            "call `.{name}(…)` on non-object value {r}"
                        )));
                    };
                    self.call_depth(m, oid, name, &argv, env.depth)?
                }
            }
            Expr::Binary { op, l, r } => {
                let lv = self.eval(m, env, l)?;
                let rv = self.eval(m, env, r)?;
                binop(*op, lv, rv)?
            }
            Expr::Neg(inner) => {
                let v = self.eval(m, env, inner)?;
                match v {
                    Value::Int(n) => Value::Int(-n),
                    Value::Float(x) => Value::Float(-x),
                    other => {
                        return Err(RtError::Type(format!("cannot negate {other}")));
                    }
                }
            }
        })
    }

    fn enum_literal(&self, m: &MetaModel, name: &str) -> Option<Value> {
        let p = m.db.pred_id("SortVariant")?;
        let sym = m.db.sym(name)?;
        let mut rows = m.db.relation(p).select(&[(1, Const::Sym(sym))]);
        let row = rows.next()?;
        Some(Value::Enum {
            sort: TypeId(row.get(0).as_sym()?),
            variant: name.to_string(),
        })
    }
}

fn binop(op: BinOp, l: Value, r: Value) -> RtResult<Value> {
    use BinOp::*;
    match op {
        Eq => return Ok(Value::Bool(l.value_eq(&r))),
        Ne => return Ok(Value::Bool(!l.value_eq(&r))),
        _ => {}
    }
    // String comparison for ordering of strings.
    if let (Value::Str(a), Value::Str(b)) = (&l, &r) {
        return Ok(match op {
            Lt => Value::Bool(a < b),
            Le => Value::Bool(a <= b),
            Gt => Value::Bool(a > b),
            Ge => Value::Bool(a >= b),
            _ => return Err(RtError::Type("arithmetic on strings".into())),
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(RtError::Type(format!(
                "binary `{op:?}` needs numeric operands, got {l} and {r}"
            )))
        }
    };
    let both_int = matches!((&l, &r), (Value::Int(_), Value::Int(_)));
    Ok(match op {
        Add | Sub | Mul | Div => {
            let x = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(RtError::Type("division by zero".into()));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            if both_int && x.fract() == 0.0 {
                Value::Int(x as i64)
            } else {
                Value::Float(x)
            }
        }
        Lt => Value::Bool(a < b),
        Le => Value::Bool(a <= b),
        Gt => Value::Bool(a > b),
        Ge => Value::Bool(a >= b),
        Eq | Ne => unreachable!(),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use gom_analyzer::car_schema::CAR_SCHEMA_SRC;
    use gom_analyzer::lower::Analyzer;

    fn car_world() -> (MetaModel, Runtime, Oid, Oid, Oid, Oid) {
        let mut m = MetaModel::new().unwrap();
        let mut a = Analyzer::new();
        let lowered = a.lower_source(&mut m, CAR_SCHEMA_SRC).unwrap();
        let sid = lowered[0].id;
        let person = m.type_by_name(sid, "Person").unwrap();
        let city = m.type_by_name(sid, "City").unwrap();
        let car = m.type_by_name(sid, "Car").unwrap();
        let mut rt = Runtime::new();
        let alice = rt.create(&mut m, person).unwrap();
        rt.set_attr(&mut m, alice, "name", Value::Str("Alice".into()))
            .unwrap();
        let karlsruhe = rt.create(&mut m, city).unwrap();
        rt.set_attr(&mut m, karlsruhe, "longi", Value::Float(8.4))
            .unwrap();
        rt.set_attr(&mut m, karlsruhe, "lati", Value::Float(49.0))
            .unwrap();
        rt.set_attr(&mut m, karlsruhe, "name", Value::Str("Karlsruhe".into()))
            .unwrap();
        let munich = rt.create(&mut m, city).unwrap();
        rt.set_attr(&mut m, munich, "longi", Value::Float(11.6))
            .unwrap();
        rt.set_attr(&mut m, munich, "lati", Value::Float(48.1))
            .unwrap();
        rt.set_attr(&mut m, munich, "name", Value::Str("Munich".into()))
            .unwrap();
        let beetle = rt.create(&mut m, car).unwrap();
        rt.set_attr(&mut m, beetle, "owner", Value::Obj(alice))
            .unwrap();
        rt.set_attr(&mut m, beetle, "location", Value::Obj(karlsruhe))
            .unwrap();
        (m, rt, alice, karlsruhe, munich, beetle)
    }

    #[test]
    fn change_location_happy_path() {
        let (mut m, mut rt, alice, _k, munich, beetle) = car_world();
        let result = rt
            .call(
                &mut m,
                beetle,
                "changeLocation",
                &[Value::Obj(alice), Value::Obj(munich)],
            )
            .unwrap();
        // Milage increased by the squared distance and is returned.
        let Value::Float(milage) = result else {
            panic!("expected float, got {result:?}");
        };
        assert!(milage > 0.0);
        assert_eq!(
            rt.get_attr(&mut m, beetle, "location").unwrap(),
            Value::Obj(munich)
        );
        assert_eq!(
            rt.get_attr(&mut m, beetle, "milage").unwrap(),
            Value::Float(milage)
        );
    }

    #[test]
    fn change_location_rejects_non_owner() {
        let (mut m, mut rt, _alice, _k, munich, beetle) = car_world();
        let sid = m.schema_by_name("CarSchema").unwrap();
        let person = m.type_by_name(sid, "Person").unwrap();
        let mallory = rt.create(&mut m, person).unwrap();
        let result = rt
            .call(
                &mut m,
                beetle,
                "changeLocation",
                &[Value::Obj(mallory), Value::Obj(munich)],
            )
            .unwrap();
        assert_eq!(result, Value::Float(-1.0));
        // Location unchanged.
        assert_ne!(
            rt.get_attr(&mut m, beetle, "location").unwrap(),
            Value::Obj(munich)
        );
    }

    #[test]
    fn refined_distance_dispatches_dynamically_and_super_works() {
        let (mut m, mut rt, _alice, karlsruhe, munich, _beetle) = car_world();
        // City's refinement runs (the receiver is a City)…
        let d = rt
            .call(&mut m, karlsruhe, "distance", &[Value::Obj(munich)])
            .unwrap();
        let Value::Float(x) = d else {
            panic!("expected float");
        };
        assert!(x > 0.0);
        // …and the "nowhere" branch exercises the super call.
        rt.set_attr(&mut m, karlsruhe, "name", Value::Str("nowhere".into()))
            .unwrap();
        let d2 = rt
            .call(&mut m, karlsruhe, "distance", &[Value::Obj(munich)])
            .unwrap();
        assert_eq!(d, d2); // same formula via Location's implementation
    }

    #[test]
    fn missing_attr_is_reported() {
        let (mut m, mut rt, alice, ..) = car_world();
        assert!(matches!(
            rt.get_attr(&mut m, alice, "ghost"),
            Err(RtError::NoSuchAttr { .. })
        ));
        assert!(matches!(
            rt.call(&mut m, alice, "fly", &[]),
            Err(RtError::NoSuchOp { .. })
        ));
    }

    #[test]
    fn enum_literals_evaluate() {
        let mut m = MetaModel::new().unwrap();
        let mut a = Analyzer::new();
        let src = "\
schema S is
  sort Fuel is enum (leaded, unleaded);
  type PolluterCar is
  operations
    declare fuel : || -> Fuel;
  implementation
    define fuel is begin return leaded; end define fuel;
  end type PolluterCar;
end schema S;";
        let lowered = a.lower_source(&mut m, src).unwrap();
        let sid = lowered[0].id;
        let fuel_t = m.type_by_name(sid, "Fuel").unwrap();
        let pc = m.type_by_name(sid, "PolluterCar").unwrap();
        let mut rt = Runtime::new();
        let car = rt.create(&mut m, pc).unwrap();
        let v = rt.call(&mut m, car, "fuel", &[]).unwrap();
        assert_eq!(
            v,
            Value::Enum {
                sort: fuel_t,
                variant: "leaded".into()
            }
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(matches!(
            binop(BinOp::Div, Value::Int(1), Value::Int(0)),
            Err(RtError::Type(_))
        ));
    }

    #[test]
    fn int_arithmetic_stays_int() {
        assert_eq!(
            binop(BinOp::Add, Value::Int(2), Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            binop(BinOp::Div, Value::Int(7), Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
    }
}
