//! # gom-runtime — the GOM Runtime System
//!
//! The *Runtime System* of the paper's generic architecture (§2.2): object
//! management and physical representation. It
//!
//! * stores objects and keeps the `PhRep`/`Slot` extensions of the Object
//!   Base Model faithful to the physical state (the "modify" reporting
//!   duty),
//! * interprets method code stored in the `Code` predicate, with dynamic
//!   binding through the subtype/refinement structure and `super` calls,
//! * executes conversion routines (§3.5) that add/delete slots with values
//!   from defaults, per-instance callbacks, or user-supplied operations,
//! * redirects attribute and operation access through `fashion` masking
//!   (§4.1) so instances of one type version substitute for another.

#![warn(missing_docs)]

pub mod convert;
pub mod object;
pub mod runtime;
pub mod value;

pub use convert::{affected_types, ValueSource};
pub use object::{Object, ObjectBase};
pub use runtime::{RtError, RtResult, Runtime};
pub use value::Value;
