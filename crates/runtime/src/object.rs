//! The object base: physical object storage.
//!
//! The Runtime System "has to correctly report changes in the object's
//! representation via the modify operation" (§2.2): whenever the first
//! instance of a type appears, a `PhRep` fact and one `Slot` fact per
//! (inherited) attribute are inserted into the Object Base Model; when the
//! last instance disappears the facts are retracted. The deductive database
//! therefore always reflects the physical representation, which is exactly
//! what schema/object consistency (§3.4) is checked against.

use crate::value::Value;
use gom_deductive::Result;
use gom_model::{MetaModel, Oid, PhRepId, TypeId};
use std::collections::BTreeMap;

/// One stored object.
#[derive(Clone, Debug)]
pub struct Object {
    /// The (most specific) type of the object.
    pub ty: TypeId,
    /// Slot values by attribute name.
    pub slots: BTreeMap<String, Value>,
}

/// The object base.
#[derive(Default, Debug)]
pub struct ObjectBase {
    objects: BTreeMap<Oid, Object>,
    extents: BTreeMap<TypeId, Vec<Oid>>,
}

impl ObjectBase {
    /// Empty object base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Is the object base empty?
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Access an object.
    pub fn get(&self, oid: Oid) -> Option<&Object> {
        self.objects.get(&oid)
    }

    /// Mutable access to an object.
    pub fn get_mut(&mut self, oid: Oid) -> Option<&mut Object> {
        self.objects.get_mut(&oid)
    }

    /// Direct extent of a type (objects whose most specific type is `t`).
    pub fn extent(&self, t: TypeId) -> &[Oid] {
        self.extents.get(&t).map_or(&[], Vec::as_slice)
    }

    /// All oids, sorted.
    pub fn oids(&self) -> Vec<Oid> {
        self.objects.keys().copied().collect()
    }

    /// Ensure a physical representation (and its slots) exists for `t`,
    /// recursively ensuring representations for all attribute domains —
    /// the paper's constraint (*) demands `PhRep(C_A, T_A)` for every slot
    /// value type.
    pub fn ensure_phrep(&self, m: &mut MetaModel, t: TypeId) -> Result<PhRepId> {
        self.ensure_phrep_guarded(m, t, &mut Vec::new())
    }

    fn ensure_phrep_guarded(
        &self,
        m: &mut MetaModel,
        t: TypeId,
        visiting: &mut Vec<TypeId>,
    ) -> Result<PhRepId> {
        if let Some(p) = m.phrep_of(t) {
            return Ok(p);
        }
        if visiting.contains(&t) {
            // Recursive type (e.g. Person.spouse: Person): the phrep being
            // created upstream will serve. If the upstream frame has not
            // materialised it yet the cycle is malformed — surface that as
            // a typed error instead of panicking mid-evolution.
            return m.phrep_of(t).ok_or_else(|| {
                gom_deductive::Error::SessionProtocol(format!(
                    "recursive physical representation for `{}` is not yet \
                     materialised (malformed type cycle)",
                    m.type_name(t).unwrap_or_else(|| format!("{t:?}"))
                ))
            });
        }
        visiting.push(t);
        let clid = m.new_phrep(t)?;
        for (attr, domain) in m.attrs_inherited(t) {
            let dom_clid = if let Some(p) = m.phrep_of(domain) {
                p
            } else if visiting.contains(&domain) {
                // Self-referential domain: its phrep is the one we just made
                // or will be the one made by an outer frame; for a direct
                // self-reference it is `clid`.
                if domain == t {
                    clid
                } else {
                    // Mutual recursion: create the domain's phrep eagerly
                    // without slots yet — slots follow when the cycle
                    // unwinds via the explicit call below.
                    m.new_phrep(domain)?
                }
            } else {
                self.ensure_phrep_guarded(m, domain, visiting)?
            };
            m.add_slot(clid, &attr, dom_clid)?;
        }
        visiting.pop();
        Ok(clid)
    }

    /// Create an object of type `t` with default (null/zero) slot values,
    /// reporting `PhRep`/`Slot` facts as needed.
    pub fn create(&mut self, m: &mut MetaModel, t: TypeId) -> Result<Oid> {
        self.ensure_phrep(m, t)?;
        let oid = m.ids.oid(m.db.interner_mut());
        let mut slots = BTreeMap::new();
        for (attr, domain) in m.attrs_inherited(t) {
            let v = if domain == m.builtins.int {
                Value::Int(0)
            } else if domain == m.builtins.float {
                Value::Float(0.0)
            } else if domain == m.builtins.string {
                Value::Str(String::new())
            } else if domain == m.builtins.bool_ {
                Value::Bool(false)
            } else {
                Value::Null
            };
            slots.insert(attr, v);
        }
        self.objects.insert(oid, Object { ty: t, slots });
        self.extents.entry(t).or_default().push(oid);
        Ok(oid)
    }

    /// Delete an object; when it was the last instance of its type, retract
    /// the type's `PhRep` and `Slot` facts.
    pub fn delete(&mut self, m: &mut MetaModel, oid: Oid) -> Result<bool> {
        let Some(obj) = self.objects.remove(&oid) else {
            return Ok(false);
        };
        if let Some(e) = self.extents.get_mut(&obj.ty) {
            e.retain(|&o| o != oid);
            if e.is_empty() {
                self.extents.remove(&obj.ty);
                if !m.builtins.is_builtin(obj.ty) {
                    if let Some(clid) = m.phrep_of(obj.ty) {
                        for (attr, _) in m.slots_of(clid) {
                            m.remove_slot(clid, &attr)?;
                        }
                        let tup =
                            gom_deductive::Tuple::from(vec![clid.constant(), obj.ty.constant()]);
                        m.db.remove(m.cat.phrep, &tup)?;
                    }
                }
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn car_model() -> (MetaModel, TypeId, TypeId, TypeId, TypeId) {
        let mut m = MetaModel::new().unwrap();
        let s = m.new_schema("CarSchema").unwrap();
        let person = m.new_type(s, "Person").unwrap();
        m.add_subtype(person, m.builtins.any).unwrap();
        m.add_attr(person, "name", m.builtins.string).unwrap();
        m.add_attr(person, "age", m.builtins.int).unwrap();
        let loc = m.new_type(s, "Location").unwrap();
        m.add_subtype(loc, m.builtins.any).unwrap();
        m.add_attr(loc, "longi", m.builtins.float).unwrap();
        m.add_attr(loc, "lati", m.builtins.float).unwrap();
        let city = m.new_type(s, "City").unwrap();
        m.add_subtype(city, loc).unwrap();
        m.add_attr(city, "name", m.builtins.string).unwrap();
        let car = m.new_type(s, "Car").unwrap();
        m.add_subtype(car, m.builtins.any).unwrap();
        m.add_attr(car, "owner", person).unwrap();
        m.add_attr(car, "maxspeed", m.builtins.float).unwrap();
        m.add_attr(car, "milage", m.builtins.float).unwrap();
        m.add_attr(car, "location", city).unwrap();
        (m, person, loc, city, car)
    }

    #[test]
    fn create_reports_phrep_and_slots() {
        let (mut m, _p, _l, _c, car) = car_model();
        let mut ob = ObjectBase::new();
        let oid = ob.create(&mut m, car).unwrap();
        assert!(ob.get(oid).is_some());
        let clid = m.phrep_of(car).unwrap();
        // 4 slots for Car's 4 attributes.
        assert_eq!(m.slots_of(clid).len(), 4);
        // Domains got phreps recursively (Person, City, and City's super
        // Location attrs live in City's phrep).
        assert!(m.phrep_of(_p).is_some());
        assert!(m.phrep_of(_c).is_some());
    }

    #[test]
    fn city_phrep_has_inherited_slots() {
        let (mut m, _p, _l, city, _car) = car_model();
        let ob = ObjectBase::new();
        let clid = ob.ensure_phrep(&mut m, city).unwrap();
        let slots = m.slots_of(clid);
        // name + noOfInhabitants? (our fixture: name only) + inherited longi/lati
        let names: Vec<&str> = slots.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"longi"));
        assert!(names.contains(&"lati"));
        assert!(names.contains(&"name"));
    }

    #[test]
    fn default_slot_values_by_domain() {
        let (mut m, person, ..) = car_model();
        let mut ob = ObjectBase::new();
        let oid = ob.create(&mut m, person).unwrap();
        let obj = ob.get(oid).unwrap();
        assert_eq!(obj.slots["name"], Value::Str(String::new()));
        assert_eq!(obj.slots["age"], Value::Int(0));
    }

    #[test]
    fn delete_last_instance_retracts_phrep() {
        let (mut m, person, ..) = car_model();
        let mut ob = ObjectBase::new();
        let a = ob.create(&mut m, person).unwrap();
        let b = ob.create(&mut m, person).unwrap();
        assert_eq!(ob.extent(person).len(), 2);
        ob.delete(&mut m, a).unwrap();
        assert!(m.phrep_of(person).is_some());
        ob.delete(&mut m, b).unwrap();
        assert!(m.phrep_of(person).is_none());
        assert!(!ob.delete(&mut m, b).unwrap());
    }

    #[test]
    fn recursive_type_does_not_loop() {
        let mut m = MetaModel::new().unwrap();
        let s = m.new_schema("S").unwrap();
        let person = m.new_type(s, "Person").unwrap();
        m.add_subtype(person, m.builtins.any).unwrap();
        m.add_attr(person, "spouse", person).unwrap();
        let mut ob = ObjectBase::new();
        let oid = ob.create(&mut m, person).unwrap();
        assert!(ob.get(oid).is_some());
        let clid = m.phrep_of(person).unwrap();
        assert_eq!(m.slots_of(clid), vec![("spouse".to_string(), clid)]);
    }
}
