//! Runtime values.

use gom_model::{Oid, TypeId};

/// A value held in an object's slot or produced by evaluating an
/// expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Integer (also used for the `date` sort, counted in days).
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// An enum-sort literal, e.g. `leaded` of sort `Fuel`.
    Enum {
        /// The sort type.
        sort: TypeId,
        /// The literal name.
        variant: String,
    },
    /// Reference to an object.
    Obj(Oid),
    /// Uninitialised slot / missing value.
    Null,
}

impl Value {
    /// Coerce to f64 for arithmetic, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Is this an integer-like value (int)?
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Truthiness for `if` conditions.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(n) => *n != 0,
            Value::Float(x) => *x != 0.0,
            Value::Null => false,
            _ => true,
        }
    }

    /// Structural equality as used by `==` in method bodies. Numeric values
    /// compare across int/float.
    pub fn value_eq(&self, other: &Value) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a == b,
            _ => self == other,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Enum { variant, .. } => write!(f, "{variant}"),
            Value::Obj(o) => write!(f, "<obj {:?}>", o.0),
            Value::Null => write!(f, "null"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn numeric_eq_across_kinds() {
        assert!(Value::Int(3).value_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).value_eq(&Value::Float(3.5)));
        assert!(Value::Str("a".into()).value_eq(&Value::Str("a".into())));
        assert!(!Value::Str("a".into()).value_eq(&Value::Null));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(1).truthy());
        assert!(!Value::Null.truthy());
    }
}
