//! Conversion routines (paper §3.5).
//!
//! "The implementation of the conversion routines must be present in the
//! Runtime System. These conversion routines must be able to, e.g., add or
//! delete slots." Adding a slot needs a value for every existing instance;
//! the paper lists three sources: a default value, asking the user per
//! instance, or "providing an operation that — called on the old instances
//! — provides a value for the new slot". All three are implemented
//! ([`ValueSource`]); "asking the user" is a callback.

use crate::runtime::{RtError, RtResult, Runtime};
use crate::value::Value;
use gom_model::{MetaModel, Oid, TypeId};

/// Where the values for a newly added slot come from.
pub enum ValueSource<'a> {
    /// A constant default for every instance.
    Default(Value),
    /// Call this (argument-less) operation on each old instance; its result
    /// becomes the slot value (the paper's choice for `fuelType`).
    ByOperation(&'a str),
    /// Ask per instance (simulates user interaction).
    PerObject(&'a mut dyn FnMut(Oid) -> Value),
}

/// Types needing conversion when `t` gains or loses an attribute: `t` and
/// every transitive subtype.
pub fn affected_types(m: &MetaModel, t: TypeId) -> Vec<TypeId> {
    let mut out = vec![t];
    let mut i = 0;
    while i < out.len() {
        for sub in m.subtypes(out[i]) {
            if !out.contains(&sub) {
                out.push(sub);
            }
        }
        i += 1;
    }
    out
}

impl Runtime {
    /// Conversion routine: add a slot named `attr` (domain `domain`) to the
    /// physical representation of `t` and all its subtypes, filling the new
    /// slot of every existing instance from `source`. Returns the number of
    /// converted objects.
    ///
    /// The corresponding `+Slot(...)` facts are reported to the Object Base
    /// Model, which is how executing this routine discharges the repair the
    /// Consistency Control proposed (§3.5).
    pub fn convert_add_slot(
        &mut self,
        m: &mut MetaModel,
        t: TypeId,
        attr: &str,
        domain: TypeId,
        mut source: ValueSource<'_>,
    ) -> RtResult<usize> {
        let _sp = gom_obs::span("runtime.convert_add_slot");
        let mut converted = 0;
        for ty in affected_types(m, t) {
            let Some(clid) = m.phrep_of(ty) else {
                continue; // no instances, nothing physical to convert
            };
            // Make sure the domain has a representation the slot can refer to.
            let dom_clid = match m.phrep_of(domain) {
                Some(p) => p,
                None => self.objects.ensure_phrep(m, domain)?,
            };
            if !m.slots_of(clid).iter().any(|(n, _)| n == attr) {
                m.add_slot(clid, attr, dom_clid)?;
            }
            for oid in self.objects.extent(ty).to_vec() {
                let v = match &mut source {
                    ValueSource::Default(v) => v.clone(),
                    ValueSource::ByOperation(op) => self.call(m, oid, op, &[])?,
                    ValueSource::PerObject(f) => f(oid),
                };
                let obj = self
                    .objects
                    .get_mut(oid)
                    .ok_or(RtError::NoSuchObject(oid))?;
                obj.slots.insert(attr.to_string(), v);
                converted += 1;
            }
        }
        Ok(converted)
    }

    /// Conversion routine: delete the slot named `attr` from `t` and all
    /// subtypes, dropping the stored values. Returns the number of
    /// converted objects.
    pub fn convert_remove_slot(
        &mut self,
        m: &mut MetaModel,
        t: TypeId,
        attr: &str,
    ) -> RtResult<usize> {
        let _sp = gom_obs::span("runtime.convert_remove_slot");
        let mut converted = 0;
        for ty in affected_types(m, t) {
            if let Some(clid) = m.phrep_of(ty) {
                m.remove_slot(clid, attr)?;
            }
            for oid in self.objects.extent(ty).to_vec() {
                let obj = self
                    .objects
                    .get_mut(oid)
                    .ok_or(RtError::NoSuchObject(oid))?;
                if obj.slots.remove(attr).is_some() {
                    converted += 1;
                }
            }
        }
        Ok(converted)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use gom_analyzer::lower::Analyzer;

    fn setup() -> (MetaModel, Runtime, TypeId, TypeId) {
        let mut m = MetaModel::new().unwrap();
        let mut a = Analyzer::new();
        let src = "\
schema S is
  type Car is
    [ milage : float; ]
  operations
    declare guessFuel : || -> string;
  implementation
    define guessFuel is
    begin
      if (self.milage > 100000.0) return \"leaded\";
      return \"unleaded\";
    end define guessFuel;
  end type Car;
  type SportsCar supertype Car is
    [ topSpeed : float; ]
  end type SportsCar;
end schema S;";
        let lowered = a.lower_source(&mut m, src).unwrap();
        let sid = lowered[0].id;
        let car = m.type_by_name(sid, "Car").unwrap();
        let sports = m.type_by_name(sid, "SportsCar").unwrap();
        (m, Runtime::new(), car, sports)
    }

    #[test]
    fn add_slot_with_default_converts_all_instances() {
        let (mut m, mut rt, car, sports) = setup();
        let c1 = rt.create(&mut m, car).unwrap();
        let s1 = rt.create(&mut m, sports).unwrap();
        let string = m.builtins.string;
        let n = rt
            .convert_add_slot(
                &mut m,
                car,
                "fuelType",
                string,
                ValueSource::Default(Value::Str("unleaded".into())),
            )
            .unwrap();
        assert_eq!(n, 2); // subtype instances converted too
        assert_eq!(
            rt.get_attr(&mut m, c1, "fuelType").unwrap(),
            Value::Str("unleaded".into())
        );
        assert_eq!(
            rt.get_attr(&mut m, s1, "fuelType").unwrap(),
            Value::Str("unleaded".into())
        );
        // Slot facts reported for both representations.
        let clid = m.phrep_of(car).unwrap();
        assert!(m.slots_of(clid).iter().any(|(n, _)| n == "fuelType"));
        let clid_s = m.phrep_of(sports).unwrap();
        assert!(m.slots_of(clid_s).iter().any(|(n, _)| n == "fuelType"));
    }

    #[test]
    fn add_slot_by_operation_uses_old_state() {
        let (mut m, mut rt, car, _) = setup();
        let old = rt.create(&mut m, car).unwrap();
        rt.set_attr(&mut m, old, "milage", Value::Float(200000.0))
            .unwrap();
        let new = rt.create(&mut m, car).unwrap();
        let string = m.builtins.string;
        rt.convert_add_slot(
            &mut m,
            car,
            "fuelType",
            string,
            ValueSource::ByOperation("guessFuel"),
        )
        .unwrap();
        assert_eq!(
            rt.get_attr(&mut m, old, "fuelType").unwrap(),
            Value::Str("leaded".into())
        );
        assert_eq!(
            rt.get_attr(&mut m, new, "fuelType").unwrap(),
            Value::Str("unleaded".into())
        );
    }

    #[test]
    fn add_slot_per_object_callback() {
        let (mut m, mut rt, car, _) = setup();
        let a = rt.create(&mut m, car).unwrap();
        let b = rt.create(&mut m, car).unwrap();
        let mut i = 0;
        let int = m.builtins.int;
        rt.convert_add_slot(
            &mut m,
            car,
            "serial",
            int,
            ValueSource::PerObject(&mut |_| {
                i += 1;
                Value::Int(i)
            }),
        )
        .unwrap();
        let va = rt.get_attr(&mut m, a, "serial").unwrap();
        let vb = rt.get_attr(&mut m, b, "serial").unwrap();
        assert_ne!(va, vb);
    }

    #[test]
    fn remove_slot_drops_values_and_facts() {
        let (mut m, mut rt, car, _) = setup();
        let c = rt.create(&mut m, car).unwrap();
        let string = m.builtins.string;
        rt.convert_add_slot(
            &mut m,
            car,
            "fuelType",
            string,
            ValueSource::Default(Value::Str("x".into())),
        )
        .unwrap();
        let n = rt.convert_remove_slot(&mut m, car, "fuelType").unwrap();
        assert_eq!(n, 1);
        assert!(rt.get_attr(&mut m, c, "fuelType").is_err());
        let clid = m.phrep_of(car).unwrap();
        assert!(!m.slots_of(clid).iter().any(|(n, _)| n == "fuelType"));
    }

    #[test]
    fn conversion_without_instances_is_a_noop() {
        let (mut m, mut rt, car, _) = setup();
        let string = m.builtins.string;
        let n = rt
            .convert_add_slot(
                &mut m,
                car,
                "fuelType",
                string,
                ValueSource::Default(Value::Null),
            )
            .unwrap();
        assert_eq!(n, 0);
    }
}
