#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Runtime integration tests: deep refinement chains, dynamic binding from
//! every level, masking with operations and arguments, and object-base
//! lifecycle edge cases.

use gom_analyzer::lower::Analyzer;
use gom_model::MetaModel;
use gom_runtime::{RtError, Runtime, Value};

fn three_level_world() -> (MetaModel, Runtime) {
    let mut m = MetaModel::new().unwrap();
    let mut a = Analyzer::new();
    a.lower_source(
        &mut m,
        "schema S is
           type A is
             [ tag : string; ]
           operations
             declare who : || -> string;
             declare greet : || -> string;
           implementation
             define who is begin return \"A\"; end define who;
             define greet is begin return self.who(); end define greet;
           end type A;
           type B supertype A is
           refine
             declare who : || -> string;
           implementation
             define who is begin return \"B\"; end define who;
           end type B;
           type C supertype B is
           refine
             declare who : || -> string;
           implementation
             define who is
             begin
               return super.who();
             end define who;
           end type C;
         end schema S;",
    )
    .unwrap();
    (m, Runtime::new())
}

#[test]
fn dynamic_binding_through_three_levels() {
    let (mut m, mut rt) = three_level_world();
    let s = m.schema_by_name("S").unwrap();
    let a = m.type_by_name(s, "A").unwrap();
    let b = m.type_by_name(s, "B").unwrap();
    let c = m.type_by_name(s, "C").unwrap();
    let oa = rt.create(&mut m, a).unwrap();
    let ob = rt.create(&mut m, b).unwrap();
    let oc = rt.create(&mut m, c).unwrap();
    // `greet` is declared only on A; its `self.who()` dispatches on the
    // RUNTIME type (late binding).
    assert_eq!(
        rt.call(&mut m, oa, "greet", &[]).unwrap(),
        Value::Str("A".into())
    );
    assert_eq!(
        rt.call(&mut m, ob, "greet", &[]).unwrap(),
        Value::Str("B".into())
    );
    // C's `who` delegates via `super` to B's, not to A's.
    assert_eq!(
        rt.call(&mut m, oc, "greet", &[]).unwrap(),
        Value::Str("B".into())
    );
    assert_eq!(
        rt.call(&mut m, oc, "who", &[]).unwrap(),
        Value::Str("B".into())
    );
}

#[test]
fn inherited_attrs_present_at_every_level() {
    let (mut m, mut rt) = three_level_world();
    let s = m.schema_by_name("S").unwrap();
    let c = m.type_by_name(s, "C").unwrap();
    let oc = rt.create(&mut m, c).unwrap();
    rt.set_attr(&mut m, oc, "tag", Value::Str("deep".into()))
        .unwrap();
    assert_eq!(
        rt.get_attr(&mut m, oc, "tag").unwrap(),
        Value::Str("deep".into())
    );
}

#[test]
fn fashion_operation_receives_positional_args() {
    let mut m = MetaModel::new().unwrap();
    let mut a = Analyzer::new();
    a.lower_source(
        &mut m,
        "schema Old is
           type Counter is
             [ count : int; ]
           end type Counter;
         end schema Old;
         schema New is
           type Counter is
             [ count : int; ]
           operations
             declare bump : int -> int;
           implementation
             define bump(by) is
             begin
               self.count := self.count + by;
               return self.count;
             end define bump;
           end type Counter;
         end schema New;",
    )
    .unwrap();
    // Install fashion predicates manually (the §4.1 extension textless).
    m.db.load(
        "base FashionType(from, to).
         base FashionDecl(did, tid, code).
         base FashionAttr(tid, attr, from, readcode, writecode).",
    )
    .unwrap();
    a.lower_source(
        &mut m,
        "fashion Counter@Old as Counter@New where
           count : int is self.count;
           operation bump is
           begin
             self.count := self.count + arg1;
             return self.count;
           end;
         end fashion;",
    )
    .unwrap();
    let old_s = m.schema_by_name("Old").unwrap();
    let old_c = m.type_by_name(old_s, "Counter").unwrap();
    let mut rt = Runtime::new();
    let o = rt.create(&mut m, old_c).unwrap();
    // The OLD object has no `bump` of its own — the fashion imitation runs
    // with `arg1` bound positionally.
    assert_eq!(
        rt.call(&mut m, o, "bump", &[Value::Int(5)]).unwrap(),
        Value::Int(5)
    );
    assert_eq!(
        rt.call(&mut m, o, "bump", &[Value::Int(3)]).unwrap(),
        Value::Int(8)
    );
}

#[test]
fn depth_limit_stops_infinite_recursion() {
    let mut m = MetaModel::new().unwrap();
    let mut a = Analyzer::new();
    a.lower_source(
        &mut m,
        "schema S is
           type Loop is
           operations
             declare spin : || -> int;
           implementation
             define spin is begin return self.spin(); end define spin;
           end type Loop;
         end schema S;",
    )
    .unwrap();
    let s = m.schema_by_name("S").unwrap();
    let t = m.type_by_name(s, "Loop").unwrap();
    let mut rt = Runtime::new();
    let o = rt.create(&mut m, t).unwrap();
    assert!(matches!(
        rt.call(&mut m, o, "spin", &[]),
        Err(RtError::DepthLimit)
    ));
}

#[test]
fn phrep_recreated_after_extinction() {
    let mut m = MetaModel::new().unwrap();
    let s = m.new_schema("S").unwrap();
    let t = m.new_type(s, "T").unwrap();
    m.add_subtype(t, m.builtins.any).unwrap();
    m.add_attr(t, "x", m.builtins.int).unwrap();
    let mut rt = Runtime::new();
    let o1 = rt.create(&mut m, t).unwrap();
    let clid1 = m.phrep_of(t).unwrap();
    rt.delete(&mut m, o1).unwrap();
    assert!(m.phrep_of(t).is_none());
    // a new instance gets a fresh representation with full slots
    let _o2 = rt.create(&mut m, t).unwrap();
    let clid2 = m.phrep_of(t).unwrap();
    assert_ne!(clid1, clid2);
    assert_eq!(m.slots_of(clid2).len(), 1);
}

#[test]
fn objects_as_values_roundtrip() {
    let mut m = MetaModel::new().unwrap();
    let s = m.new_schema("S").unwrap();
    let person = m.new_type(s, "Person").unwrap();
    m.add_subtype(person, m.builtins.any).unwrap();
    m.add_attr(person, "friend", person).unwrap();
    let mut rt = Runtime::new();
    let alice = rt.create(&mut m, person).unwrap();
    let bob = rt.create(&mut m, person).unwrap();
    rt.set_attr(&mut m, alice, "friend", Value::Obj(bob))
        .unwrap();
    rt.set_attr(&mut m, bob, "friend", Value::Obj(alice))
        .unwrap();
    assert_eq!(
        rt.get_attr(&mut m, alice, "friend").unwrap(),
        Value::Obj(bob)
    );
    assert_eq!(
        rt.get_attr(&mut m, bob, "friend").unwrap(),
        Value::Obj(alice)
    );
}

#[test]
fn calling_op_with_wrong_arity_binds_missing_as_unset() {
    // Missing arguments surface as unbound identifiers during execution.
    let mut m = MetaModel::new().unwrap();
    let mut a = Analyzer::new();
    a.lower_source(
        &mut m,
        "schema S is
           type T is
           operations
             declare add : int, int -> int;
           implementation
             define add(x, y) is begin return x + y; end define add;
           end type T;
         end schema S;",
    )
    .unwrap();
    let s = m.schema_by_name("S").unwrap();
    let t = m.type_by_name(s, "T").unwrap();
    let mut rt = Runtime::new();
    let o = rt.create(&mut m, t).unwrap();
    assert_eq!(
        rt.call(&mut m, o, "add", &[Value::Int(2), Value::Int(3)])
            .unwrap(),
        Value::Int(5)
    );
    assert!(matches!(
        rt.call(&mut m, o, "add", &[Value::Int(2)]),
        Err(RtError::Type(_))
    ));
}
