#![allow(clippy::unwrap_used, clippy::expect_used)]
#![cfg(feature = "proptest-tests")]
// Gated: requires the external `proptest` crate (no offline mirror).
// See the `proptest-tests` feature note in Cargo.toml.

//! Property tests: the Runtime System keeps the Object Base Model faithful
//! — after any sequence of object creations, deletions, and conversions,
//! the §3.4 schema/object constraints hold.

use gom_core::SchemaManager;
use gom_model::TypeId;
use gom_runtime::{Value, ValueSource};
use proptest::prelude::*;

fn hierarchy_manager() -> (SchemaManager, Vec<TypeId>) {
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(
        "schema W is
           type Vehicle is [ wheels : int; ] end type Vehicle;
           type Car supertype Vehicle is [ doors : int; ] end type Car;
           type Truck supertype Vehicle is [ payload : float; ] end type Truck;
           type Taxi supertype Car is [ fare : float; ] end type Taxi;
         end schema W;",
    )
    .unwrap();
    let s = mgr.meta.schema_by_name("W").unwrap();
    let types = ["Vehicle", "Car", "Truck", "Taxi"]
        .iter()
        .map(|n| mgr.meta.type_by_name(s, n).unwrap())
        .collect();
    (mgr, types)
}

#[derive(Clone, Debug)]
enum Action {
    Create(usize),
    DeleteNth(usize),
    ConvertAdd(usize, u8),
    ConvertRemove(usize, u8),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0usize..4).prop_map(Action::Create),
        2 => (0usize..8).prop_map(Action::DeleteNth),
        1 => (0usize..4, 0u8..3).prop_map(|(t, a)| Action::ConvertAdd(t, a)),
        1 => (0usize..4, 0u8..3).prop_map(|(t, a)| Action::ConvertRemove(t, a)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn object_lifecycle_preserves_schema_object_consistency(
        actions in proptest::collection::vec(action_strategy(), 1..25),
    ) {
        let (mut mgr, types) = hierarchy_manager();
        let mut live: Vec<gom_model::Oid> = Vec::new();
        for action in &actions {
            match action {
                Action::Create(t) => {
                    let oid = mgr.create_object(types[*t]).unwrap();
                    live.push(oid);
                }
                Action::DeleteNth(n) => {
                    if !live.is_empty() {
                        let oid = live.remove(n % live.len());
                        mgr.runtime.delete(&mut mgr.meta, oid).unwrap();
                    }
                }
                Action::ConvertAdd(t, a) => {
                    // Conversion must accompany the schema change in one
                    // session (the §3.5 discipline).
                    let ty = types[*t];
                    let attr = format!("extra{a}");
                    if mgr.meta.attrs_inherited(ty).iter().any(|(n, _)| *n == attr) {
                        continue; // already there (possibly inherited)
                    }
                    // Adding attr to ty may clash with a same-named attr
                    // already added to a SUBTYPE earlier; skip those too.
                    let clash = gom_runtime::affected_types(&mgr.meta, ty)
                        .iter()
                        .any(|&s| mgr.meta.attrs_inherited(s).iter().any(|(n, _)| *n == attr));
                    if clash {
                        continue;
                    }
                    mgr.begin_evolution().unwrap();
                    let int = mgr.meta.builtins.int;
                    mgr.meta.add_attr(ty, &attr, int).unwrap();
                    mgr.runtime
                        .convert_add_slot(&mut mgr.meta, ty, &attr, int,
                            ValueSource::Default(Value::Int(0)))
                        .unwrap();
                    let out = mgr.end_evolution().unwrap();
                    prop_assert!(out.is_consistent(),
                        "convert-add left: {:?}",
                        out.violations().iter().map(|v| v.render(&mgr.meta.db)).collect::<Vec<_>>());
                }
                Action::ConvertRemove(t, a) => {
                    let ty = types[*t];
                    let attr = format!("extra{a}");
                    // Only remove attrs we added directly on this type.
                    if !mgr.meta.attrs_of(ty).iter().any(|(n, _)| *n == attr) {
                        continue;
                    }
                    mgr.begin_evolution().unwrap();
                    mgr.meta.remove_attr(ty, &attr).unwrap();
                    mgr.runtime.convert_remove_slot(&mut mgr.meta, ty, &attr).unwrap();
                    let out = mgr.end_evolution().unwrap();
                    prop_assert!(out.is_consistent(),
                        "convert-remove left: {:?}",
                        out.violations().iter().map(|v| v.render(&mgr.meta.db)).collect::<Vec<_>>());
                }
            }
            // The standing invariant after every action:
            let violations = mgr.check().unwrap();
            prop_assert!(
                violations.is_empty(),
                "after {:?}: {:?}",
                action,
                violations.iter().map(|v| v.render(&mgr.meta.db)).collect::<Vec<_>>()
            );
        }
    }
}
